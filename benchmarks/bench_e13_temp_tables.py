"""E13 (§5.3, with §3.1's externalization — covers E15): temporary tables
for large enumerations, on Data Server and on the database.

"a filter on a large cardinality database field may be stored as a
temporary table on the database. Instead of issuing a query with a very
long and complicated filter ... the temporary table is used in the query.
The temporary data structures provide two different performance
improvements: (1) reduced network traffic between the client and the Data
Server if a temporary data structure is used repeatedly in subsequent
queries, and (2) improved query execution times on the database."

Sweep the filter cardinality: the *inline* client resends the IN-list
with every query; the *set-based* client ships it once and references a
handle. Expected shape: client→proxy bytes grow linearly with both list
size and query count for inline, but stay flat for sets; the externalized
temp-table join also beats a giant IN predicate on the backend.
"""

import pytest

from repro.connectors.simdb import ServerProfile
from repro.core.pipeline import PipelineOptions
from repro.queries import CategoricalFilter
from repro.server import DataServer
from repro.sim.metrics import Recorder, time_call

from .conftest import BENCH_WORK_UNIT_S, COUNT, make_backend, record, spec

LIST_SIZES = (10, 100, 1_000, 10_000)
QUERIES_PER_SESSION = 5


def _values(k: int):
    return tuple(range(0, 3 * k, 3))  # distances exist in 120..2800 anyway


def _publish(dataset, model, name: str) -> DataServer:
    profile = ServerProfile(work_unit_time_s=BENCH_WORK_UNIT_S, name=name)
    _db, source = make_backend(dataset, profile, name=name)
    server = DataServer()
    # Externalize anything beyond 500 values; caches off to isolate the
    # temp-table effect itself.
    server.publish(
        "faa",
        model,
        source,
        options=PipelineOptions(
            enable_intelligent_cache=False,
            enable_literal_cache=False,
            enrich_for_reuse=False,
            externalize_threshold=500,
        ),
    )
    return server


def test_e13_temp_tables(benchmark, dataset, model):
    recorder = Recorder(
        "E13: temp tables for large filters (5 queries per session)",
        columns=["list_size", "inline_bytes", "set_bytes", "inline_ms", "set_ms"],
    )
    rows = []
    for k in LIST_SIZES:
        values = _values(k)
        base = spec(dimensions=("carrier_name",), measures=(("n", COUNT),))
        inline_spec = base.with_filters((CategoricalFilter("distance", values),))

        server = _publish(dataset, model, name=f"inline{k}")
        inline_session = server.connect("faa", "inline-user")
        inline_s, inline_out = time_call(
            lambda: [inline_session.query(inline_spec) for _ in range(QUERIES_PER_SESSION)],
            repeat=1,
        )
        server2 = _publish(dataset, model, name=f"sets{k}")
        set_session = server2.connect("faa", "set-user")
        set_session.create_set("big", "distance", values)
        set_s, set_out = time_call(
            lambda: [
                set_session.query(base, use_sets={"distance": "big"})
                for _ in range(QUERIES_PER_SESSION)
            ],
            repeat=1,
        )
        assert inline_out[-1].approx_equals(set_out[-1], ordered=False)
        recorder.add(
            k,
            inline_session.bytes_from_client,
            set_session.bytes_from_client,
            inline_s * 1000,
            set_s * 1000,
        )
        rows.append((k, inline_session.bytes_from_client, set_session.bytes_from_client))
    record("e13_temp_tables", recorder)

    # Traffic shape: inline reships the list with every query; sets ship
    # it once, so their total is bounded by roughly one inline query's
    # worth instead of five.
    small_inline, _small_set = rows[0][1], rows[0][2]
    big_inline, big_set = rows[-1][1], rows[-1][2]
    assert big_inline > small_inline * 100
    assert big_set < big_inline / (QUERIES_PER_SESSION - 1)

    # Backend effect (§5.3 improvement 2): a giant inline IN predicate is
    # evaluated per row; the externalized temp-table join is not.
    backend_rec = Recorder(
        "E13b: backend time, inline IN vs temp-table join (1000 values)",
        columns=["strategy", "elapsed_ms"],
    )
    values = _values(1_000)
    base = spec(dimensions=("carrier_name",), measures=(("n", COUNT),))
    filtered = base.with_filters((CategoricalFilter("distance", values),))
    server_inline = _publish(dataset, model, name="noext")
    server_inline.get("faa").pipeline.options.externalize_threshold = 10**9
    t_inline, r_inline = time_call(
        lambda: server_inline.connect("faa", "u").query(filtered), repeat=1
    )
    server_ext = _publish(dataset, model, name="ext")
    t_ext, r_ext = time_call(lambda: server_ext.connect("faa", "u").query(filtered), repeat=1)
    assert r_inline.approx_equals(r_ext, ordered=False)
    backend_rec.add("inline IN (1000 values)", t_inline * 1000)
    backend_rec.add("externalized temp table", t_ext * 1000)
    record("e13b_backend_effect", backend_rec)
    assert t_ext < t_inline / 2

    server = _publish(dataset, model, name="bench13")
    session = server.connect("faa", "bench-user")
    session.create_set("big", "distance", _values(10_000))
    base = spec(dimensions=("carrier_name",), measures=(("n", COUNT),))
    result = benchmark.pedantic(
        lambda: session.query(base, use_sets={"distance": "big"}), rounds=3, iterations=1
    )
    assert result.n_rows > 0
