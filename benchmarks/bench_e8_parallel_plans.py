"""E8 (Figure 3 of §4.2): parallel plan generation for flow pipelines.

The bottom-up algorithm parallelizes TableScan→Select→Project pipelines
and closes them with an Exchange at stop-and-go operators. We replay the
generated plans on the virtual multicore machine (the host is GIL-bound;
see repro.sim) across a core sweep. Expected shape: speedup grows with
cores up to the fragment count; on one core the parallel plan pays a small
overhead; expensive per-row expressions raise the chosen degree.
"""

import pytest

from repro.sim import MachineModel, simulate_plan
from repro.sim.metrics import Recorder
from repro.tde.exec import PExchange
from repro.tde.optimizer.parallel import PlannerOptions
from tests.conftest import build_flights_engine

from .conftest import record

ENGINE = build_flights_engine(n=200_000, max_dop=8, min_work_per_fraction=16_000)

#: A cheap pipeline and an expensive one (string manipulation per row —
#: the cost-profile case of paper 4.2.2).
CHEAP = '(aggregate () ((n (count))) (select (> delay 20) (scan "Extract.flights")))'
EXPENSIVE = (
    '(aggregate () ((n (count))) (select (and (> delay 20)'
    ' (> (sqrt (* delay delay)) 19.9)) (scan "Extract.flights")))'
)


def _plans(query: str):
    serial = ENGINE.plan(query, options=PlannerOptions(max_dop=1))
    parallel = ENGINE.plan(
        query, options=PlannerOptions(max_dop=8, min_work_per_fraction=16_000)
    )
    return serial, parallel


def test_e8_parallel_plans(benchmark):
    recorder = Recorder(
        "E8: flow-pipeline parallel plans (200k rows, virtual time)",
        columns=["pipeline", "cores", "serial_ms", "parallel_ms", "speedup"],
    )
    curves = {}
    for label, query in (("cheap filter", CHEAP), ("costly expression", EXPENSIVE)):
        serial_plan, parallel_plan = _plans(query)
        speedups = []
        for cores in (1, 2, 4, 8):
            machine = MachineModel(cores=cores)
            s = simulate_plan(serial_plan, machine).elapsed_s
            p = simulate_plan(parallel_plan, machine).elapsed_s
            recorder.add(label, cores, s * 1000, p * 1000, s / p)
            speedups.append(s / p)
        curves[label] = speedups
        # Correctness: both plans return identical answers (real runtime).
        from repro.tde.exec.physical import ExecContext, execute_to_table

        assert execute_to_table(serial_plan, ExecContext()).approx_equals(
            execute_to_table(parallel_plan, ExecContext()), ordered=False
        )
    record("e8_parallel_plans", recorder)

    for label, speedups in curves.items():
        assert speedups[0] < 1.05  # one core: parallelism cannot win
        assert speedups == sorted(speedups)  # monotone in cores
        assert speedups[-1] > 2.5, label

    # The cost profile drives the degree decision: a cheap pipeline over a
    # small table stays serial while a costly one parallelizes.
    small = build_flights_engine(n=8_000, max_dop=8, min_work_per_fraction=16_000)
    cheap_small = small.plan(CHEAP)
    costly_small = small.plan(EXPENSIVE)
    cheap_deg = max((n.degree for n in cheap_small.walk() if isinstance(n, PExchange)), default=1)
    costly_deg = max((n.degree for n in costly_small.walk() if isinstance(n, PExchange)), default=1)
    assert costly_deg > cheap_deg

    _serial, parallel_plan = _plans(CHEAP)
    benchmark(lambda: simulate_plan(parallel_plan, MachineModel(cores=8)).elapsed_s)
