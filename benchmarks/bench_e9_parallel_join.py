"""E9 (Figure 4 of §4.2): the parallel join plan.

"The left sub-tree of the join participates in the main parallelism. The
right sub-tree forms a separate and independent parallel unit, and the
resulting table is shared between threads. A single hash table is built
from the shared table and then shared for every left-hand block to probe."

Expected shape: the probe side scales with cores while the (small) shared
build is paid once; plan structure contains exactly one SharedTable under
N join fragments.
"""

import pytest

from repro.sim import MachineModel, simulate_plan
from repro.sim.metrics import Recorder
from repro.tde.exec import PExchange, PHashJoin, SharedBuild
from repro.tde.exec.physical import ExecContext, execute_to_table
from repro.tde.optimizer.parallel import PlannerOptions
from tests.conftest import build_flights_engine

from .conftest import record

ENGINE = build_flights_engine(n=200_000, max_dop=8, min_work_per_fraction=16_000)

QUERY = (
    '(aggregate (name) ((n (count)) (s (sum delay)))'
    ' (join inner ((carrier_id id)) (scan "Extract.flights") (scan "Extract.carriers")))'
)


def test_e9_parallel_join(benchmark):
    serial = ENGINE.plan(QUERY, options=PlannerOptions(max_dop=1))
    parallel = ENGINE.plan(
        QUERY, options=PlannerOptions(max_dop=8, min_work_per_fraction=16_000)
    )

    # Figure-4 structure: N fragments each probing one shared build.
    joins = [n for n in parallel.walk() if isinstance(n, PHashJoin)]
    shared = {id(j.build_source) for j in joins if isinstance(j.build_source, SharedBuild)}
    assert len(joins) >= 2
    assert len(shared) == 1  # one hash table shared by every fragment

    recorder = Recorder(
        "E9: parallel join, shared build (200k ⋈ 8, virtual time)",
        columns=["cores", "serial_ms", "parallel_ms", "speedup"],
    )
    speedups = []
    for cores in (1, 2, 4, 8):
        machine = MachineModel(cores=cores)
        s = simulate_plan(serial, machine).elapsed_s
        p = simulate_plan(parallel, machine).elapsed_s
        recorder.add(cores, s * 1000, p * 1000, s / p)
        speedups.append(s / p)
    record("e9_parallel_join", recorder)

    assert speedups[-1] > 3.0
    assert speedups == sorted(speedups)
    assert execute_to_table(serial, ExecContext()).approx_equals(
        execute_to_table(parallel, ExecContext()), ordered=False, rel=1e-7, abs_tol=1e-6
    )

    benchmark(lambda: simulate_plan(parallel, MachineModel(cores=8)).elapsed_s)
