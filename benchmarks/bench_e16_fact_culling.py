"""E16 (§4.1.2): fact-table culling for domain queries.

"The TDE optimizer is specially optimized for interactive analysis ...
removal of the fact table from a join is critical for performance of
domain queries, frequently sent by Tableau."

Domain queries (quick-filter domains: DISTINCT dim.column over the star
join) are measured with the rewrite on and off, in real wall time,
across fact-table sizes. Expected shape: with culling the latency is flat
(dimension-sized); without it the latency grows with the fact table —
the gap widening to orders of magnitude.
"""

import pytest

from repro.sim.metrics import Recorder, time_call
from repro.tde.tql.plan import Join, TableScan
from tests.conftest import build_flights_engine

from .conftest import record

DOMAIN_QUERY = (
    '(distinct (name) (join inner ((carrier_id id))'
    ' (scan "Extract.flights") (scan "Extract.carriers")))'
)

SIZES = (20_000, 100_000, 400_000)


def test_e16_fact_culling(benchmark):
    recorder = Recorder(
        "E16: fact-table culling for domain queries (real time)",
        columns=["fact_rows", "culled_ms", "unculled_ms", "speedup"],
    )
    gaps = []
    last_engine = None
    for n in SIZES:
        engine = build_flights_engine(n=n, max_dop=1)
        last_engine = engine
        culled_plan = engine.rewrite(DOMAIN_QUERY)
        assert isinstance(culled_plan.child, TableScan)  # join removed
        t_culled, culled = time_call(lambda: engine.query(DOMAIN_QUERY), repeat=3)
        t_raw, raw = time_call(lambda: engine.query_naive(DOMAIN_QUERY), repeat=3)
        assert isinstance(engine.parse(DOMAIN_QUERY).child, Join)
        assert culled.equals_unordered(raw)
        recorder.add(n, t_culled * 1000, t_raw * 1000, t_raw / t_culled)
        gaps.append(t_raw / t_culled)
    record("e16_fact_culling", recorder)

    # The culled query is fact-size independent: the gap widens with n.
    assert gaps[-1] > gaps[0]
    assert gaps[-1] > 10.0  # "critical for performance"

    benchmark(lambda: last_engine.query(DOMAIN_QUERY))
