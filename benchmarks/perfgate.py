"""Perf-regression gate over the ``BENCH_<exp>.json`` artifacts.

Compares freshly produced ``benchmarks/_results/BENCH_*.json`` files
against the committed baselines in ``benchmarks/_baselines/`` and fails
(non-zero exit) when a *time-like* metric drifted past its tolerance.

Only time-like columns gate — column names ending in ``_ms``/``_s`` or
containing ``elapsed``/``time``, where higher is unambiguously worse.
Everything else (counts such as ``remote`` queries or cache hits) is
reported as informational drift but never fails the gate, because their
direction-of-badness depends on the experiment.

Tolerances are *relative* and per experiment, grouped into profiles:

- ``default`` — for a quiet local machine; fairly tight.
- ``ci``      — for noisy shared runners; generous, meant to catch
  order-of-magnitude regressions (a cache hit falling back to the cold
  path) rather than scheduler jitter.

Usage::

    python benchmarks/perfgate.py                      # gate against baselines
    python benchmarks/perfgate.py --tolerance-profile ci
    python benchmarks/perfgate.py --warn-only          # report, exit 0
    python benchmarks/perfgate.py --update             # bless current results
    python benchmarks/perfgate.py --self-test          # verify the gate trips

``--self-test`` fabricates a >tolerance slowdown from the baselines
themselves and checks the gate detects it — so CI can hard-fail when the
gate goes blind even while treating real drift as warn-only.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import shutil
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

BENCH_DIR = Path(__file__).resolve().parent
RESULTS_DIR = BENCH_DIR / "_results"
BASELINES_DIR = BENCH_DIR / "_baselines"

#: Relative tolerance on time-like metrics, by profile. A fresh value of
#: ``baseline * (1 + tol)`` or more is a regression. Per-experiment
#: overrides exist because some experiments measure sub-millisecond local
#: paths (noisy) while others measure modeled backend times (stable).
TOLERANCE_PROFILES: dict[str, dict[str, float]] = {
    "default": {
        "*": 0.75,
        # Cache-hit rows sit in the 0.1-1ms range where interpreter noise
        # is proportionally large; the signal we guard is "hit became a
        # cold path", a >10x move.
        "e6_query_caching": 1.5,
        "e6b_interaction_trace": 1.5,
        # The telemetry-overhead arms time sub-millisecond request paths
        # twice (telemetry off/on); proportional noise is large, and the
        # benchmark's own overhead-ratio assertion is the real guard.
        "e21_telemetry": 1.5,
        # E22 gates machine-independent overhead *ratios*; absolute walls
        # are informational. The off-arm ratio hovers around 1.0 with
        # ±10% run-to-run noise, so the gate only catches gross drift —
        # the hard bounds (off <= 1.1x, on <= 1.5x) are asserted inside
        # the benchmark itself and fail the run regardless of tolerance.
        "e22_trace_attribution": 0.25,
        # The warm-plan rows time a sub-millisecond cache lookup where
        # interpreter noise is proportionally large; the benchmark's own
        # hard assertions (>=2x fused, every repeat a hit, warm < cold)
        # are the real guard, the gate just catches gross drift.
        "e23_kernel_fusion": 1.5,
        # The steady/recovered windows time sub-millisecond tier-served
        # loads (proportionally noisy), and every 20-request window's
        # p95 is its max — one injected latency spike or backend refetch
        # lands in it whole. The real guards are the benchmark's hard
        # assertions (zero post-kill backend queries at R=2, no keys
        # lost at join, bounded-window recovery); the gate only catches
        # a warm serve degenerating into a cold path.
        "e24_elastic_cache": 1.5,
    },
    "ci": {
        "*": 3.0,
        "e6_query_caching": 5.0,
        "e6b_interaction_trace": 5.0,
        "e21_telemetry": 5.0,
        "e22_trace_attribution": 5.0,
        "e23_kernel_fusion": 5.0,
        "e24_elastic_cache": 5.0,
    },
}

#: Below this many milliseconds (or the equivalent in seconds) a metric
#: is too small to gate reliably; drift is reported as info only.
MIN_GATED_MS = 0.05


@dataclass
class Drift:
    experiment: str
    metric: str
    baseline: float
    current: float
    status: str  # "ok" | "regression" | "improved" | "info" | "missing"

    @property
    def rel(self) -> float | None:
        if self.baseline == 0:
            return None
        return (self.current - self.baseline) / self.baseline


def is_time_column(name: str) -> bool:
    lowered = name.lower()
    return (
        lowered.endswith("_ms")
        or lowered.endswith("_s")
        or "elapsed" in lowered
        or "time" in lowered
    )


def iter_metrics(payload: dict[str, Any]) -> Iterator[tuple[str, str, float]]:
    """Yield ``(metric_name, column, value)`` for every numeric cell.

    The metric name is ``<row label>/<column>`` — stable across runs
    because experiments emit fixed row labels.
    """
    series = payload.get("series") or {}
    columns = series.get("columns") or []
    for row in series.get("rows") or []:
        label = str(row[0]) if row else "?"
        for col, value in zip(columns[1:], row[1:]):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            yield f"{label}/{col}", col, float(value)


def metric_is_gated(column: str, baseline: float) -> bool:
    if not is_time_column(column):
        return False
    floor = MIN_GATED_MS if column.lower().endswith("_ms") else MIN_GATED_MS / 1000.0
    return baseline >= floor


def load(path: Path) -> dict[str, Any]:
    return json.loads(path.read_text())


def experiment_name(path: Path) -> str:
    return path.stem[len("BENCH_"):]


def key_metric(payload: dict[str, Any]) -> tuple[str, float] | None:
    """The experiment's headline number: its largest time-like cell."""
    best: tuple[str, float] | None = None
    for name, col, value in iter_metrics(payload):
        if is_time_column(col) and (best is None or value > best[1]):
            best = (name, value)
    if best is None:
        for name, _col, value in iter_metrics(payload):
            return name, value
    return best


def compare(
    experiment: str,
    baseline: dict[str, Any],
    current: dict[str, Any],
    tolerance: float,
) -> list[Drift]:
    base_metrics = {name: (col, v) for name, col, v in iter_metrics(baseline)}
    cur_metrics = {name: (col, v) for name, col, v in iter_metrics(current)}
    drifts: list[Drift] = []
    for name, (col, base_v) in base_metrics.items():
        if name not in cur_metrics:
            drifts.append(Drift(experiment, name, base_v, float("nan"), "missing"))
            continue
        cur_v = cur_metrics[name][1]
        if not metric_is_gated(col, base_v):
            status = "info"
        elif cur_v > base_v * (1.0 + tolerance):
            status = "regression"
        elif cur_v < base_v / (1.0 + tolerance):
            status = "improved"
        else:
            status = "ok"
        drifts.append(Drift(experiment, name, base_v, cur_v, status))
    return drifts


def tolerance_for(experiment: str, profile: dict[str, float]) -> float:
    """Resolve ``experiment``'s relative tolerance within ``profile``.

    Resolution order: exact entry, then glob entries (``fnmatch``), then
    the ``"*"`` wildcard. A profile that covers neither is a
    configuration error — gating against a tolerance nobody chose is how
    regressions slip through — so this raises ``KeyError`` with an
    actionable message instead of guessing.
    """
    if experiment in profile:
        return profile[experiment]
    for key, tol in profile.items():
        if key != "*" and fnmatch.fnmatch(experiment, key):
            return tol
    if "*" in profile:
        return profile["*"]
    raise KeyError(
        f"experiment {experiment!r} has no tolerance entry and the profile "
        f"defines no '*' wildcard; add it to TOLERANCE_PROFILES (known "
        f"entries: {sorted(profile)})"
    )


def render_table(drifts: list[Drift]) -> str:
    headers = ("experiment", "metric", "baseline", "current", "delta", "status")
    rows = [headers]
    for d in drifts:
        delta = "n/a" if d.rel is None or d.current != d.current else f"{d.rel:+.1%}"
        cur = "missing" if d.current != d.current else f"{d.current:.4g}"
        rows.append(
            (d.experiment, d.metric, f"{d.baseline:.4g}", cur, delta, d.status)
        )
    widths = [max(len(r[i]) for r in rows) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def gate(
    results_dir: Path,
    baselines_dir: Path,
    profile: dict[str, float],
    pattern: str,
) -> tuple[list[Drift], list[str]]:
    """Compare every baselined experiment; return (drifts, problems)."""
    drifts: list[Drift] = []
    problems: list[str] = []
    baselines = sorted(baselines_dir.glob("BENCH_*.json"))
    if not baselines:
        problems.append(f"no baselines under {baselines_dir}")
    for base_path in baselines:
        exp = experiment_name(base_path)
        if not fnmatch.fnmatch(exp, pattern):
            continue
        cur_path = results_dir / base_path.name
        if not cur_path.exists():
            problems.append(f"{exp}: no fresh result at {cur_path}")
            continue
        try:
            tolerance = tolerance_for(exp, profile)
        except KeyError as exc:
            problems.append(str(exc.args[0]))
            continue
        drifts.extend(compare(exp, load(base_path), load(cur_path), tolerance))
    # Fresh results whose experiment the profile cannot price are a
    # configuration error even before a baseline exists for them.
    baselined = {experiment_name(p) for p in baselines}
    for cur_path in sorted(results_dir.glob("BENCH_*.json")):
        exp = experiment_name(cur_path)
        if exp in baselined or not fnmatch.fnmatch(exp, pattern):
            continue
        try:
            tolerance_for(exp, profile)
        except KeyError as exc:
            problems.append(str(exc.args[0]))
    return drifts, problems


def update_baselines(results_dir: Path, baselines_dir: Path, pattern: str) -> int:
    baselines_dir.mkdir(exist_ok=True)
    copied = 0
    for path in sorted(results_dir.glob("BENCH_*.json")):
        if fnmatch.fnmatch(experiment_name(path), pattern):
            shutil.copy(path, baselines_dir / path.name)
            copied += 1
    return copied


def self_test(baselines_dir: Path, profile: dict[str, float]) -> int:
    """Inject a synthetic slowdown; the gate must catch it (exit 0 if so)."""
    baselines = sorted(baselines_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"perfgate self-test: no baselines under {baselines_dir}", file=sys.stderr)
        return 1
    failures = 0
    for base_path in baselines:
        exp = experiment_name(base_path)
        payload = load(base_path)
        tol = tolerance_for(exp, profile)
        slowed = json.loads(json.dumps(payload))
        factor = 1.0 + tol * 4.0
        rows = (slowed.get("series") or {}).get("rows") or []
        columns = (slowed.get("series") or {}).get("columns") or []
        for row in rows:
            for i, col in enumerate(columns[1:], start=1):
                if is_time_column(col) and isinstance(row[i], (int, float)):
                    row[i] = row[i] * factor
        drifts = compare(exp, payload, slowed, tol)
        gated = [d for d in drifts if d.status == "regression"]
        had_gateable = any(
            metric_is_gated(col, v) for _n, col, v in iter_metrics(payload)
        )
        if had_gateable and not gated:
            print(f"perfgate self-test FAILED: {exp} slowdown x{factor:.1f} undetected")
            failures += 1
    if failures:
        return 1
    print(f"perfgate self-test ok: synthetic slowdowns detected across "
          f"{len(baselines)} baseline(s)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", type=Path, default=RESULTS_DIR)
    parser.add_argument("--baselines", type=Path, default=BASELINES_DIR)
    parser.add_argument(
        "--tolerance-profile",
        choices=sorted(TOLERANCE_PROFILES),
        default="default",
    )
    parser.add_argument(
        "--filter", default="*", help="gate only experiments matching this glob"
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report drift but always exit 0 (for noisy shared runners)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy current results into the baseline directory and exit",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the gate trips on a synthetic slowdown",
    )
    parser.add_argument("--json", action="store_true", help="emit drifts as JSON")
    args = parser.parse_args(argv)
    profile = TOLERANCE_PROFILES[args.tolerance_profile]

    if args.update:
        n = update_baselines(args.results, args.baselines, args.filter)
        print(f"blessed {n} baseline(s) into {args.baselines}")
        return 0
    if args.self_test:
        return self_test(args.baselines, profile)

    drifts, problems = gate(args.results, args.baselines, profile, args.filter)
    if args.json:
        print(json.dumps([d.__dict__ for d in drifts], indent=2))
    elif drifts:
        print(render_table(drifts))
    for problem in problems:
        print(f"perfgate: {problem}", file=sys.stderr)
    regressions = [d for d in drifts if d.status in ("regression", "missing")]
    for d in regressions:
        rel = "" if d.rel is None or d.current != d.current else f" ({d.rel:+.1%})"
        print(
            f"perfgate: REGRESSION {d.experiment} {d.metric}: "
            f"{d.baseline:.4g} -> {d.current:.4g}{rel}",
            file=sys.stderr,
        )
    failed = bool(regressions or problems)
    if failed and args.warn_only:
        print("perfgate: warn-only mode, exiting 0", file=sys.stderr)
        return 0
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
