"""E19 (ablation; §7): data partitioning in a distributed TDE.

"we are considering using data partitioning in a distributed
architecture" — the sharded cluster reuses 4.2.3's local/global
aggregation across shared-nothing nodes. Two shapes to verify:

* aggregation pushdown keeps the shuffle tiny: partial groups travel to
  the coordinator instead of detail rows, independent of node count;
* per-node work drops ~linearly with the shard count (virtual time:
  each node scans 1/N of the fact table).
"""

import pytest

from repro.server import ShardedTdeCluster
from repro.sim import MachineModel, simulate_plan
from repro.sim.metrics import Recorder
from repro.tde.optimizer.parallel import PlannerOptions
from repro.workloads import generate_flights

from .conftest import record

ROWS = 120_000
DATASET = generate_flights(ROWS, seed=47)

AGG_QUERY = (
    '(aggregate (carrier_id market_id) ((n (count)) (a (avg dep_delay)))'
    ' (scan "Extract.flights"))'
)


def test_e19_sharded_tde(benchmark):
    recorder = Recorder(
        "E19: sharded TDE scatter-gather (120k-row fact)",
        columns=["nodes", "rows_shuffled", "detail_alternative", "per_node_virtual_ms"],
    )
    reference = None
    shuffle_sizes = []
    per_node_times = []
    clusters = {}
    for n_nodes in (1, 2, 4, 8):
        cluster = ShardedTdeCluster(
            n_nodes,
            DATASET.load_into_engine,
            "Extract.flights",
            options=PlannerOptions(max_dop=1),
        )
        clusters[n_nodes] = cluster
        result = cluster.query(AGG_QUERY)
        if reference is None:
            reference = result
        else:
            assert result.approx_equals(reference, ordered=False, rel=1e-7, abs_tol=1e-7)
        # Shuffle volume: partial groups per shard (bounded by group count).
        partials = result.n_rows * n_nodes  # upper bound: every group on every shard
        machine = MachineModel(cores=1)
        node_times = []
        for node in cluster.nodes:
            plan = node.plan(AGG_QUERY)
            node_times.append(simulate_plan(plan, machine).elapsed_s)
        slowest = max(node_times) * 1000
        recorder.add(n_nodes, partials, ROWS, slowest)
        shuffle_sizes.append(partials)
        per_node_times.append(slowest)
    record("e19_sharded_tde", recorder)

    # Pushdown: even at 8 nodes the shuffle is orders of magnitude under
    # shipping the detail rows.
    assert max(shuffle_sizes) < ROWS / 50
    # Per-node virtual work drops ~linearly with the shard count.
    assert per_node_times[0] / per_node_times[-1] > 5.0
    assert per_node_times == sorted(per_node_times, reverse=True)

    cluster = clusters[4]
    result = benchmark.pedantic(lambda: cluster.query(AGG_QUERY), rounds=3, iterations=1)
    assert result.n_rows == reference.n_rows
