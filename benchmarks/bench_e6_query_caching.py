"""E6 (§3.2): the two-level query cache.

Expected shape, per the paper's Fig-1 discussion: a cold query pays the
full backend round trip; a literal hit skips the backend but still
post-processes; an intelligent subsumption hit (user deselects filter
values) costs local work only — orders of magnitude under the cold path.
An interaction *trace* then shows the hit-rate the dashboard scenario
produces.
"""

import pytest

from repro import obs
from repro.core.pipeline import PipelineOptions, QueryPipeline
from repro.queries import CategoricalFilter
from repro.sim.metrics import Recorder, time_call

from .conftest import AVG_DELAY, COUNT, make_backend, record, spec

ALL_MARKETS = tuple(range(12))


def _base_spec(markets=ALL_MARKETS):
    return spec(
        dimensions=("carrier_name",),
        measures=(("n", COUNT), ("a", AVG_DELAY)),
        filters=(CategoricalFilter("market_id", markets),),
    )


def test_e6_query_caching(benchmark, dataset, model):
    _db, source = make_backend(dataset)
    pipeline = QueryPipeline(source, model)

    cold_s, _ = time_call(lambda: pipeline.run_batch([_base_spec()]), repeat=1)
    # Identical query again: intelligent exact hit.
    exact_s, exact = time_call(lambda: pipeline.run_batch([_base_spec()]), repeat=3)
    # Narrower selection: subsumption hit with local filtering/roll-up.
    narrowed = _base_spec(markets=(0, 2, 5))
    subsume_s, subsumed = time_call(lambda: pipeline.run_batch([narrowed]), repeat=3)
    # Literal-cache-only configuration for the literal row.
    lit_pipeline = QueryPipeline(
        source,
        model,
        options=PipelineOptions(enable_intelligent_cache=False, enrich_for_reuse=False),
    )
    lit_pipeline.run_batch([_base_spec()])
    literal_s, literal = time_call(lambda: lit_pipeline.run_batch([_base_spec()]), repeat=3)

    recorder = Recorder(
        "E6: cache level vs response time",
        columns=["path", "remote", "elapsed_ms"],
    )
    recorder.add("cold (backend)", 1, cold_s * 1000)
    recorder.add("literal hit", 0, literal_s * 1000)
    recorder.add("intelligent exact hit", 0, exact_s * 1000)
    recorder.add("intelligent subsumption hit", 0, subsume_s * 1000)
    # Traced cold + subsumption-hit pair for the per-phase JSON summary.
    _db2, source2 = make_backend(dataset, name="warehouse-traced")
    with obs.recording() as rec:
        traced = QueryPipeline(source2, model)
        traced.run_batch([_base_spec()])
        traced.run_batch([_base_spec(markets=(0, 2, 5))])
    record("e6_query_caching", recorder, trace=rec)

    assert exact.remote_queries == 0
    assert subsumed.remote_queries == 0
    assert literal.remote_queries == 0
    assert exact_s < cold_s / 20
    assert subsume_s < cold_s / 5
    assert literal_s < cold_s / 2

    # Interaction trace: initial load + 8 filter changes.
    trace_pipeline = QueryPipeline(source, model)
    selections = [(0, 1, 2), (1, 2), (2,), (0, 1, 2, 3), (3,), (0,), (0, 3), (1,)]
    trace_pipeline.run_batch([_base_spec()])
    remote = 0
    for sel in selections:
        remote += trace_pipeline.run_batch([_base_spec(markets=sel)]).remote_queries
    trace = Recorder("E6b: interaction trace (8 filter changes)", columns=["metric", "value"])
    trace.add("interactions", len(selections))
    trace.add("remote queries", remote)
    stats = trace_pipeline.intelligent_cache.stats
    trace.add("subsumption hits", stats.subsumption_hits)
    record("e6b_interaction_trace", trace)
    assert remote == 0  # "the intelligent cache will be able to filter..."

    result = benchmark(lambda: pipeline.run_batch([_base_spec(markets=(1, 4))]))
    assert result.remote_queries == 0
