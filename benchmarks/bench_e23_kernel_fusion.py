"""E23: the raw-speed pass — fused kernels and the physical-plan cache.

PR 8 attacks the E8–E11 hot path on three coordinated layers: adjacent
Filter/Project/HashAggregate chains collapse into one per-batch
:class:`PFusedPipeline` pass, predicates on dictionary/RLE columns
evaluate in *code space* (once per dictionary entry, once per run), and
compiled physical plans are cached so repeat dashboard queries skip the
whole parse/bind/optimize phase. This experiment measures each layer and
pins the contract that makes them shippable: **the answers are
byte-identical** to the all-off engine.

* **Aggregation throughput** — interleaved arms over the same storage:
  ``fused`` (fusion + code space on) vs ``unfused`` (both off) running
  an E10-style chain (dictionary-string filter feeding a grouped
  aggregate) plus a per-run RLE variant. One loop drives both arms so
  clock drift hits them equally. Hard in-run bound: fused >= 2x on the
  aggregation batch.
* **Warm compile path** — the same query set planned repeatedly against
  a plan-cache-enabled engine and a disabled one (an E1-style warm
  dashboard reload, where the TQL text repeats modulo whitespace and
  literal side). Hard in-run bounds: every repeat plan is a cache hit
  and the warm path is measurably faster than compiling from scratch.

The committed baseline's time columns put both paths under perfgate;
the speedup columns (``speedup_x``) are ratios — machine-independent,
informational for the gate, asserted hard in-run.
"""

from __future__ import annotations

import random
import time

import numpy as np

from repro.tde.engine import DataEngine
from repro.tde.optimizer.parallel import PlannerOptions
from repro.sim.metrics import Recorder

from .conftest import record

DATASET_ROWS = 150_000
AGG_REPS = 12
PLAN_REPS = 30
MIN_AGG_SPEEDUP = 2.0

REGIONS = ["east", "west", "north", "south", "central"]
STATUSES = ["ok", "late", "cancelled"]

#: All three raw-speed layers off — the reference arm. ``plan_cache_size``
#: rides in the options fingerprint, so these plans also occupy distinct
#: cache slots and never shadow the fused plans.
UNFUSED = PlannerOptions(
    max_dop=1,
    enable_parallel=False,
    enable_pipeline_fusion=False,
    enable_code_space=False,
    plan_cache_size=0,
)

#: The E10-style hot chain: a dictionary-string filter feeding grouped
#: aggregates, plus an RLE-ranged global aggregate (the per-run path) and
#: a projection chain (the non-aggregate fusion shape).
AGG_QUERIES = [
    "(aggregate (region) ((n (count)) (s (sum amount)))"
    ' (select (and (<> status "cancelled") (>= day 60)) (scan "Extract.sales")))',
    "(aggregate (status) ((a (avg amount)) (q (sum qty)))"
    ' (select (in region (list "east" "west")) (scan "Extract.sales")))',
    "(aggregate () ((lo (min amount)) (hi (max amount)) (n (count)))"
    " (select (and (>= day 100) (< day 240)) (scan \"Extract.sales\")))",
    "(project ((a2 (* amount 2.0)) (r region))"
    ' (select (= status "late") (scan "Extract.sales")))',
]

#: Warm-reload texts: the same dashboard queries re-issued with literal
#: variation — each distinct literal is its own cache entry, re-served on
#: every subsequent pass.
PLAN_QUERIES = [
    "(aggregate (region) ((n (count)) (s (sum amount)))"
    f" (select (>= day {d}) (scan \"Extract.sales\")))"
    for d in range(8)
]


def _build_dataset() -> dict:
    rng = random.Random(23)
    n = DATASET_ROWS
    return {
        "day": sorted(rng.randrange(0, 365) for _ in range(n)),
        "region": [rng.choice(REGIONS) for _ in range(n)],
        "status": [rng.choice(STATUSES) for _ in range(n)],
        "amount": [round(rng.gauss(50.0, 25.0), 3) for _ in range(n)],
        "qty": [rng.randrange(0, 100) for _ in range(n)],
    }


def _make_engine(name: str, *, plan_cache_size: int = 64) -> DataEngine:
    engine = DataEngine(
        name,
        options=PlannerOptions(
            max_dop=1, enable_parallel=False, plan_cache_size=plan_cache_size
        ),
    )
    engine.load_pydict(
        "Extract.sales", _build_dataset(), sort_keys=["day"], encodings={"day": "rle"}
    )
    return engine


def assert_byte_identical(got, want, *, context: str) -> None:
    """Same names, logical types, numpy dtypes, null masks, values, order."""
    assert got.column_names == want.column_names, context
    assert got.schema() == want.schema(), context
    assert got.n_rows == want.n_rows, context
    for name in got.column_names:
        a, b = got.column(name), want.column(name)
        av, bv = a.storage_values(), b.storage_values()
        assert av.dtype == bv.dtype, f"{context}: {name} dtype"
        am = a.null_mask if a.null_mask is not None else np.zeros(len(av), bool)
        bm = b.null_mask if b.null_mask is not None else np.zeros(len(bv), bool)
        assert np.array_equal(am, bm), f"{context}: {name} null mask"
        assert np.array_equal(av[~am], bv[~bm]), f"{context}: {name} values"


def test_e23_kernel_fusion(benchmark):
    engine = _make_engine("e23")

    # Every aggregation query must actually take the fused operator —
    # otherwise the throughput arm compares unfused against unfused.
    for q in AGG_QUERIES:
        explain = engine.explain(q)
        assert "FusedPipeline" in explain, f"plan did not fuse:\n{explain}"

    # Byte-identity before timing: the raw-speed pass changes nothing.
    for i, q in enumerate(AGG_QUERIES):
        assert_byte_identical(
            engine.query(q),
            engine.query(q, options=UNFUSED),
            context=f"agg query {i}",
        )

    # ------------------------------------------------------------------ #
    # Aggregation throughput: interleaved fused vs unfused execution
    # ------------------------------------------------------------------ #
    fused_s = 0.0
    unfused_s = 0.0
    for _ in range(AGG_REPS):
        for q in AGG_QUERIES:
            started = time.perf_counter()
            engine.query(q)
            fused_s += time.perf_counter() - started
            started = time.perf_counter()
            engine.query(q, options=UNFUSED)
            unfused_s += time.perf_counter() - started
    n_queries = AGG_REPS * len(AGG_QUERIES)
    agg_speedup = unfused_s / max(fused_s, 1e-12)
    assert agg_speedup >= MIN_AGG_SPEEDUP, (
        f"fused aggregation speedup {agg_speedup:.2f}x < {MIN_AGG_SPEEDUP}x"
    )

    # ------------------------------------------------------------------ #
    # Warm compile path: plan cache on vs off
    # ------------------------------------------------------------------ #
    warm_engine = _make_engine("e23-warm")
    cold_engine = _make_engine("e23-cold", plan_cache_size=0)
    assert not cold_engine.plan_cache.enabled
    for q in PLAN_QUERIES:  # prime: the first compile is a miss by design
        warm_engine.plan(q)
        cold_engine.plan(q)
    hits_before = warm_engine.plan_cache.stats()["hits"]
    warm_s = 0.0
    cold_s = 0.0
    for _ in range(PLAN_REPS):
        for q in PLAN_QUERIES:
            started = time.perf_counter()
            warm_engine.plan(q)
            warm_s += time.perf_counter() - started
            started = time.perf_counter()
            cold_engine.plan(q)
            cold_s += time.perf_counter() - started
    n_plans = PLAN_REPS * len(PLAN_QUERIES)
    warm_stats = warm_engine.plan_cache.stats()
    assert warm_stats["hits"] - hits_before == n_plans, (
        "every repeat plan must be served from the cache"
    )
    assert cold_engine.plan_cache.stats()["hits"] == 0
    assert warm_s < cold_s, (
        f"cached planning ({warm_s:.4f}s) must beat recompiling ({cold_s:.4f}s)"
    )
    plan_speedup = cold_s / max(warm_s, 1e-12)

    # Normalized variants of a primed query hit the same entry: the warm
    # path also covers the dashboard's whitespace/literal-side jitter.
    variant = PLAN_QUERIES[0].replace("(>= day 0)", "(<= 0 day)")
    hits = warm_engine.plan_cache.stats()["hits"]
    warm_engine.plan(variant)
    assert warm_engine.plan_cache.stats()["hits"] == hits + 1

    recorder = Recorder(
        "E23: fused kernels (exec ms/query) and plan cache (compile ms/plan)",
        columns=[
            "arm", "reps", "per_query_ms", "total_ms", "speedup_x", "cache_hits",
        ],
    )
    recorder.add(
        "agg_fused", n_queries, fused_s * 1000 / n_queries, fused_s * 1000,
        agg_speedup, 0,
    )
    recorder.add(
        "agg_unfused", n_queries, unfused_s * 1000 / n_queries, unfused_s * 1000,
        1.0, 0,
    )
    recorder.add(
        "plan_warm", n_plans, warm_s * 1000 / n_plans, warm_s * 1000,
        plan_speedup, warm_stats["hits"],
    )
    recorder.add(
        "plan_cold", n_plans, cold_s * 1000 / n_plans, cold_s * 1000,
        1.0, 0,
    )
    record(
        "e23_kernel_fusion",
        recorder,
        trace={
            "agg_speedup_x": agg_speedup,
            "plan_speedup_x": plan_speedup,
            "plan_cache": warm_stats,
            "queries": {"aggregation": AGG_QUERIES, "warm_plan": PLAN_QUERIES},
        },
    )

    # Representative timed path: one fused aggregation query, plan cached.
    benchmark(lambda: engine.query(AGG_QUERIES[0]))
