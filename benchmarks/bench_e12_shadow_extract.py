"""E12 (§4.4): shadow extracts for text files.

"Shadow extracts have been introduced to speed up the query execution
... all queries are executed by the TDE instead of parsing the entire
file each time. This greatly improves the query execution time, however,
we need to pay a one-time cost of creating the temporary database."

Real wall time: the Jet-like path re-parses the CSV per query; the shadow
extract parses once. Expected shape: the legacy path scales linearly with
query count, the extract path is flat after its one-time cost, and the
crossover sits at a small number of queries. Persisting the extract
removes even the first-load cost on a second session.
"""

import random

import pytest

from repro.connectors import (
    FileDataSource,
    JetLikeDataSource,
    ShadowExtractStore,
    write_text_file,
)
from repro.sim.metrics import Recorder, time_call

from .conftest import record

N_ROWS = 30_000

QUERIES = [
    '(aggregate (day) ((n (count))) (scan "Extract.data"))',
    '(aggregate () ((s (sum delay))) (select (> delay 10.0) (scan "Extract.data")))',
    '(topn 3 ((n desc)) (aggregate (carrier) ((n (count))) (scan "Extract.data")))',
    '(aggregate (carrier) ((a (avg delay))) (scan "Extract.data"))',
    '(distinct (carrier) (scan "Extract.data"))',
    '(aggregate () ((n (count))) (select (= day 5) (scan "Extract.data")))',
]


@pytest.fixture(scope="module")
def csv_path(tmp_path_factory):
    rng = random.Random(4)
    path = tmp_path_factory.mktemp("shadow") / "flights.csv"
    write_text_file(
        path,
        {
            "day": [rng.randrange(30) for _ in range(N_ROWS)],
            "carrier": [rng.choice("ABCDEF") for _ in range(N_ROWS)],
            "delay": [round(rng.gauss(10, 15), 2) for _ in range(N_ROWS)],
        },
    )
    return path


def _run_queries(source, k: int):
    conn = source.connect()
    out = None
    for i in range(k):
        out = conn.execute(QUERIES[i % len(QUERIES)])
    return out


def test_e12_shadow_extract(benchmark, csv_path, tmp_path):
    recorder = Recorder(
        "E12: shadow extract vs per-query parsing (30k-row CSV, real time)",
        columns=["queries", "jet_ms", "shadow_ms", "speedup"],
    )
    shapes = []
    for k in (1, 2, 4, 8):
        jet_s, jet_out = time_call(lambda: _run_queries(JetLikeDataSource(csv_path), k), repeat=1)
        shadow_s, shadow_out = time_call(
            lambda: _run_queries(FileDataSource(csv_path), k), repeat=1
        )
        assert jet_out.approx_equals(shadow_out, ordered=False)
        recorder.add(k, jet_s * 1000, shadow_s * 1000, jet_s / shadow_s)
        shapes.append((k, jet_s, shadow_s))

    # Persisted extracts: the second session skips even the one-time cost.
    store = ShadowExtractStore(tmp_path / "extracts")
    first_s, _ = time_call(lambda: _run_queries(FileDataSource(csv_path, store=store), 1), repeat=1)
    second_s, _ = time_call(lambda: _run_queries(FileDataSource(csv_path, store=store), 1), repeat=1)
    recorder.add("persisted reload", first_s * 1000, second_s * 1000, first_s / second_s)
    record("e12_shadow_extract", recorder)

    # Shape: the advantage grows with the number of queries...
    ratios = [jet / shadow for _k, jet, shadow in shapes]
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 3.0  # "greatly improves the query execution time"
    # ...and the crossover comes within a handful of queries.
    assert shapes[1][1] > shapes[1][2]

    source = FileDataSource(csv_path)
    _run_queries(source, 1)  # pay the one-time cost outside the timer
    benchmark(lambda: _run_queries(source, len(QUERIES)))
