"""E11 (§4.3): leveraging RLE encoding — the IndexTable range-skipping scan.

"combining with the operator pushdown allows the optimizer to push a
filter condition on the run length encoded column to the IndexTable ...
This join then significantly reduces the output of the TableScan."

This experiment measures *real wall time* (range skipping genuinely reads
less data) across a selectivity sweep on the RLE-sorted date column.
Expected shape: the indexed scan wins decisively at low selectivity, the
advantage shrinks as selectivity grows, and the optimizer refuses the
index path beyond its threshold (the paper's "does not always make the
query execution faster" caveat).
"""

import datetime as dt

import pytest

from repro.sim.metrics import Recorder, time_call
from repro.tde.exec import ExecContext, PIndexedRleScan, execute_to_table
from repro.tde.optimizer.parallel import PlannerOptions
from tests.conftest import build_flights_engine

from .conftest import record

ENGINE = build_flights_engine(n=400_000, max_dop=1)

#: (label, date range in days) — selectivity grows with the range.
SWEEPS = [
    ("1 day (~0.3%)", 1),
    ("1 week (~2%)", 7),
    ("1 month (~8%)", 30),
    ("6 months (~50%)", 182),
]


def _query(days: int) -> str:
    start = dt.date(2014, 3, 1)
    end = start + dt.timedelta(days=days)
    return (
        f'(aggregate () ((n (count)) (s (sum delay)))'
        f' (select (and (>= date_ (date "{start}")) (< date_ (date "{end}")))'
        f' (scan "Extract.flights")))'
    )


def test_e11_rle_index_scan(benchmark):
    recorder = Recorder(
        "E11: RLE IndexTable scan vs full scan (400k rows, real time)",
        columns=["selectivity", "indexed", "full_ms", "indexed_ms", "speedup", "rows_scanned"],
    )
    speedups = []
    for label, days in SWEEPS:
        query = _query(days)
        indexed_plan = ENGINE.plan(query)
        full_plan = ENGINE.plan(query, options=PlannerOptions(max_dop=1, enable_rle_index=False))
        uses_index = any(isinstance(n, PIndexedRleScan) for n in indexed_plan.walk())
        ctx = ExecContext()
        t_full, full_result = time_call(lambda: execute_to_table(full_plan, ExecContext()), repeat=3)
        t_idx, idx_result = time_call(lambda: execute_to_table(indexed_plan, ctx), repeat=3)
        assert full_result.approx_equals(idx_result, ordered=False, rel=1e-9, abs_tol=1e-6)
        recorder.add(
            label,
            "yes" if uses_index else "no",
            t_full * 1000,
            t_idx * 1000,
            t_full / t_idx,
            ctx.metrics.rows_scanned // 3,
        )
        speedups.append((days, uses_index, t_full / t_idx))
    record("e11_rle_index_scan", recorder)

    # Selective filters choose (and profit from) the index path...
    assert speedups[0][1] and speedups[0][2] > 3.0
    assert speedups[1][1] and speedups[1][2] > 2.0
    # ...and the advantage shrinks as the range widens.
    assert speedups[1][2] < speedups[0][2] * 1.5 or speedups[2][2] < speedups[1][2]
    # The optimizer declines the index for unselective filters (caveat).
    assert not speedups[-1][1]

    selective = ENGINE.plan(_query(7))
    benchmark(lambda: execute_to_table(selective, ExecContext()))
