"""E14 (§5.2): shared published extracts vs per-workbook copies.

"Instead of 100 workbooks with distinct copies of the same extract, a
single extract is created. Refreshing a single extract daily — rather
than all copies of it — significantly reduces the query load on the
underlying database."

We model a nightly refresh for N workbooks. Embedded: every workbook owns
an extract copy, so each refresh re-extracts from the warehouse (one full
scan each) and stores its own bytes. Published: one shared extract, one
re-extraction. Expected shape: warehouse scan count and storage both drop
by a factor of N.
"""

import pytest

from repro.connectors import TdeDataSource
from repro.server import DataServer
from repro.sim.metrics import Recorder
from repro.tde import DataEngine
from repro.workloads import flights_model

from .conftest import make_backend, record

N_WORKBOOKS = 10


def _extract_from_warehouse(db) -> DataEngine:
    """One extract refresh = full fact scan at the warehouse + a copy."""
    session = db.open_session()
    try:
        fact = session.execute('SELECT * FROM "Extract"."flights"')
    finally:
        session.close()
    engine = DataEngine("extract")
    engine.create_table("Extract.flights", fact)
    return engine


def test_e14_shared_extracts(benchmark, dataset, model):
    from repro.connectors.simdb import ServerProfile

    profile = ServerProfile(work_unit_time_s=2e-8, name="edw")
    db, source = make_backend(dataset, profile, name="edw")

    # Embedded: each workbook refreshes its own copy.
    before = db.stats.queries
    embedded = [_extract_from_warehouse(db) for _ in range(N_WORKBOOKS)]
    embedded_queries = db.stats.queries - before
    embedded_bytes = sum(e.table("Extract.flights").nbytes for e in embedded)

    # Published: one shared extract behind Data Server.
    before = db.stats.queries
    shared_extract = _extract_from_warehouse(db)
    server = DataServer()
    server.publish("faa", model, TdeDataSource(shared_extract))
    server.refresh_extract("faa")
    published_queries = db.stats.queries - before
    published_bytes = shared_extract.table("Extract.flights").nbytes

    recorder = Recorder(
        f"E14: nightly refresh for {N_WORKBOOKS} workbooks",
        columns=["strategy", "warehouse_scans", "extract_bytes"],
    )
    recorder.add("embedded per-workbook extracts", embedded_queries, embedded_bytes)
    recorder.add("published shared extract", published_queries, published_bytes)
    record("e14_shared_extracts", recorder)

    assert embedded_queries == N_WORKBOOKS
    assert published_queries == 1
    assert embedded_bytes >= published_bytes * N_WORKBOOKS

    benchmark.pedantic(lambda: _extract_from_warehouse(db), rounds=3, iterations=1)
