"""E1 (Figure 1): rendering the FAA dashboard, cold vs warm.

Paper claim: dashboard generation is dominated by query processing;
caching across refreshes/users makes subsequent loads nearly free.
Expected shape: the cold render issues one remote query batch; a warm
render (same pipeline, second user) issues zero remote queries and is at
least an order of magnitude faster.
"""

import pytest

from repro import obs
from repro.core.pipeline import QueryPipeline
from repro.dashboard import DashboardSession
from repro.sim.metrics import Recorder
from repro.workloads import fig1_dashboard

from .conftest import make_backend, record


@pytest.fixture(scope="module")
def backend(dataset):
    return make_backend(dataset)


def _cold_render(source, model):
    pipeline = QueryPipeline(source, model)
    session = DashboardSession(fig1_dashboard(), pipeline)
    return session, session.render()


def test_e1_dashboard_render(benchmark, dataset, model, backend):
    db, source = backend
    session, cold = _cold_render(source, model)
    warm_user = DashboardSession(fig1_dashboard(), session.pipeline)
    warm = warm_user.render()

    recorder = Recorder(
        "E1: Fig-1 dashboard render (9 zones)",
        columns=["phase", "iterations", "queries", "remote", "cache_hits", "elapsed_ms"],
    )
    recorder.add("cold load", cold.iterations, cold.total_queries, cold.remote_queries,
                 cold.cache_hits, cold.elapsed_s * 1000)
    recorder.add("warm load (2nd user)", warm.iterations, warm.total_queries,
                 warm.remote_queries, warm.cache_hits, warm.elapsed_s * 1000)
    # One traced cold + warm render pair (fresh backend so the cold path
    # really compiles/executes) attributes the latency per phase in the
    # machine-readable BENCH json.
    _db2, source2 = make_backend(dataset, name="warehouse-traced")
    with obs.recording() as rec:
        traced_session, _cold = _cold_render(source2, model)
        DashboardSession(fig1_dashboard(), traced_session.pipeline).render()
    record("e1_dashboard_render", recorder, trace=rec)

    # Shape: warm load needs no backend work and is much faster.
    assert cold.remote_queries > 0
    assert warm.remote_queries == 0
    assert warm.elapsed_s < cold.elapsed_s / 5

    def warm_render():
        user = DashboardSession(fig1_dashboard(), session.pipeline)
        return user.render()

    result = benchmark(warm_render)
    assert result.remote_queries == 0
