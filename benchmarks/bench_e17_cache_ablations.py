"""E17 (ablation; §3.2 future work): cache index and best-match selection.

Two behaviours the paper plans beyond Tableau 9.0:

* "we are planning to maintain an index over the cache to minimize the
  lookup time" — measured as lookup latency vs cache population, with and
  without the inverted index;
* "we plan to choose the entry that requires the least post-processing"
  — measured as post-processing latency when a narrow and a wide
  provider both match.

Expected shape: linear-scan lookup cost grows with the entry count while
indexed lookups stay flat; choose_best serves the request measurably
faster when providers differ in size.
"""

import pytest

from repro.core.cache.intelligent import IntelligentCache
from repro.sim.metrics import Recorder, time_call

from .conftest import COUNT, SUM_DELAY, record, spec

DIMENSION_POOL = [
    "date_", "hour", "carrier_id", "market_id", "origin_state_id",
    "dest_state_id", "distance", "cancelled", "diverted", "code",
    "carrier_name", "market", "origin_airport", "dest_airport",
]


def _filler_specs(n: int):
    """n distinct cached entries shaped like real interaction residue:
    varied dimension pairs, most carrying a filter on some other field."""
    from repro.queries import CategoricalFilter

    out = []
    for i in range(n):
        dims = (
            DIMENSION_POOL[i % len(DIMENSION_POOL)],
            DIMENSION_POOL[(i * 7 + 3) % len(DIMENSION_POOL)],
        )
        filters = ()
        if i % 4 != 0:  # three quarters are filtered interaction results
            filter_field = DIMENSION_POOL[(i * 5 + 1) % len(DIMENSION_POOL)]
            filters = (CategoricalFilter(filter_field, (i % 12, (i + 1) % 12)),)
        out.append(
            spec(
                dimensions=tuple(dict.fromkeys(dims)),
                measures=((f"m{i}", COUNT),),
                filters=filters,
            )
        )
    return out


@pytest.fixture(scope="module")
def tiny_table():
    from repro.tde.storage import Table

    return Table.from_pydict({"carrier_name": ["AA"], "n": [1]})


def test_e17_cache_index(benchmark, tiny_table):
    recorder = Recorder(
        "E17a: lookup latency vs cache population (miss path, µs)",
        columns=["entries", "linear_us", "indexed_us", "examined_linear", "examined_indexed"],
    )
    probe = spec(dimensions=("carrier_name",), measures=(("zz", SUM_DELAY),))
    results = []
    for n_entries in (16, 64, 256, 1024):
        linear = IntelligentCache()
        indexed = IntelligentCache(use_index=True)
        for s in _filler_specs(n_entries):
            linear.put(s, tiny_table)
            indexed.put(s, tiny_table)
        t_linear, _ = time_call(lambda: linear.lookup(probe), repeat=3)
        t_indexed, _ = time_call(lambda: indexed.lookup(probe), repeat=3)
        examined = indexed.index.candidates_examined
        recorder.add(n_entries, t_linear * 1e6, t_indexed * 1e6, n_entries, examined)
        results.append((n_entries, t_linear, t_indexed))
    record("e17a_cache_index", recorder)

    # The index keeps the miss path flat while linear scans grow.
    small_linear, big_linear = results[0][1], results[-1][1]
    small_indexed, big_indexed = results[0][2], results[-1][2]
    assert big_linear > small_linear * 5
    assert big_indexed < big_linear / 5

    biggest = IntelligentCache(use_index=True)
    for s in _filler_specs(1024):
        biggest.put(s, tiny_table)
    benchmark(lambda: biggest.lookup(probe))


def test_e17b_choose_best(benchmark, dataset, model):
    from repro.core.pipeline import PipelineOptions, QueryPipeline

    from .conftest import make_backend

    _db, source = make_backend(dataset, name="choosebest")
    raw = QueryPipeline(
        source,
        model,
        options=PipelineOptions(
            enable_intelligent_cache=False, enable_literal_cache=False, enrich_for_reuse=False
        ),
    )
    wide = spec(dimensions=("date_", "hour", "carrier_name"), measures=(("n", COUNT),))
    narrow = spec(dimensions=("carrier_name", "market_id"), measures=(("n", COUNT),))
    request = spec(dimensions=("carrier_name",), measures=(("n", COUNT),))
    wide_table = raw.run_spec(wide)
    narrow_table = raw.run_spec(narrow)

    def build(choose_best: bool) -> IntelligentCache:
        cache = IntelligentCache(choose_best=choose_best)
        cache.put(wide, wide_table)  # first match under insertion order
        cache.put(narrow, narrow_table)
        return cache

    first_cache = build(False)
    best_cache = build(True)
    t_first, a = time_call(lambda: first_cache.lookup(request), repeat=5)
    t_best, b = time_call(lambda: best_cache.lookup(request), repeat=5)
    assert a.approx_equals(b, ordered=False)

    recorder = Recorder(
        "E17b: first-match vs least-post-processing match",
        columns=["policy", "provider_rows", "elapsed_us"],
    )
    recorder.add("first match (Tableau 9.0)", wide_table.n_rows, t_first * 1e6)
    recorder.add("least post-processing", narrow_table.n_rows, t_best * 1e6)
    record("e17b_choose_best", recorder)

    assert wide_table.n_rows > narrow_table.n_rows * 5
    assert t_best < t_first  # rolling up fewer rows is cheaper

    benchmark(lambda: best_cache.lookup(request))
