"""Run every experiment and write the benchmarks/_results/ artifacts.

Usage (from the repository root)::

    python benchmarks/run_all.py             # all experiments
    python benchmarks/run_all.py e1 e6       # a subset, by id

Each experiment prints its paper-shaped series, writes the aligned-text
table to ``benchmarks/_results/<exp>.txt`` and the machine-readable
``benchmarks/_results/BENCH_<exp>.json`` (series + per-phase trace
summary where the experiment captures one). Exit status is pytest's.
"""

from __future__ import annotations

import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent


def main(argv: list[str] | None = None) -> int:
    import pytest

    argv = list(sys.argv[1:] if argv is None else argv)
    selectors = [a for a in argv if not a.startswith("-")]
    extra = [a for a in argv if a.startswith("-")]
    if selectors:
        targets = []
        for sel in selectors:
            matches = sorted(BENCH_DIR.glob(f"bench_{sel}_*.py")) or sorted(
                BENCH_DIR.glob(f"*{sel}*.py")
            )
            if not matches:
                print(f"no benchmark matches {sel!r}", file=sys.stderr)
                return 2
            targets.extend(str(m) for m in matches)
    else:
        targets = [str(BENCH_DIR)]
    # Ensure `import benchmarks.conftest` and `import repro` resolve when
    # invoked as a plain script (pytest runs in-process, so this suffices
    # even without PYTHONPATH=src).
    for path in (str(BENCH_DIR.parent), str(BENCH_DIR.parent / "src")):
        if path not in sys.path:
            sys.path.insert(0, path)
    return pytest.main(["-q", "--no-header", *extra, *targets])


if __name__ == "__main__":
    raise SystemExit(main())
