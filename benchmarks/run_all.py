"""Run every experiment and write the benchmarks/_results/ artifacts.

Usage (from the repository root)::

    python benchmarks/run_all.py                  # all experiments
    python benchmarks/run_all.py e1 e6            # a subset, by id
    python benchmarks/run_all.py --filter 'e1*'   # a subset, by glob
    python benchmarks/run_all.py --json           # machine-readable summary
    python benchmarks/run_all.py --list           # known experiment ids

Each experiment prints its paper-shaped series, writes the aligned-text
table to ``benchmarks/_results/<exp>.txt`` and the machine-readable
``benchmarks/_results/BENCH_<exp>.json`` (series + per-phase trace
summary and decision events where the experiment captures them).

``--json`` prints, after the run, one summary line per produced
``BENCH_*.json``: experiment name, its key metric, and the relative
delta against the committed baseline (when one exists under
``benchmarks/_baselines/``). Exit status is non-zero if any experiment
crashed or failed (pytest's exit code is propagated).
"""

from __future__ import annotations

import fnmatch
import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent


def list_experiments(bench_dir: Path = BENCH_DIR) -> list[tuple[str, str]]:
    """``(experiment id, experiment name)`` for every ``bench_*.py``.

    The id is what the bare-selector and ``--filter`` forms accept
    ("e20"); the name is the full ``<id>_<slug>`` stem that results and
    baselines are keyed by ("e20_herd_traffic").
    """
    out = []
    for path in bench_dir.glob("bench_*.py"):
        stem = path.stem[len("bench_"):]
        out.append((stem.split("_")[0], stem))

    def numeric(item: tuple[str, str]):
        digits = "".join(ch for ch in item[0] if ch.isdigit())
        return (int(digits) if digits else 0, item[0])

    return sorted(out, key=numeric)


def _summarize(results_dir: Path, baselines_dir: Path) -> list[dict]:
    from benchmarks.perfgate import experiment_name, iter_metrics, key_metric, load

    summary = []
    for path in sorted(results_dir.glob("BENCH_*.json")):
        exp = experiment_name(path)
        payload = load(path)
        headline = key_metric(payload)
        entry: dict = {"experiment": exp, "key_metric": None, "value": None,
                       "baseline": None, "delta": None}
        if headline is not None:
            entry["key_metric"], entry["value"] = headline
        base_path = baselines_dir / path.name
        if base_path.exists() and headline is not None:
            base_metrics = {n: v for n, _c, v in iter_metrics(load(base_path))}
            base_v = base_metrics.get(headline[0])
            if base_v:
                entry["baseline"] = base_v
                entry["delta"] = (headline[1] - base_v) / base_v
        summary.append(entry)
    return summary


def main(argv: list[str] | None = None) -> int:
    import pytest

    argv = list(sys.argv[1:] if argv is None else argv)
    if "--list" in argv:
        experiments = list_experiments()
        width = max(len(exp_id) for exp_id, _name in experiments)
        for exp_id, name in experiments:
            print(f"{exp_id:<{width}}  {name}")
        return 0
    emit_json = "--json" in argv
    argv = [a for a in argv if a != "--json"]
    patterns: list[str] = []
    while "--filter" in argv:
        i = argv.index("--filter")
        if i + 1 >= len(argv):
            print("--filter needs a glob argument", file=sys.stderr)
            return 2
        patterns.append(argv[i + 1])
        del argv[i : i + 2]
    selectors = [a for a in argv if not a.startswith("-")]
    extra = [a for a in argv if a.startswith("-")]
    targets: list[str] = []
    if selectors:
        for sel in selectors:
            matches = sorted(BENCH_DIR.glob(f"bench_{sel}_*.py")) or sorted(
                BENCH_DIR.glob(f"*{sel}*.py")
            )
            if not matches:
                print(f"no benchmark matches {sel!r}", file=sys.stderr)
                return 2
            targets.extend(str(m) for m in matches)
    if patterns:
        candidates = targets or [str(p) for p in sorted(BENCH_DIR.glob("bench_*.py"))]

        def matches(stem: str, pattern: str) -> bool:
            # A bare experiment id ("e20") selects that experiment; globs
            # ("e2*") pass through to fnmatch unchanged.
            return fnmatch.fnmatch(stem, pattern) or stem.split("_")[0] == pattern

        targets = [
            t
            for t in candidates
            if any(matches(Path(t).stem[len("bench_"):], p) for p in patterns)
        ]
        if not targets:
            print(f"no benchmark matches --filter {patterns!r}", file=sys.stderr)
            return 2
    if not targets:
        targets = [str(BENCH_DIR)]
    # Ensure `import benchmarks.conftest` and `import repro` resolve when
    # invoked as a plain script (pytest runs in-process, so this suffices
    # even without PYTHONPATH=src).
    for path in (str(BENCH_DIR.parent), str(BENCH_DIR.parent / "src")):
        if path not in sys.path:
            sys.path.insert(0, path)
    code = pytest.main(["-q", "--no-header", *extra, *targets])
    if emit_json:
        summary = _summarize(BENCH_DIR / "_results", BENCH_DIR / "_baselines")
        print(json.dumps(summary, indent=2))
    # pytest exit codes: 0 ok; anything else (failed, error, interrupted,
    # usage error, no tests collected) means the run did not fully succeed.
    return int(code)


if __name__ == "__main__":
    raise SystemExit(main())
