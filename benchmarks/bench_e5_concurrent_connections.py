"""E5 (§3.5): concurrent query execution over multiple connections.

"Our experiments show that using multiple connections to handle
concurrent workloads boosts performance, often dramatically, across the
architectures supported by Tableau. Obviously, the positive effect is
observable if idle resources are available and can be utilized."

We submit a 12-query batch over 1..12 connections against three backend
architectures:

* serial-per-query  — 4 workers, each query uses 1 (headroom: 4×);
* parallel-plans    — 4 workers, a lone query already uses all 4, so
  extra connections help much less (the paper's resource-allocation
  discussion);
* throttled         — admission control caps concurrency at 2.

Expected shape: near-linear gains up to the worker count for the serial
backend, early saturation for the parallel backend, hard ceiling ~2× for
the throttled one.
"""

import pytest

from repro.connectors.pool import ConnectionPool
from repro.connectors.simdb import ServerProfile
from repro.core.executor import ConcurrentQueryExecutor
from repro.core.pipeline import PipelineOptions, QueryPipeline
from repro.queries import CategoricalFilter
from repro.sim.metrics import Recorder

from .conftest import COUNT, SUM_DELAY, make_backend, record, spec

from .conftest import BENCH_WORK_UNIT_S

PROFILES = {
    "serial-per-query": ServerProfile(
        name="serial-db", workers=4, per_query_parallelism=1, work_unit_time_s=BENCH_WORK_UNIT_S
    ),
    "parallel-plans": ServerProfile(
        name="parallel-db", workers=4, per_query_parallelism=4, work_unit_time_s=BENCH_WORK_UNIT_S
    ),
    "throttled": ServerProfile(
        name="throttled-db",
        workers=4,
        per_query_parallelism=1,
        max_concurrent_queries=2,
        work_unit_time_s=BENCH_WORK_UNIT_S,
    ),
}

CONNECTIONS = (1, 2, 4, 8, 12)


def _batch():
    return [
        spec(
            dimensions=("carrier_name",),
            measures=(("n", COUNT), ("s", SUM_DELAY)),
            filters=(CategoricalFilter("market_id", (i % 12, (i + 3) % 12, (i + 7) % 12)),),
        )
        for i in range(12)
    ]


def _options(n_connections: int) -> PipelineOptions:
    return PipelineOptions(
        enable_intelligent_cache=False,
        enable_literal_cache=False,
        enable_fusion=False,
        enable_batch_graph=False,
        enrich_for_reuse=False,
        concurrent=n_connections > 1,
        max_workers=n_connections,
        max_connections=n_connections,
    )


def test_e5_concurrent_connections(benchmark, dataset, model):
    recorder = Recorder(
        "E5: connection sweep x backend architecture (12-query batch)",
        columns=["backend", "connections", "elapsed_ms", "speedup_vs_1"],
    )
    curves: dict[str, list[float]] = {}
    for arch, profile in PROFILES.items():
        _db, source = make_backend(dataset, profile, name=profile.name)
        elapsed = []
        for n_conn in CONNECTIONS:
            pipeline = QueryPipeline(source, model, options=_options(n_conn))
            result = pipeline.run_batch(_batch())
            pipeline.close()
            elapsed.append(result.elapsed_s)
            recorder.add(arch, n_conn, result.elapsed_s * 1000, elapsed[0] / result.elapsed_s)
        curves[arch] = elapsed
    record("e5_concurrent_connections", recorder)

    def speedup(arch, idx):
        return curves[arch][0] / curves[arch][idx]

    four = CONNECTIONS.index(4)
    last = len(CONNECTIONS) - 1
    # Serial-per-query backend: dramatic gains up to the worker count.
    assert speedup("serial-per-query", four) > 2.0
    # Parallel-plan backend: a single connection already exploits the
    # workers, so extra connections help far less.
    assert speedup("parallel-plans", four) < speedup("serial-per-query", four) * 0.7
    # Throttled backend: admission control caps the benefit around 2x.
    assert speedup("throttled", last) < 3.0
    # More connections never make things dramatically worse.
    for arch in PROFILES:
        assert curves[arch][last] <= curves[arch][0] * 1.3

    _db, source = make_backend(dataset, PROFILES["serial-per-query"], name="bench-serial")
    pipeline = QueryPipeline(source, model, options=_options(8))
    result = benchmark.pedantic(lambda: pipeline.run_batch(_batch()), rounds=3, iterations=1)
    assert len(result.tables) == 12
