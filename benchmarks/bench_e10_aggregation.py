"""E10 (Figure 5 of §4.2.3): aggregation strategies under parallelism.

Three strategies for a parallel GROUP BY, replayed in virtual time:

* naive           — Exchange closes parallelism, one serial aggregate
                    on top of the raw merged rows;
* local/global    — aggregate each fragment, Exchange merges the small
                    partials, a global aggregate finishes (Figure 5);
* range-partition — the sort-prefix group-by column lets the scan split
                    at key boundaries, removing the global phase and the
                    Exchange serialization point entirely (Lemmas 1–3).

Expected shape: local/global ≫ naive at higher core counts; range
partitioning wins again over local/global; with a skewed/low-cardinality
partition key the planner refuses range partitioning (the caveat).
"""

import pytest

from repro.sim import MachineModel, simulate_plan
from repro.sim.metrics import Recorder
from repro.tde import DataEngine
from repro.tde.exec import PExchange, PHashAggregate, PStreamAggregate
from repro.tde.exec.physical import ExecContext, execute_to_table
from repro.tde.optimizer.parallel import PlannerOptions
from tests.conftest import build_flights_engine

from .conftest import record

ENGINE = build_flights_engine(n=200_000, max_dop=8, min_work_per_fraction=16_000)

UNSORTED_GROUP = '(aggregate (carrier_id) ((s (sum delay)) (n (count))) (scan "Extract.flights"))'
SORTED_GROUP = '(aggregate (date_) ((s (sum delay)) (n (count))) (scan "Extract.flights"))'


def _options(**kwargs) -> PlannerOptions:
    return PlannerOptions(max_dop=8, min_work_per_fraction=16_000, **kwargs)


def test_e10_aggregation_strategies(benchmark):
    naive = ENGINE.plan(
        UNSORTED_GROUP, options=_options(enable_local_global_agg=False, enable_range_partition_agg=False)
    )
    local_global = ENGINE.plan(UNSORTED_GROUP, options=_options(enable_range_partition_agg=False))
    range_part = ENGINE.plan(SORTED_GROUP, options=_options())
    lg_on_sorted = ENGINE.plan(SORTED_GROUP, options=_options(enable_range_partition_agg=False))

    # Plan shapes: naive = serial agg over Exchange of scans; local/global
    # = agg over Exchange of aggs; range partition = Exchange of aggs.
    assert isinstance(naive, PHashAggregate) and isinstance(naive.child, PExchange)
    assert all(not isinstance(c, (PHashAggregate, PStreamAggregate)) for c in naive.child.children())
    assert isinstance(local_global, PHashAggregate)
    assert all(isinstance(c, PHashAggregate) for c in local_global.child.children())
    assert isinstance(range_part, PExchange)
    assert all(
        isinstance(c, (PHashAggregate, PStreamAggregate)) for c in range_part.children()
    )

    recorder = Recorder(
        "E10: parallel aggregation strategies (virtual time, ms)",
        columns=["cores", "naive", "local/global", "lg_sorted", "range_part"],
    )
    ratios = {}
    for cores in (2, 4, 8):
        machine = MachineModel(cores=cores)
        t_naive = simulate_plan(naive, machine).elapsed_s * 1000
        t_lg = simulate_plan(local_global, machine).elapsed_s * 1000
        t_lgs = simulate_plan(lg_on_sorted, machine).elapsed_s * 1000
        t_rp = simulate_plan(range_part, machine).elapsed_s * 1000
        recorder.add(cores, t_naive, t_lg, t_lgs, t_rp)
        ratios[cores] = (t_naive, t_lg, t_lgs, t_rp)
    record("e10_aggregation", recorder)

    t_naive, t_lg, t_lgs, t_rp = ratios[8]
    assert t_lg < t_naive  # Figure 5's improvement
    assert t_rp < t_lgs  # Lemma 3 removes the global phase

    # Correctness of every strategy.
    reference = ENGINE.query_naive(UNSORTED_GROUP)
    for plan in (naive, local_global):
        assert execute_to_table(plan, ExecContext()).approx_equals(
            reference, ordered=False, rel=1e-7, abs_tol=1e-6
        )
    sorted_ref = ENGINE.query_naive(SORTED_GROUP)
    assert execute_to_table(range_part, ExecContext()).approx_equals(
        sorted_ref, ordered=False, rel=1e-7, abs_tol=1e-6
    )

    benchmark(lambda: simulate_plan(range_part, MachineModel(cores=8)).elapsed_s)


def test_e10b_skew_caveat(benchmark):
    """"if the data is skewed or if the partition key has very low
    cardinality (e.g. partitioning on gender), range partitioning may be
    slower" — our planner declines range partitioning when the sort key
    cannot produce balanced fractions."""
    engine = DataEngine("skewed", options=PlannerOptions(max_dop=8, min_work_per_fraction=4000))
    n = 100_000
    engine.load_pydict(
        "Extract.t",
        {"gender": ["f"] * (n // 2) + ["m"] * (n // 2), "v": list(range(n))},
        sort_keys=["gender"],
        encodings={"gender": None} if False else {},
    )
    plan = engine.plan('(aggregate (gender) ((s (sum v))) (scan "Extract.t"))')
    # Low-cardinality partition key: either the split is refused (falls
    # back to local/global) or it degenerates to very few fractions.
    if isinstance(plan, PExchange):
        assert plan.degree <= 2  # at most one boundary exists
        report = simulate_plan(plan, MachineModel(cores=8))
        serial = simulate_plan(
            engine.plan('(aggregate (gender) ((s (sum v))) (scan "Extract.t"))',
                        options=PlannerOptions(max_dop=1)),
            MachineModel(cores=8),
        )
        # Skewed range partitioning buys little over serial.
        assert report.elapsed_s > serial.elapsed_s * 0.4
    else:
        assert isinstance(plan, PHashAggregate)

    benchmark(lambda: engine.query('(aggregate (gender) ((s (sum v))) (scan "Extract.t"))'))
