"""E24 (§3.2): elastic cache tier under a mid-trace crash and a live join.

"Tableau Server does not persist the caches but it utilizes a distributed
layer based on REDIS or Cassandra ... This allows sharing data across
nodes in the cluster and keeping data warm regardless of which node
handles particular requests."

A 2-node VizServer serves a seeded loads-only Zipf trace from a 3-node
:class:`ReplicatedStore` tier (node-local L1s off, so every zone read
pays a tier round trip). Mid-trace the tier loses its most-loaded cache
node to a crash (data gone) and later warms a brand-new node through a
live join — all under a seeded fault plan injecting latency spikes on
tier GETs. Two arms differ only in replication factor:

* **R=1** — the crash destroys the only copy of its keys: the post-kill
  window pays backend refetches, then must recover within one window.
* **R=2** — surviving replicas absorb the crash: the post-kill window
  sends *zero* backend queries and a post-crash repair sweep back-fills
  the lost replicas.

Hard-asserted per arm: steady-state serves entirely from the tier; the
join migrates keys and destroys none (copies land before drops);
hit-rate and p95 are back within a bounded envelope of steady state one
window after each topology change; and every render in both arms is
byte-identical. The tier's topology decisions (`ring.*` / `reshard.*` /
`fault.*` events) are exported to ``_results/topology_e24.jsonl``.
"""

from __future__ import annotations

import json
import time

from repro import obs
from repro.connectors import SimDbDataSource
from repro.connectors.simdb import ServerProfile
from repro.core.cache.replicated import ReplicatedStore
from repro.core.pipeline import PipelineOptions
from repro.faults import FaultPlan
from repro.server import VizServer
from repro.sim.metrics import Recorder
from repro.workloads import (
    TrafficGenerator,
    fig1_dashboard,
    fig2_dashboard,
    flights_model,
    generate_flights,
)

from .conftest import BENCH_WORK_UNIT_S, RESULTS_DIR, record

ROWS = 6_000
DATASET = generate_flights(ROWS, seed=31)

#: The trace is cut into fixed windows; topology changes land on window
#: boundaries so each window's counters describe exactly one regime.
WINDOW = 20
PHASES = (
    ("warm", 0, 20),        # cold fills: the tier populates
    ("steady", 20, 60),     # everything serves from the tier
    ("post_kill", 60, 80),  # the most-loaded cache node just crashed
    ("recovered", 80, 100),  # bounded-window recovery after the crash
    ("post_join", 100, 120),  # a new node joined and was warm-migrated
    ("final", 120, 140),    # steady state on the reshaped ring
)
KILL_AT, JOIN_AT = 60, 100
N_EVENTS = PHASES[-1][2]

#: Recovery envelope: one window after a topology change, p95 must sit
#: back inside max(RECOVERY_FACTOR x steady, steady + RECOVERY_SLACK_MS)
#: and the tier hit rate back above RECOVERED_HIT_RATE. The factor is
#: generous because a 20-request window's p95 is its max — one injected
#: latency spike (<= 2 ms by the plan below) lands in it whole.
RECOVERY_FACTOR = 4.0
RECOVERY_SLACK_MS = 10.0
RECOVERED_HIT_RATE = 0.99


def _traffic():
    """Seeded loads-only Zipf stream over both reference dashboards."""
    generator = TrafficGenerator(
        [fig1_dashboard(), fig2_dashboard()],
        n_users=24,
        seed=131,
        interaction_rate=0.0,
    )
    return list(generator.events(N_EVENTS))


def _fault_plan() -> FaultPlan:
    """Seeded latency spikes on tier GETs: the schedule is deterministic
    and slows reads without turning them into misses, so the count
    assertions stay exact while the tail still absorbs injected jitter."""
    return FaultPlan(
        seed=424,
        rates={"kv.get": 0.04},
        weights={"latency": 1.0},
        latency_s=(0.0005, 0.002),
    )


def _most_loaded(tier: ReplicatedStore) -> str:
    """The crash victim: the live node holding the most keys, so at R=1
    the kill is guaranteed to destroy sole copies."""
    return max(
        tier.live_nodes(), key=lambda n: len(tier.node(n).store.keys())
    )


def _distinct_keys(tier: ReplicatedStore) -> set:
    keys: set = set()
    for node_id in tier.live_nodes():
        keys.update(tier.node(node_id).store.keys())
    return keys


def _hit_rate(server: VizServer, since: dict) -> float:
    summary = server.cache_summary()
    hits = summary["l2_hits"] - since["l2_hits"]
    misses = summary["misses"] - since["misses"]
    return hits / (hits + misses) if hits + misses else 1.0


def _run_arm(replication: int):
    """Replay the trace against a fresh server + tier; return per-phase
    counters, every render, and the tier's end-of-run state."""
    db = DATASET.load_into_simdb(
        ServerProfile(name="public", work_unit_time_s=BENCH_WORK_UNIT_S),
        name="public",
    )
    plan = _fault_plan()
    tier = ReplicatedStore(
        ("c0", "c1", "c2"),
        replication=replication,
        latency_s=0.0002,
        per_mb_s=0.001,
        faults=plan,
    )
    server = VizServer(
        2,
        SimDbDataSource(db),
        flights_model(),
        store=tier,
        use_l1=False,  # every zone read pays a tier round trip
        options=PipelineOptions(enable_intelligent_cache=False),
    )
    server.register_dashboard(fig1_dashboard())
    server.register_dashboard(fig2_dashboard())
    events = _traffic()

    phases: dict[str, dict] = {}
    renders: list[tuple[str, object]] = []
    topology: dict[str, object] = {}
    for name, start, stop in PHASES:
        before = server.cache_summary()
        backend_before = db.stats.queries
        latencies = []
        for idx in range(start, stop):
            if idx == KILL_AT:
                topology["killed"] = _most_loaded(tier)
                tier.kill(topology["killed"])
                # The operator playbook after a crash: a quorum-read
                # sweep restores R-way replication for every surviving
                # key (a no-op at R=1 — sole copies are simply gone).
                topology["sweep_report"] = tier.repair_sweep()
            if idx == JOIN_AT:
                held_before = _distinct_keys(tier)
                topology["join_report"] = tier.join("c3")
                topology["keys_lost_at_join"] = sorted(
                    held_before - _distinct_keys(tier)
                )
            event = events[idx]
            started = time.perf_counter()
            _node, result = server.load(event.user, event.dashboard)
            latencies.append(time.perf_counter() - started)
            renders.append((event.dashboard, result))
        latencies.sort()
        phases[name] = {
            "requests": stop - start,
            "backend_queries": db.stats.queries - backend_before,
            "tier_hit_rate": _hit_rate(server, before),
            "p50_ms": latencies[len(latencies) // 2] * 1000,
            "p95_ms": latencies[int(len(latencies) * 0.95)] * 1000,
        }
    return {
        "phases": phases,
        "renders": renders,
        "topology": topology,
        "server": server,
        "tier": tier,
        "fault_digest": plan.digest(),
        "fault_count": len(plan.export()),
    }


def _reference_tables(renders):
    """First render per dashboard; asserts intra-arm byte-consistency."""
    reference: dict[str, dict] = {}
    for dashboard, result in renders:
        assert not result.degraded
        zones = reference.setdefault(dashboard, result.zone_tables)
        assert zones.keys() == result.zone_tables.keys()
        for zone, table in result.zone_tables.items():
            assert table.equals_unordered(zones[zone]), (
                f"{dashboard}/{zone}: renders diverged within one arm"
            )
    return reference


def _assert_recovered(phases: dict, name: str, label: str) -> None:
    steady, window = phases["steady"], phases[name]
    bound = max(
        steady["p95_ms"] * RECOVERY_FACTOR,
        steady["p95_ms"] + RECOVERY_SLACK_MS,
    )
    assert window["p95_ms"] <= bound, (
        f"{label}/{name}: p95 {window['p95_ms']:.2f}ms never recovered "
        f"(bound {bound:.2f}ms from steady {steady['p95_ms']:.2f}ms)"
    )
    assert window["tier_hit_rate"] >= RECOVERED_HIT_RATE, (
        f"{label}/{name}: tier hit rate stuck at "
        f"{window['tier_hit_rate']:.3f}"
    )


def _export_topology_events(rec, arm) -> int:
    """Write the tier's decision log (+ run summary) as one-per-line JSON."""
    RESULTS_DIR.mkdir(exist_ok=True)
    prefixes = ("ring.", "reshard.", "replica.", "fault.")
    lines = [
        json.dumps(ev.to_dict(), sort_keys=True)
        for ev in rec.events()
        if ev.kind.startswith(prefixes)
    ]
    lines.append(
        json.dumps(
            {
                "kind": "run.summary",
                "killed": arm["topology"]["killed"],
                "sweep_report": arm["topology"]["sweep_report"],
                "join_report": arm["topology"]["join_report"],
                "fault_digest": arm["fault_digest"],
                "injected_faults": arm["fault_count"],
                "cache_tier": arm["server"].statz()["cache_tier"]["fleet"],
            },
            sort_keys=True,
            default=str,
        )
    )
    path = RESULTS_DIR / "topology_e24.jsonl"
    path.write_text("\n".join(lines) + "\n")
    return len(lines)


def test_e24_elastic_cache(benchmark):
    recorder = Recorder(
        "E24: crash + live join on the replicated cache tier (R=1 vs R=2)",
        columns=[
            "arm_phase",
            "requests",
            "backend_queries",
            "tier_hit_rate",
            "p50_ms",
            "p95_ms",
        ],
    )
    arms: dict[int, dict] = {}
    for replication in (1, 2):
        if replication == 2:
            with obs.recording() as rec:
                arm = _run_arm(replication)
            arm["topology_events"] = _export_topology_events(rec, arm)
        else:
            arm = _run_arm(replication)
        arms[replication] = arm
        for name, row in arm["phases"].items():
            recorder.add(
                f"r{replication}/{name}",
                row["requests"],
                row["backend_queries"],
                round(row["tier_hit_rate"], 4),
                row["p50_ms"],
                row["p95_ms"],
            )
    record(
        "e24_elastic_cache",
        recorder,
        trace={
            "topology": {
                r: {
                    "killed": arm["topology"]["killed"],
                    "sweep_report": arm["topology"]["sweep_report"],
                    "join_report": arm["topology"]["join_report"],
                    "keys_lost_at_join": arm["topology"]["keys_lost_at_join"],
                    "fault_digest": arm["fault_digest"],
                    "injected_faults": arm["fault_count"],
                }
                for r, arm in arms.items()
            },
            "cache_tier_r2": arms[2]["server"].statz()["cache_tier"]["fleet"],
        },
    )

    for replication, arm in arms.items():
        label, phases = f"r{replication}", arm["phases"]
        # The trace warms the tier, then steady state never goes remote —
        # which also proves the injected faults are latency-only.
        assert phases["warm"]["backend_queries"] > 0
        assert phases["steady"]["backend_queries"] == 0, label
        assert phases["steady"]["tier_hit_rate"] == 1.0, label
        # The fault plan really fired, deterministically.
        assert arm["fault_count"] > 0 and arm["fault_digest"]
        # The join warm-migrated key ranges and destroyed nothing:
        # copies land before surplus replicas drop. (At R=1 the window
        # may still pay for the *crash* — an unpopular dashboard whose
        # sole copies died can surface its refetch this late — so the
        # zero-backend claim is the R=2 arm's, below.)
        assert arm["topology"]["join_report"]["keys_moved"] > 0, label
        assert arm["topology"]["keys_lost_at_join"] == [], label
        # Bounded-window recovery after both topology changes.
        _assert_recovered(phases, "recovered", label)
        _assert_recovered(phases, "final", label)

    # The crash is the arms' fork: R=1 loses sole copies and pays backend
    # refetches; R=2's surviving replicas absorb it entirely.
    assert arms[1]["phases"]["post_kill"]["backend_queries"] > 0
    assert arms[1]["phases"]["post_kill"]["tier_hit_rate"] < 1.0
    assert arms[2]["phases"]["post_kill"]["backend_queries"] == 0
    assert arms[2]["phases"]["post_kill"]["tier_hit_rate"] == 1.0
    assert arms[2]["phases"]["post_join"]["backend_queries"] == 0
    assert arms[2]["phases"]["post_join"]["tier_hit_rate"] == 1.0
    # The R=2 tier healed: the post-crash sweep back-filled the lost
    # replicas (at R=1 there is nothing left to repair from).
    assert arms[2]["topology"]["sweep_report"]["repaired"] > 0
    assert arms[2]["tier"].statz()["fleet"]["read_repairs"] > 0
    assert arms[1]["topology"]["sweep_report"]["repaired"] == 0
    assert arms[2]["topology_events"] > 0

    # Both arms rendered byte-identical dashboards throughout.
    reference = {r: _reference_tables(arm["renders"]) for r, arm in arms.items()}
    assert reference[1].keys() == reference[2].keys()
    for dashboard, zones in reference[1].items():
        for zone, table in zones.items():
            assert table.equals_unordered(reference[2][dashboard][zone]), (
                f"{dashboard}/{zone}: replication changed the answer"
            )

    # Representative timed path: a warm load on the post-join R=2 tier.
    server = arms[2]["server"]
    warm_ms = benchmark.pedantic(
        lambda: _probe(server), rounds=3, iterations=1
    )
    assert warm_ms > 0.0


def _probe(server: VizServer) -> float:
    started = time.perf_counter()
    _node, result = server.load("probe", fig2_dashboard().name)
    assert not result.degraded
    return (time.perf_counter() - started) * 1000
