"""E7 (§3.2): the distributed cache across server nodes.

"This allows sharing data across nodes in the cluster and keeping data
warm regardless of which node handles particular requests. For
efficiency, recent entries are also stored in memory on the nodes."

Three configurations serve the same Zipf-ish multi-user load over 2 nodes
with round-robin routing:

* no distributed layer — each node re-fetches from the backend;
* distributed store only (no node L1) — backend protected, every lookup
  pays a network round trip;
* store + node-local L1 — repeated keys served from memory.

Expected shape: backend queries drop dramatically with the shared store;
latency improves again with the L1.
"""

import pytest

from repro.connectors.simdb import ServerProfile
from repro.core.cache.distributed import KeyValueStore
from repro.core.pipeline import PipelineOptions
from repro.faults import VirtualTimeClock
from repro.server import VizServer
from repro.sim.metrics import Recorder
from repro.workloads import fig2_dashboard, TrafficGenerator
from repro.workloads.faa import MARKETS

from .conftest import make_backend, record


def _traffic():
    generator = TrafficGenerator(
        [fig2_dashboard()],
        n_users=12,
        seed=7,
        interaction_rate=0.3,
        selection_domains={
            "market-carrier-airline": {"market": [m[0] for m in MARKETS[:6]]}
        },
    )
    return list(generator.events(30))


def _run_config(dataset, model, *, distributed: bool, use_l1: bool):
    import time

    profile = ServerProfile(work_unit_time_s=2e-7, name=f"dist-{distributed}-{use_l1}")
    _db, source = make_backend(dataset, profile, name=profile.name)
    # Store round trips run in virtual time: the modeled network latency
    # is added to the wall-clock elapsed below, so the latency component
    # of each configuration is exact and identical on every run.
    clock = VirtualTimeClock()
    store = KeyValueStore(latency_s=0.002 if distributed else 0.0, clock=clock)
    # The node-local *semantic* cache is disabled so the experiment
    # isolates the literal/distributed layer the paper describes here;
    # E6 covers the intelligent cache.
    options = PipelineOptions(enable_intelligent_cache=False, enrich_for_reuse=False)
    if distributed:
        server = VizServer(2, source, model, store=store, options=options, use_l1=use_l1)
    else:
        server = VizServer(2, source, model, options=options, use_l1=True)
        for node in server.nodes:
            node.distributed.store = KeyValueStore(latency_s=0.002, clock=clock)  # private
    server.register_dashboard(fig2_dashboard())
    started = time.perf_counter()
    for event in _traffic():
        if event.kind == "load":
            server.load(event.user, event.dashboard)
        elif event.kind == "select":
            server.select(event.user, event.dashboard, event.zone, list(event.values))
    elapsed = (time.perf_counter() - started) + clock.monotonic()
    return server, _db, elapsed


def test_e7_distributed_cache(benchmark, dataset, model):
    configs = [
        ("node-private caches", dict(distributed=False, use_l1=True)),
        ("distributed store, no L1", dict(distributed=True, use_l1=False)),
        ("distributed store + node L1", dict(distributed=True, use_l1=True)),
    ]
    rows = []
    for label, kwargs in configs:
        server, db, elapsed = _run_config(dataset, model, **kwargs)
        rows.append((label, db.stats.queries, server.cache_summary(), elapsed))

    recorder = Recorder(
        "E7: distributed cache across 2 nodes (30-visit Zipf trace)",
        columns=["configuration", "backend_queries", "l1_hits", "l2_hits", "elapsed_ms"],
    )
    for label, backend_queries, summary, elapsed in rows:
        recorder.add(label, backend_queries, summary["l1_hits"], summary["l2_hits"], elapsed * 1000)
    record("e7_distributed_cache", recorder)

    private, store_only, store_l1 = rows
    # The shared store keeps the second node warm: fewer backend queries.
    assert store_only[1] < private[1]
    assert store_l1[1] <= store_only[1]
    # The node-local L1 avoids round trips the store-only config pays.
    assert store_l1[2]["l1_hits"] > 0
    assert store_l1[3] <= store_only[3] * 1.1

    def one_trace():
        _server, db, _elapsed = _run_config(dataset, model, distributed=True, use_l1=True)
        return db.stats.queries

    backend_queries = benchmark.pedantic(one_trace, rounds=2, iterations=1)
    assert backend_queries <= private[1]
