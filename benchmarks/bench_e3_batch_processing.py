"""E3 (Figure 3, §3.3): query batch processing with the cache-hit graph.

The paper partitions a batch into remote source queries and locally
derivable queries, then submits the remote ones concurrently. We rebuild
a batch shaped like the paper's example graph (8 queries, 3 sources) and
compare three strategies:

* serial, no analysis        — every query goes remote, one at a time;
* serial + batch graph       — only sources go remote, still sequential;
* two-phase concurrent       — sources remote in parallel, rest local.

Expected shape: remote count drops 8 → 3 with the graph; wall time drops
again with concurrency (roughly by the source count, minus overheads).
"""

import datetime as dt

import pytest

from repro.core.pipeline import PipelineOptions, QueryPipeline
from repro.sim.metrics import Recorder

from .conftest import AVG_DELAY, COUNT, SUM_DELAY, make_backend, record, spec


def _paper_batch():
    """Eight queries; q1, q4, q8-style sources cover the others."""
    detail = spec(dimensions=("carrier_name", "market"), measures=(("n", COUNT), ("s", SUM_DELAY)))
    by_carrier = spec(dimensions=("carrier_name",), measures=(("n", COUNT),))
    by_market = spec(dimensions=("market",), measures=(("n", COUNT), ("s", SUM_DELAY)))
    total = spec(measures=(("n", COUNT),))
    by_date = spec(
        dimensions=("date_", "hour"),
        measures=(("n", COUNT), ("s", SUM_DELAY)),
    )
    by_hour = spec(dimensions=("hour",), measures=(("s", SUM_DELAY),))
    by_day = spec(dimensions=("date_",), measures=(("n", COUNT),))
    domains = spec(dimensions=("code",))
    return [detail, by_carrier, by_market, total, by_date, by_hour, by_day, domains]


def _options(graph: bool, concurrent: bool) -> PipelineOptions:
    return PipelineOptions(
        enable_intelligent_cache=False,
        enable_literal_cache=False,
        enable_fusion=False,
        enrich_for_reuse=False,
        enable_batch_graph=graph,
        concurrent=concurrent,
    )


def _run(source, model, options):
    pipeline = QueryPipeline(source, model, options=options)
    result = pipeline.run_batch(_paper_batch())
    pipeline.close()
    return result


def test_e3_batch_processing(benchmark, dataset, model):
    _db, source = make_backend(dataset)
    rows = []
    for label, graph, concurrent in (
        ("serial, no analysis", False, False),
        ("serial + batch graph", True, False),
        ("two-phase concurrent", True, True),
    ):
        result = _run(source, model, _options(graph, concurrent))
        rows.append((label, result))

    recorder = Recorder(
        "E3: batch processing strategies (8-query batch)",
        columns=["strategy", "remote", "local", "elapsed_ms"],
    )
    for label, result in rows:
        recorder.add(label, result.remote_queries, result.batch_local, result.elapsed_s * 1000)
    record("e3_batch_processing", recorder)

    naive, graph_only, two_phase = (r for _l, r in rows)
    assert naive.remote_queries == 8
    assert graph_only.remote_queries < naive.remote_queries
    assert two_phase.remote_queries == graph_only.remote_queries
    assert two_phase.elapsed_s < graph_only.elapsed_s
    assert graph_only.elapsed_s < naive.elapsed_s
    # All strategies agree on every answer.
    for key, table in naive.tables.items():
        assert table.approx_equals(two_phase.tables[key], ordered=False, rel=1e-7, abs_tol=1e-6)

    result = benchmark.pedantic(
        lambda: _run(source, model, _options(True, True)), rounds=3, iterations=1
    )
    assert result.remote_queries < 8
