"""E20 (§3.2): herd traffic against a shared VizServer, coalescing on/off.

"An extreme example of this is seen in Tableau Public ... The
user-generated traffic is saturated by initial load requests, as many
viewers just read content with the initial state of a dashboard and make
further interactions rarely."

Caches only help *after* the first query completes; a cold herd arrives
before that. K viewer threads replay a seeded Zipf traffic stream
(loads-only, per the quote) against a 2-node VizServer from a cold start,
with single-flight coalescing off and on. Measured per arm: backend
query count, coalesce joins, and p50/p95 request latency. Coalescing
must cut backend queries >= 2x at K=8 while every viewer's rendered
zones stay byte-identical across arms.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.connectors import SimDbDataSource
from repro.connectors.simdb import ServerProfile
from repro.core.cache.distributed import KeyValueStore
from repro.core.pipeline import PipelineOptions
from repro.sim.metrics import Recorder
from repro.server import VizServer
from repro.workloads import (
    TrafficGenerator,
    fig1_dashboard,
    fig2_dashboard,
    flights_model,
    generate_flights,
)

from .conftest import record

HERD_ROWS = 8_000
#: Inflated per-unit work (see conftest.BENCH_WORK_UNIT_S) so the cold
#: render is slow enough that a herd genuinely overlaps it.
HERD_WORK_UNIT_S = 1.0e-6
VISITS_PER_VIEWER = 3
VIEWER_COUNTS = (2, 8)

DATASET = generate_flights(HERD_ROWS, seed=7)


def _traffic(n_viewers: int):
    """A seeded loads-only stream: Zipf dashboard popularity, many users."""
    generator = TrafficGenerator(
        [fig1_dashboard(), fig2_dashboard()],
        n_users=n_viewers * 8,  # mostly-distinct viewers: no session reuse
        seed=77,
        interaction_rate=0.0,
    )
    return list(generator.events(n_viewers * VISITS_PER_VIEWER))


def _run_arm(n_viewers: int, *, coalescing: bool):
    """Drive one cold server with K viewer threads; return measurements."""
    db = DATASET.load_into_simdb(
        ServerProfile(
            name="public", workers=4, work_unit_time_s=HERD_WORK_UNIT_S
        ),
        name="public",
    )
    server = VizServer(
        2,
        SimDbDataSource(db),
        flights_model(),
        store=KeyValueStore(latency_s=0.0),
        options=PipelineOptions(enable_coalescing=coalescing),
    )
    server.register_dashboard(fig1_dashboard())
    server.register_dashboard(fig2_dashboard())

    events = _traffic(n_viewers)
    barrier = threading.Barrier(n_viewers)

    def viewer(tid: int):
        latencies, renders = [], []
        barrier.wait()  # the herd arrives together, cold
        for event in events[tid::n_viewers]:
            started = time.perf_counter()
            _node, result = server.load(event.user, event.dashboard)
            latencies.append(time.perf_counter() - started)
            renders.append((event.dashboard, result))
        return latencies, renders

    with ThreadPoolExecutor(max_workers=n_viewers) as tp:
        outcomes = list(tp.map(viewer, range(n_viewers)))

    latencies = sorted(x for lat, _r in outcomes for x in lat)
    renders = [item for _lat, r in outcomes for item in r]
    summary = server.cache_summary()
    return {
        "backend_queries": db.stats.queries,
        "coalesce_joins": summary["coalesce_joins"],
        "p50_ms": latencies[len(latencies) // 2] * 1000,
        "p95_ms": latencies[int(len(latencies) * 0.95)] * 1000,
        "renders": renders,
    }


def _reference_tables(renders):
    """First render per dashboard; also checks intra-arm consistency."""
    reference: dict[str, dict] = {}
    for dashboard, result in renders:
        assert not result.degraded
        zones = reference.setdefault(dashboard, result.zone_tables)
        assert zones.keys() == result.zone_tables.keys()
        for zone, table in result.zone_tables.items():
            assert table.equals_unordered(zones[zone]), (
                f"{dashboard}/{zone}: viewers saw different data"
            )
    return reference


def test_e20_herd_traffic(benchmark):
    recorder = Recorder(
        "E20: K-viewer cold herd on a 2-node VizServer (loads-only Zipf)",
        columns=[
            "coalescing",
            "viewers",
            "backend_queries",
            "coalesce_joins",
            "p50_ms",
            "p95_ms",
        ],
    )
    arms: dict[tuple[bool, int], dict] = {}
    for coalescing in (False, True):
        for n_viewers in VIEWER_COUNTS:
            arm = _run_arm(n_viewers, coalescing=coalescing)
            arms[(coalescing, n_viewers)] = arm
            recorder.add(
                "on" if coalescing else "off",
                n_viewers,
                arm["backend_queries"],
                arm["coalesce_joins"],
                arm["p50_ms"],
                arm["p95_ms"],
            )
    record("e20_herd_traffic", recorder)

    off, on = arms[(False, 8)], arms[(True, 8)]
    # The herd coalesced: followers joined in-flight leaders...
    assert on["coalesce_joins"] > 0
    assert arms[(False, 2)]["coalesce_joins"] == 0
    # ...cutting backend queries by >= 2x at K=8...
    assert off["backend_queries"] >= 2 * on["backend_queries"], (
        f"expected >=2x cut, got {off['backend_queries']} -> "
        f"{on['backend_queries']}"
    )
    # ...with every viewer (and both arms) seeing identical zones.
    reference_on = _reference_tables(on["renders"])
    reference_off = _reference_tables(off["renders"])
    assert reference_on.keys() == reference_off.keys()
    for dashboard, zones in reference_on.items():
        for zone, table in zones.items():
            assert table.equals_unordered(reference_off[dashboard][zone]), (
                f"{dashboard}/{zone}: coalescing changed the answer"
            )

    # Representative timed path: a fresh tiny herd, coalescing on.
    result = benchmark.pedantic(
        lambda: _run_arm(2, coalescing=True)["p50_ms"], rounds=2, iterations=1
    )
    assert result > 0.0
