"""E2 (Figure 2): interactive filter actions and the selection cascade.

Paper behaviour to reproduce: selecting HNL-OGG after an AA carrier
selection triggers a *second* iteration that re-queries the Airline Name
zone without the carrier filter, because AA vanished from the carrier
zone. Expected shape: the cascading interaction runs exactly 2 iterations
and drops exactly the stale selection; simple interactions run 1.
"""

import pytest

from repro.core.pipeline import QueryPipeline
from repro.dashboard import DashboardSession
from repro.sim.metrics import Recorder
from repro.workloads import fig2_dashboard

from .conftest import make_backend, record


@pytest.fixture(scope="module")
def backend(dataset):
    return make_backend(dataset)


def _fresh_session(source, model):
    session = DashboardSession(fig2_dashboard(), QueryPipeline(source, model))
    session.render()
    return session


def test_e2_action_cascade(benchmark, dataset, model, backend):
    _db, source = backend
    session = _fresh_session(source, model)
    simple = session.select("market", ["LAX-SFO"])
    with_carrier = session.select("carrier", ["AA"])
    cascade = session.select("market", ["HNL-OGG"])

    recorder = Recorder(
        "E2: Fig-2 interactive filter actions",
        columns=["interaction", "iterations", "queries", "remote", "dropped", "elapsed_ms"],
    )
    for label, r in (
        ("select market LAX-SFO", simple),
        ("select carrier AA", with_carrier),
        ("select market HNL-OGG (cascade)", cascade),
    ):
        recorder.add(label, r.iterations, r.total_queries, r.remote_queries,
                     len(r.dropped_selections), r.elapsed_s * 1000)
    record("e2_action_cascade", recorder)

    assert simple.iterations == 1
    assert cascade.iterations == 2
    assert ("carrier", "AA") in cascade.dropped_selections
    assert session.zone_tables["carrier"].to_pydict()["code"] == ["AS"]

    def run_cascade():
        s = _fresh_session(source, model)
        s.select("market", ["LAX-SFO"])
        s.select("carrier", ["AA"])
        return s.select("market", ["HNL-OGG"])

    result = benchmark.pedantic(run_cascade, rounds=3, iterations=1)
    assert result.iterations == 2
