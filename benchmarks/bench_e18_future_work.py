"""E18 (ablation; §7 and §4.2.2 future work): prefetching and the
order-preserving parallel merge.

* "dashboard generation could become more responsive if requested data
  has been accurately predicted and prefetched" (DICE [46]) — measured as
  the latency of the user's *next* interaction with and without the
  prefetcher warming the cache in the background.
* "we will explore how repartitioning and order-preservation can benefit
  the performance" — the PMergeSorted operator vs Exchange + serial Sort,
  replayed in virtual time.
"""

import pytest

from repro.core.pipeline import QueryPipeline
from repro.core.prefetch import InteractionPrefetcher
from repro.dashboard import DashboardSession
from repro.sim import MachineModel, simulate_plan
from repro.sim.metrics import Recorder, time_call
from repro.tde.optimizer.parallel import PlannerOptions
from repro.workloads import fig2_dashboard
from tests.conftest import build_flights_engine

from .conftest import make_backend, record


def _fresh_session(dataset, model, name: str):
    _db, source = make_backend(dataset, name=name)
    session = DashboardSession(fig2_dashboard(), QueryPipeline(source, model))
    session.render()
    return session


def test_e18a_prefetching(benchmark, dataset, model):
    # Without prefetching: the next click goes to the backend.
    plain = _fresh_session(dataset, model, "noprefetch")
    plain.select("market", ["LAX-SFO"])
    t_cold, cold = time_call(lambda: plain.select("market", ["JFK-BOS"]), repeat=1)

    # With prefetching: the predictor warms the top candidate markets.
    warm = _fresh_session(dataset, model, "prefetch")
    prefetcher = InteractionPrefetcher(background=True, max_candidates=4)
    warm.select("market", ["LAX-SFO"])
    prefetcher.observe(warm, "market", ("LAX-SFO",))
    prefetcher.wait(timeout=30)
    t_warm, warmed = time_call(lambda: warm.select("market", ["JFK-BOS"]), repeat=1)

    recorder = Recorder(
        "E18a: next-interaction latency with/without prefetching",
        columns=["configuration", "remote", "elapsed_ms"],
    )
    recorder.add("no prefetch", cold.remote_queries, t_cold * 1000)
    recorder.add("DICE-style prefetch", warmed.remote_queries, t_warm * 1000)
    record("e18a_prefetching", recorder)

    assert cold.remote_queries > 0
    assert warmed.remote_queries == 0
    assert t_warm < t_cold / 5
    # Both paths show the user the same data.
    for zone in ("carrier", "airline_name"):
        assert plain.zone_tables[zone].approx_equals(
            warm.zone_tables[zone], ordered=False
        )

    def prefetched_click():
        session = _fresh_session(dataset, model, "prefetch-bench")
        pf = InteractionPrefetcher(background=False, max_candidates=4)
        session.select("market", ["LAX-SFO"])
        pf.observe(session, "market", ("LAX-SFO",))
        return session.select("market", ["JFK-BOS"])

    result = benchmark.pedantic(prefetched_click, rounds=2, iterations=1)
    assert result.remote_queries == 0


def test_e18b_order_preserving_merge(benchmark):
    engine = build_flights_engine(n=200_000, max_dop=8, min_work_per_fraction=16_000)
    query = (
        '(order ((delay desc) (date_ asc) (carrier_id asc) (market_id asc)'
        ' (distance asc)) (select (> delay 10) (scan "Extract.flights")))'
    )
    base = dict(max_dop=8, min_work_per_fraction=16_000)
    # Merge is default-on now; this ablation forces the legacy close-with-
    # Exchange-then-serial-Sort arm explicitly.
    exchange_sort = engine.plan(
        query, options=PlannerOptions(**base, enable_order_preserving_merge=False)
    )
    merge_sort = engine.plan(
        query, options=PlannerOptions(**base, enable_order_preserving_merge=True)
    )

    recorder = Recorder(
        "E18b: Exchange+serial Sort vs parallel Sort+merge (virtual time)",
        columns=["cores", "exchange_sort_ms", "merge_sort_ms", "speedup"],
    )
    speedups = []
    for cores in (1, 2, 4, 8):
        machine = MachineModel(cores=cores)
        a = simulate_plan(exchange_sort, machine).elapsed_s
        b = simulate_plan(merge_sort, machine).elapsed_s
        recorder.add(cores, a * 1000, b * 1000, a / b)
        speedups.append(a / b)
    record("e18b_order_preserving_merge", recorder)

    # The sort is the bottleneck: parallel local sorts + cheap merge win
    # on multicore, and the advantage grows with cores.
    assert speedups[-1] > 1.5
    assert speedups[-1] > speedups[0]

    # Results are identical and globally ordered (real execution).
    from repro.tde.exec.physical import ExecContext, execute_to_table

    small = build_flights_engine(n=8_000, max_dop=4, min_work_per_fraction=500)
    q_small = (
        '(order ((delay desc) (date_ asc) (carrier_id asc) (market_id asc)'
        ' (distance asc)) (select (> delay 10) (scan "Extract.flights")))'
    )
    merged = execute_to_table(
        small.plan(
            q_small,
            options=PlannerOptions(
                max_dop=4, min_work_per_fraction=500, enable_order_preserving_merge=True
            ),
        ),
        ExecContext(),
    )
    assert merged.equals(small.query_naive(q_small))

    benchmark(lambda: simulate_plan(merge_sort, MachineModel(cores=8)).elapsed_s)
