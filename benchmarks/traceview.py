"""traceview: render exported trace JSONL as timelines and critical paths.

The serving stack exports retained traces (the tail-based
:class:`~repro.obs.sampling.TraceBuffer`) as JSONL — one
:meth:`~repro.obs.trace.Span.to_dict` tree per line; E22 writes
``benchmarks/_results/traces_e22.jsonl``. This CLI is the operator's
view over such a file:

* the **aggregate report** — which component dominates the slow tail's
  critical paths, and the most expensive component-path signatures;
* a **per-trace timeline** (``--trace <id>``) — the span tree with
  offsets, durations and causal links, followed by that trace's
  critical path with each segment charged to a component.

Usage::

    python benchmarks/traceview.py benchmarks/_results/traces_e22.jsonl
    python benchmarks/traceview.py traces.jsonl --trace 0000000000000007
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

if __package__ in (None, ""):  # running as a script: make src importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.critpath import aggregate_report, critical_path, link_resolver
from repro.obs.trace import Span, stitch


def load_traces(path: Path) -> list[Span]:
    """Read one span tree per JSONL line; stitch cross-node fragments."""
    roots: list[Span] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            roots.append(Span.from_dict(json.loads(line)))
    return stitch(roots)


# ---------------------------------------------------------------------- #
# Rendering
# ---------------------------------------------------------------------- #
def render_timeline(root: Span) -> str:
    """The span tree as an indented timeline (offsets relative to root)."""
    lines = [f"trace {root.trace_id}  wall {root.duration_s * 1000:.3f}ms"]

    def emit(span: Span, depth: int) -> None:
        offset_ms = (span.start_s - root.start_s) * 1000
        links = ""
        if span.links:
            links = "  " + " ".join(
                f"~{link.kind}->{link.trace_id}" for link in span.links
            )
        lines.append(
            "  " * (depth + 1)
            + f"[+{offset_ms:9.3f}ms] {span.name}  {span.duration_s * 1000:.3f}ms"
            + links
        )
        for child in span.children:
            emit(child, depth + 1)

    emit(root, 0)
    return "\n".join(lines)


def render_critical_path(root: Span, roots: list[Span]) -> str:
    """The trace's critical path, one charged segment per line."""
    segments = critical_path(root, resolve_link=link_resolver(roots))
    lines = ["critical path:"]
    for seg in segments:
        via = f"  (via {seg.via})" if seg.via else ""
        lines.append(
            f"  {seg.duration_s * 1000:9.3f}ms  {seg.component:<10} {seg.name}{via}"
        )
    total = sum(seg.duration_s for seg in segments)
    lines.append(f"  {total * 1000:9.3f}ms  total (= trace wall)")
    return "\n".join(lines)


def render_report(roots: list[Span], *, top: int = 5, percentile: float = 0.95) -> str:
    """The aggregate what-dominates-the-tail view over all traces."""
    report = aggregate_report(roots, percentile=percentile)
    lines = [
        f"traces: {report['traces']}  analyzed (>= p{int(percentile * 100)}"
        f" = {report['threshold_s'] * 1000:.3f}ms): {report['analyzed']}",
        "",
        "component         self_s      share",
        "---------------  ---------  -------",
    ]
    for row in report["components"]:
        lines.append(
            f"{row['component']:<15}  {row['self_s']:9.4f}  {row['share']:6.1%}"
        )
    if report["dominant"] is not None:
        lines.append(f"\ndominant: {report['dominant']}")
    lines.append("\ntop critical-path signatures:")
    for bucket in report["top_paths"][:top]:
        lines.append(
            f"  {bucket['total_s']:9.4f}s  x{bucket['count']:<4} {bucket['path']}"
        )
    return "\n".join(lines)


def render(
    roots: list[Span],
    *,
    trace_id: str | None = None,
    top: int = 5,
    percentile: float = 0.95,
) -> str:
    """Full report text: aggregate view plus the focused/slowest trace."""
    if not roots:
        return "(no traces)"
    if trace_id is not None:
        focus = [r for r in roots if r.trace_id == trace_id]
        if not focus:
            known = ", ".join(sorted({r.trace_id for r in roots})[:10])
            return f"no trace {trace_id!r} in file (known: {known}, ...)"
        root = focus[0]
        return render_timeline(root) + "\n" + render_critical_path(root, roots)
    slowest = max(roots, key=lambda r: (r.duration_s, r.trace_id))
    return "\n".join(
        [
            render_report(roots, top=top, percentile=percentile),
            "",
            f"slowest trace ({slowest.trace_id}):",
            render_timeline(slowest),
            render_critical_path(slowest, roots),
        ]
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", type=Path, help="trace JSONL file")
    parser.add_argument("--trace", help="render one trace id instead of the report")
    parser.add_argument("--top", type=int, default=5, help="top path signatures")
    parser.add_argument(
        "--percentile", type=float, default=0.95, help="slow-tail percentile"
    )
    args = parser.parse_args(argv)
    if not args.path.exists():
        print(f"traceview: no such file {args.path}", file=sys.stderr)
        return 1
    roots = load_traces(args.path)
    print(render(roots, trace_id=args.trace, top=args.top, percentile=args.percentile))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
