"""Shared benchmark fixtures and result recording.

Every experiment writes the series it measured (the paper-shaped rows)
to ``benchmarks/_results/<experiment>.txt`` in addition to printing, so
the numbers survive pytest's output capture; EXPERIMENTS.md points at
these files.

Since PR 1 each ``record()`` call also writes a machine-readable
``benchmarks/_results/BENCH_<experiment>.json`` — the measured series
plus (when the experiment captured one) a per-phase trace summary from
:mod:`repro.obs` — so the perf trajectory across PRs can be diffed by
tooling instead of by eyeballing text tables.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import pytest

from repro.connectors import SimDbDataSource
from repro.connectors.simdb import ServerProfile, SimulatedDatabase
from repro.expr.ast import AggExpr, ColumnRef
from repro.obs import SCHEMA_VERSION, PerformanceRecording
from repro.queries import QuerySpec
from repro.sim.metrics import Recorder
from repro.workloads import flights_model, generate_flights

RESULTS_DIR = Path(__file__).parent / "_results"

#: Fact-table size used by the pipeline-level experiments. Big enough for
#: realistic service times, small enough to keep the harness quick.
PIPELINE_ROWS = 20_000

#: Benchmark backends run with inflated per-unit work so that the
#: *modeled* service time dominates the (GIL-bound) real execution the
#: simulated server performs for correctness — otherwise concurrency
#: effects would be drowned out on a single-core host.
BENCH_WORK_UNIT_S = 1.5e-6

COUNT = AggExpr("count")
SUM_DELAY = AggExpr("sum", ColumnRef("dep_delay"))
AVG_DELAY = AggExpr("avg", ColumnRef("dep_delay"))
AVG_ARR_DELAY = AggExpr("avg", ColumnRef("arr_delay"))


def record(
    name: str,
    recorder: Recorder,
    *,
    trace: PerformanceRecording | dict[str, Any] | None = None,
) -> None:
    """Print the series; persist text + BENCH_<name>.json artifacts.

    ``trace`` (a :class:`PerformanceRecording` captured around one
    representative run, or an equivalent dict) attaches the per-phase
    latency attribution to the JSON so regressions can be localized.
    """
    recorder.emit()
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(recorder.render() + "\n")
    if isinstance(trace, PerformanceRecording):
        trace = {
            "phases": trace.phase_summary(),
            "metrics": trace.metrics.snapshot(),
            "events": trace.event_log.to_list(),
            "event_counts": trace.event_log.kinds(),
        }
    payload = {
        "schema_version": SCHEMA_VERSION,
        "experiment": name,
        "series": recorder.to_dict(),
        "trace": trace,
    }
    (RESULTS_DIR / f"BENCH_{name}.json").write_text(
        json.dumps(payload, indent=2, default=str) + "\n"
    )


@pytest.fixture(scope="session")
def dataset():
    return generate_flights(PIPELINE_ROWS, seed=42)


@pytest.fixture(scope="session")
def model():
    return flights_model()


def make_backend(dataset, profile: ServerProfile | None = None, name: str = "warehouse"):
    """A fresh simulated warehouse (fresh caches/stats per experiment)."""
    if profile is None:
        profile = ServerProfile(work_unit_time_s=BENCH_WORK_UNIT_S)
    db = dataset.load_into_simdb(profile, name=name)
    return db, SimDbDataSource(db)


def spec(**kwargs) -> QuerySpec:
    return QuerySpec("faa", **kwargs)
