"""Shared benchmark fixtures and result recording.

Every experiment writes the series it measured (the paper-shaped rows)
to ``benchmarks/_results/<experiment>.txt`` in addition to printing, so
the numbers survive pytest's output capture; EXPERIMENTS.md points at
these files.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.connectors import SimDbDataSource
from repro.connectors.simdb import ServerProfile, SimulatedDatabase
from repro.expr.ast import AggExpr, ColumnRef
from repro.queries import QuerySpec
from repro.sim.metrics import Recorder
from repro.workloads import flights_model, generate_flights

RESULTS_DIR = Path(__file__).parent / "_results"

#: Fact-table size used by the pipeline-level experiments. Big enough for
#: realistic service times, small enough to keep the harness quick.
PIPELINE_ROWS = 20_000

#: Benchmark backends run with inflated per-unit work so that the
#: *modeled* service time dominates the (GIL-bound) real execution the
#: simulated server performs for correctness — otherwise concurrency
#: effects would be drowned out on a single-core host.
BENCH_WORK_UNIT_S = 1.5e-6

COUNT = AggExpr("count")
SUM_DELAY = AggExpr("sum", ColumnRef("dep_delay"))
AVG_DELAY = AggExpr("avg", ColumnRef("dep_delay"))
AVG_ARR_DELAY = AggExpr("avg", ColumnRef("arr_delay"))


def record(name: str, recorder: Recorder) -> None:
    """Print the series and persist it under benchmarks/_results/."""
    recorder.emit()
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(recorder.render() + "\n")


@pytest.fixture(scope="session")
def dataset():
    return generate_flights(PIPELINE_ROWS, seed=42)


@pytest.fixture(scope="session")
def model():
    return flights_model()


def make_backend(dataset, profile: ServerProfile | None = None, name: str = "warehouse"):
    """A fresh simulated warehouse (fresh caches/stats per experiment)."""
    if profile is None:
        profile = ServerProfile(work_unit_time_s=BENCH_WORK_UNIT_S)
    db = dataset.load_into_simdb(profile, name=name)
    return db, SimDbDataSource(db)


def spec(**kwargs) -> QuerySpec:
    return QuerySpec("faa", **kwargs)
