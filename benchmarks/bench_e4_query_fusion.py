"""E4 (§3.4): query fusion.

"Since it is quite common for different zones of a dashboard to share the
same filters but request different columns, the reduction might be
substantial. More importantly processing of a fused query is often much
more efficient ... as the underlying relation needs to be computed only
once." Expected shape: with N zones over the same filtered relation,
fusion sends 1 remote query instead of N and wall time grows far slower
with N.
"""

import datetime as dt

import pytest

from repro.core.pipeline import PipelineOptions, QueryPipeline
from repro.expr.ast import AggExpr, ColumnRef
from repro.queries import RangeFilter
from repro.sim.metrics import Recorder

from .conftest import COUNT, make_backend, record, spec

_MEASURE_POOL = [
    ("n", COUNT),
    ("dep", AggExpr("sum", ColumnRef("dep_delay"))),
    ("arr", AggExpr("sum", ColumnRef("arr_delay"))),
    ("lo", AggExpr("min", ColumnRef("dep_delay"))),
    ("hi", AggExpr("max", ColumnRef("dep_delay"))),
    ("dist", AggExpr("sum", ColumnRef("distance"))),
    ("avg_dep", AggExpr("avg", ColumnRef("dep_delay"))),
    ("avg_dist", AggExpr("avg", ColumnRef("distance"))),
    ("far", AggExpr("max", ColumnRef("distance"))),
    ("near", AggExpr("min", ColumnRef("distance"))),
    ("hours", AggExpr("sum", ColumnRef("hour"))),
    ("avg_arr", AggExpr("avg", ColumnRef("arr_delay"))),
    ("u", AggExpr("count_distinct", ColumnRef("market_id"))),
    ("mh", AggExpr("max", ColumnRef("hour"))),
    ("lh", AggExpr("min", ColumnRef("hour"))),
    ("ad", AggExpr("avg", ColumnRef("hour"))),
]


def _zone_batch(n_zones: int):
    """N zones sharing dims+filters, each asking for its own measure."""
    shared_filter = (RangeFilter("date_", dt.date(2014, 2, 1), dt.date(2014, 12, 1)),)
    return [
        spec(
            dimensions=("carrier_name",),
            measures=(_MEASURE_POOL[i],),
            filters=shared_filter,
        )
        for i in range(n_zones)
    ]


def _options(fusion: bool) -> PipelineOptions:
    return PipelineOptions(
        enable_intelligent_cache=False,
        enable_literal_cache=False,
        enable_batch_graph=False,
        enrich_for_reuse=False,
        concurrent=False,  # isolate fusion from concurrency effects
        enable_fusion=fusion,
    )


def test_e4_query_fusion(benchmark, dataset, model):
    _db, source = make_backend(dataset)
    recorder = Recorder(
        "E4: query fusion (zones sharing filters, distinct projections)",
        columns=["zones", "remote (off)", "remote (on)", "ms (off)", "ms (on)", "speedup"],
    )
    shapes = []
    for n_zones in (2, 4, 8, 16):
        batch = _zone_batch(n_zones)
        off = QueryPipeline(source, model, options=_options(False)).run_batch(batch)
        on = QueryPipeline(source, model, options=_options(True)).run_batch(batch)
        for s in batch:
            assert off.table_for(s).approx_equals(on.table_for(s), ordered=False)
        recorder.add(
            n_zones,
            off.remote_queries,
            on.remote_queries,
            off.elapsed_s * 1000,
            on.elapsed_s * 1000,
            off.elapsed_s / on.elapsed_s,
        )
        shapes.append((n_zones, off, on))
    record("e4_query_fusion", recorder)

    for n_zones, off, on in shapes:
        assert off.remote_queries == n_zones
        assert on.remote_queries == 1
        assert on.elapsed_s < off.elapsed_s
    # The benefit grows with the number of fused zones.
    first_speedup = shapes[0][1].elapsed_s / shapes[0][2].elapsed_s
    last_speedup = shapes[-1][1].elapsed_s / shapes[-1][2].elapsed_s
    assert last_speedup > first_speedup

    pipeline = QueryPipeline(source, model, options=_options(True))
    result = benchmark.pedantic(
        lambda: pipeline.run_batch(_zone_batch(8)), rounds=3, iterations=1
    )
    assert result.remote_queries <= 1
