"""E21: cost and value of the serving-stack telemetry plane (§3.3, §6).

The paper's answer to "why was this dashboard slow?" is the Performance
Recorder; PR 6 adds its always-on production counterpart — per-request
latency-attribution ledgers, windowed percentiles, burn-rate SLO
monitoring and a worst-N slow-query log behind ``VizServer.statz()``.
Always-on instrumentation is only viable if it is nearly free, so this
experiment measures both sides:

* **Overhead** — the warm-load path (E1's steady state: cache-hit
  renders for a stream of distinct viewers) and the cold-herd path
  (E20's coalesced stampede), each run with telemetry off and on.
  Target: <3% added p95 when enabled (the committed baseline documents
  the measured number); the hard assertion is deliberately generous
  (CI runners are noisy) and guards against the failure mode that
  matters — telemetry turning a cheap request into an expensive one.
* **Value** — a deterministic injected-fault burst on virtual time: a
  scripted :class:`~repro.faults.plan.FaultRule` opens a 1s-latency
  outage window against the backend, and the burn-rate SLO monitor must
  breach during the outage and recover after it, emitting
  ``slo.breach`` / ``slo.recovered`` decision events at reproducible
  virtual timestamps.

The telemetry-on servers' ``statz()`` snapshots (plus the SLO demo
timeline) are written to ``_results/statz_e21.json`` so CI can archive
what the operator-facing view actually looked like for this build.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro import obs
from repro.connectors import SimDbDataSource
from repro.connectors.simdb import ServerProfile
from repro.core.cache.distributed import KeyValueStore
from repro.faults.clock import VirtualTimeClock
from repro.faults.injector import FaultyDataSource
from repro.faults.plan import FaultPlan, FaultRule
from repro.obs.window import SLOObjective, Telemetry, TelemetryOptions
from repro.server import VizServer
from repro.sim.metrics import Recorder
from repro.workloads import (
    TrafficGenerator,
    fig1_dashboard,
    fig2_dashboard,
    flights_model,
    generate_flights,
)

from .conftest import BENCH_WORK_UNIT_S, RESULTS_DIR, record

DATASET_ROWS = 12_000
WARM_LOADS = 100
HERD_VIEWERS = 4
HERD_VISITS = 3
#: Warm cache-hit renders are a few milliseconds at worst; only
#: genuinely slow requests (the cold primer, herd stampede losers)
#: enter the slow log, so the timed warm loop never pays the EXPLAIN
#: capture cost — the admission threshold doing exactly its job.
SLOW_THRESHOLD_S = 0.05
#: Generous hard bound on enabled/disabled wall-time ratio; the <3%
#: p95 target is documented by the committed baseline, not asserted,
#: because shared runners cannot resolve 3% on sub-ms paths.
MAX_OVERHEAD_RATIO = 1.5

DATASET = generate_flights(DATASET_ROWS, seed=21)
WARM_DASHBOARD = fig2_dashboard()


def _telemetry_options() -> TelemetryOptions:
    return TelemetryOptions(slowlog_capacity=8, slow_threshold_s=SLOW_THRESHOLD_S)


def _make_server(*, telemetry: bool, nodes: int = 1) -> VizServer:
    db = DATASET.load_into_simdb(
        ServerProfile(name="telemetered", workers=4, work_unit_time_s=BENCH_WORK_UNIT_S),
        name="telemetered",
    )
    server = VizServer(
        nodes,
        SimDbDataSource(db),
        flights_model(),
        store=KeyValueStore(latency_s=0.0),
        telemetry=_telemetry_options() if telemetry else None,
    )
    server.register_dashboard(fig1_dashboard())
    server.register_dashboard(fig2_dashboard())
    return server


# ---------------------------------------------------------------------- #
# Overhead arms
# ---------------------------------------------------------------------- #
def _warm_arms() -> tuple[dict[bool, VizServer], dict[bool, list[float]]]:
    """E1's steady state: distinct viewers loading a warm dashboard.

    The off/on loads interleave in one loop so slow clock drift (CPU
    frequency, scheduler pressure) hits both arms equally instead of
    whichever arm ran second.
    """
    servers = {False: _make_server(telemetry=False), True: _make_server(telemetry=True)}
    latencies: dict[bool, list[float]] = {False: [], True: []}
    for enabled, server in servers.items():
        server.load("primer", WARM_DASHBOARD.name)  # cold fill (slow-loggable)
    for i in range(WARM_LOADS):
        for enabled, server in servers.items():
            started = time.perf_counter()
            server.load(f"viewer{i}", WARM_DASHBOARD.name)
            latencies[enabled].append(time.perf_counter() - started)
    return servers, {enabled: sorted(lat) for enabled, lat in latencies.items()}


def _herd_arm(*, telemetry: bool) -> tuple[VizServer, list[float]]:
    """E20's cold stampede: K viewers arrive together, coalescing on."""
    server = _make_server(telemetry=telemetry, nodes=2)
    generator = TrafficGenerator(
        [fig1_dashboard(), fig2_dashboard()],
        n_users=HERD_VIEWERS * 8,
        seed=77,
        interaction_rate=0.0,
    )
    events = list(generator.events(HERD_VIEWERS * HERD_VISITS))
    barrier = threading.Barrier(HERD_VIEWERS)

    def viewer(tid: int) -> list[float]:
        barrier.wait()
        out = []
        for event in events[tid::HERD_VIEWERS]:
            started = time.perf_counter()
            _node, result = server.load(event.user, event.dashboard)
            out.append(time.perf_counter() - started)
            assert not result.degraded
        return out

    with ThreadPoolExecutor(max_workers=HERD_VIEWERS) as tp:
        latencies = sorted(x for lats in tp.map(viewer, range(HERD_VIEWERS)) for x in lats)
    return server, latencies


def _row(latencies: list[float]) -> tuple[int, float, float, float]:
    return (
        len(latencies),
        latencies[len(latencies) // 2] * 1000,
        latencies[int(len(latencies) * 0.95)] * 1000,
        sum(latencies) * 1000,
    )


# ---------------------------------------------------------------------- #
# SLO burn demo: scripted fault burst on virtual time
# ---------------------------------------------------------------------- #
OUTAGE_FROM_S = 120.0
OUTAGE_UNTIL_S = 160.0


def _slo_burn_demo() -> dict:
    """Deterministic breach→recovery driven by the real fault injector."""
    clock = VirtualTimeClock()
    plan = FaultPlan.scripted(
        [
            FaultRule(
                "latency",
                op="connect",
                t_from=OUTAGE_FROM_S,
                t_until=OUTAGE_UNTIL_S,
                latency_s=1.0,
            )
        ],
        clock=clock,
    )
    db = DATASET.load_into_simdb(ServerProfile(time_scale=0), name="burndemo")
    faulty = FaultyDataSource(SimDbDataSource(db), plan, clock=clock)
    telemetry = Telemetry(
        TelemetryOptions(slo=SLOObjective()), clock=clock
    )
    timeline = {"breach_t": None, "recover_t": None}

    def tick() -> None:
        started = clock.monotonic()
        conn = faulty.connect()
        conn.close()
        elapsed = clock.monotonic() - started  # 1.0s virtual during the outage
        before = telemetry.slo.state
        telemetry.observe(elapsed, dimensions={"backend": faulty.name})
        after = telemetry.slo.state
        if (before, after) == ("ok", "breach"):
            timeline["breach_t"] = clock.monotonic()
        elif (before, after) == ("breach", "ok"):
            timeline["recover_t"] = clock.monotonic()
        clock.advance(1.0)

    with obs.recording(clock=clock.monotonic) as rec:
        while clock.monotonic() < OUTAGE_FROM_S:  # healthy baseline traffic
            tick()
        assert telemetry.slo.state == "ok"
        while clock.monotonic() < OUTAGE_UNTIL_S:  # the outage window
            tick()
        assert telemetry.slo.state == "breach", (
            "injected latency burst did not trip the burn-rate SLO"
        )
        for _ in range(120):  # healthy again; the fast window drains
            tick()
        event_kinds = rec.event_log.kinds()

    monitor = telemetry.slo
    assert monitor.state == "ok", "SLO did not recover after the outage ended"
    assert monitor.breaches == 1
    assert event_kinds.get("slo.breach") == 1
    assert event_kinds.get("slo.recovered") == 1
    assert event_kinds.get("fault.injected", 0) == faulty.injected == len(plan.schedule)
    # The whole timeline is virtual: re-runs land on identical stamps.
    assert OUTAGE_FROM_S < timeline["breach_t"] <= OUTAGE_UNTIL_S
    assert timeline["recover_t"] > OUTAGE_UNTIL_S
    return {
        "objective": monitor.snapshot(),
        "breach_t": timeline["breach_t"],
        "recover_t": timeline["recover_t"],
        "faults_injected": faulty.injected,
        "event_counts": event_kinds,
    }


def _check_slowlog(server: VizServer) -> int:
    """Slow-log entries carry conserved ledgers; returns the entry count."""
    snap = server.statz()["slowlog"]
    assert snap["entries"], "cold primer load should have been slow-logged"
    for entry in snap["entries"]:
        for zone, ledger in entry["ledgers"].items():
            total = sum(ledger["phases"].values())
            assert abs(total - ledger["wall_s"]) < 1e-6, (
                f"{entry['key']}/{zone}: phases sum {total} != wall {ledger['wall_s']}"
            )
    return len(snap["entries"])


def test_e21_telemetry(benchmark):
    recorder = Recorder(
        "E21: telemetry overhead (off/on) and SLO burn detection",
        columns=["arm", "requests", "p50_ms", "p95_ms", "total_ms"],
    )
    _warm_arms()  # throwaway: warm code paths before timing

    warm_servers, warm_lat = _warm_arms()
    herd: dict[bool, tuple[VizServer, list[float]]] = {}
    for enabled in (False, True):
        herd[enabled] = _herd_arm(telemetry=enabled)
        suffix = "on" if enabled else "off"
        recorder.add(f"warm_{suffix}", *_row(warm_lat[enabled]))
        recorder.add(f"herd_{suffix}", *_row(herd[enabled][1]))

    warm_ratio = sum(warm_lat[True]) / max(sum(warm_lat[False]), 1e-9)
    herd_ratio = sum(herd[True][1]) / max(sum(herd[False][1]), 1e-9)
    # Telemetry must never change what a request costs in kind — only
    # add bookkeeping noise. The baseline documents the <3% p95 target.
    assert warm_ratio < MAX_OVERHEAD_RATIO, (
        f"telemetry overhead on warm loads: {warm_ratio:.2f}x"
    )
    assert herd_ratio < MAX_OVERHEAD_RATIO, (
        f"telemetry overhead on herd traffic: {herd_ratio:.2f}x"
    )

    # The enabled servers expose the full operator view...
    warm_statz = warm_servers[True].statz()
    assert warm_statz["telemetry_enabled"]
    assert warm_statz["requests"]["total"] == WARM_LOADS + 1
    assert warm_statz["window"]["count"] > 0
    assert warm_statz["slo"]["state"] == "ok"
    slowlogged = _check_slowlog(warm_servers[True])
    # ...while the disabled ones report only the cheap liveness facts.
    off_statz = warm_servers[False].statz()
    assert not off_statz["telemetry_enabled"]
    assert "window" not in off_statz

    slo_demo = _slo_burn_demo()

    record(
        "e21_telemetry",
        recorder,
        trace={
            "warm_overhead_ratio": warm_ratio,
            "herd_overhead_ratio": herd_ratio,
            "slowlog_entries": slowlogged,
            "slo_demo": slo_demo,
        },
    )
    snapshot = {
        "experiment": "e21_telemetry",
        "vizserver_warm": warm_statz,
        "vizserver_herd": herd[True][0].statz(),
        "slo_demo": slo_demo,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "statz_e21.json").write_text(
        json.dumps(snapshot, indent=2, default=str) + "\n"
    )

    # Representative timed path: one interleaved warm load stream.
    result = benchmark.pedantic(
        lambda: _warm_arms()[1][True][-1] * 1000, rounds=2, iterations=1
    )
    assert result > 0.0
