"""E22: causal tracing — overhead bounds and critical-path attribution.

PR 7 adds trace identity, cross-request causal links, tail-based
sampling and a critical-path analyzer on top of the telemetry plane.
Like always-on telemetry (E21), tracing is only shippable if its *off*
state is free and its *on* state is cheap; and it is only *useful* if
the analyzer points at the true culprit. This experiment measures both:

* **Overhead** — three interleaved warm-load arms over identical
  servers: ``base`` (no telemetry; per-request ledgers forced on so the
  comparison isolates the telemetry + tracing hooks), ``off``
  (telemetry on, tracing off — the production default), and ``on``
  (telemetry on, tracing every request into the tail-sampling buffer).
  Hard in-run bounds: tracing-off <= 1.1x base, tracing-on <= 1.5x
  base. The committed baseline's ``overhead_time_x`` columns put the
  measured ratios under perfgate (0.10 tolerance — the 1.1x bound,
  machine-independently, as drift on a ratio).
* **Attribution** — a deterministic virtual-time run where a scripted
  :class:`~repro.faults.plan.FaultRule` injects 0.5s latency into every
  backend ``execute``. The aggregate critical-path report over the
  retained traces must name ``backend`` as the dominant component, the
  per-trace critical path must conserve wall time, and two seeded runs
  must export byte-identical trace JSONL (ids, stamps, links and all).

Artifacts: ``_results/traces_e22.jsonl`` (the retained traces) and
``_results/traceview_e22.txt`` (the rendered operator report), plus the
usual ``BENCH_e22_trace_attribution.json`` series.
"""

from __future__ import annotations

import json
import time

from repro import obs
from repro.connectors import SimDbDataSource
from repro.connectors.simdb import ServerProfile
from repro.core.cache.distributed import KeyValueStore
from repro.core.pipeline import PipelineOptions
from repro.faults.clock import VirtualTimeClock
from repro.faults.injector import FaultyDataSource
from repro.faults.plan import FaultPlan, FaultRule
from repro.obs.critpath import aggregate_report, critical_path, link_resolver
from repro.obs.sampling import SamplingPolicy
from repro.obs.trace import Tracer
from repro.obs.window import TelemetryOptions
from repro.server import VizServer
from repro.sim.metrics import Recorder
from repro.workloads import (
    fig1_dashboard,
    fig2_dashboard,
    flights_model,
    generate_flights,
)

from .conftest import BENCH_WORK_UNIT_S, RESULTS_DIR, record
from .traceview import load_traces, render

DATASET_ROWS = 12_000
WARM_LOADS = 60
#: Tracing must never change what a request costs in kind. The *off*
#: bound is tight — disabled tracing is a handful of predicate checks —
#: while the *on* bound allows the real span/link bookkeeping.
MAX_OFF_RATIO = 1.1
MAX_ON_RATIO = 1.5
#: Virtual seconds injected into every backend execute in the
#: attribution run; dwarfs everything else, so the critical path must
#: land on the backend component.
INJECTED_LATENCY_S = 0.5
#: Attribution-run visit sequence: two cold loads, then warm reloads of
#: the same dashboards by later users (cache hits linking back).
ATTRIBUTION_VISITS = 6

DATASET = generate_flights(DATASET_ROWS, seed=22)
WARM_DASHBOARD = fig2_dashboard()


def _make_server(*, arm: str) -> VizServer:
    db = DATASET.load_into_simdb(
        ServerProfile(name="traced", workers=4, work_unit_time_s=BENCH_WORK_UNIT_S),
        name="traced",
    )
    telemetry = None
    options = None
    if arm == "base":
        # No telemetry plane, but ledgers forced on to match the other
        # arms' pipelines — the delta is then hooks, not bookkeeping.
        options = PipelineOptions(enable_ledger=True)
    else:
        telemetry = TelemetryOptions(
            slowlog_capacity=8,
            slow_threshold_s=0.05,
            sampling=SamplingPolicy(slow_threshold_s=0.05, sample_every_n=10),
        )
    server = VizServer(
        1,
        SimDbDataSource(db),
        flights_model(),
        store=KeyValueStore(latency_s=0.0),
        options=options,
        telemetry=telemetry,
    )
    server.register_dashboard(fig1_dashboard())
    server.register_dashboard(fig2_dashboard())
    return server


# ---------------------------------------------------------------------- #
# Overhead arms
# ---------------------------------------------------------------------- #
def _overhead_arms() -> tuple[dict[str, VizServer], dict[str, list[float]]]:
    """Interleaved warm loads across base / tracing-off / tracing-on.

    One loop drives all three servers so clock drift (CPU frequency,
    scheduler pressure) hits every arm equally. The *on* arm swaps a
    live tracer into the global slot for exactly its own loads — the
    same global the production hooks consult — so base and off keep
    running the true disabled path.
    """
    servers = {arm: _make_server(arm=arm) for arm in ("base", "off", "on")}
    tracer = Tracer()  # roots also flow to the on-server's TraceBuffer
    latencies: dict[str, list[float]] = {arm: [] for arm in servers}

    def load(arm: str, user: str) -> float:
        previous = obs.set_tracer(tracer) if arm == "on" else None
        try:
            started = time.perf_counter()
            servers[arm].load(user, WARM_DASHBOARD.name)
            return time.perf_counter() - started
        finally:
            if previous is not None:
                obs.set_tracer(previous)

    for arm in servers:
        load(arm, "primer")  # cold fill (slow-loggable, traced on `on`)
    for i in range(WARM_LOADS):
        for arm in servers:
            latencies[arm].append(load(arm, f"viewer{i}"))
    return servers, {arm: sorted(lat) for arm, lat in latencies.items()}


def _row(latencies: list[float], ratio: float) -> tuple[int, float, float, float, float]:
    return (
        len(latencies),
        latencies[len(latencies) // 2] * 1000,
        latencies[int(len(latencies) * 0.95)] * 1000,
        sum(latencies) * 1000,
        ratio,
    )


# ---------------------------------------------------------------------- #
# Attribution: injected backend slowdown on virtual time
# ---------------------------------------------------------------------- #
def _attribution_run() -> dict:
    """One seeded virtual-time serving run with a slowed backend.

    Returns the exported trace JSONL plus everything the assertions
    need; called twice to prove byte-identical determinism.
    """
    clock = VirtualTimeClock()
    plan = FaultPlan.scripted(
        [FaultRule("latency", op="execute", latency_s=INJECTED_LATENCY_S)],
        clock=clock,
    )
    db = DATASET.load_into_simdb(ServerProfile(name="slowed", time_scale=0), name="slowed")
    server = VizServer(
        1,
        FaultyDataSource(SimDbDataSource(db), plan, clock=clock),
        flights_model(),
        store=KeyValueStore(latency_s=0.0),
        # Serial execution: virtual-time sleeps from concurrent workers
        # would interleave nondeterministically; serial keeps span stamps
        # and id mint order identical across runs.
        options=PipelineOptions(concurrent=False),
        telemetry=TelemetryOptions(
            slowlog_capacity=8,
            slow_threshold_s=0.05,
            sampling=SamplingPolicy(slow_threshold_s=0.25, sample_every_n=1),
        ),
        clock=clock,
    )
    server.register_dashboard(fig1_dashboard())
    server.register_dashboard(fig2_dashboard())
    visits = ([fig1_dashboard().name, fig2_dashboard().name] * 3)[:ATTRIBUTION_VISITS]
    with obs.recording(clock=clock.monotonic):
        for i, dashboard in enumerate(visits):
            server.load(f"user{i}", dashboard)
    buffer = server.telemetry.traces
    roots = buffer.traces()
    return {
        "jsonl": buffer.export_jsonl(),
        "roots": roots,
        "report": aggregate_report(roots),
        "statz": server.statz(),
    }


def _check_attribution(run: dict) -> None:
    report = run["report"]
    assert report["analyzed"] >= 1
    # The injected 0.5s-per-execute dwarfs all real work on virtual
    # time, so the slow tail's critical paths must run through the
    # backend — the whole point of the analyzer.
    assert report["dominant"] == "backend", (
        f"expected backend to dominate, got {report['components']}"
    )
    shares = sum(row["share"] for row in report["components"])
    assert abs(shares - 1.0) < 1e-6

    # Conservation on every retained trace: the critical path exactly
    # partitions the root's wall time.
    resolve = link_resolver(run["roots"])
    for root in run["roots"]:
        segments = critical_path(root, resolve_link=resolve)
        total = sum(seg.duration_s for seg in segments)
        assert abs(total - root.duration_s) < 1e-9, (
            f"critical path of {root.trace_id} sums to {total}, "
            f"wall is {root.duration_s}"
        )

    # Cache hits link back to the populating trace: later visitors of
    # the same dashboard inherit the cold loader's work.
    link_kinds = {
        link.kind
        for root in run["roots"]
        for span in root.walk()
        for link in (span.links or ())
    }
    assert "cache.populated_by" in link_kinds, (
        f"warm reloads should link to the populating trace, saw {link_kinds}"
    )

    # The slow log names the trace and carries its critical path.
    slowlog = run["statz"]["slowlog"]["entries"]
    assert slowlog, "the cold 3s+ virtual loads must be slow-logged"
    for entry in slowlog:
        assert entry["trace_id"], "slow-log entries must carry a trace id"
        path = entry["critical_path"]
        assert path, "slow-log entries must carry a critical path"
        assert sum(seg["self_s"] for seg in path) <= entry["wall_s"] + 1e-9
    worst = max(slowlog, key=lambda e: e["wall_s"])
    assert any(
        seg["component"] == "backend" for seg in worst["critical_path"]
    )

    # statz surfaces: the p99 exemplar points at a real retained trace.
    exemplar = run["statz"]["window"]["exemplar"]
    assert exemplar["trace_id"]
    assert any(r.trace_id == exemplar["trace_id"] for r in run["roots"])
    traces_snap = run["statz"]["traces"]
    assert traces_snap["offered"] == ATTRIBUTION_VISITS
    assert traces_snap["kept"] >= 2  # at least the two cold loads


def test_e22_trace_attribution(benchmark):
    recorder = Recorder(
        "E22: tracing overhead (base/off/on) and critical-path attribution",
        columns=[
            "arm", "requests", "p50_wall", "p95_wall", "total_wall",
            "overhead_time_x",
        ],
    )
    _overhead_arms()  # throwaway: warm code paths before timing

    servers, lat = _overhead_arms()
    base_total = max(sum(lat["base"]), 1e-9)
    ratios = {arm: sum(lat[arm]) / base_total for arm in lat}
    for arm in ("base", "off", "on"):
        recorder.add(arm, *_row(lat[arm], ratios[arm]))

    assert ratios["off"] < MAX_OFF_RATIO, (
        f"tracing-off overhead vs base: {ratios['off']:.3f}x"
    )
    assert ratios["on"] < MAX_ON_RATIO, (
        f"tracing-on overhead vs base: {ratios['on']:.3f}x"
    )

    # The traced arm retained real traces; the off arms stayed empty —
    # telemetry-only deployments pay nothing for the trace plane.
    on_statz = servers["on"].statz()
    assert on_statz["traces"]["offered"] == WARM_LOADS + 1
    assert on_statz["window"]["count"] == WARM_LOADS + 1
    off_statz = servers["off"].statz()
    assert off_statz["traces"]["offered"] == 0
    assert "exemplar" not in off_statz["window"]

    # Attribution on virtual time; twice, to pin determinism end to end.
    first = _attribution_run()
    second = _attribution_run()
    _check_attribution(first)
    assert first["jsonl"] == second["jsonl"], (
        "seeded attribution runs must export byte-identical trace JSONL"
    )
    assert first["report"] == second["report"]

    RESULTS_DIR.mkdir(exist_ok=True)
    jsonl_path = RESULTS_DIR / "traces_e22.jsonl"
    jsonl_path.write_text(first["jsonl"])
    view = render(load_traces(jsonl_path), top=5)
    (RESULTS_DIR / "traceview_e22.txt").write_text(view + "\n")
    assert "dominant: backend" in view

    cold_walls = sorted(
        (r.duration_s for r in first["roots"]), reverse=True
    )[:2]
    record(
        "e22_trace_attribution",
        recorder,
        trace={
            "overhead_ratios": ratios,
            "dominant": first["report"]["dominant"],
            "components": first["report"]["components"],
            "top_paths": first["report"]["top_paths"][:3],
            "cold_walls_virtual_s": cold_walls,
            "traces_kept": first["statz"]["traces"]["kept"],
        },
    )
    snapshot = {
        "experiment": "e22_trace_attribution",
        "vizserver_on": on_statz,
        "attribution": first["statz"],
    }
    (RESULTS_DIR / "statz_e22.json").write_text(
        json.dumps(snapshot, indent=2, default=str) + "\n"
    )

    # Representative timed path: one traced warm load.
    tracer = Tracer()
    server = servers["on"]

    def traced_load() -> float:
        previous = obs.set_tracer(tracer)
        try:
            started = time.perf_counter()
            server.load("bench", WARM_DASHBOARD.name)
            return (time.perf_counter() - started) * 1000
        finally:
            obs.set_tracer(previous)

    result = benchmark.pedantic(traced_load, rounds=3, iterations=1)
    assert result > 0.0
