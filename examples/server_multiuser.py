"""Tableau Server scenario: published sources, row-level security,
temporary sets, and a multi-node cluster over the distributed cache.

Covers the paper's section 5 (Data Server) and the server side of 3.2
(REDIS-like distributed caching across nodes).

Run:  python examples/server_multiuser.py
"""

from repro.connectors import SimDbDataSource
from repro.connectors.simdb import ServerProfile
from repro.expr.ast import AggExpr, ColumnRef
from repro.queries import CategoricalFilter, QuerySpec
from repro.server import DataServer, VizServer
from repro.workloads import TrafficGenerator, fig2_dashboard, flights_model, generate_flights
from repro.workloads.faa import MARKETS


def main() -> None:
    dataset = generate_flights(30_000, seed=3)
    warehouse = dataset.load_into_simdb(
        ServerProfile(name="warehouse", work_unit_time_s=2e-7)
    )
    source = SimDbDataSource(warehouse)
    model = flights_model()

    # ------------------------------------------------------------------ #
    # 1. Publish once; every workbook shares the model + calculations.
    # ------------------------------------------------------------------ #
    server = DataServer()
    server.publish("faa", model, source)
    meta = server.connect("faa", "anyone").metadata()
    print("published 'faa'; shared calculations:", meta["calculations"])

    # ------------------------------------------------------------------ #
    # 2. Row-level user filters (paper 5.2's salesperson example).
    # ------------------------------------------------------------------ #
    server.set_user_filter("faa", "west_rep", CategoricalFilter("market", ("LAX-SFO", "SEA-PDX")))
    spec = QuerySpec("faa", dimensions=("market",), measures=(("n", AggExpr("count")),))
    manager = server.connect("faa", "manager").query(spec)
    rep = server.connect("faa", "west_rep").query(spec)
    print(f"manager sees {manager.n_rows} markets; west_rep sees {rep.n_rows}:"
          f" {rep.to_pydict()['market']}")

    # ------------------------------------------------------------------ #
    # 3. Temporary sets: ship a big enumeration once, reuse by handle.
    # ------------------------------------------------------------------ #
    analyst = server.connect("faa", "analyst")
    analyst.create_set("long_hauls", "distance", list(range(1_500, 2_800)))
    by_carrier = QuerySpec(
        "faa",
        dimensions=("carrier_name",),
        measures=(("flights", AggExpr("count")), ("avg", AggExpr("avg", ColumnRef("dep_delay")))),
    )
    for _ in range(3):
        long_haul = analyst.query(by_carrier, use_sets={"distance": "long_hauls"})
    print(f"3 long-haul queries shipped only {analyst.bytes_from_client} bytes"
          f" from the client (set referenced by handle)")

    # ------------------------------------------------------------------ #
    # 4. A two-node VizServer handling Zipf traffic; the shared store
    #    keeps both nodes warm no matter who serves a request.
    # ------------------------------------------------------------------ #
    viz = VizServer(2, source, model)
    viz.register_dashboard(fig2_dashboard())
    traffic = TrafficGenerator(
        [fig2_dashboard()],
        n_users=8,
        seed=1,
        interaction_rate=0.3,
        selection_domains={"market-carrier-airline": {"market": [m[0] for m in MARKETS[:5]]}},
    )
    warehouse_before = warehouse.stats.queries
    for event in traffic.events(20):
        if event.kind == "load":
            viz.load(event.user, event.dashboard)
        else:
            viz.select(event.user, event.dashboard, event.zone, list(event.values))
    summary = viz.cache_summary()
    print(
        f"20 visits over 2 nodes: {warehouse.stats.queries - warehouse_before} warehouse"
        f" queries, L1 hits={summary['l1_hits']}, shared-store hits={summary['l2_hits']}"
    )

    # ------------------------------------------------------------------ #
    # 5. Nightly refresh: one published extract, one refresh.
    # ------------------------------------------------------------------ #
    server.refresh_extract("faa")
    print("refresh count for the shared extract:", server.get("faa").refresh_count)


if __name__ == "__main__":
    main()
