"""The paper's dashboards, end to end (Figures 1 and 2).

Renders the nine-zone Flights On-Time dashboard through the full query
pipeline — intelligent + literal caches, batch graph, query fusion,
concurrent execution against a simulated warehouse — then replays the
Figure-2 interaction cascade (selecting HNL-OGG eliminates the stale AA
carrier selection).

Run:  python examples/dashboard_flights.py
"""

from repro.connectors import SimDbDataSource
from repro.connectors.simdb import ServerProfile
from repro.core.pipeline import QueryPipeline
from repro.dashboard import DashboardSession
from repro.workloads import fig1_dashboard, fig2_dashboard, flights_model, generate_flights


def show(result, label: str) -> None:
    print(
        f"  {label:34s} iterations={result.iterations}"
        f" queries={result.total_queries} remote={result.remote_queries}"
        f" cache_hits={result.cache_hits} elapsed={result.elapsed_s * 1000:7.1f} ms"
    )


def main() -> None:
    dataset = generate_flights(40_000, seed=11)
    warehouse = dataset.load_into_simdb(
        ServerProfile(name="warehouse", work_unit_time_s=5e-7)
    )
    source = SimDbDataSource(warehouse)
    model = flights_model()
    pipeline = QueryPipeline(source, model)

    # ------------------------------------------------------------------ #
    # Figure 1: the nine-zone dashboard.
    # ------------------------------------------------------------------ #
    print("Figure 1 dashboard (9 zones, quick filter, two map actions)")
    alice = DashboardSession(fig1_dashboard(), pipeline)
    show(alice.render(), "initial load (cold)")
    show(alice.select("carrier_filter", ["AA", "DL", "UA"]), "quick filter: 3 carriers")
    show(alice.select("origin_map", [0]), "map selection: one origin state")
    bob = DashboardSession(fig1_dashboard(), pipeline)  # same server caches
    show(bob.render(), "second user's load (warm)")
    print(f"  warehouse saw {warehouse.stats.queries} queries in total")

    # ------------------------------------------------------------------ #
    # Figure 2: interactive filter actions and the cascade.
    # ------------------------------------------------------------------ #
    print("\nFigure 2 dashboard (Market -> Carrier -> Airline Name)")
    session = DashboardSession(fig2_dashboard(), QueryPipeline(source, model))
    session.render()
    print("  carriers (top 5 by flights):",
          ", ".join(session.zone_tables["carrier"].to_pydict()["code"]))
    session.select("market", ["LAX-SFO"])
    session.select("carrier", ["AA"])
    print("  selected LAX-SFO, then AA — selections:", dict(session.selections))
    result = session.select("market", ["HNL-OGG"])
    print(f"  selected HNL-OGG: {result.iterations} iterations,"
          f" dropped selections: {result.dropped_selections}")
    print("  carriers now:", ", ".join(session.zone_tables["carrier"].to_pydict()["code"]))
    print("  airlines now:",
          ", ".join(session.zone_tables["airline_name"].to_pydict()["carrier_name"]))


if __name__ == "__main__":
    main()
