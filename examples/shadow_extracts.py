"""Shadow extracts for file data (paper 4.4).

Compares the legacy Jet-like path (re-parse the file for every query,
4GB parse limit) against shadow extracts (parse once into the TDE), and
shows extract persistence across sessions.

Run:  python examples/shadow_extracts.py
"""

import random
import tempfile
import time
from pathlib import Path

from repro.connectors import (
    FileDataSource,
    JetLikeDataSource,
    ShadowExtractStore,
    write_text_file,
)

QUERIES = [
    '(aggregate (carrier) ((flights (count)) (avg_delay (avg delay))) (scan "Extract.data"))',
    '(topn 3 ((flights desc)) (aggregate (day) ((flights (count))) (scan "Extract.data")))',
    '(aggregate () ((worst (max delay))) (select (= carrier "AA") (scan "Extract.data")))',
]


def timed(label: str, fn):
    start = time.perf_counter()
    out = fn()
    print(f"  {label:46s} {1000 * (time.perf_counter() - start):8.1f} ms")
    return out


def main() -> None:
    rng = random.Random(5)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "flights.csv"
        n = 60_000
        write_text_file(
            path,
            {
                "day": [rng.randrange(31) for _ in range(n)],
                "carrier": [rng.choice(["AA", "UA", "DL", "WN"]) for _ in range(n)],
                "delay": [round(rng.gauss(12, 18), 2) for _ in range(n)],
            },
        )
        print(f"CSV with {n} rows at {path} ({path.stat().st_size / 1e6:.1f} MB)\n")

        print("Legacy driver (parses the file for every query):")
        jet = JetLikeDataSource(path)
        conn = jet.connect()
        for i, q in enumerate(QUERIES):
            timed(f"query {i + 1}", lambda q=q: conn.execute(q))
        print(f"  -> the file was parsed {jet.parse_count} times\n")

        print("Shadow extract (one-time extraction, then columnar):")
        store = ShadowExtractStore(Path(tmp) / "extracts")
        shadow = FileDataSource(path, store=store)
        conn = timed("connect (extract creation happens here)", shadow.connect)
        for i, q in enumerate(QUERIES):
            timed(f"query {i + 1}", lambda q=q: conn.execute(q))
        print(f"  -> extract created {shadow.extract_creations} time(s)\n")

        print("Second session, extract persisted to disk:")
        reopened = FileDataSource(path, store=store)
        conn = timed("connect (loads persisted extract)", reopened.connect)
        timed("query 1", lambda: conn.execute(QUERIES[0]))
        print(f"  -> store hits={store.hits}, extract re-creations={reopened.extract_creations}")

        print("\nJet 4GB-style parse limit:")
        limited = JetLikeDataSource(path, parse_limit_bytes=1000)
        try:
            limited.connect().execute(QUERIES[0])
        except Exception as exc:
            print(f"  {type(exc).__name__}: {exc}")


if __name__ == "__main__":
    main()
