"""Advanced analytics: LOD calculations, window functions, sharding.

Exercises the deeper analysis features the paper references — custom
calculations at different levels of detail (3.1), window functions (§1),
and the §7 future-work items this reproduction implements: a sharded TDE
cluster with scatter-gather aggregation and scheduled extract refreshes.

Run:  python examples/advanced_analytics.py
"""

from repro.connectors import TdeDataSource
from repro.core import QueryPipeline
from repro.expr.ast import AggExpr, ColumnRef
from repro.queries import LodCalculation, QuerySpec, RangeFilter
from repro.server import ShardedTdeCluster
from repro.workloads import flights_model, generate_flights


def main() -> None:
    dataset = generate_flights(30_000, seed=13)
    engine = dataset.load_into_engine()

    # ------------------------------------------------------------------ #
    # 1. LOD: compare each carrier against its markets' overall averages.
    # ------------------------------------------------------------------ #
    model = flights_model().with_lod(
        "market_avg_delay",
        LodCalculation(("market",), AggExpr("avg", ColumnRef("dep_delay"))),
    )
    pipeline = QueryPipeline(TdeDataSource(engine), model)
    spec = QuerySpec(
        "faa",
        dimensions=("carrier_name",),
        measures=(
            ("own_delay", AggExpr("avg", ColumnRef("dep_delay"))),
            ("peer_delay", AggExpr("avg", ColumnRef("market_avg_delay"))),
        ),
        order_by=(("own_delay", False),),
    )
    print("Carrier delay vs the markets it flies (FIXED market LOD):")
    for name, own, peer in pipeline.run_spec(spec).to_rows():
        marker = "slower than peers" if own > peer else "faster than peers"
        print(f"  {name:22s} own {own:5.1f}  peers {peer:5.1f}  ({marker})")

    # ------------------------------------------------------------------ #
    # 2. Window functions: share-of-total and ranks inside partitions.
    # ------------------------------------------------------------------ #
    print("\nMarket share of each carrier's top market (window functions):")
    result = engine.query(
        """
        (topn 8 ((share desc))
          (select (= rank_in_carrier 1)
            (window ((share share flights (partition carrier_id))
                     (rank_in_carrier rank (partition carrier_id) (order (flights desc))))
              (aggregate (carrier_id market_id) ((flights (count)))
                (scan "Extract.flights")))))
        """
    )
    for carrier_id, market_id, flights, share, _rank in result.to_rows():
        print(f"  carrier {carrier_id} -> market {market_id:2d}:"
              f" {flights:5d} flights = {share:5.1%} of its total")

    # ------------------------------------------------------------------ #
    # 3. Sharded cluster: scatter-gather over 4 shared-nothing nodes.
    # ------------------------------------------------------------------ #
    cluster = ShardedTdeCluster(4, dataset.load_into_engine, "Extract.flights")
    print(f"\nSharded cluster rows per node: {cluster.row_counts()}")
    scattered = cluster.query(
        '(aggregate (carrier_id) ((n (count)) (a (avg dep_delay))'
        ' (markets (count_distinct market_id))) (scan "Extract.flights"))'
    )
    single = engine.query_naive(
        '(aggregate (carrier_id) ((n (count)) (a (avg dep_delay))'
        ' (markets (count_distinct market_id))) (scan "Extract.flights"))'
    )
    print("scatter-gather equals single-node:",
          scattered.approx_equals(single, ordered=False))
    print("rows shuffled to the coordinator:",
          sum(cluster.row_counts()), "->", scattered.n_rows, "partial groups")


if __name__ == "__main__":
    main()
