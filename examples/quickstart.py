"""Quickstart: the Tableau Data Engine reproduction in five minutes.

Builds a small star schema, runs TQL queries through the optimizing
engine, shows a parallel plan and the join-culling rewrite, and round-
trips the database through the single-file format.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro.tde import DataEngine
from repro.tde.optimizer.parallel import PlannerOptions
from repro.workloads import generate_flights


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Load data. The generator stands in for the FAA On-Time dataset.
    # ------------------------------------------------------------------ #
    dataset = generate_flights(50_000, seed=7)
    engine = dataset.load_into_engine(
        options=PlannerOptions(max_dop=4, min_work_per_fraction=8_000)
    )
    print("tables:", [f"{s}.{t}" for s, t, _ in engine.database.iter_tables()])

    # ------------------------------------------------------------------ #
    # 2. Query with TQL, the engine's logical-tree language.
    # ------------------------------------------------------------------ #
    top_carriers = engine.query(
        """
        (topn 5 ((flights desc))
          (aggregate (carrier_name)
                     ((flights (count)) (avg_delay (avg dep_delay)))
            (select (not cancelled)
              (join inner ((carrier_id id))
                (scan "Extract.flights") (scan "Extract.carriers")))))
        """
    )
    print("\nTop carriers by flights:")
    for name, flights, avg_delay in top_carriers.to_rows():
        print(f"  {name:22s} {flights:7d} flights, avg dep delay {avg_delay:5.1f} min")

    # ------------------------------------------------------------------ #
    # 3. Inspect plans: parallel fragments, shared builds, culling.
    # ------------------------------------------------------------------ #
    print("\nPhysical plan (local/global parallel aggregation):")
    print(engine.explain('(aggregate (carrier_id) ((s (sum dep_delay))) (scan "Extract.flights"))'))

    domain_query = (
        '(distinct (carrier_name) (join inner ((carrier_id id))'
        ' (scan "Extract.flights") (scan "Extract.carriers")))'
    )
    print("\nDomain query after fact-table culling (the join is gone):")
    print(engine.explain(domain_query))

    # ------------------------------------------------------------------ #
    # 4. Metadata lives in SYS tables; RLE encoding is visible there.
    # ------------------------------------------------------------------ #
    encodings = engine.query(
        '(select (= table_name "flights") (scan "SYS.columns"))'
    )
    print("\nColumn encodings of the fact table:")
    for row in zip(encodings.to_pydict()["column_name"], encodings.to_pydict()["encoding"]):
        print(f"  {row[0]:18s} {row[1]}")

    # ------------------------------------------------------------------ #
    # 5. Pack the whole database into one file and reopen it.
    # ------------------------------------------------------------------ #
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "flights.tde"
        engine.save(path)
        reopened = DataEngine.open(path)
        check = reopened.query('(aggregate () ((n (count))) (scan "Extract.flights"))')
        print(f"\nsaved {path.stat().st_size / 1e6:.1f} MB;"
              f" reopened row count = {check.to_pydict()['n'][0]}")


if __name__ == "__main__":
    main()
