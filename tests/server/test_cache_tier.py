"""The elastic cache tier wired through the serving stack.

Integration contracts for `ReplicatedStore` behind the three servers:

* **VizServer** — zones stay byte-identical while cache nodes die and
  join under a live session; `statz()`/`health()` expose per-node and
  fleet tier counters; EXPLAIN says when a zone's key sits on a replica
  (and that a read would repair lagging copies).
* **DataServer** — published pipelines share the tier (namespaced per
  source), an extract refresh fans invalidation out to every cache
  node, and `statz()` carries the tier snapshot.
* **TdeCluster** — a cluster-wide result cache over the tier
  short-circuits the balancer on normalized-TQL hits and is keyed on
  the catalog version, so DDL orphans stale entries.
"""

from __future__ import annotations

import numpy as np

from repro.connectors import SimDbDataSource
from repro.connectors.simdb import ServerProfile
from repro.core.cache.replicated import ReplicatedStore
from repro.core.pipeline import PipelineOptions
from repro.expr.ast import AggExpr
from repro.faults import VirtualTimeClock
from repro.queries import QuerySpec
from repro.server import DataServer, TdeCluster, VizServer
from repro.tde.storage.table import Table
from repro.workloads import fig2_dashboard, flights_model, generate_flights

DATASET = generate_flights(2000, seed=23)
DASHBOARD = "market-carrier-airline"
QUERY = '(aggregate (carrier_id) ((n (count))) (scan "Extract.flights"))'
COUNT = AggExpr("count")


def _tier(node_ids=("c0", "c1", "c2"), **kwargs) -> ReplicatedStore:
    kwargs.setdefault("replication", 2)
    kwargs.setdefault("clock", VirtualTimeClock())
    kwargs.setdefault("latency_s", 0.0002)
    return ReplicatedStore(node_ids, **kwargs)


# ---------------------------------------------------------------------- #
class TestVizServerOnTier:
    def _server(self, store, **options):
        db = DATASET.load_into_simdb(ServerProfile(time_scale=0))
        server = VizServer(
            2,
            SimDbDataSource(db),
            flights_model(),
            store=store,
            options=PipelineOptions(**options) if options else None,
        )
        server.register_dashboard(fig2_dashboard())
        return server

    def test_statz_and_health_surface_the_tier(self):
        store = _tier()
        server = self._server(store)
        server.load("alice", DASHBOARD)
        statz = server.statz()
        tier = statz["cache_tier"]
        assert tier["fleet"]["live_nodes"] == 3
        assert set(tier["nodes"]) == {"c0", "c1", "c2"}
        assert tier["fleet"]["puts"] > 0  # zones landed in the tier
        health = server.health()
        assert health["cache_tier"]["degraded_cache_nodes"] == []
        store.fail("c1")
        health = server.health()
        assert health["cache_tier"]["live_nodes"] == 2
        assert health["cache_tier"]["degraded_cache_nodes"] == ["c1"]

    def test_zones_identical_through_kill_and_join(self):
        """A session keeps rendering byte-identical zones while the tier
        loses a node and warms a fresh one — intelligent cache off, so
        answers really route through the tier or the backend."""
        store = _tier()
        server = self._server(store, enable_intelligent_cache=False)
        reference = server.load("alice", DASHBOARD)[1].zone_tables
        store.kill("c1")
        after_kill = server.load("bob", DASHBOARD)[1].zone_tables
        store.join("c9")
        after_join = server.load("carol", DASHBOARD)[1].zone_tables
        assert reference.keys() == after_kill.keys() == after_join.keys()
        for zone, table in reference.items():
            assert table.equals_unordered(after_kill[zone]), zone
            assert table.equals_unordered(after_join[zone]), zone
        assert store.stats.keys_moved > 0  # the join genuinely warmed

    def test_explain_notes_replica_placement(self):
        store = _tier()
        server = self._server(store, enable_intelligent_cache=False)
        server.load("alice", DASHBOARD)  # populate the tier
        report = server.explain("alice", DASHBOARD)
        notes = [
            zone["cache_tier"]
            for zone in report["zones"].values()
            if "cache_tier" in zone
        ]
        assert notes, "no zone carried a cache-tier placement note"
        assert all("cache-tier key held by" in note for note in notes)
        # Fail each cache node in turn: the zones whose primary that node
        # is must now explain themselves as replica-fallback serves.
        fallback_notes = []
        for node_id in store.live_nodes():
            store.fail(node_id)
            report = server.explain("alice", DASHBOARD)
            fallback_notes += [
                zone["cache_tier"]
                for zone in report["zones"].values()
                if "cache_tier" in zone and "served from replica" in zone["cache_tier"]
            ]
            store.recover(node_id)
        assert fallback_notes, "no explain ever reported a replica fallback"
        assert any("would back-fill" in note for note in fallback_notes)


# ---------------------------------------------------------------------- #
class TestDataServerOnTier:
    def _server(self, store):
        db = DATASET.load_into_simdb(ServerProfile(time_scale=0))
        server = DataServer(store=store)
        server.publish("faa", flights_model(), SimDbDataSource(db))
        return server

    def test_published_pipelines_share_the_tier(self):
        store = _tier()
        server = self._server(store)
        session = server.connect("faa", "alice")
        spec = QuerySpec("faa", measures=(("n", COUNT),))
        session.query(spec)
        # The literal result landed in the tier, namespaced by source.
        assert any(key.startswith("faa|") for key in _all_keys(store))
        assert server.statz()["cache_tier"]["fleet"]["live_nodes"] == 3

    def test_refresh_fans_invalidation_across_the_tier(self):
        store = _tier()
        server = self._server(store)
        session = server.connect("faa", "alice")
        spec = QuerySpec("faa", measures=(("n", COUNT),))
        session.query(spec)
        assert any(key.startswith("faa|") for key in _all_keys(store))
        fanouts_before = store.stats.invalidation_fanouts
        assert server.refresh_extract("faa") == 1
        # Every node of the tier dropped this source's namespace.
        assert not any(key.startswith("faa|") for key in _all_keys(store))
        assert store.stats.invalidation_fanouts == fanouts_before + 1
        # And the next query re-fetches then re-populates the tier.
        session.query(spec)
        assert any(key.startswith("faa|") for key in _all_keys(store))


def _all_keys(store: ReplicatedStore) -> set[str]:
    keys: set[str] = set()
    for node_id in store.live_nodes():
        keys.update(store.node(node_id).store.keys())
    return keys


# ---------------------------------------------------------------------- #
class TestClusterResultCache:
    def _loader(self, engine):
        DATASET.load_into_engine(engine)

    def test_normalized_hit_short_circuits_the_balancer(self):
        cluster = TdeCluster(2, self._loader, result_store=_tier())
        node_id, first = cluster.query(QUERY)
        assert node_id >= 0
        # Same query, different whitespace: normalizes to the same key.
        hit_id, second = cluster.query(QUERY.replace(") (", ")   ("))
        assert hit_id == -1
        assert second.equals_unordered(first)
        statz = cluster.statz()
        assert statz["result_cache"]["hits"] == 1
        assert statz["result_cache"]["misses"] == 1
        assert statz["cache_tier"]["fleet"]["live_nodes"] == 3
        # The dispatched work happened exactly once.
        assert sum(cluster.served_per_node()) == 1

    def test_ddl_orphans_cached_results(self):
        cluster = TdeCluster(
            2, self._loader, mode="shared-everything", result_store=_tier()
        )
        _node, first = cluster.query(QUERY)
        assert cluster.query(QUERY)[0] == -1  # warm
        # DDL bumps the catalog version: the old entry can't match.
        extra = Table.from_pydict({"x": np.array([1, 2, 3])})
        cluster.nodes[0].engine.create_table("Extract.extra", extra)
        node_id, again = cluster.query(QUERY)
        assert node_id >= 0, "stale result served after DDL"
        assert again.equals_unordered(first)

    def test_kill_between_queries_keeps_serving(self):
        tier = _tier()
        cluster = TdeCluster(2, self._loader, result_store=tier)
        _node, first = cluster.query(QUERY)
        tier.kill("c0")
        node_id, second = cluster.query(QUERY)
        # Served from a surviving replica, or recomputed — never wrong.
        assert second.equals_unordered(first)
        assert node_id in (-1, 0, 1)
