"""The operator endpoints: statz() across VizServer, TdeCluster, DataServer.

Structure tests for the one snapshot an operator polls: the skeleton is
always present (so callers probe unconditionally), the windowed sections
appear exactly when telemetry is on, and every slow-log entry the servers
admit carries conserved per-request ledgers plus its EXPLAIN capture.
"""

import math

import pytest

from repro.connectors import SimDbDataSource
from repro.connectors.simdb import ServerProfile
from repro.core.cache.distributed import KeyValueStore
from repro.expr.ast import AggExpr
from repro.faults import VirtualTimeClock
from repro.obs.window import TelemetryOptions
from repro.queries import QuerySpec
from repro.server import DataServer, TdeCluster, VizServer
from repro.workloads import fig2_dashboard, flights_model, generate_flights

DATASET = generate_flights(2000, seed=23)
DASHBOARD = "market-carrier-airline"
QUERY = '(aggregate (carrier_id) ((n (count))) (scan "Extract.flights"))'
COUNT = AggExpr("count")


def _loader(engine):
    DATASET.load_into_engine(engine)


def assert_ledgers_conserved(entry: dict) -> None:
    """Every per-zone ledger in a slow-log entry sums exactly to its wall."""
    assert entry["ledgers"], entry["key"]
    for zone, ledger in entry["ledgers"].items():
        total = sum(ledger["phases"].values())
        assert math.isclose(total, ledger["wall_s"], rel_tol=0, abs_tol=1e-6), (
            entry["key"],
            zone,
        )


# ---------------------------------------------------------------------- #
class TestVizServerStatz:
    def _server(self, n_nodes=2, telemetry=TelemetryOptions(slowlog_capacity=4)):
        db = DATASET.load_into_simdb(ServerProfile(time_scale=0))
        server = VizServer(
            n_nodes,
            SimDbDataSource(db),
            flights_model(),
            store=KeyValueStore(latency_s=0.0),
            telemetry=telemetry,
        )
        server.register_dashboard(fig2_dashboard())
        return server

    def test_skeleton_is_always_available(self):
        server = self._server(telemetry=None)
        server.load("alice", DASHBOARD)
        statz = server.statz()
        assert statz["telemetry_enabled"] is False
        assert statz["nodes"]["node0"]["requests_handled"] == 1
        assert "coalesce" in statz
        # None of the windowed sections leak in with telemetry off.
        for key in ("window", "dimensions", "slo", "slowlog", "requests"):
            assert key not in statz

    def test_statz_reflects_served_requests(self):
        server = self._server()
        for user in ("alice", "bob", "carol"):
            server.load(user, DASHBOARD)
        server.select("alice", DASHBOARD, "market", ["LAX-SFO"])
        statz = server.statz()
        assert statz["telemetry_enabled"] is True
        handled = sum(n["requests_handled"] for n in statz["nodes"].values())
        assert handled == 4
        assert statz["requests"] == {"total": 4, "degraded": 0, "failed": 0}
        assert statz["window"]["count"] == 4
        assert statz["slo"]["state"] == "ok"
        assert statz["slo"]["good_total"] + statz["slo"]["bad_total"] == 4

    def test_dimensions_break_down_by_request_attributes(self):
        server = self._server()
        server.load("alice", DASHBOARD)
        server.load("bob", DASHBOARD)
        dims = server.statz()["dimensions"]
        assert set(dims) == {"dashboard", "session", "node", "backend"}
        assert dims["dashboard"]["keys"][DASHBOARD]["count"] == 2
        assert set(dims["session"]["keys"]) == {"alice", "bob"}
        # Round-robin: the two loads land on distinct nodes.
        assert set(dims["node"]["keys"]) == {"node0", "node1"}

    def test_slowlog_entries_carry_conserved_ledgers_and_explain(self):
        server = self._server()
        server.load("alice", DASHBOARD)
        server.select("alice", DASHBOARD, "market", ["LAX-SFO"])
        slowlog = server.statz()["slowlog"]
        assert slowlog["capacity"] == 4
        assert slowlog["admitted"] >= 1
        keys = [e["key"] for e in slowlog["entries"]]
        assert f"alice/{DASHBOARD}/load" in keys
        for entry in slowlog["entries"]:
            assert entry["outcome"] == "ok"
            assert entry["context"]["node"] in {"node0", "node1"}
            assert_ledgers_conserved(entry)
            explain = entry["explain"]
            assert explain is not None
            assert set(explain) == {"zone", "spec", "decision", "query", "plan"}
            assert explain["zone"] in entry["ledgers"]

    def test_slowlog_threshold_keeps_fast_requests_out(self):
        server = self._server(
            telemetry=TelemetryOptions(slowlog_capacity=4, slow_threshold_s=60.0)
        )
        server.load("alice", DASHBOARD)
        slowlog = server.statz()["slowlog"]
        assert slowlog["admitted"] == 0 and slowlog["entries"] == []


# ---------------------------------------------------------------------- #
class TestTdeClusterStatz:
    def test_health_counts_load_and_failures(self):
        cluster = TdeCluster(2, _loader)
        for _ in range(4):
            cluster.query(QUERY)
        with pytest.raises(Exception):
            cluster.query("(bogus")
        health = cluster.health()
        assert health["queries_served"] == 5
        assert health["failures"] == 1
        assert set(health["nodes"]) == {"node0", "node1"}
        assert all(n["in_flight"] == 0 for n in health["nodes"].values())

    def test_statz_without_telemetry_is_health_only(self):
        cluster = TdeCluster(1, _loader)
        cluster.query(QUERY)
        statz = cluster.statz()
        assert statz["telemetry_enabled"] is False
        assert "fleet" not in statz
        assert "window" not in statz["nodes"]["node0"]

    def test_fleet_rollup_merges_node_windows(self):
        clock = VirtualTimeClock()
        cluster = TdeCluster(2, _loader, telemetry=True, clock=clock)
        for _ in range(6):
            cluster.query(QUERY)
        statz = cluster.statz()
        assert statz["telemetry_enabled"] is True
        per_node = [
            statz["nodes"][f"node{i}"]["window"]["count"] for i in range(2)
        ]
        assert per_node == [3, 3]  # round-robin split
        # The fleet histogram is the merge of the live node windows: node
        # and fleet percentiles come from the same cells.
        assert statz["fleet"]["window"]["count"] == 6
        assert statz["fleet"]["slo"]["state"] == "ok"
        assert statz["fleet"]["slo"]["good_total"] == 6


# ---------------------------------------------------------------------- #
class TestDataServerStatz:
    def _server(self, telemetry=True):
        db = DATASET.load_into_simdb(ServerProfile(time_scale=0))
        server = DataServer(telemetry=telemetry)
        server.publish("faa", flights_model(), SimDbDataSource(db))
        return server

    def test_skeleton_lists_published_sources(self):
        server = self._server(telemetry=None)
        server.refresh_extract("faa")
        statz = server.statz()
        assert statz["telemetry_enabled"] is False
        assert statz["published"]["faa"]["refresh_count"] == 1
        # A simdb backend exposes its engine, so plan-cache counters ride
        # along; the refresh above must have invalidated cached plans.
        assert statz["published"]["faa"]["plan_cache"]["invalidations"] >= 1
        assert "window" not in statz

    def test_proxied_queries_feed_the_telemetry_plane(self):
        server = self._server()
        session = server.connect("faa", "alice")
        spec = QuerySpec("faa", dimensions=("carrier_name",), measures=(("n", COUNT),))
        session.query(spec)
        session.query(spec)  # warm: a cache hit still counts as a request
        statz = server.statz()
        assert statz["telemetry_enabled"] is True
        assert statz["requests"]["total"] == 2
        assert statz["window"]["count"] == 2
        assert statz["dimensions"]["source"]["keys"]["faa"]["count"] == 2
        assert statz["dimensions"]["session"]["keys"]["alice"]["count"] == 2

    def test_slowlog_entry_keys_and_ledgers(self):
        server = self._server()
        session = server.connect("faa", "bob")
        spec = QuerySpec("faa", dimensions=("market",), measures=(("n", COUNT),))
        session.query(spec)
        entries = server.statz()["slowlog"]["entries"]
        assert [e["key"] for e in entries] == ["bob/faa/query"]
        (entry,) = entries
        assert entry["outcome"] == "ok"
        assert entry["context"]["spec"] == spec.canonical()
        assert_ledgers_conserved(entry)
        assert entry["explain"]["decision"] is not None
