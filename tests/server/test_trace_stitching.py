"""Cross-node trace stitching: wire contexts join server hops into one tree."""

from repro import obs
from repro.connectors import SimDbDataSource
from repro.connectors.simdb import ServerProfile
from repro.core.cache.distributed import KeyValueStore
from repro.core.pipeline import PipelineOptions
from repro.expr.ast import AggExpr
from repro.queries import QuerySpec
from repro.server import DataServer, TdeCluster, VizServer
from repro.workloads import fig2_dashboard, flights_model, generate_flights

DATASET = generate_flights(2000, seed=23)
DASHBOARD = "market-carrier-airline"
QUERY = '(aggregate (carrier_id) ((n (count))) (scan "Extract.flights"))'
COUNT = AggExpr("count")


def _vizserver(n_nodes=1):
    db = DATASET.load_into_simdb(ServerProfile(time_scale=0))
    server = VizServer(
        n_nodes,
        SimDbDataSource(db),
        flights_model(),
        store=KeyValueStore(latency_s=0.0),
        # Serial execution: span-tree *shapes* are compared across runs,
        # and concurrent fan-out varies connection reuse / mid-batch
        # cache hits with thread interleaving.
        options=PipelineOptions(concurrent=False),
    )
    server.register_dashboard(fig2_dashboard())
    return server


def _shape(span):
    """The logical shape of a span tree: nested name tuples.

    Children are sorted because concurrent executor fan-out appends them
    in completion order — the shape is logical, not chronological.
    """
    return (span.name, tuple(sorted(_shape(c) for c in span.children)))


class TestVizServerHop:
    def test_wire_context_stitches_into_the_frontend_trace(self):
        server = _vizserver()
        with obs.recording():
            with obs.span("frontend") as frontend:
                wire = frontend.context.to_wire()
            server.load("alice", DASHBOARD, trace_parent=wire)
            roots = obs.get_tracer().roots
        assert len(roots) == 2  # frontend + the server's (pre-stitch) root
        stitched = obs.stitch(roots)
        assert len(stitched) == 1
        tree = stitched[0]
        assert tree.name == "frontend"
        request = tree.find("vizserver.request")
        assert request is not None
        assert request.parent_span_id == frontend.span_id
        # One request, one identity: every span shares the frontend's trace.
        assert {s.trace_id for s in tree.walk()} == {frontend.trace_id}

    def test_hopped_request_shape_matches_a_local_one(self):
        # The hop changes identity wiring, never the logical work: a load
        # served under a wire context has the same span shape as a plain
        # in-process load on an identically fresh server.
        with obs.recording():
            _vizserver().load("alice", DASHBOARD)
            local = obs.get_tracer().roots[-1]
            local_shape = _shape(local)
        with obs.recording():
            with obs.span("frontend") as frontend:
                wire = frontend.context.to_wire()
            _vizserver().load("alice", DASHBOARD, trace_parent=wire)
            hopped = obs.stitch(obs.get_tracer().roots)[0].find("vizserver.request")
            hopped_shape = _shape(hopped)
        assert local.name == "vizserver.request"
        assert hopped_shape == local_shape

    def test_no_trace_parent_roots_a_fresh_trace(self):
        server = _vizserver()
        with obs.recording():
            with obs.span("frontend") as frontend:
                pass
            server.load("alice", DASHBOARD)
            roots = obs.get_tracer().roots
        assert obs.stitch(roots) == roots  # nothing to stitch
        assert roots[1].trace_id != frontend.trace_id


class TestDataServerHop:
    def test_session_query_joins_the_caller_trace(self):
        db = DATASET.load_into_simdb(ServerProfile(time_scale=0))
        server = DataServer()
        server.publish("faa", flights_model(), SimDbDataSource(db))
        session = server.connect("faa", "alice")
        spec = QuerySpec(
            "faa", dimensions=("carrier_name",), measures=(("n", COUNT),)
        )
        with obs.recording():
            with obs.span("vizserver.request") as caller:
                wire = obs.current_trace_context().to_wire()
            session.query(spec, trace_parent=wire)
            stitched = obs.stitch(obs.get_tracer().roots)
        assert len(stitched) == 1
        hop = stitched[0].find("dataserver.query")
        assert hop is not None
        assert hop.trace_id == caller.trace_id
        assert hop.parent_span_id == caller.span_id
        assert hop.find("pipeline.run_batch") is not None


class TestClusterHop:
    def test_cluster_query_joins_the_caller_trace(self):
        cluster = TdeCluster(2, DATASET.load_into_engine)
        with obs.recording():
            with obs.span("frontend") as frontend:
                wire = obs.current_trace_context().to_wire()
            node_id, result = cluster.query(QUERY, trace_parent=wire)
            stitched = obs.stitch(obs.get_tracer().roots)
        assert result.n_rows > 0
        assert len(stitched) == 1
        hop = stitched[0].find("cluster.query")
        assert hop is not None
        assert hop.trace_id == frontend.trace_id
        assert hop.attributes["node"] == node_id
        assert hop.find("tde.execute") is not None

    def test_untraced_cluster_query_still_works(self):
        cluster = TdeCluster(1, DATASET.load_into_engine)
        node_id, result = cluster.query(QUERY)
        assert node_id == 0
        assert result.n_rows > 0
