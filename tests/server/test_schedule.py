"""Refresh scheduler tests (paper §2's automatic extract refreshes)."""

import pytest

from repro.connectors import SimDbDataSource
from repro.connectors.simdb import ServerProfile
from repro.errors import ServerError
from repro.expr.ast import AggExpr
from repro.queries import QuerySpec
from repro.server import DataServer
from repro.server.schedule import RefreshScheduler
from repro.workloads import flights_model, generate_flights


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def env():
    dataset = generate_flights(500, seed=51)
    db = dataset.load_into_simdb(ServerProfile(time_scale=0))
    server = DataServer()
    server.publish("faa", flights_model(), SimDbDataSource(db))
    clock = FakeClock()
    return server, RefreshScheduler(server, clock=clock), clock


class TestScheduling:
    def test_fires_on_interval(self, env):
        server, scheduler, clock = env
        scheduler.schedule("faa", interval_s=3600)
        assert scheduler.run_due() == []
        clock.advance(3600)
        events = scheduler.run_due()
        assert [e.name for e in events] == ["faa"]
        assert server.get("faa").refresh_count == 1

    def test_repeated_fires(self, env):
        _server, scheduler, clock = env
        scheduler.schedule("faa", interval_s=100)
        for _ in range(3):
            clock.advance(100)
            assert len(scheduler.run_due()) == 1
        assert len(scheduler.history) == 3

    def test_catchup_collapses(self, env):
        """Missing several slots yields one refresh, not a burst."""
        server, scheduler, clock = env
        scheduler.schedule("faa", interval_s=10)
        clock.advance(95)
        events = scheduler.run_due()
        assert len(events) == 1
        assert server.get("faa").refresh_count == 1
        name, next_fire = scheduler.next_due()
        assert next_fire > clock.now

    def test_first_delay_override(self, env):
        _server, scheduler, clock = env
        scheduler.schedule("faa", interval_s=1000, first_delay_s=1)
        clock.advance(2)
        assert len(scheduler.run_due()) == 1

    def test_unschedule(self, env):
        _server, scheduler, clock = env
        scheduler.schedule("faa", interval_s=10)
        scheduler.unschedule("faa")
        clock.advance(100)
        assert scheduler.run_due() == []
        assert scheduler.next_due() is None
        with pytest.raises(ServerError):
            scheduler.unschedule("faa")

    def test_validation(self, env):
        _server, scheduler, _clock = env
        with pytest.raises(ServerError):
            scheduler.schedule("faa", interval_s=0)
        with pytest.raises(ServerError):
            scheduler.schedule("ghost", interval_s=10)
        scheduler.schedule("faa", interval_s=10)
        with pytest.raises(ServerError):
            scheduler.schedule("faa", interval_s=10)

    def test_refresh_purges_caches_end_to_end(self, env):
        server, scheduler, clock = env
        session = server.connect("faa", "alice")
        spec = QuerySpec("faa", measures=(("n", AggExpr("count")),))
        session.query(spec)
        pipeline = server.get("faa").pipeline
        sent = pipeline.executor.remote_queries_sent
        session.query(spec)  # cached
        assert pipeline.executor.remote_queries_sent == sent
        scheduler.schedule("faa", interval_s=60)
        clock.advance(60)
        scheduler.run_due()
        session.query(spec)  # purged on refresh → refetch
        assert pipeline.executor.remote_queries_sent == sent + 1
