"""Sharded TDE cluster tests (paper §7's data-partitioning plan)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServerError
from repro.server import ShardedTdeCluster
from repro.tde import DataEngine
from repro.workloads import generate_flights

DATASET = generate_flights(6000, seed=37)
SINGLE = DATASET.load_into_engine()
CLUSTER = ShardedTdeCluster(3, DATASET.load_into_engine, "Extract.flights")


def _agree(query: str, *, ordered: bool = False) -> None:
    sharded = CLUSTER.query(query)
    reference = SINGLE.query_naive(query)
    assert sharded.approx_equals(reference, ordered=ordered, rel=1e-7, abs_tol=1e-7), query


class TestSetup:
    def test_fact_rows_partitioned(self):
        counts = CLUSTER.row_counts()
        assert sum(counts) == 6000
        assert len(counts) == 3
        assert max(counts) - min(counts) <= 1

    def test_dimensions_replicated(self):
        for node in CLUSTER.nodes:
            assert node.table("Extract.carriers").n_rows == 8

    def test_shards_keep_sort_order(self):
        for node in CLUSTER.nodes:
            assert node.table("Extract.flights").sort_keys == ("date_",)

    def test_validation(self):
        with pytest.raises(ServerError):
            ShardedTdeCluster(0, DATASET.load_into_engine, "Extract.flights")
        with pytest.raises(ServerError):
            ShardedTdeCluster(2, DATASET.load_into_engine, "Extract.nope")


class TestScatterGather:
    def test_sum_min_max_count(self):
        _agree(
            '(aggregate (carrier_id) ((n (count)) (s (sum dep_delay))'
            ' (lo (min dep_delay)) (hi (max dep_delay))) (scan "Extract.flights"))'
        )

    def test_avg_recombined_from_components(self):
        _agree('(aggregate (market_id) ((a (avg arr_delay))) (scan "Extract.flights"))')

    def test_count_distinct_across_shards(self):
        """A market seen on every shard must count once per group."""
        _agree(
            '(aggregate (carrier_id) ((u (count_distinct market_id)))'
            ' (scan "Extract.flights"))'
        )

    def test_global_aggregate(self):
        _agree('(aggregate () ((n (count)) (s (sum distance))) (scan "Extract.flights"))')

    def test_global_aggregate_over_empty_selection(self):
        _agree(
            '(aggregate () ((n (count)) (s (sum distance)))'
            ' (select (> distance 999999) (scan "Extract.flights")))'
        )

    def test_count_of_groups_not_inflated(self):
        """Regression guard: per-shard partial counts must merge by SUM,
        not be recounted."""
        out = CLUSTER.query('(aggregate () ((n (count))) (scan "Extract.flights"))')
        assert out.to_pydict() == {"n": [6000]}

    def test_domain_query(self):
        _agree('(distinct (market_id) (scan "Extract.flights"))')

    def test_join_with_replicated_dimension(self):
        _agree(
            '(aggregate (carrier_name) ((n (count))) (join inner ((carrier_id id))'
            ' (scan "Extract.flights") (scan "Extract.carriers")))'
        )

    def test_topn_over_aggregate(self):
        _agree(
            '(topn 4 ((n desc) (market_id asc)) (aggregate (market_id) ((n (count)))'
            ' (scan "Extract.flights")))',
            ordered=True,
        )

    def test_row_level_select(self):
        _agree('(select (> dep_delay 75) (scan "Extract.flights"))')

    def test_order_merged_at_coordinator(self):
        _agree(
            '(order ((dep_delay desc) (date_ asc) (market_id asc) (distance asc)'
            ' (hour asc)) (select (> dep_delay 70) (scan "Extract.flights")))',
            ordered=True,
        )

    def test_count_distinct_requires_plain_column(self):
        with pytest.raises(ServerError):
            CLUSTER.query(
                '(aggregate () ((u (count_distinct (+ market_id 1))))'
                ' (scan "Extract.flights"))'
            )

    def test_error_propagates_from_shard(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            CLUSTER.query('(scan "Extract.ghost")')


@given(n_nodes=st.integers(min_value=1, max_value=5))
@settings(max_examples=5, deadline=None)
def test_node_count_invariance(n_nodes):
    """Any shard count yields the same aggregate answers."""
    dataset = generate_flights(800, seed=n_nodes)
    cluster = ShardedTdeCluster(n_nodes, dataset.load_into_engine, "Extract.flights")
    single = dataset.load_into_engine()
    q = (
        '(aggregate (carrier_id) ((n (count)) (a (avg dep_delay))'
        ' (u (count_distinct market_id))) (scan "Extract.flights"))'
    )
    assert cluster.query(q).approx_equals(
        single.query_naive(q), ordered=False, rel=1e-7, abs_tol=1e-7
    )
