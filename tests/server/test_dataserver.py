"""Data Server tests: publishing, user filters, temp sets, refresh."""

import pytest

from repro.connectors import SimDbDataSource
from repro.connectors.simdb import ServerProfile
from repro.errors import ServerError
from repro.expr.ast import AggExpr, ColumnRef
from repro.queries import CategoricalFilter, QuerySpec
from repro.server import DataServer
from repro.server.tempstate import TempTableState
from repro.tde.storage import Table
from repro.workloads import flights_model, generate_flights

COUNT = AggExpr("count")


@pytest.fixture(scope="module")
def server_env():
    dataset = generate_flights(4000, seed=17)
    db = dataset.load_into_simdb(ServerProfile(time_scale=0))
    server = DataServer()
    server.publish("faa", flights_model(), SimDbDataSource(db))
    return server


def _spec(**kwargs) -> QuerySpec:
    return QuerySpec("faa", **kwargs)


class TestPublishing:
    def test_publish_and_list(self, server_env):
        assert server_env.published_names() == ["faa"]

    def test_duplicate_publish_rejected(self, server_env):
        with pytest.raises(ServerError):
            server_env.publish("faa", flights_model(), None)

    def test_unknown_source(self, server_env):
        with pytest.raises(ServerError):
            server_env.connect("nope", "alice")

    def test_metadata(self, server_env):
        session = server_env.connect("faa", "alice")
        meta = session.metadata()
        assert meta["datasource"] == "faa"
        assert "carrier_name" in meta["schema"]
        assert "weekday" in meta["calculations"]  # shared calc, defined once
        assert meta["supports_temp_tables"] is True

    def test_shared_cache_across_sessions(self, server_env):
        s1 = server_env.connect("faa", "alice")
        s2 = server_env.connect("faa", "bob")
        spec = _spec(dimensions=("carrier_name",), measures=(("n", COUNT),))
        published = server_env.get("faa")
        before = published.pipeline.executor.remote_queries_sent
        s1.query(spec)
        s2.query(spec)
        assert published.pipeline.executor.remote_queries_sent == before + 1


class TestUserFilters:
    def test_row_level_security(self, server_env):
        server_env.set_user_filter("faa", "west_sales", CategoricalFilter("market", ("LAX-SFO",)))
        spec = _spec(dimensions=("market",))
        unrestricted = server_env.connect("faa", "admin").query(spec)
        restricted = server_env.connect("faa", "west_sales").query(spec)
        assert restricted.to_pydict()["market"] == ["LAX-SFO"]
        assert unrestricted.n_rows > 1

    def test_users_do_not_leak(self, server_env):
        server_env.set_user_filter("faa", "narrow", CategoricalFilter("market_id", (0,)))
        spec = _spec(measures=(("n", COUNT),))
        total = server_env.connect("faa", "admin").query(spec).to_pydict()["n"][0]
        narrow = server_env.connect("faa", "narrow").query(spec).to_pydict()["n"][0]
        assert narrow < total


class TestTempSets:
    def test_set_used_in_query(self, server_env):
        session = server_env.connect("faa", "carol")
        session.create_set("myset", "market_id", [0, 1, 2])
        spec = _spec(dimensions=("market_id",), measures=(("n", COUNT),))
        out = session.query(spec, use_sets={"market_id": "myset"})
        assert set(out.to_pydict()["market_id"]) <= {0, 1, 2}

    def test_traffic_saving(self, server_env):
        """Re-using a set beats re-shipping a giant filter every query."""
        values = list(range(0, 12)) * 40  # deliberately noisy client list
        inline_session = server_env.connect("faa", "dave")
        set_session = server_env.connect("faa", "erin")
        set_session.create_set("big", "market_id", values)
        spec_inline = _spec(
            dimensions=("market_id",),
            measures=(("n", COUNT),),
            filters=(CategoricalFilter("market_id", tuple(values)),),
        )
        spec_bare = _spec(dimensions=("market_id",), measures=(("n", COUNT),))
        for _ in range(5):
            inline_session.query(spec_inline)
            set_session.query(spec_bare, use_sets={"market_id": "big"})
        assert set_session.bytes_from_client < inline_session.bytes_from_client / 2

    def test_wrong_field(self, server_env):
        session = server_env.connect("faa", "frank")
        session.create_set("s1", "market_id", [1])
        with pytest.raises(ServerError):
            session.query(
                _spec(dimensions=("market_id",)), use_sets={"carrier_id": "s1"}
            )

    def test_unknown_handle(self, server_env):
        session = server_env.connect("faa", "gina")
        with pytest.raises(ServerError):
            session.query(_spec(dimensions=("market_id",)), use_sets={"market_id": "zz"})

    def test_sets_released_on_close(self, server_env):
        published = server_env.get("faa")
        session = server_env.connect("faa", "henry")
        session.create_set("tmp", "market_id", [5])
        before = len(published.temp_state)
        session.close()
        assert len(published.temp_state) == before - 1
        with pytest.raises(ServerError):
            session.query(_spec(dimensions=("market_id",)))


class TestTempTableState:
    def test_identical_contents_shared(self):
        state = TempTableState()
        t = Table.from_pydict({"x": [1, 2]})
        a = state.register("a", t)
        b = state.register("b", Table.from_pydict({"x": [1, 2]}))
        assert a == b  # one shared definition
        assert state.shared_hits == 1
        assert len(state) == 1
        state.release(a)
        assert len(state) == 1  # still referenced by b's handle
        state.release(a)
        assert len(state) == 0

    def test_different_contents_distinct(self):
        state = TempTableState()
        a = state.register("a", Table.from_pydict({"x": [1]}))
        b = state.register("a", Table.from_pydict({"x": [2]}))
        assert a != b
        assert len(state) == 2

    def test_expiry(self):
        state = TempTableState(idle_ttl_s=0.0)
        state.register("a", Table.from_pydict({"x": [1]}))
        assert state.expire_idle() == 1
        assert len(state) == 0

    def test_get_missing(self):
        with pytest.raises(ServerError):
            TempTableState().get("nope")


class TestRefresh:
    def test_refresh_invalidates_and_counts(self):
        dataset = generate_flights(500, seed=3)
        db = dataset.load_into_simdb(ServerProfile(time_scale=0))
        server = DataServer()
        server.publish("faa", flights_model(), SimDbDataSource(db))
        session = server.connect("faa", "alice")
        spec = _spec(measures=(("n", COUNT),))
        session.query(spec)
        pipeline = server.get("faa").pipeline
        sent_before = pipeline.executor.remote_queries_sent
        assert server.refresh_extract("faa") == 1
        session.query(spec)  # cache was purged → must re-fetch
        assert pipeline.executor.remote_queries_sent == sent_before + 1

    def test_shared_extract_refresh_scaling(self):
        """One published extract, N workbooks: one refresh total (E14)."""
        dataset = generate_flights(500, seed=3)
        db = dataset.load_into_simdb(ServerProfile(time_scale=0))
        server = DataServer()
        server.publish("faa", flights_model(), SimDbDataSource(db))
        sessions = [server.connect("faa", f"user{i}") for i in range(10)]
        for s in sessions:
            s.query(_spec(measures=(("n", COUNT),)))
        server.refresh_extract("faa")
        assert server.get("faa").refresh_count == 1
