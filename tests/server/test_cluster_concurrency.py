"""TdeCluster least-loaded balancing under real thread concurrency.

The load balancer's ``in_flight`` accounting is shared mutable state
touched by every request thread; these tests drive it with genuine
threads and assert the invariants the serving path depends on:

* ``in_flight`` never goes negative and returns to zero when the storm
  ends;
* queries spread across nodes instead of piling onto one;
* every concurrent result matches the serial oracle byte-for-byte.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.server import TdeCluster
from repro.workloads import generate_flights

DATASET = generate_flights(2000, seed=23)

QUERIES = [
    '(aggregate (carrier_id) ((n (count))) (scan "Extract.flights"))',
    '(aggregate (market_id) ((n (count)) (s (sum dep_delay))) (scan "Extract.flights"))',
    '(aggregate () ((total (count))) (scan "Extract.flights"))',
    '(aggregate (carrier_id market_id) ((a (avg dep_delay))) (scan "Extract.flights"))',
]


def _loader(engine):
    DATASET.load_into_engine(engine)


class TestLeastLoadedConcurrency:
    N_NODES = 3
    N_THREADS = 8
    PER_THREAD = 6

    def _storm(self, cluster):
        """Drive the cluster from N_THREADS; sample in_flight throughout."""
        samples: list[list[int]] = []
        stop = threading.Event()

        def sampler():
            while not stop.is_set():
                samples.append(cluster.in_flight_snapshot())

        def worker(tid: int):
            out = []
            for i in range(self.PER_THREAD):
                query = QUERIES[(tid + i) % len(QUERIES)]
                out.append((query, cluster.query(query)))
            return out

        sampler_thread = threading.Thread(target=sampler, daemon=True)
        sampler_thread.start()
        try:
            with ThreadPoolExecutor(max_workers=self.N_THREADS) as tp:
                results = [
                    item
                    for chunk in tp.map(worker, range(self.N_THREADS))
                    for item in chunk
                ]
        finally:
            stop.set()
            sampler_thread.join()
        return results, samples

    def test_in_flight_accounting_and_balance(self):
        cluster = TdeCluster(self.N_NODES, _loader, balancer="least-loaded")
        results, samples = self._storm(cluster)

        # Accounting: counts were never negative while sampled, and the
        # cluster is fully drained afterwards.
        assert all(count >= 0 for snap in samples for count in snap)
        assert cluster.in_flight_snapshot() == [0] * self.N_NODES

        total = self.N_THREADS * self.PER_THREAD
        served = cluster.served_per_node()
        assert sum(served) == total == len(results)
        # Balance: least-loaded (with serve-count tie-breaking) must not
        # starve any node.
        assert all(count > 0 for count in served)

    def test_concurrent_results_match_serial_oracle(self):
        cluster = TdeCluster(self.N_NODES, _loader, balancer="least-loaded")
        oracle_cluster = TdeCluster(1, _loader)
        oracle = {q: oracle_cluster.query(q)[1] for q in QUERIES}

        results, _samples = self._storm(cluster)
        assert len(results) == self.N_THREADS * self.PER_THREAD
        for query, (_node_id, table) in results:
            assert table.equals_unordered(oracle[query])

    def test_least_loaded_prefers_idle_nodes(self):
        cluster = TdeCluster(2, _loader, balancer="least-loaded")
        # Pin a fake long-running query on node 0.
        with cluster._lock:
            cluster.nodes[0].in_flight += 1
        try:
            node_id, _table = cluster.query(QUERIES[0])
            assert node_id == 1
        finally:
            with cluster._lock:
                cluster.nodes[0].in_flight -= 1
