"""TDE cluster and VizServer (distributed cache) tests."""

import pytest

from repro.connectors import SimDbDataSource
from repro.connectors.simdb import ServerProfile
from repro.core.cache.distributed import KeyValueStore
from repro.errors import ServerError
from repro.server import TdeCluster, VizServer
from repro.workloads import fig2_dashboard, flights_model, generate_flights

DATASET = generate_flights(2000, seed=23)


def _loader(engine):
    DATASET.load_into_engine(engine)


QUERY = '(aggregate (carrier_id) ((n (count))) (scan "Extract.flights"))'


class TestTdeCluster:
    def test_shared_everything_has_one_storage_copy(self):
        cluster = TdeCluster(3, _loader, mode="shared-everything")
        assert cluster.storage_copies == 1

    def test_shared_nothing_replicates(self):
        cluster = TdeCluster(3, _loader, mode="shared-nothing")
        assert cluster.storage_copies == 3

    @pytest.mark.parametrize("mode", ["shared-everything", "shared-nothing"])
    def test_all_nodes_answer_identically(self, mode):
        cluster = TdeCluster(3, _loader, mode=mode)
        results = [cluster.query(QUERY) for _ in range(3)]
        node_ids = {node_id for node_id, _t in results}
        assert node_ids == {0, 1, 2}  # round robin visited every node
        first = results[0][1]
        assert all(t.equals_unordered(first) for _n, t in results)

    def test_round_robin_balances(self):
        cluster = TdeCluster(2, _loader)
        for _ in range(6):
            cluster.query(QUERY)
        assert cluster.served_per_node() == [3, 3]

    def test_least_loaded_balancer(self):
        cluster = TdeCluster(2, _loader, balancer="least-loaded")
        for _ in range(4):
            cluster.query(QUERY)
        assert sum(cluster.served_per_node()) == 4

    def test_validation(self):
        with pytest.raises(ServerError):
            TdeCluster(0, _loader)
        with pytest.raises(ServerError):
            TdeCluster(1, _loader, mode="bogus")
        with pytest.raises(ServerError):
            TdeCluster(1, _loader, balancer="bogus")


class TestVizServer:
    def _server(self, n_nodes=3, use_l1=True):
        db = DATASET.load_into_simdb(ServerProfile(time_scale=0))
        store = KeyValueStore(latency_s=0.0)
        server = VizServer(
            n_nodes, SimDbDataSource(db), flights_model(), store=store, use_l1=use_l1
        )
        server.register_dashboard(fig2_dashboard())
        server._db = db
        return server

    def test_requests_round_robin(self):
        server = self._server()
        nodes = {server.load(f"user{i}", "market-carrier-airline")[0] for i in range(3)}
        assert nodes == {"node0", "node1", "node2"}

    def test_distributed_cache_keeps_nodes_warm(self):
        """Same dashboard, different serving nodes: the second node pulls
        the first node's results from the shared store instead of the
        backend (paper 3.2: "keeping data warm regardless of which node
        handles particular requests")."""
        server = self._server(n_nodes=2)
        _node_a, first = server.load("alice", "market-carrier-airline")
        backend_after_first = server._db.stats.queries
        _node_b, second = server.load("bob", "market-carrier-airline")
        assert server._db.stats.queries == backend_after_first  # no new backend work
        summary = server.cache_summary()
        assert summary["l2_hits"] >= 1

    def test_unknown_dashboard(self):
        server = self._server(1)
        with pytest.raises(ServerError):
            server.load("alice", "nope")

    def test_interaction_through_server(self):
        server = self._server(2)
        server.load("alice", "market-carrier-airline")
        _node, result = server.select("alice", "market-carrier-airline", "market", ["LAX-SFO"])
        assert result.iterations >= 1
        session = server._sessions[("alice", "market-carrier-airline")]
        assert session.selections == {"market": ("LAX-SFO",)}

    def test_l1_vs_l2(self):
        server = self._server(1)
        server.load("a", "market-carrier-airline")
        server.load("b", "market-carrier-airline")
        summary = server.cache_summary()
        # Same node twice: second load served by node-local caches.
        assert summary["remote_queries"] <= 4
