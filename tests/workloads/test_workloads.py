"""Workload generator tests: determinism, skew, schema, traffic."""

import datetime as dt
from collections import Counter

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    CARRIERS,
    MARKETS,
    TrafficGenerator,
    fig1_dashboard,
    fig2_dashboard,
    flights_model,
    generate_flights,
)


class TestFlightsGenerator:
    def test_deterministic(self):
        a = generate_flights(500, seed=5)
        b = generate_flights(500, seed=5)
        assert a.flights == b.flights

    def test_seed_changes_data(self):
        a = generate_flights(500, seed=5)
        b = generate_flights(500, seed=6)
        assert a.flights != b.flights

    def test_row_count_and_date_order(self):
        ds = generate_flights(1234, seed=1, days=90)
        assert ds.n_rows == 1234
        dates = ds.flights["date_"]
        assert len(dates) == 1234
        assert dates == sorted(dates)
        assert dates[0] == dt.date(2014, 1, 1)
        assert dates[-1] < dt.date(2014, 4, 2)

    def test_carrier_skew(self):
        ds = generate_flights(6000, seed=2)
        counts = Counter(ds.flights["carrier_id"])
        assert counts[0] > counts[len(CARRIERS) - 1] * 2  # Zipf-ish head

    def test_cancelled_flights_have_null_delays(self):
        ds = generate_flights(3000, seed=3)
        for cancelled, delay in zip(ds.flights["cancelled"], ds.flights["dep_delay"]):
            assert (delay is None) == cancelled

    def test_hnl_ogg_restricted_to_alaska(self):
        ds = generate_flights(6000, seed=4)
        hnl = [m[0] for m in MARKETS].index("HNL-OGG")
        carriers = {
            c
            for c, m in zip(ds.flights["carrier_id"], ds.flights["market_id"])
            if m == hnl
        }
        assert carriers == {5}

    def test_load_into_engine(self):
        engine = generate_flights(800, seed=7).load_into_engine()
        assert engine.table("Extract.flights").n_rows == 800
        assert engine.table("Extract.flights").sort_keys == ("date_",)
        assert engine.table("Extract.flights").column("date_").encoding == "rle"
        out = engine.query(
            '(distinct (carrier_name) (join inner ((carrier_id id))'
            ' (scan "Extract.flights") (scan "Extract.carriers")))'
        )
        assert out.n_rows == len(CARRIERS)

    def test_model_schema(self):
        engine = generate_flights(200, seed=8).load_into_engine()
        from repro.connectors import TdeDataSource

        schema = flights_model().schema(TdeDataSource(engine))
        for field in ("carrier_name", "market", "weekday", "delayed", "dep_delay_hours"):
            assert field in schema


class TestTraffic:
    def _gen(self, **kwargs):
        return TrafficGenerator(
            [fig1_dashboard(), fig2_dashboard()],
            selection_domains={
                "market-carrier-airline": {"market": [m[0] for m in MARKETS]},
            },
            **kwargs,
        )

    def test_deterministic(self):
        a = list(self._gen(seed=9).events(50))
        b = list(self._gen(seed=9).events(50))
        assert a == b

    def test_popularity_skew(self):
        events = [e for e in self._gen(seed=10).events(300) if e.kind == "load"]
        counts = Counter(e.dashboard for e in events)
        assert counts["flights-on-time"] > counts["market-carrier-airline"]

    def test_mostly_initial_loads(self):
        """Tableau-Public-like: loads dominate interactions (paper 3.2)."""
        events = list(self._gen(seed=11, interaction_rate=0.15).events(300))
        kinds = Counter(e.kind for e in events)
        assert kinds["load"] > kinds.get("select", 0) * 3

    def test_selects_reference_valid_zones(self):
        for event in self._gen(seed=12, interaction_rate=0.5).events(200):
            if event.kind == "select":
                assert event.dashboard == "market-carrier-airline"
                assert event.zone == "market"
                assert event.values

    def test_requires_dashboards(self):
        with pytest.raises(WorkloadError):
            TrafficGenerator([])
