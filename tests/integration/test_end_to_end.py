"""Cross-layer integration tests: limited backends, failure injection,
multi-source pipelines, and empty-data edge flows."""

import threading

import pytest

from repro.connectors import SimDbDataSource, SimulatedDatabase, TdeDataSource
from repro.connectors.simdb import ServerProfile
from repro.core.pipeline import PipelineOptions, QueryPipeline
from repro.dashboard import DashboardSession
from repro.errors import ReproError, SourceError
from repro.expr.ast import AggExpr, ColumnRef
from repro.queries import CategoricalFilter, DataSourceModel, QuerySpec
from repro.sql.dialects import QUIRKDB
from repro.workloads import fig2_dashboard, flights_model, generate_flights

COUNT = AggExpr("count")
DATASET = generate_flights(5000, seed=41)


def _quirk_source():
    db = DATASET.load_into_simdb(
        ServerProfile(dialect=QUIRKDB, time_scale=0), name="quirk"
    )
    return SimDbDataSource(db)


def _ansi_source():
    db = DATASET.load_into_simdb(ServerProfile(time_scale=0), name="ansi")
    return SimDbDataSource(db)


class TestQuirkBackendEndToEnd:
    """The whole dashboard stack over a backend with no LIMIT, no temp
    tables, tiny IN-lists, and missing functions — everything the
    compiler must hoist into local post-processing (paper 3.1)."""

    def test_fig2_dashboard_matches_ansi(self):
        model = flights_model()
        quirk = DashboardSession(fig2_dashboard(), QueryPipeline(_quirk_source(), model))
        ansi = DashboardSession(fig2_dashboard(), QueryPipeline(_ansi_source(), model))
        quirk.render()
        ansi.render()
        quirk.select("market", ["LAX-SFO"])
        ansi.select("market", ["LAX-SFO"])
        for zone in ("market", "carrier", "airline_name"):
            assert quirk.zone_tables[zone].approx_equals(
                ansi.zone_tables[zone], ordered=False
            ), zone

    def test_big_in_list_without_temp_tables(self):
        model = flights_model()
        pipeline = QueryPipeline(_quirk_source(), model)
        spec = QuerySpec(
            "faa",
            dimensions=("carrier_name",),
            measures=(("n", COUNT),),
            filters=(CategoricalFilter("distance", tuple(range(100, 2000))),),
        )
        reference = QueryPipeline(_ansi_source(), model).run_spec(spec)
        assert pipeline.run_spec(spec).approx_equals(reference, ordered=False)


class TestFailureInjection:
    def test_backend_error_propagates_through_concurrent_batch(self):
        model = flights_model()
        source = _ansi_source()
        pipeline = QueryPipeline(source, model)
        good = QuerySpec("faa", dimensions=("carrier_name",), measures=(("n", COUNT),))
        bad = QuerySpec("faa", dimensions=("no_such_field",))
        with pytest.raises(ReproError):
            pipeline.run_batch([good, bad])

    def test_connection_death_mid_session(self):
        source = _ansi_source()
        conn = source.connect()
        conn.close()
        with pytest.raises(SourceError):
            conn.execute('SELECT * FROM "Extract"."flights"')

    def test_pool_recovers_after_worker_error(self):
        model = flights_model()
        pipeline = QueryPipeline(_ansi_source(), model)
        bad = QuerySpec("faa", dimensions=("missing",))
        with pytest.raises(ReproError):
            pipeline.run_spec(bad)
        good = QuerySpec("faa", measures=(("n", COUNT),))
        assert pipeline.run_spec(good).to_pydict() == {"n": [5000]}

    def test_exchange_error_does_not_hang(self, flights_engine):
        """A failing fragment must terminate the whole parallel query."""
        from repro.expr.ast import Call, ColumnRef
        from repro.tde.exec import ExecContext, PExchange, PFilter, PScan, execute_to_table

        table = flights_engine.table("Extract.flights")
        bad = PFilter(PScan(table), Call(">", (ColumnRef("ghost"), ColumnRef("delay"))))
        done = []

        def run():
            try:
                execute_to_table(PExchange([PScan(table, stop=10), bad]), ExecContext())
            except Exception:
                done.append(True)

        t = threading.Thread(target=run, daemon=True)
        t.start()
        t.join(timeout=10)
        assert done == [True]

    def test_simdb_rejects_malformed_sql(self):
        source = _ansi_source()
        conn = source.connect()
        from repro.errors import SqlParseError

        with pytest.raises(SqlParseError):
            conn.execute("SELEKT * FROM x")


class TestMultiSource:
    def test_two_pipelines_do_not_cross_cache(self):
        """Entries are keyed per datasource/model name: two published
        sources with the same shape must not serve each other's rows."""
        half_a = generate_flights(1000, seed=1)
        half_b = generate_flights(2000, seed=2)
        db_a = half_a.load_into_simdb(ServerProfile(time_scale=0), name="a")
        db_b = half_b.load_into_simdb(ServerProfile(time_scale=0), name="b")
        from repro.core.cache.intelligent import IntelligentCache
        from repro.core.cache.literal import LiteralCache

        shared_int = IntelligentCache()
        shared_lit = LiteralCache()
        model_a = flights_model("src_a")
        model_b = flights_model("src_b")
        pipe_a = QueryPipeline(
            SimDbDataSource(db_a), model_a, intelligent_cache=shared_int, literal_cache=shared_lit
        )
        pipe_b = QueryPipeline(
            SimDbDataSource(db_b), model_b, intelligent_cache=shared_int, literal_cache=shared_lit
        )
        count_a = pipe_a.run_spec(QuerySpec("src_a", measures=(("n", COUNT),)))
        count_b = pipe_b.run_spec(QuerySpec("src_b", measures=(("n", COUNT),)))
        assert count_a.to_pydict() == {"n": [1000]}
        assert count_b.to_pydict() == {"n": [2000]}

    def test_tde_and_simdb_agree(self):
        model = flights_model()
        engine = DATASET.load_into_engine()
        tde_pipe = QueryPipeline(TdeDataSource(engine), model)
        sql_pipe = QueryPipeline(_ansi_source(), model)
        spec = QuerySpec(
            "faa",
            dimensions=("market",),
            measures=(("n", COUNT), ("a", AggExpr("avg", ColumnRef("dep_delay")))),
            order_by=(("n", False),),
        )
        assert tde_pipe.run_spec(spec).approx_equals(sql_pipe.run_spec(spec))


class TestEmptyDataFlows:
    def test_empty_filter_result_through_pipeline(self):
        model = flights_model()
        pipeline = QueryPipeline(_ansi_source(), model)
        spec = QuerySpec(
            "faa",
            dimensions=("carrier_name",),
            measures=(("n", COUNT),),
            filters=(CategoricalFilter("distance", (999_999,)),),
        )
        out = pipeline.run_spec(spec)
        assert out.n_rows == 0
        assert out.column_names == ["carrier_name", "n"]

    def test_global_aggregate_over_empty_selection(self):
        model = flights_model()
        pipeline = QueryPipeline(_ansi_source(), model)
        spec = QuerySpec(
            "faa",
            measures=(("n", COUNT), ("s", AggExpr("sum", ColumnRef("dep_delay")))),
            filters=(CategoricalFilter("distance", (999_999,)),),
        )
        out = pipeline.run_spec(spec)
        assert out.to_pydict() == {"n": [0], "s": [None]}

    def test_empty_result_is_cached_and_reused(self):
        model = flights_model()
        pipeline = QueryPipeline(_ansi_source(), model)
        spec = QuerySpec(
            "faa",
            dimensions=("carrier_name",),
            measures=(("n", COUNT),),
            filters=(CategoricalFilter("distance", (999_999,)),),
        )
        pipeline.run_spec(spec)
        again = pipeline.run_batch([spec])
        assert again.remote_queries == 0
