"""FaultPlan determinism: same seed ⇒ same schedule, any interleaving."""

from __future__ import annotations

import json
import threading

from repro.faults import (
    CLEAN,
    FaultPlan,
    FaultRule,
    VirtualTimeClock,
)

OPS = ("connect", "execute", "create_temp_table")
SOURCES = ("warehouse", "files")


def _drive_serial(plan: FaultPlan, per_stream: int = 40) -> list[tuple]:
    out = []
    for op in OPS:
        for source in SOURCES:
            for _ in range(per_stream):
                d = plan.decide(op, source)
                out.append((op, source, d.kind, round(d.latency_s, 9)))
    return out


class TestSampling:
    def test_same_seed_same_decisions(self):
        a = _drive_serial(FaultPlan(seed=42, rate=0.5))
        b = _drive_serial(FaultPlan(seed=42, rate=0.5))
        assert a == b

    def test_different_seed_different_schedule(self):
        a = FaultPlan(seed=1, rate=0.5)
        b = FaultPlan(seed=2, rate=0.5)
        _drive_serial(a)
        _drive_serial(b)
        assert a.export() != b.export()
        assert a.digest() != b.digest()

    def test_export_and_digest_are_byte_stable(self):
        a = FaultPlan(seed=7, rate=0.3)
        b = FaultPlan(seed=7, rate=0.3)
        _drive_serial(a)
        _drive_serial(b)
        assert json.dumps(a.export()) == json.dumps(b.export())
        assert a.digest() == b.digest()

    def test_rate_zero_is_inert(self):
        plan = FaultPlan(seed=3, rate=0.0)
        assert all(d[2] == "none" for d in _drive_serial(plan))
        assert plan.export() == []

    def test_rate_one_always_faults(self):
        plan = FaultPlan(seed=3, rate=1.0)
        decisions = _drive_serial(plan, per_stream=10)
        assert all(d[2] != "none" for d in decisions)
        assert len(plan.export()) == len(decisions)

    def test_weights_select_kind(self):
        plan = FaultPlan(seed=5, rate=1.0, weights={"latency": 1.0})
        kinds = {d[2] for d in _drive_serial(plan, per_stream=5)}
        assert kinds == {"latency"}

    def test_per_op_rates(self):
        plan = FaultPlan(seed=5, rate=0.0, rates={"execute": 1.0})
        for op, _source, kind, _l in _drive_serial(plan, per_stream=5):
            assert (kind != "none") == (op == "execute")

    def test_latency_drawn_from_range(self):
        plan = FaultPlan(
            seed=5, rate=1.0, weights={"latency": 1.0}, latency_s=(0.5, 0.6)
        )
        for _op, _source, _k, latency in _drive_serial(plan, per_stream=5):
            assert 0.5 <= latency <= 0.6


class TestInterleavingIndependence:
    def test_thread_interleaving_does_not_change_schedule(self):
        """Decisions are keyed on per-(op, source) call index, so the same
        workload produces the same realized schedule no matter how the
        calling threads interleave."""
        serial = FaultPlan(seed=11, rate=0.4)
        _drive_serial(serial, per_stream=60)

        threaded = FaultPlan(seed=11, rate=0.4)
        threads = [
            threading.Thread(
                target=lambda op=op, source=source: [
                    threaded.decide(op, source) for _ in range(60)
                ],
            )
            for op in OPS
            for source in SOURCES
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert threaded.export() == serial.export()
        assert threaded.digest() == serial.digest()

    def test_reset_replays_identically(self):
        plan = FaultPlan(seed=13, rate=0.5)
        _drive_serial(plan)
        first = plan.export()
        plan.reset()
        assert plan.export() == []
        _drive_serial(plan)
        assert plan.export() == first


class TestScriptedRules:
    def test_rules_take_precedence_over_sampling(self):
        plan = FaultPlan(
            seed=1,
            rate=0.0,
            rules=[FaultRule("error", op="execute", first=1, last=2)],
        )
        kinds = [plan.decide("execute", "w").kind for _ in range(5)]
        assert kinds == ["none", "error", "error", "none", "none"]
        assert plan.decide("connect", "w").clean

    def test_rule_source_match(self):
        plan = FaultPlan.scripted([FaultRule("disconnect", source="w1")])
        assert plan.decide("execute", "w1").kind == "disconnect"
        assert plan.decide("execute", "w2").clean

    def test_time_window_rule_on_virtual_clock(self):
        clock = VirtualTimeClock()
        plan = FaultPlan.scripted(
            [FaultRule("error", t_from=10.0, t_until=20.0)], clock=clock
        )
        assert plan.decide("execute", "w").clean
        clock.advance(15.0)
        assert plan.decide("execute", "w").kind == "error"
        clock.advance(10.0)  # t = 25, window closed
        assert plan.decide("execute", "w").clean

    def test_calls_counter(self):
        plan = FaultPlan(seed=0)
        for _ in range(3):
            plan.decide("execute", "a")
        plan.decide("connect", "a")
        assert plan.calls() == 4
        assert plan.calls("execute") == 3

    def test_clean_decision_constant(self):
        assert CLEAN.clean
        assert CLEAN.to_error("execute", "w") is None
