"""Chaos suite for the elastic cache tier: topology churn under faults.

The safety contracts the replicated tier must keep while nodes die,
join, drain, and come back mid-trace (all on virtual time, all seeded):

* **no lost acknowledged writes at R>=2** — an entry whose PUT was acked
  by the write quorum survives any single node kill between repair
  sweeps, byte-for-byte;
* **read-repair convergence** — after the trace quiesces (one quorum
  sweep), every live owner of every key holds a byte-identical envelope;
* **reshard safety** — a join warms exactly the keys the ring assigns
  the new node and surplus replicas are dropped, copies-before-drops, so
  replica count never dips mid-reshard;
* **replayability** — the same seed and script replay a byte-identical
  fault schedule *and* decision-event log, twice.

Warm-up/repair copies go through the single-flight registry, so a herd
racing a migration never duplicates a copy — asserted directly here by
holding a warm flight open while a reader tries to repair through it.
"""

from __future__ import annotations

import json
import random
import threading

from repro import obs
from repro.core.cache.replicated import ReplicatedStore, _KeyFlight
from repro.faults.clock import VirtualTimeClock
from repro.faults.plan import FaultPlan, FaultRule

SEED = 2024


def _tier(
    node_ids=("n0", "n1", "n2", "n3"),
    *,
    replication: int = 2,
    clock: VirtualTimeClock | None = None,
    faults: FaultPlan | None = None,
    ttl_s: float | None = None,
) -> ReplicatedStore:
    return ReplicatedStore(
        node_ids,
        replication=replication,
        clock=clock or VirtualTimeClock(),
        faults=faults,
        ttl_s=ttl_s,
        latency_s=0.0005,
        per_mb_s=0.002,
    )


def _payload(key: str, version: int) -> bytes:
    return f"{key}@{version}".encode() * 3


def _assert_converged(store: ReplicatedStore) -> int:
    """After quiesce every live owner holds identical bytes; no non-owner
    holds the key. Returns how many keys were checked."""
    live = store.live_nodes()
    keys: set[str] = set()
    for node_id in live:
        keys.update(store.node(node_id).store.keys())
    for key in sorted(keys):
        owners = [n for n in store.owners(key) if n in live]
        blobs = {store.node(n).store.peek(key) for n in owners}
        assert len(blobs) == 1 and None not in blobs, (
            f"{key}: owners {owners} disagree after quiesce"
        )
        for node_id in live:
            if node_id not in owners:
                assert store.node(node_id).store.peek(key) is None, (
                    f"{key}: non-owner {node_id} still holds a replica"
                )
    return len(keys)


class TestNoLostAckedWrites:
    def test_acked_writes_survive_kills_between_sweeps(self):
        """Seeded trace: write, kill, sweep, join, kill again — every
        quorum-acked entry stays readable with its latest payload."""
        clock = VirtualTimeClock()
        store = _tier(clock=clock, replication=2)
        rng = random.Random(SEED)
        acked: dict[str, bytes] = {}

        def write_burst(n: int) -> None:
            for _ in range(n):
                key = f"zone-{rng.randrange(40)}"
                blob = _payload(key, rng.randrange(1_000_000))
                if store.put(key, blob) >= store.write_quorum:
                    acked[key] = blob

        def assert_all_readable() -> None:
            for key, expected in sorted(acked.items()):
                got = store.get(key, mode="quorum")
                assert got == expected, f"{key}: acked write lost"

        write_burst(80)
        store.kill("n1")  # data gone with the node
        assert_all_readable()
        store.repair_sweep()  # restore R-way before the next failure
        write_burst(40)
        store.join("n4")  # warmed join mid-trace
        assert_all_readable()
        store.kill("n3")
        assert_all_readable()
        store.repair_sweep()
        assert _assert_converged(store) > 0
        assert store.stats.under_quorum_writes == 0  # every put found its quorum
        assert clock.monotonic() > 0.0  # round trips ran on virtual time

    def test_under_quorum_writes_are_reported_not_silent(self):
        store = _tier(("a", "b"), replication=2)
        store.fail("b")
        key = "k"
        # With one of two replicas unreachable the put acks below quorum.
        assert store.put(key, b"v1") == 1
        assert store.stats.under_quorum_writes == 1
        # Best-effort readable...
        assert store.get(key) == b"v1"
        # ...but a kill of the only holder loses it — exactly the
        # guarantee the under-quorum flag withdraws.
        holder = next(n for n in ("a", "b") if store.node(n).store.peek(key))
        assert holder == "a"


class TestReadRepairConvergence:
    def test_recovered_node_converges_to_newest_version(self):
        store = _tier(("a", "b", "c"), replication=2)
        keys = [f"k{i}" for i in range(30)]
        for key in keys:
            store.put(key, _payload(key, 1))
        store.fail("b")  # outage: keeps data, misses the next writes
        for key in keys:
            store.put(key, _payload(key, 2))
        assert store.stats.under_quorum_writes > 0
        store.recover("b")
        store.repair_sweep()
        _assert_converged(store)
        for key in keys:  # newest version won everywhere
            assert store.get(key, mode="quorum") == _payload(key, 2)
        assert store.stats.read_repairs > 0

    def test_fallback_read_repairs_the_primary_inline(self):
        store = _tier(("a", "b", "c"), replication=2)
        store.put("k", b"v")
        primary = store.owners("k")[0]
        store.node(primary).store.delete("k")
        assert store.get("k") == b"v"  # served from the surviving replica
        assert store.stats.fallback_reads == 1
        assert store.node(primary).store.peek("k") is not None  # repaired
        assert store.stats.read_repairs == 1

    def test_ttl_expiry_is_a_miss_everywhere(self):
        clock = VirtualTimeClock()
        store = _tier(clock=clock, ttl_s=10.0)
        store.put("k", b"v")
        assert store.get("k") == b"v"
        clock.advance(11.0)
        assert store.get("k") is None
        assert store.stats.expired_drops > 0
        assert store.get("k", mode="quorum") is None


class TestReshardSafety:
    def test_join_warms_exactly_the_assigned_keys(self):
        store = _tier(("n0", "n1", "n2"), replication=2)
        keys = [f"zone-{i}" for i in range(60)]
        for key in keys:
            store.put(key, _payload(key, 1))
        report = store.join("n9")
        assert report["keys_moved"] > 0
        new_node = store.node("n9")
        held = set(new_node.store.keys())
        owned = {k for k in keys if "n9" in store.owners(k)}
        assert held == owned, "join copied keys the ring does not assign n9"
        # Surplus replicas were dropped: placement is exactly R-way again.
        _assert_converged(store)
        assert new_node.migrated_in == report["keys_moved"]

    def test_cold_join_skips_migration(self):
        store = _tier(("n0", "n1"), replication=2)
        store.put("k", b"v")
        report = store.join("n2", warm=False)
        assert report["keys_moved"] == 0
        assert len(store.node("n2").store) == 0

    def test_leave_drains_before_withdrawing(self):
        store = _tier(("n0", "n1", "n2"), replication=2)
        keys = [f"zone-{i}" for i in range(40)]
        for key in keys:
            store.put(key, _payload(key, 1))
        drained = store.leave("n1")
        assert "n1" not in store.live_nodes()
        for key in keys:  # nothing lost by a *graceful* departure
            assert store.get(key, mode="quorum") == _payload(key, 1)
        store.repair_sweep()
        _assert_converged(store)
        assert drained["keys_moved"] >= 0

    def test_last_node_cannot_leave_or_die(self):
        store = _tier(("only",), replication=1)
        for method in (store.leave, store.kill):
            try:
                method("only")
            except ValueError:
                continue
            raise AssertionError("removing the last node must be refused")

    def test_warm_copies_coalesce_through_single_flight(self):
        """A reader needing repair while a warm flight for the same key is
        open joins it instead of double-writing."""
        store = _tier(("a", "b", "c"), replication=2)
        store.put("k", b"v")
        primary = store.owners("k")[0]
        store.node(primary).store.delete("k")
        flight, ticket = store._warm.lead_or_join(_KeyFlight("warm|k"), subsume=False)
        assert ticket is None  # we lead; the reader below must join
        served: list[bytes | None] = []
        reader = threading.Thread(target=lambda: served.append(store.get("k")))
        reader.start()
        try:
            # Let the reader reach the flight join; it owes us a wait.
            reader.join(timeout=0.5)
            assert reader.is_alive(), "reader did not coalesce into the flight"
        finally:
            store._warm.publish(flight, None)
        reader.join(timeout=5.0)
        assert not reader.is_alive()
        assert served == [b"v"]  # fallback still served the right bytes
        # The coalesced reader skipped its own repair write.
        assert store.stats.read_repairs == 0
        assert store.node(primary).store.peek("k") is None
        # With the flight gone the next read does repair the primary.
        assert store.get("k") == b"v"
        assert store.stats.read_repairs == 1


class TestScriptedChaosReplay:
    def _run_once(self) -> tuple[str, str, dict]:
        """One full scripted scenario; returns (fault schedule, event log,
        final fleet stats) in canonical JSON."""
        clock = VirtualTimeClock()
        plan = FaultPlan(
            seed=SEED,
            rate=0.08,
            rates={"kv.get": 0.08, "kv.put": 0.08},
            rules=(
                # A scripted outage window: n2 drops every call between
                # t=0.05 and t=0.2 on the virtual clock.
                FaultRule(kind="error", source="n2", t_from=0.05, t_until=0.2),
            ),
            clock=clock,
        )
        store = _tier(clock=clock, faults=plan, replication=2)
        rng = random.Random(SEED)
        with obs.recording(clock=clock.monotonic) as rec:
            for step in range(220):
                key = f"zone-{int(rng.paretovariate(1.2)) % 48}"
                if rng.random() < 0.4:
                    store.put(key, _payload(key, step))
                else:
                    store.get(key)
                if step == 80:
                    store.kill("n1")
                if step == 140:
                    store.join("n4")
                if step == 190:
                    store.fail("n0")
                if step == 205:
                    store.recover("n0")
            store.repair_sweep()
            _assert_converged(store)
        events = json.dumps(
            [ev.to_dict() for ev in rec.events()], sort_keys=True
        )
        return json.dumps(plan.export(), sort_keys=True), events, store.statz()

    def test_two_runs_replay_byte_identical(self):
        schedule_a, events_a, statz_a = self._run_once()
        schedule_b, events_b, statz_b = self._run_once()
        assert schedule_a == schedule_b
        assert events_a == events_b
        assert json.dumps(statz_a, sort_keys=True) == json.dumps(
            statz_b, sort_keys=True
        )
        assert json.loads(schedule_a), "the scripted plan injected no faults"
        kinds = {ev["kind"] for ev in json.loads(events_a)}
        # The full decision surface of the tier showed up in the log.
        assert {"ring.kill", "ring.join", "ring.fail", "ring.recover"} <= kinds
        assert "reshard.plan" in kinds and "reshard.done" in kinds
        assert any(k.startswith("replica.") for k in kinds)
        assert "fault.injected" in kinds

    def test_invalidation_fans_out_to_every_live_node(self):
        store = _tier(("a", "b", "c"), replication=3)
        for i in range(10):
            store.put(f"faa|q{i}", b"x")
            store.put(f"retail|q{i}", b"y")
        dropped = store.invalidate_prefix("faa|")
        assert dropped == 10
        for node_id in store.live_nodes():
            node_keys = store.node(node_id).store.keys()
            assert not any(k.startswith("faa|") for k in node_keys)
        assert len(store) == 10  # the other namespace is untouched
        assert store.stats.invalidation_fanouts == 1
