"""Coalescing under failure: leaders die, followers recover on their own.

The contract (DESIGN S35): a leader shares only *fresh* results. A
leader that fails — or degrades to a stale serve — propagates a
``SourceError`` to its followers, and each follower then retries
independently: fresh if its own source is healthy, stale from its *own*
stale store if not, a per-spec error if it has no history. No follower
ever inherits a stale flag (or a stale table) it didn't earn.

A scripted registry also proves a seeded coalesced run replays with a
byte-identical decision-event log.
"""

from __future__ import annotations

import json
import threading
import time

from repro import obs
from repro.core.coalesce import SingleFlightRegistry
from repro.core.pipeline import PipelineOptions, QueryPipeline
from repro.errors import SourceUnavailableError
from repro.faults import FaultPlan, FaultRule, FaultyDataSource, VirtualTimeClock
from tests.core.conftest import AVG_DELAY, COUNT, SUM_DELAY, make_model, make_source, spec

WIDE = spec(
    dimensions=("name", "market_id"),
    measures=(("n", COUNT), ("s", SUM_DELAY)),
)
NARROW = spec(dimensions=("name",), measures=(("n", COUNT),))
OTHER = spec(dimensions=("market",), measures=(("a", AVG_DELAY),))


class _Gated:
    """Source wrapper whose remote executes block on ``gate`` (and can be
    scripted to fail) — but only while ``gating`` is on, so tests can warm
    stale stores through the same source first."""

    def __init__(self, inner, *, fail_with: Exception | None = None):
        self._inner = inner
        self.gate = threading.Event()
        self.started = threading.Event()
        self.gating = False
        self.fail_with = fail_with

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def connect(self):
        conn = self._inner.connect()
        inner_driver = conn.driver
        outer = self

        class _Driver:
            def execute(self, text):
                if outer.gating:
                    outer.started.set()
                    assert outer.gate.wait(10.0), "test gate never opened"
                    if outer.fail_with is not None:
                        raise outer.fail_with
                return inner_driver.execute(text)

            def __getattr__(self, name):
                return getattr(inner_driver, name)

        conn.driver = _Driver()
        return conn


def _pipe(source, registry, *, clock=None, **overrides):
    options = dict(
        enable_intelligent_cache=False,
        enable_literal_cache=False,
        enrich_for_reuse=False,
        concurrent=False,
        coalesce_wait_timeout_s=10.0,
    )
    options.update(overrides)
    return QueryPipeline(
        source,
        make_model(),
        options=PipelineOptions(**options),
        coalescer=registry,
        clock=clock,
    )


def _wait_until(predicate, timeout_s: float = 10.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached before timeout")
        time.sleep(0.001)


def _in_thread(fn):
    out: dict = {}
    thread = threading.Thread(target=lambda: out.update(r=fn()))
    thread.start()
    return thread, out


class TestLeaderFailurePropagation:
    def test_followers_retry_fresh_on_their_own_source(self):
        registry = SingleFlightRegistry("warehouse")
        leader_source = _Gated(
            make_source(), fail_with=SourceUnavailableError("leader backend down")
        )
        leader_source.gating = True
        leader_pipe = _pipe(leader_source, registry, serve_stale=False)
        follower_pipe = _pipe(make_source(), registry)

        leader_thread, leader_out = _in_thread(
            lambda: leader_pipe.run_batch([NARROW])
        )
        assert leader_source.started.wait(10.0)
        follower_thread, follower_out = _in_thread(
            lambda: follower_pipe.run_batch([NARROW])
        )
        _wait_until(lambda: registry.stats.exact_joins == 1)
        leader_source.gate.set()
        leader_thread.join(10.0)
        follower_thread.join(10.0)

        # The leader's batch reports the failure...
        leader = leader_out["r"]
        assert not leader.ok
        assert NARROW.canonical() in leader.errors
        assert registry.stats.failed == 1
        # ...and the follower recovered with its own execution, fresh.
        follower = follower_out["r"]
        assert follower.ok, follower.errors
        assert follower.remote_queries == 1
        assert follower.coalesced_hits == 0
        assert not follower.stale_keys
        oracle = _pipe(make_source(), SingleFlightRegistry("oracle")).run_spec(
            NARROW
        )
        assert follower.table_for(NARROW).equals_unordered(oracle)

    def test_degraded_leader_never_shares_its_stale_table(self):
        """A stale-serving leader fails the flight; followers go fresh."""
        clock = VirtualTimeClock()
        plan = FaultPlan.scripted(
            [FaultRule("error", op="execute", t_from=100.0)], clock=clock
        )
        registry = SingleFlightRegistry("warehouse", clock=clock)
        leader_source = _Gated(FaultyDataSource(make_source(), plan, clock=clock))
        leader_pipe = _pipe(leader_source, registry, clock=clock, serve_stale=True)
        follower_pipe = _pipe(make_source(), registry, clock=clock)

        # Healthy warm-up earns the leader a stale fallback.
        warm = leader_pipe.run_batch([NARROW])
        assert warm.ok and not warm.stale_keys

        clock.advance(150.0)  # outage begins
        leader_source.gating = True
        leader_thread, leader_out = _in_thread(
            lambda: leader_pipe.run_batch([NARROW])
        )
        assert leader_source.started.wait(10.0)
        follower_thread, follower_out = _in_thread(
            lambda: follower_pipe.run_batch([NARROW])
        )
        _wait_until(lambda: registry.stats.exact_joins == 1)
        leader_source.gate.set()
        leader_thread.join(10.0)
        follower_thread.join(10.0)

        # Leader degraded: answered, but flagged stale.
        leader = leader_out["r"]
        assert leader.ok and leader.is_stale(NARROW)
        # The flight was failed, not published with the stale table.
        assert registry.stats.published == 0 or registry.stats.failed == 1
        assert registry.stats.failed == 1
        # The follower's answer is its own fresh execution, unflagged.
        follower = follower_out["r"]
        assert follower.ok
        assert not follower.stale_keys, "follower inherited a stale flag"
        assert follower.remote_queries == 1
        assert follower.coalesced_hits == 0

    def test_followers_degrade_through_their_own_stale_store(self):
        """With every source down, history decides each follower's fate."""
        clock = VirtualTimeClock()
        registry = SingleFlightRegistry("warehouse", clock=clock)
        leader_source = _Gated(
            make_source(), fail_with=SourceUnavailableError("leader backend down")
        )
        leader_pipe = _pipe(leader_source, registry, clock=clock, serve_stale=False)

        outage = FaultPlan.scripted(
            [FaultRule("error", op="execute", t_from=100.0)], clock=clock
        )
        warmed_pipe = _pipe(
            FaultyDataSource(make_source(), outage, clock=clock),
            registry,
            clock=clock,
            serve_stale=True,
        )
        cold_pipe = _pipe(
            FaultyDataSource(make_source(), outage, clock=clock),
            registry,
            clock=clock,
            serve_stale=True,
        )

        warm = warmed_pipe.run_batch([NARROW])  # healthy history at t=0
        assert warm.ok and not warm.stale_keys

        clock.advance(150.0)
        leader_source.gating = True
        leader_thread, _ = _in_thread(lambda: leader_pipe.run_batch([NARROW]))
        assert leader_source.started.wait(10.0)
        warmed_thread, warmed_out = _in_thread(
            lambda: warmed_pipe.run_batch([NARROW])
        )
        cold_thread, cold_out = _in_thread(lambda: cold_pipe.run_batch([NARROW]))
        _wait_until(lambda: registry.stats.exact_joins == 2)
        leader_source.gate.set()
        for t in (leader_thread, warmed_thread, cold_thread):
            t.join(10.0)

        # The follower with history degrades to its own last-good table...
        warmed_result = warmed_out["r"]
        assert warmed_result.ok
        assert warmed_result.is_stale(NARROW)
        assert warmed_result.table_for(NARROW).equals_unordered(
            warm.table_for(NARROW)
        )
        # ...the one without history reports a per-spec error. Neither
        # silently received the (never-published) leader result.
        cold_result = cold_out["r"]
        assert not cold_result.ok
        assert NARROW.canonical() in cold_result.errors
        assert registry.stats.failed == 1

    def test_wait_timeout_falls_back_to_direct_execution(self):
        """A wedged leader can't hold followers past their timeout."""
        registry = SingleFlightRegistry("warehouse")
        leader_source = _Gated(make_source())
        leader_source.gating = True
        leader_pipe = _pipe(leader_source, registry)
        follower_pipe = _pipe(
            make_source(), registry, coalesce_wait_timeout_s=0.05
        )

        leader_thread, leader_out = _in_thread(
            lambda: leader_pipe.run_batch([NARROW])
        )
        assert leader_source.started.wait(10.0)
        follower_thread, follower_out = _in_thread(
            lambda: follower_pipe.run_batch([NARROW])
        )
        follower_thread.join(10.0)  # finishes while the leader is wedged

        follower = follower_out["r"]
        assert follower.ok
        assert follower.remote_queries == 1
        assert follower.coalesced_hits == 0
        assert follower.coalesce_wait_s >= 0.0

        leader_source.gate.set()  # release the wedged leader
        leader_thread.join(10.0)
        assert leader_out["r"].ok
        assert leader_out["r"].remote_queries == 1


class _ScriptedRegistry(SingleFlightRegistry):
    """Resolves a scripted flight the instant a follower joins it, so a
    full lead→join→publish/fail→wait cycle runs on one thread."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.script: list = []

    def lead_or_join(self, spec, **kwargs):
        flight, ticket = super().lead_or_join(spec, **kwargs)
        if ticket is not None and self.script:
            action, target, payload = self.script.pop(0)
            if action == "publish":
                self.publish(target, payload)
            else:
                self.fail(target, payload)
        return flight, ticket


class TestDeterministicReplay:
    def _run_once(self) -> tuple[str, dict]:
        clock = VirtualTimeClock()
        registry = _ScriptedRegistry("warehouse", clock=clock)
        follower = _pipe(make_source(), registry, clock=clock)
        oracle_pipe = _pipe(make_source(), SingleFlightRegistry("oracle"))
        wide_table = oracle_pipe.run_spec(WIDE)
        try:
            with obs.recording(clock=clock.monotonic) as rec:
                # Round 1: an in-flight WIDE leader publishes the moment
                # the (subsumed) NARROW follower joins.
                flight, _ = registry.lead_or_join(WIDE)
                registry.script = [("publish", flight, wide_table)]
                shared = follower.run_batch([NARROW])
                # Round 2: the leader dies; the follower retries solo.
                flight2, _ = registry.lead_or_join(OTHER)
                registry.script = [
                    ("fail", flight2, SourceUnavailableError("scripted death"))
                ]
                retried = follower.run_batch([OTHER])
            assert shared.ok and shared.coalesced_hits == 1
            assert retried.ok and retried.remote_queries == 1
        finally:
            follower.close()
            oracle_pipe.close()
        events = [ev.to_dict() for ev in rec.events()]
        return json.dumps(events, sort_keys=True), {
            "coalesced": shared.coalesced_hits,
            "retried_remote": retried.remote_queries,
        }

    def test_seeded_coalesced_run_replays_byte_identical(self):
        events_a, outcome_a = self._run_once()
        events_b, outcome_b = self._run_once()
        assert events_a == events_b
        assert outcome_a == outcome_b
        kinds = {ev["kind"] for ev in json.loads(events_a)}
        # The log covers the whole coalesce lifecycle, both rounds.
        assert "coalesce.lead" in kinds
        assert "coalesce.join" in kinds
        assert "coalesce.publish" in kinds
        assert "coalesce.leader_failed" in kinds
        assert "coalesce.follower_retry" in kinds
