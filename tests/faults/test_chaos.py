"""Chaos suite: the pipeline under seeded fault injection.

The contracts under test:

* ``run_batch`` never raises to the caller, at 10% and at 50% injected
  fault rates — every spec is either answered (possibly stale) or
  reported in ``BatchResult.errors``;
* stale serves are flagged (``stale_keys`` / ``is_stale``) and equal the
  last good answer byte-for-byte;
* the circuit breaker trips during an outage and closes again after the
  recovery window on the virtual clock;
* the same seed replays a byte-identical fault schedule *and* decision
  event log;
* dashboards degrade per zone, never whole-dashboard.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.connectors import SimDbDataSource
from repro.connectors.simdb import ServerProfile
from repro.core.pipeline import PipelineOptions, QueryPipeline
from repro.dashboard import DashboardSession
from repro.faults import (
    CLOSED,
    FaultPlan,
    FaultRule,
    FaultyDataSource,
    RetryPolicy,
    VirtualTimeClock,
)
from repro.workloads import fig2_dashboard, flights_model, generate_flights
from tests.core.conftest import make_model, make_source
from tests.difftest.gen import assert_tables_equal, gen_specs

SPEC_SEED = 99


def _chaos_pipeline(plan, clock, *, timeout_s=0.2, **option_overrides):
    options = dict(
        enable_intelligent_cache=False,
        enable_literal_cache=False,
        enable_fusion=True,
        enable_batch_graph=True,
        enrich_for_reuse=False,
        concurrent=False,
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.05, seed=plan.seed),
        enable_breaker=True,
        breaker_threshold=5,
        breaker_recovery_s=5.0,
        serve_stale=True,
    )
    options.update(option_overrides)
    source = FaultyDataSource(make_source(), plan, clock=clock, timeout_s=timeout_s)
    return QueryPipeline(
        source, make_model(), options=PipelineOptions(**options), clock=clock
    )


def _chunks(items, size):
    for start in range(0, len(items), size):
        yield items[start : start + size]


class TestNeverRaises:
    @pytest.mark.parametrize("rate", [0.1, 0.5])
    def test_batches_complete_under_injected_faults(self, rate):
        clock = VirtualTimeClock()
        plan = FaultPlan(seed=17, rate=rate, clock=clock)
        pipeline = _chaos_pipeline(plan, clock)
        specs = gen_specs(SPEC_SEED, 60)
        answered, failed = 0, 0
        try:
            for chunk in _chunks(specs, 6):
                result = pipeline.run_batch(chunk)  # must not raise
                for spec in chunk:
                    key = spec.canonical()
                    assert (key in result.tables) != (key in result.errors), (
                        f"{key} must be answered XOR failed"
                    )
                    answered += key in result.tables
                    failed += key in result.errors
                assert result.stale_keys <= set(result.tables)
        finally:
            pipeline.close()
        # The plan really was injecting (both rates produce faults), and
        # the pipeline still answered most of the workload.
        assert plan.export(), "no faults were injected"
        assert answered > 0
        if rate >= 0.5:
            assert failed > 0  # at 50% some specs exhaust their retries

    @pytest.mark.parametrize("rate", [0.1, 0.5])
    def test_concurrent_batches_complete_under_injected_faults(self, rate):
        clock = VirtualTimeClock()
        plan = FaultPlan(seed=23, rate=rate, clock=clock)
        pipeline = _chaos_pipeline(plan, clock, concurrent=True, max_workers=4)
        try:
            for chunk in _chunks(gen_specs(SPEC_SEED + 1, 36), 6):
                result = pipeline.run_batch(chunk)
                for spec in chunk:
                    key = spec.canonical()
                    assert (key in result.tables) != (key in result.errors)
        finally:
            pipeline.close()


class TestRetryRecovery:
    def test_single_disconnect_is_retried_transparently(self):
        clock = VirtualTimeClock()
        plan = FaultPlan.scripted(
            [FaultRule("disconnect", op="execute", first=0, last=0)], clock=clock
        )
        pipeline = _chaos_pipeline(plan, clock)
        healthy = QueryPipeline(
            make_source(), make_model(), options=PipelineOptions()
        )
        spec = gen_specs(SPEC_SEED, 1)[0]
        try:
            result = pipeline.run_batch([spec])
            assert result.ok
            assert not result.stale_keys  # recovered fresh, not degraded
            assert_tables_equal(
                result.table_for(spec), healthy.run_spec(spec), context="retry"
            )
            # The dead member was discarded, not re-idled.
            assert pipeline.pool.stats.discarded == 1
            # The backoff wait happened on the virtual clock.
            assert clock.monotonic() > 0.0
        finally:
            pipeline.close()
            healthy.close()


class TestStaleServes:
    def test_outage_serves_stale_flagged_then_recovers(self):
        clock = VirtualTimeClock()
        # Total outage of the warehouse between t=100 and t=200.
        plan = FaultPlan.scripted(
            [FaultRule("error", t_from=100.0, t_until=200.0)], clock=clock
        )
        pipeline = _chaos_pipeline(plan, clock, enable_breaker=False)
        specs = gen_specs(SPEC_SEED, 8)
        try:
            # Healthy warm-up populates the stale store.
            warm = pipeline.run_batch(specs)
            assert warm.ok and not warm.stale_keys

            clock.advance(150.0)  # into the outage
            degraded = pipeline.run_batch(specs)
            assert degraded.ok, degraded.errors
            for spec in specs:
                assert degraded.is_stale(spec), spec.canonical()
                assert_tables_equal(
                    degraded.table_for(spec),
                    warm.table_for(spec),
                    context="stale serve",
                )
            assert degraded.stale_hits == len(
                {s.canonical() for s in specs}
            )
            assert degraded.remote_queries == 0

            # A spec never answered before has no fallback: per-spec error.
            fresh_spec = gen_specs(SPEC_SEED + 7, 1)[0]
            mixed = pipeline.run_batch([fresh_spec])
            assert not mixed.ok
            assert fresh_spec.canonical() in mixed.errors
            from repro.errors import SourceUnavailableError

            with pytest.raises(SourceUnavailableError):
                mixed.table_for(fresh_spec)

            clock.advance(100.0)  # t=250: outage over
            recovered = pipeline.run_batch(specs)
            assert recovered.ok and not recovered.stale_keys
        finally:
            pipeline.close()

    def test_stale_disabled_reports_errors(self):
        clock = VirtualTimeClock()
        plan = FaultPlan.scripted([FaultRule("error", t_from=10.0)], clock=clock)
        pipeline = _chaos_pipeline(
            plan, clock, serve_stale=False, enable_breaker=False
        )
        specs = gen_specs(SPEC_SEED, 4)
        try:
            assert pipeline.run_batch(specs).ok
            clock.advance(20.0)
            broken = pipeline.run_batch(specs)
            assert not broken.ok
            assert not broken.stale_keys
            assert len(broken.errors) == len({s.canonical() for s in specs})
        finally:
            pipeline.close()


class TestBreaker:
    def test_breaker_trips_during_outage_and_closes_after_recovery(self):
        clock = VirtualTimeClock()
        # Fail the first 3 connects: exactly enough to trip a threshold-3
        # breaker (further calls are rejected before reaching the source).
        plan = FaultPlan.scripted(
            [FaultRule("error", op="connect", first=0, last=2)], clock=clock
        )
        pipeline = _chaos_pipeline(
            plan,
            clock,
            retry=None,  # 1 attempt per spec: failures feed the breaker fast
            breaker_threshold=3,
            breaker_recovery_s=5.0,
            serve_stale=False,
        )
        breaker = pipeline.pool.breaker
        specs = gen_specs(SPEC_SEED, 6)
        try:
            result = pipeline.run_batch(specs)
            assert not result.ok
            assert breaker.state == "open"
            assert breaker.trips == 1
            # While open, calls are rejected without touching the source.
            connects_before = plan.calls("connect")
            rejected = pipeline.run_batch(specs[:2])
            assert not rejected.ok
            assert plan.calls("connect") == connects_before
            assert any("CircuitOpenError" in e for e in rejected.errors.values())

            clock.advance(5.1)  # past the recovery window: half-open
            probe = pipeline.run_batch([specs[0]])
            assert probe.ok  # the scripted outage covered only 3 connects
            assert breaker.state == CLOSED

            healthy = pipeline.run_batch(specs)
            assert healthy.ok
        finally:
            pipeline.close()


class TestDeterministicReplay:
    def _run_once(self, seed: int) -> tuple[str, str]:
        clock = VirtualTimeClock()
        plan = FaultPlan(seed=seed, rate=0.35, clock=clock)
        pipeline = _chaos_pipeline(plan, clock)
        specs = gen_specs(SPEC_SEED, 40)
        with obs.recording(clock=clock.monotonic) as rec:
            try:
                for chunk in _chunks(specs, 5):
                    pipeline.run_batch(chunk)
            finally:
                pipeline.close()
        events = json.dumps(
            [ev.to_dict() for ev in rec.events()], sort_keys=True
        )
        return json.dumps(plan.export(), sort_keys=True), events

    def test_same_seed_replays_byte_identical_schedule_and_events(self):
        schedule_a, events_a = self._run_once(4242)
        schedule_b, events_b = self._run_once(4242)
        assert schedule_a == schedule_b
        assert events_a == events_b
        assert json.loads(schedule_a), "the run injected no faults"
        # The event log actually covers the robustness machinery.
        kinds = {ev["kind"] for ev in json.loads(events_a)}
        assert any(k.startswith("fault.") for k in kinds)
        assert any(k.startswith("retry.") for k in kinds)
        assert any(k.startswith("degrade.") for k in kinds)

    def test_different_seed_differs(self):
        schedule_a, _ = self._run_once(1)
        schedule_b, _ = self._run_once(2)
        assert schedule_a != schedule_b


class TestDashboardDegradation:
    def test_zones_degrade_independently(self):
        dataset = generate_flights(4000, seed=9)
        db = dataset.load_into_simdb(ServerProfile(time_scale=0))
        clock = VirtualTimeClock()
        plan = FaultPlan.scripted(
            [FaultRule("error", t_from=100.0, t_until=200.0)], clock=clock
        )
        source = FaultyDataSource(SimDbDataSource(db), plan, clock=clock)
        pipeline = QueryPipeline(
            source,
            flights_model(),
            options=PipelineOptions(
                enable_intelligent_cache=False,
                enable_literal_cache=False,
                concurrent=False,
            ),
            clock=clock,
        )
        session = DashboardSession(fig2_dashboard(), pipeline)
        try:
            first = session.render()
            assert not first.degraded

            clock.advance(150.0)  # outage
            # A new selection changes the zones' specs: no stale history
            # for them, so they degrade to per-zone errors — but the call
            # itself succeeds and the other zone keeps its last table.
            degraded = session.select("market", ["HNL-OGG"])
            assert degraded.zone_errors, "expected per-zone errors"
            assert set(session.zone_tables) == {
                "market",
                "carrier",
                "airline_name",
            }, "failed zones must keep their previous tables"

            clock.advance(100.0)  # recovery
            healthy = session.render()
            assert not healthy.degraded
            # The failed zones re-queried and now show the filtered data.
            assert healthy.iterations >= 1
        finally:
            pipeline.close()

    def test_unchanged_zones_rerender_stale_from_store(self):
        dataset = generate_flights(4000, seed=9)
        db = dataset.load_into_simdb(ServerProfile(time_scale=0))
        clock = VirtualTimeClock()
        plan = FaultPlan.scripted(
            [FaultRule("error", t_from=100.0, t_until=200.0)], clock=clock
        )
        source = FaultyDataSource(SimDbDataSource(db), plan, clock=clock)
        pipeline = QueryPipeline(
            source,
            flights_model(),
            options=PipelineOptions(
                enable_intelligent_cache=False,
                enable_literal_cache=False,
                concurrent=False,
            ),
            clock=clock,
        )
        session = DashboardSession(fig2_dashboard(), pipeline)
        try:
            session.render()
            clock.advance(150.0)
            # Force a full re-render of the same specs during the outage:
            # every zone is served from the stale store and flagged.
            session._rendered_specs.clear()
            degraded = session.render()
            assert degraded.stale_zones == {"market", "carrier", "airline_name"}
            assert not degraded.zone_errors
        finally:
            pipeline.close()
