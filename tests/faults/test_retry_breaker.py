"""Unit tests for the retry/backoff policy and the circuit breaker."""

from __future__ import annotations

import pytest

from repro.errors import (
    CircuitOpenError,
    ConnectionDiedError,
    SourceError,
    SourceTimeoutError,
    TransientSourceError,
)
from repro.faults import (
    CLOSED,
    HALF_OPEN,
    NO_RETRY,
    OPEN,
    CircuitBreaker,
    RetryPolicy,
    VirtualTimeClock,
    call_with_retry,
)


class TestRetryPolicy:
    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(
            base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5, jitter=0.0
        )
        assert policy.delay_for(1) == pytest.approx(0.1)
        assert policy.delay_for(2) == pytest.approx(0.2)
        assert policy.delay_for(3) == pytest.approx(0.4)
        assert policy.delay_for(4) == pytest.approx(0.5)  # capped
        assert policy.delay_for(9) == pytest.approx(0.5)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay_s=0.1, jitter=0.2, seed=9)
        first = [policy.delay_for(i, "warehouse:abc") for i in (1, 2, 3)]
        second = [policy.delay_for(i, "warehouse:abc") for i in (1, 2, 3)]
        assert first == second
        for i, delay in enumerate(first, start=1):
            raw = min(0.1 * 2.0 ** (i - 1), policy.max_delay_s)
            assert raw * 0.8 <= delay <= raw * 1.2
        assert first != [policy.delay_for(i, "other-key") for i in (1, 2, 3)]


class TestCallWithRetry:
    def test_recovers_after_transient_failures(self):
        clock = VirtualTimeClock()
        calls = [0]

        def flaky():
            calls[0] += 1
            if calls[0] < 3:
                raise ConnectionDiedError("boom")
            return "ok"

        policy = RetryPolicy(max_attempts=3, base_delay_s=0.1, jitter=0.0)
        assert call_with_retry(flaky, policy=policy, clock=clock) == "ok"
        assert calls[0] == 3
        # Two backoffs slept on the virtual clock: 0.1 + 0.2.
        assert clock.monotonic() == pytest.approx(0.3)

    def test_gives_up_after_max_attempts(self):
        clock = VirtualTimeClock()
        calls = [0]

        def always_fails():
            calls[0] += 1
            raise SourceTimeoutError("slow")

        with pytest.raises(SourceTimeoutError):
            call_with_retry(
                always_fails,
                policy=RetryPolicy(max_attempts=3, jitter=0.0),
                clock=clock,
            )
        assert calls[0] == 3

    def test_permanent_errors_are_not_retried(self):
        calls = [0]

        def permanent():
            calls[0] += 1
            raise SourceError("bad credentials")

        with pytest.raises(SourceError):
            call_with_retry(
                permanent, policy=RetryPolicy(max_attempts=5), clock=VirtualTimeClock()
            )
        assert calls[0] == 1

    def test_breaker_rejections_are_not_retried(self):
        """CircuitOpenError is deliberately permanent: retrying a rejection
        would defeat the breaker's purpose."""
        assert not issubclass(CircuitOpenError, TransientSourceError)
        calls = [0]

        def rejected():
            calls[0] += 1
            raise CircuitOpenError("open")

        with pytest.raises(CircuitOpenError):
            call_with_retry(
                rejected, policy=RetryPolicy(max_attempts=5), clock=VirtualTimeClock()
            )
        assert calls[0] == 1

    def test_no_retry_policy_is_single_attempt(self):
        assert NO_RETRY.max_attempts == 1


class TestCircuitBreaker:
    def _breaker(self, clock, **kwargs):
        defaults = dict(failure_threshold=3, recovery_s=10.0, name="test")
        defaults.update(kwargs)
        return CircuitBreaker(clock=clock, **defaults)

    def test_trips_after_consecutive_failures(self):
        breaker = self._breaker(VirtualTimeClock())
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 1

    def test_success_resets_the_consecutive_count(self):
        breaker = self._breaker(VirtualTimeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_open_rejects_with_retry_after(self):
        clock = VirtualTimeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        with pytest.raises(CircuitOpenError) as exc_info:
            breaker.admit()
        assert exc_info.value.retry_after_s == pytest.approx(10.0)
        clock.advance(4.0)
        with pytest.raises(CircuitOpenError) as exc_info:
            breaker.admit()
        assert exc_info.value.retry_after_s == pytest.approx(6.0)
        assert breaker.rejections == 2

    def test_half_open_probe_success_closes(self):
        clock = VirtualTimeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        breaker.admit()  # the probe slot
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_probe_failure_reopens(self):
        clock = VirtualTimeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        breaker.admit()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 2
        # The recovery window restarted at the re-trip.
        clock.advance(9.9)
        with pytest.raises(CircuitOpenError):
            breaker.admit()

    def test_half_open_extra_probes_rejected(self):
        clock = VirtualTimeClock()
        breaker = self._breaker(clock, half_open_max=1)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        breaker.admit()
        with pytest.raises(CircuitOpenError):
            breaker.admit()

    def test_snapshot(self):
        breaker = self._breaker(VirtualTimeClock())
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["state"] == CLOSED
        assert snap["failures"] == 1
        assert snap["name"] == "test"

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
