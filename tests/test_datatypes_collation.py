"""Foundations: logical types, storage conversion, collations, errors."""

import datetime as dt

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import collation as coll
from repro.datatypes import (
    LogicalType,
    can_cast,
    from_storage,
    infer_type,
    promote,
    storage_array,
    to_storage,
)
from repro.errors import ReproError, TypeMismatchError


class TestPromotion:
    def test_identity(self):
        for t in LogicalType:
            assert promote(t, t) is t

    def test_numeric(self):
        assert promote(LogicalType.INT, LogicalType.FLOAT) is LogicalType.FLOAT

    def test_temporal(self):
        assert promote(LogicalType.DATE, LogicalType.DATETIME) is LogicalType.DATETIME

    @pytest.mark.parametrize(
        "a,b",
        [
            (LogicalType.INT, LogicalType.STR),
            (LogicalType.BOOL, LogicalType.FLOAT),
            (LogicalType.DATE, LogicalType.INT),
        ],
    )
    def test_incompatible(self, a, b):
        with pytest.raises(TypeMismatchError):
            promote(a, b)


class TestCasts:
    def test_can_cast_matrix_reflexive(self):
        for t in LogicalType:
            assert can_cast(t, t)

    def test_str_conversions(self):
        assert can_cast(LogicalType.STR, LogicalType.INT)
        assert not can_cast(LogicalType.STR, LogicalType.DATE)


class TestStorageRoundTrip:
    CASES = [
        (True, LogicalType.BOOL),
        (42, LogicalType.INT),
        (-1.5, LogicalType.FLOAT),
        ("héllo", LogicalType.STR),
        (dt.date(1999, 12, 31), LogicalType.DATE),
        (dt.datetime(2014, 6, 1, 23, 59, 59, 123456), LogicalType.DATETIME),
    ]

    @pytest.mark.parametrize("value,ltype", CASES)
    def test_roundtrip(self, value, ltype):
        assert from_storage(to_storage(value, ltype), ltype) == value

    def test_none_maps_to_fill(self):
        assert to_storage(None, LogicalType.INT) == 0
        assert to_storage(None, LogicalType.STR) == ""

    def test_datetime_truncated_to_date(self):
        stamp = dt.datetime(2014, 3, 4, 15, 30)
        assert from_storage(to_storage(stamp, LogicalType.DATE), LogicalType.DATE) == dt.date(
            2014, 3, 4
        )

    def test_infer_type(self):
        assert infer_type(True) is LogicalType.BOOL  # before int!
        assert infer_type(1) is LogicalType.INT
        assert infer_type(dt.datetime.now()) is LogicalType.DATETIME
        with pytest.raises(TypeMismatchError):
            infer_type(object())

    def test_storage_array_masks(self):
        arr, mask = storage_array([1, None, 3], LogicalType.INT)
        assert list(arr) == [1, 0, 3]
        assert list(mask) == [False, True, False]
        arr, mask = storage_array([1, 2], LogicalType.INT)
        assert mask is None

    @given(
        st.lists(
            st.one_of(st.none(), st.dates(dt.date(1900, 1, 1), dt.date(2100, 1, 1))),
            min_size=0,
            max_size=40,
        )
    )
    @settings(max_examples=50)
    def test_date_array_roundtrip_property(self, values):
        arr, mask = storage_array(values, LogicalType.DATE)
        out = [
            None if (mask is not None and mask[i]) else from_storage(arr[i], LogicalType.DATE)
            for i in range(len(values))
        ]
        assert out == values


class TestCollation:
    def test_registry(self):
        assert coll.get_collation("binary") is coll.BINARY
        assert coll.get_collation("ci") is coll.CASE_INSENSITIVE
        with pytest.raises(KeyError):
            coll.get_collation("nope")

    def test_equality_semantics(self):
        assert coll.CASE_INSENSITIVE.eq("Foo", "fOO")
        assert not coll.BINARY.eq("Foo", "foo")
        assert coll.ACCENT_INSENSITIVE.eq("café", "CAFE")

    def test_ordering(self):
        assert coll.BINARY.lt("B", "a")  # code points: uppercase first
        assert coll.CASE_INSENSITIVE.lt("a", "B")

    def test_compatible(self):
        assert coll.compatible(coll.BINARY, coll.BINARY)
        assert not coll.compatible(coll.BINARY, coll.CASE_INSENSITIVE)

    def test_sort_keys_vectorized(self):
        import numpy as np

        values = np.array(["B", "a"], dtype=object)
        keys = coll.CASE_INSENSITIVE.sort_keys(values)
        assert list(keys) == ["b", "a"]
        assert coll.BINARY.sort_keys(values) is values


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        import inspect

        from repro import errors

        for _name, obj in inspect.getmembers(errors, inspect.isclass):
            if obj.__module__ == "repro.errors":
                assert issubclass(obj, ReproError)

    def test_parse_error_position(self):
        from repro.errors import TqlParseError

        err = TqlParseError("bad token", position=17)
        assert "17" in str(err)
        assert err.position == 17

    def test_capability_error_carries_capability(self):
        from repro.errors import CapabilityError

        assert CapabilityError("no limit", "limit").capability == "limit"
