"""Shared fixtures: a small deterministic star-schema engine."""

from __future__ import annotations

import datetime as dt
import random

import pytest

from repro.tde import DataEngine
from repro.tde.optimizer.parallel import PlannerOptions

CARRIERS = ["AA", "UA", "DL", "WN", "B6", "AS"]
MARKETS = ["LAX-SFO", "JFK-BOS", "HNL-OGG", "ORD-DEN", "SEA-PDX"]


def build_flights_engine(
    n: int = 20_000,
    *,
    seed: int = 7,
    max_dop: int = 4,
    min_work_per_fraction: float = 2_000.0,
) -> DataEngine:
    """A miniature FAA-like star schema with declared constraints.

    Rows are sorted by date and the date column is RLE-encoded, matching
    the layout the paper's experiments rely on (sections 4.2.3 and 4.3).
    """
    rng = random.Random(seed)
    engine = DataEngine(
        "faa",
        options=PlannerOptions(max_dop=max_dop, min_work_per_fraction=min_work_per_fraction),
    )
    days = sorted(rng.randrange(16071, 16436) for _ in range(n))  # the year 2014
    data = {
        "date_": [dt.date(1970, 1, 1) + dt.timedelta(days=d) for d in days],
        "carrier_id": [rng.randrange(len(CARRIERS)) for _ in range(n)],
        "market_id": [rng.randrange(len(MARKETS)) for _ in range(n)],
        "delay": [round(rng.gauss(10, 20), 3) for _ in range(n)],
        "distance": [rng.randrange(100, 3000) for _ in range(n)],
        "cancelled": [rng.random() < 0.02 for _ in range(n)],
    }
    engine.load_pydict(
        "Extract.flights", data, sort_keys=["date_"], encodings={"date_": "rle"}
    )
    engine.load_pydict(
        "Extract.carriers",
        {"id": list(range(len(CARRIERS))), "name": CARRIERS},
    )
    engine.load_pydict(
        "Extract.markets",
        {"mid": list(range(len(MARKETS))), "market": MARKETS},
    )
    engine.declare_unique("Extract.carriers", ["id"])
    engine.declare_unique("Extract.markets", ["mid"])
    engine.declare_foreign_key(
        "Extract.flights", ["carrier_id"], "Extract.carriers", ["id"], total=True, onto=True
    )
    engine.declare_foreign_key(
        "Extract.flights", ["market_id"], "Extract.markets", ["mid"], total=True, onto=True
    )
    return engine


@pytest.fixture(scope="session")
def flights_engine() -> DataEngine:
    return build_flights_engine()


@pytest.fixture(scope="session")
def tiny_engine() -> DataEngine:
    return build_flights_engine(n=500, seed=3, max_dop=2, min_work_per_fraction=100.0)
