"""The perf-regression gate: drift math, exit codes, self-test."""

import json

import pytest

from benchmarks import perfgate


def _bench(name, rows, columns=("path", "remote", "elapsed_ms")):
    return {
        "schema_version": 2,
        "experiment": name,
        "series": {"title": name, "columns": list(columns), "rows": rows},
        "trace": None,
    }


def _write(directory, payload):
    directory.mkdir(exist_ok=True)
    path = directory / f"BENCH_{payload['experiment']}.json"
    path.write_text(json.dumps(payload))
    return path


@pytest.fixture()
def dirs(tmp_path):
    baselines = tmp_path / "_baselines"
    results = tmp_path / "_results"
    _write(baselines, _bench("e99_demo", [["cold", 1, 100.0], ["hit", 0, 1.0]]))
    return results, baselines


class TestCompare:
    def test_within_tolerance_is_ok(self):
        drifts = perfgate.compare(
            "e", _bench("e", [["cold", 1, 100.0]]), _bench("e", [["cold", 1, 120.0]]), 0.5
        )
        by_metric = {d.metric: d for d in drifts}
        assert by_metric["cold/elapsed_ms"].status == "ok"
        assert by_metric["cold/remote"].status == "info"  # counts never gate

    def test_over_tolerance_regresses(self):
        drifts = perfgate.compare(
            "e", _bench("e", [["cold", 1, 100.0]]), _bench("e", [["cold", 1, 200.0]]), 0.5
        )
        assert {d.status for d in drifts if d.metric == "cold/elapsed_ms"} == {"regression"}

    def test_speedup_is_improved_not_failed(self):
        drifts = perfgate.compare(
            "e", _bench("e", [["cold", 1, 100.0]]), _bench("e", [["cold", 1, 10.0]]), 0.5
        )
        assert {d.status for d in drifts if d.metric == "cold/elapsed_ms"} == {"improved"}

    def test_missing_metric_flagged(self):
        drifts = perfgate.compare(
            "e", _bench("e", [["cold", 1, 100.0]]), _bench("e", []), 0.5
        )
        assert {d.status for d in drifts} == {"missing"}

    def test_tiny_baselines_do_not_gate(self):
        drifts = perfgate.compare(
            "e",
            _bench("e", [["hit", 0, 0.001]]),
            _bench("e", [["hit", 0, 1.0]]),  # 1000x but under the floor
            0.5,
        )
        assert {d.status for d in drifts if d.metric == "hit/elapsed_ms"} == {"info"}


class TestMain:
    def test_clean_run_exits_zero(self, dirs, capsys):
        results, baselines = dirs
        _write(results, _bench("e99_demo", [["cold", 1, 100.0], ["hit", 0, 1.0]]))
        code = perfgate.main(
            ["--results", str(results), "--baselines", str(baselines)]
        )
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_synthetic_slowdown_exits_nonzero(self, dirs, capsys):
        results, baselines = dirs
        _write(results, _bench("e99_demo", [["cold", 1, 900.0], ["hit", 0, 9.0]]))
        code = perfgate.main(
            ["--results", str(results), "--baselines", str(baselines)]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_warn_only_exits_zero_on_regression(self, dirs, capsys):
        results, baselines = dirs
        _write(results, _bench("e99_demo", [["cold", 1, 900.0], ["hit", 0, 9.0]]))
        code = perfgate.main(
            ["--results", str(results), "--baselines", str(baselines), "--warn-only"]
        )
        assert code == 0
        assert "warn-only" in capsys.readouterr().err

    def test_missing_fresh_result_fails(self, dirs, capsys):
        results, baselines = dirs
        code = perfgate.main(
            ["--results", str(results), "--baselines", str(baselines)]
        )
        assert code == 1

    def test_update_blesses_baselines(self, tmp_path, capsys):
        results = tmp_path / "_results"
        baselines = tmp_path / "_baselines"
        _write(results, _bench("e99_demo", [["cold", 1, 100.0]]))
        assert perfgate.main(
            ["--results", str(results), "--baselines", str(baselines), "--update"]
        ) == 0
        assert (baselines / "BENCH_e99_demo.json").exists()

    def test_self_test_detects_blindness(self, dirs, capsys):
        _results, baselines = dirs
        code = perfgate.main(["--baselines", str(baselines), "--self-test"])
        assert code == 0
        assert "self-test ok" in capsys.readouterr().out

    def test_committed_baselines_self_test(self):
        # The repo's own committed baselines must keep the gate testable.
        assert perfgate.BASELINES_DIR.exists()
        assert perfgate.main(["--self-test", "--tolerance-profile", "ci"]) == 0


class TestToleranceResolution:
    def test_exact_entry_wins_over_glob_and_wildcard(self):
        profile = {"*": 0.75, "e6_*": 2.0, "e6_query_caching": 1.5}
        assert perfgate.tolerance_for("e6_query_caching", profile) == 1.5

    def test_glob_entry_matches_family(self):
        profile = {"*": 0.75, "e6*": 1.5}
        assert perfgate.tolerance_for("e6b_interaction_trace", profile) == 1.5
        assert perfgate.tolerance_for("e20_herd", profile) == 0.75

    def test_uncovered_experiment_raises_with_actionable_message(self):
        with pytest.raises(KeyError, match="no tolerance entry"):
            perfgate.tolerance_for("e99_new", {"e1_pipeline": 0.5})

    def test_every_committed_baseline_is_priced(self):
        # A baseline the profiles cannot price would fail the gate at the
        # worst time: in CI, on an unrelated PR.
        for profile in perfgate.TOLERANCE_PROFILES.values():
            for path in perfgate.BASELINES_DIR.glob("BENCH_*.json"):
                perfgate.tolerance_for(perfgate.experiment_name(path), profile)

    def test_gate_reports_missing_coverage_as_problem(self, tmp_path, capsys):
        results = tmp_path / "_results"
        baselines = tmp_path / "_baselines"
        _write(baselines, _bench("e99_demo", [["cold", 1, 100.0]]))
        _write(results, _bench("e99_demo", [["cold", 1, 100.0]]))
        code = perfgate.main(
            ["--results", str(results), "--baselines", str(baselines)]
        )
        assert code == 0  # the shipped profiles carry a "*" wildcard
        _drifts, problems = perfgate.gate(
            results, baselines, {"e1_pipeline": 0.5}, "*"
        )
        assert any("no tolerance entry" in p for p in problems)

    def test_gate_flags_unpriced_fresh_results_without_baselines(self, tmp_path):
        """A brand-new experiment with results but no baseline yet must
        still be priceable — the coverage check runs before blessing."""
        results = tmp_path / "_results"
        baselines = tmp_path / "_baselines"
        _write(baselines, _bench("e1_pipeline", [["cold", 1, 100.0]]))
        _write(results, _bench("e1_pipeline", [["cold", 1, 100.0]]))
        _write(results, _bench("e99_new", [["cold", 1, 50.0]]))
        _drifts, problems = perfgate.gate(
            results, baselines, {"e1_pipeline": 0.5}, "*"
        )
        assert any("e99_new" in p and "no tolerance entry" in p for p in problems)


class TestListExperiments:
    def test_lists_committed_benchmarks_in_numeric_order(self):
        from benchmarks import run_all

        listed = run_all.list_experiments()
        ids = [exp_id for exp_id, _name in listed]
        assert "e1" in ids and "e21" in ids
        assert ids.index("e2") < ids.index("e10")  # numeric, not lexical
        by_id = dict(listed)
        assert by_id["e21"] == "e21_telemetry"

    def test_main_list_flag_prints_and_exits_zero(self, capsys):
        from benchmarks import run_all

        assert run_all.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "e21" in out and "e21_telemetry" in out


class TestKeyMetric:
    def test_largest_time_cell_wins(self):
        payload = _bench("e", [["cold", 1, 100.0], ["hit", 0, 1.0]])
        assert perfgate.key_metric(payload) == ("cold/elapsed_ms", 100.0)

    def test_falls_back_to_first_numeric(self):
        payload = _bench("e", [["interactions", 8]], columns=("metric", "value"))
        assert perfgate.key_metric(payload) == ("interactions/value", 8.0)
