"""Public API surface checks: imports, explain output, package metadata."""

import pytest


class TestPackageSurface:
    def test_top_level_version(self):
        import repro

        assert repro.__version__

    def test_core_exports(self):
        from repro.core import (  # noqa: F401
            BatchResult,
            CacheIndex,
            ConcurrentQueryExecutor,
            DistributedQueryCache,
            EvictionPolicy,
            IntelligentCache,
            InteractionPrefetcher,
            KeyValueStore,
            LiteralCache,
            PipelineOptions,
            QueryPipeline,
            build_batch_graph,
            enrich_spec,
            fuse_batch,
            match_specs,
        )

    def test_server_exports(self):
        from repro.server import (  # noqa: F401
            DataServer,
            RefreshScheduler,
            ShardedTdeCluster,
            TdeCluster,
            TempTableState,
            VizServer,
        )

    def test_connectors_exports(self):
        from repro.connectors import (  # noqa: F401
            ConnectionPool,
            FileDataSource,
            JetLikeDataSource,
            ServerProfile,
            ShadowExtractStore,
            SimDbDataSource,
            SimulatedDatabase,
            TdeDataSource,
        )

    def test_lazy_tde_entry_point(self):
        import repro.tde

        assert repro.tde.DataEngine.__name__ == "DataEngine"
        with pytest.raises(AttributeError):
            repro.tde.NotAThing  # noqa: B018


class TestExplainLabels:
    def test_all_operator_labels_render(self, flights_engine):
        from repro.tde.optimizer.parallel import PlannerOptions

        cases = {
            "IndexedRleScan": '(select (= date_ (date "2014-03-05")) (scan "Extract.flights"))',
            "HashJoin": '(aggregate (name) ((n (count))) (join inner ((carrier_id id))'
            ' (scan "Extract.flights") (scan "Extract.carriers")))',
            "TopN": '(topn 2 ((delay desc)) (scan "Extract.flights"))',
            "Limit": '(limit 2 (scan "Extract.flights"))',
            "Window": '(window ((pct share id)) (scan "Extract.carriers"))',
        }
        for label, query in cases.items():
            assert label in flights_engine.explain(query), label
        merge_opts = PlannerOptions(
            max_dop=4, min_work_per_fraction=500, enable_order_preserving_merge=True
        )
        text = flights_engine.explain(
            '(order ((delay desc)) (scan "Extract.flights"))', options=merge_opts
        )
        assert "MergeSorted" in text

    def test_explain_shows_fragment_ranges(self, flights_engine):
        text = flights_engine.explain(
            '(aggregate () ((n (count))) (scan "Extract.flights"))'
        )
        assert "Scan[0:" in text and "Exchange(degree=" in text
