"""Connector test fixtures: a fast (no-sleep) simulated server."""

import pytest

from repro.connectors import SimDbDataSource, SimulatedDatabase
from repro.connectors.simdb import ServerProfile
from repro.tde.storage import Table


@pytest.fixture()
def sim_source():
    db = SimulatedDatabase("testdb", ServerProfile(time_scale=0))
    db.load_table(
        "Extract.orders",
        Table.from_pydict(
            {
                "region": ["east", "west", "east", "north", "west"],
                "amount": [10.0, 20.0, 30.0, 40.0, 50.0],
                "year": [2013, 2014, 2014, 2014, 2015],
            }
        ),
    )
    return SimDbDataSource(db)
