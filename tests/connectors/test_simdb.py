"""Simulated database server tests: sessions, temp tables, limits, timing."""

import threading
import time

import pytest

from repro.connectors import SimulatedDatabase
from repro.connectors.simdb import ServerProfile
from repro.errors import ConnectionLimitError, SourceError
from repro.tde.storage import Table


def _db(**kwargs) -> SimulatedDatabase:
    profile = ServerProfile(time_scale=0, **kwargs)
    db = SimulatedDatabase("t", profile)
    db.load_table(
        "Extract.t",
        Table.from_pydict({"g": [1, 1, 2, 2, 3], "v": [1.0, 2.0, 3.0, 4.0, 5.0]}),
    )
    return db


class TestSessions:
    def test_select(self):
        session = _db().open_session()
        out = session.execute('SELECT "g", SUM("v") AS "s" FROM "Extract"."t" GROUP BY "g"')
        assert sorted(out.to_rows()) == [(1, 3.0), (2, 7.0), (3, 5.0)]

    def test_connection_limit(self):
        db = _db(max_connections=2)
        s1 = db.open_session()
        s2 = db.open_session()
        with pytest.raises(ConnectionLimitError):
            db.open_session()
        s1.close()
        s3 = db.open_session()  # freed slot is reusable
        s3.close()
        s2.close()

    def test_closed_session_rejects(self):
        session = _db().open_session()
        session.close()
        with pytest.raises(SourceError):
            session.execute("SELECT * FROM t")

    def test_stats_count_queries(self):
        db = _db()
        session = db.open_session()
        session.execute('SELECT * FROM "Extract"."t"')
        session.execute('SELECT * FROM "Extract"."t"')
        assert db.stats.queries == 2
        assert db.stats.rows_transferred == 10


class TestTempTables:
    def test_create_as_select(self):
        session = _db().open_session()
        session.execute('CREATE TEMP TABLE "#big" AS SELECT * FROM "Extract"."t" WHERE "v" > 2.5')
        out = session.execute('SELECT COUNT(*) AS "n" FROM "#big"')
        assert out.to_pydict() == {"n": [3]}

    def test_create_insert_join(self):
        session = _db().open_session()
        session.execute('CREATE TEMP TABLE "#keys" ("g" BIGINT)')
        session.execute('INSERT INTO "#keys" VALUES (1), (3)')
        out = session.execute(
            'SELECT "v" FROM "Extract"."t" AS a INNER JOIN "#keys" AS b ON "g" = "g"'
        )
        assert sorted(out.to_pydict()["v"]) == [1.0, 2.0, 5.0]

    def test_temp_tables_are_session_scoped(self):
        db = _db()
        s1 = db.open_session()
        s2 = db.open_session()
        s1.execute('CREATE TEMP TABLE "#x" ("g" BIGINT)')
        with pytest.raises(Exception):
            s2.execute('SELECT * FROM "#x"')

    def test_same_name_in_two_sessions(self):
        db = _db()
        s1 = db.open_session()
        s2 = db.open_session()
        s1.execute('CREATE TEMP TABLE "#x" ("g" BIGINT)')
        s2.execute('CREATE TEMP TABLE "#x" ("g" BIGINT)')
        s1.execute('INSERT INTO "#x" VALUES (7)')
        assert s2.execute('SELECT COUNT(*) AS "n" FROM "#x"').to_pydict() == {"n": [0]}

    def test_drop(self):
        session = _db().open_session()
        session.execute('CREATE TEMP TABLE "#x" ("g" BIGINT)')
        session.execute('DROP TABLE "#x"')
        with pytest.raises(Exception):
            session.execute('SELECT * FROM "#x"')

    def test_cleanup_on_close(self):
        db = _db()
        session = db.open_session()
        session.execute('CREATE TEMP TABLE "#x" ("g" BIGINT)')
        qualified = session.temp_tables["#x"]
        session.close()
        assert not db.engine.has_table(qualified)

    def test_bulk_load(self):
        db = _db()
        session = db.open_session()
        session.bulk_load_temp("#bulk", Table.from_pydict({"g": [2]}))
        out = session.execute('SELECT * FROM "#bulk"')
        assert out.to_pydict() == {"g": [2]}
        assert db.stats.temp_tables_created == 1

    def test_no_temp_table_support(self):
        from repro.sql.dialects import QUIRKDB

        db = SimulatedDatabase("q", ServerProfile(dialect=QUIRKDB, time_scale=0))
        session = db.open_session()
        with pytest.raises(SourceError):
            session.bulk_load_temp("#x", Table.from_pydict({"g": [1]}))


class TestTiming:
    def test_worker_pool_limits_concurrency(self):
        # 4 workers, 8 concurrent queries of ~15ms → at least two waves.
        profile = ServerProfile(
            workers=4,
            per_query_parallelism=1,
            query_overhead_s=0.015,
            work_unit_time_s=0.0,
            transfer_row_time_s=0.0,
            connect_time_s=0.0,
        )
        db = SimulatedDatabase("timing", profile)
        db.load_table("Extract.t", Table.from_pydict({"v": [1.0]}))
        sessions = [db.open_session() for _ in range(8)]
        started = time.perf_counter()
        threads = [
            threading.Thread(target=s.execute, args=('SELECT * FROM "Extract"."t"',))
            for s in sessions
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - started
        assert elapsed >= 0.028  # two waves of 15ms
        assert db.stats.peak_concurrency <= 8

    def test_mars_vs_serial_connection(self):
        profile = ServerProfile(
            mars=False,
            workers=8,
            query_overhead_s=0.01,
            work_unit_time_s=0.0,
            transfer_row_time_s=0.0,
            connect_time_s=0.0,
        )
        db = SimulatedDatabase("serial-conn", profile)
        db.load_table("Extract.t", Table.from_pydict({"v": [1.0]}))
        session = db.open_session()

        def run_pair(target_session):
            threads = [
                threading.Thread(
                    target=target_session.execute, args=('SELECT * FROM "Extract"."t"',)
                )
                for _ in range(2)
            ]
            start = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            return time.perf_counter() - start

        serial_elapsed = run_pair(session)
        assert serial_elapsed >= 0.019  # statements serialized on one conn

    def test_admission_throttle(self):
        profile = ServerProfile(
            workers=8,
            max_concurrent_queries=1,
            query_overhead_s=0.01,
            work_unit_time_s=0.0,
            transfer_row_time_s=0.0,
            connect_time_s=0.0,
        )
        db = SimulatedDatabase("throttled", profile)
        db.load_table("Extract.t", Table.from_pydict({"v": [1.0]}))
        sessions = [db.open_session() for _ in range(3)]
        start = time.perf_counter()
        threads = [
            threading.Thread(target=s.execute, args=('SELECT * FROM "Extract"."t"',))
            for s in sessions
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert time.perf_counter() - start >= 0.028  # three serialized waves
