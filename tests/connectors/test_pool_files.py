"""Connection pool, text parsing, and shadow extract tests."""

import threading

import pytest

from repro.connectors import (
    ConnectionPool,
    FileDataSource,
    JetLikeDataSource,
    ShadowExtractStore,
    TdeDataSource,
    parse_text_file,
    parse_workbook,
    write_text_file,
)
from repro.connectors.textfile import write_workbook
from repro.datatypes import LogicalType
from repro.errors import SourceError
from repro.tde.storage import Table


class TestConnectionPool:
    def test_reuse(self, sim_source):
        pool = ConnectionPool(sim_source, max_connections=2)
        with pool.connection() as c1:
            first_id = c1.connection_id
        with pool.connection() as c2:
            assert c2.connection_id == first_id
        assert pool.stats.opened == 1
        assert pool.stats.reused == 1

    def test_respects_limit_and_blocks(self, sim_source):
        pool = ConnectionPool(sim_source, max_connections=1)
        conn = pool.acquire()
        got = []

        def waiter():
            other = pool.acquire()
            got.append(other)
            pool.release(other)

        t = threading.Thread(target=waiter)
        t.start()
        t.join(timeout=0.2)
        assert t.is_alive()  # blocked on the limit
        pool.release(conn)
        t.join(timeout=2)
        assert got and pool.stats.wait_events >= 1

    def test_prefer_temp_table(self, sim_source):
        pool = ConnectionPool(sim_source, max_connections=3)
        c1 = pool.acquire()
        c1.create_temp_table("#f", Table.from_pydict({"region": ["east"]}))
        c2 = pool.acquire()
        pool.release(c1)
        pool.release(c2)
        with pool.connection(prefer_temp_table="#f") as chosen:
            assert chosen.has_temp_table("#f")

    def test_evict_idle(self, sim_source):
        pool = ConnectionPool(sim_source, max_connections=4, idle_ttl_s=0.0)
        with pool.connection():
            pass
        assert pool.idle_count() == 1
        assert pool.evict_idle() == 1
        assert pool.idle_count() == 0
        assert pool.stats.evicted == 1

    def test_closed_pool(self, sim_source):
        pool = ConnectionPool(sim_source)
        pool.close()
        with pytest.raises(SourceError):
            pool.acquire()


class TestTextFiles:
    def test_inference(self, tmp_path):
        path = write_text_file(
            tmp_path / "data.csv",
            {
                "i": [1, 2, None],
                "f": [1.5, None, 2.0],
                "b": [True, False, None],
                "d": ["2014-01-01", None, "2015-12-31"],
                "s": ["x", "y", None],
            },
        )
        table = parse_text_file(path)
        assert table.schema() == {
            "i": LogicalType.INT,
            "f": LogicalType.FLOAT,
            "b": LogicalType.BOOL,
            "d": LogicalType.DATE,
            "s": LogicalType.STR,
        }
        assert table.column("i").python_values() == [1, 2, None]

    def test_schema_file_overrides_inference(self, tmp_path):
        path = write_text_file(tmp_path / "d.csv", {"a": [1, 2]})
        table = parse_text_file(path, schema={"a": LogicalType.STR})
        assert table.column("a").python_values() == ["1", "2"]

    def test_schema_missing_column(self, tmp_path):
        path = write_text_file(tmp_path / "d.csv", {"a": [1], "b": [2]})
        with pytest.raises(SourceError):
            parse_text_file(path, schema={"a": LogicalType.INT})

    def test_missing_and_duplicate_headers(self, tmp_path):
        path = tmp_path / "odd.csv"
        path.write_text(",x,x\n1,2,3\n")
        table = parse_text_file(path)
        assert table.column_names == ["F1", "x", "x_2"]

    def test_parse_limit(self, tmp_path):
        path = write_text_file(tmp_path / "d.csv", {"a": list(range(100))})
        with pytest.raises(SourceError):
            parse_text_file(path, max_bytes=10)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SourceError):
            parse_text_file(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SourceError):
            parse_text_file(tmp_path / "nope.csv")

    def test_workbook_roundtrip(self, tmp_path):
        path = write_workbook(
            tmp_path / "book.wbk",
            {"Sales": {"a": [1, 2]}, "Costs": {"b": ["x"]}},
        )
        sheets = parse_workbook(path)
        assert set(sheets) == {"Sales", "Costs"}
        assert sheets["Sales"].to_pydict() == {"a": [1, 2]}

    def test_workbook_without_sheets(self, tmp_path):
        path = tmp_path / "bad.wbk"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(SourceError):
            parse_workbook(path)


class TestShadowExtracts:
    def _file(self, tmp_path, n=50):
        return write_text_file(
            tmp_path / "flights.csv",
            {"day": [i % 10 for i in range(n)], "delay": [float(i) for i in range(n)]},
        )

    def test_single_parse_many_queries(self, tmp_path):
        source = FileDataSource(self._file(tmp_path))
        conn = source.connect()
        for _ in range(5):
            out = conn.execute('(aggregate () ((n (count))) (scan "Extract.data"))')
        assert out.to_pydict() == {"n": [50]}
        assert source.extract_creations == 1

    def test_jet_reparses_every_query(self, tmp_path):
        source = JetLikeDataSource(self._file(tmp_path))
        conn = source.connect()
        for _ in range(3):
            conn.execute('(scan "Extract.data")')
        assert source.parse_count == 3

    def test_jet_no_temp_tables(self, tmp_path):
        source = JetLikeDataSource(self._file(tmp_path))
        conn = source.connect()
        with pytest.raises(SourceError):
            conn.create_temp_table("#x", Table.from_pydict({"a": [1]}))

    def test_store_persists_across_instances(self, tmp_path):
        path = self._file(tmp_path)
        store = ShadowExtractStore(tmp_path / "cache")
        first = FileDataSource(path, store=store)
        first.connect().execute('(scan "Extract.data")')
        second = FileDataSource(path, store=store)
        second.connect().execute('(scan "Extract.data")')
        assert first.extract_creations == 1
        assert second.extract_creations == 0
        assert store.hits == 1

    def test_store_invalidated_by_file_change(self, tmp_path):
        path = self._file(tmp_path)
        store = ShadowExtractStore(tmp_path / "cache")
        FileDataSource(path, store=store).connect()
        import os
        import time

        time.sleep(0.01)
        write_text_file(path, {"day": [1], "delay": [9.0]})
        os.utime(path)
        fresh = FileDataSource(path, store=store)
        out = fresh.connect().execute('(scan "Extract.data")')
        assert out.n_rows == 1
        assert fresh.extract_creations == 1

    def test_workbook_source(self, tmp_path):
        path = write_workbook(tmp_path / "b.wbk", {"S1": {"a": [1, 2, 3]}})
        source = FileDataSource(path, workbook=True)
        out = source.connect().execute('(aggregate () ((n (count))) (scan "Extract.S1"))')
        assert out.to_pydict() == {"n": [3]}


class TestTdeDataSource:
    def test_query_and_temp_tables(self, flights_engine):
        source = TdeDataSource(flights_engine)
        conn = source.connect()
        out = conn.execute('(aggregate () ((n (count))) (scan "Extract.flights"))')
        assert out.to_pydict() == {"n": [20000]}
        conn.create_temp_table("#ids", Table.from_pydict({"carrier_id": [0, 1]}))
        joined = conn.execute(
            '(aggregate () ((n (count))) (join inner ((carrier_id carrier_id))'
            ' (scan "Extract.flights") (scan "#ids")))'
        )
        assert 0 < joined.to_pydict()["n"][0] < 20000
        conn.close()
        assert not flights_engine.has_table("tmp_1.#ids")
