"""Differential equivalence: every optimization must be answer-preserving.

A seeded generator (gen.py) draws a few hundred random specs; a raw
pipeline with every optimization disabled computes the reference answer;
then each optimized configuration — caches on, DOP > 1, fusion/batch
graph on — must produce the same row multisets. This is the harness the
fault-injection work leans on: if the robustness machinery (retries,
degradation) ever changed an *answer* rather than just availability,
this is where it would show.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import PipelineOptions, QueryPipeline
from tests.core.conftest import make_model, make_source

from .gen import assert_tables_equal, gen_specs

SEED = 1337
N_SPECS = 220  # the acceptance floor is 200
BATCH = 8


def _options(**overrides) -> PipelineOptions:
    base = dict(
        enable_intelligent_cache=False,
        enable_literal_cache=False,
        enable_fusion=False,
        enable_batch_graph=False,
        enrich_for_reuse=False,
        concurrent=False,
    )
    base.update(overrides)
    return PipelineOptions(**base)


@pytest.fixture(scope="module")
def specs():
    out = gen_specs(SEED, N_SPECS)
    assert len(out) >= 200
    return out


@pytest.fixture(scope="module")
def oracle(specs):
    """Reference answers from the raw (no-optimization) pipeline."""
    pipeline = QueryPipeline(make_source(), make_model(), options=_options())
    try:
        return {spec.canonical(): pipeline.run_spec(spec) for spec in specs}
    finally:
        pipeline.close()


def _check_batched(specs, oracle, options: PipelineOptions, label: str) -> None:
    pipeline = QueryPipeline(make_source(), make_model(), options=options)
    try:
        for start in range(0, len(specs), BATCH):
            chunk = specs[start : start + BATCH]
            result = pipeline.run_batch(chunk)
            assert result.ok, f"{label}: unexpected errors {result.errors}"
            for spec in chunk:
                assert_tables_equal(
                    result.table_for(spec),
                    oracle[spec.canonical()],
                    context=f"{label}: {spec.canonical()}",
                )
    finally:
        pipeline.close()


def test_generator_is_seed_deterministic():
    first = [s.canonical() for s in gen_specs(SEED, 50)]
    second = [s.canonical() for s in gen_specs(SEED, 50)]
    assert first == second
    assert first != [s.canonical() for s in gen_specs(SEED + 1, 50)]


def test_generator_covers_shapes(specs):
    # The stream should exercise every major spec feature.
    assert any(s.limit is not None for s in specs)
    assert any(s.order_by for s in specs)
    assert any(not s.dimensions for s in specs)
    assert any(not s.measures for s in specs)
    assert any(len(s.filters) == 2 for s in specs)
    assert any("name" in s.dimensions or "market" in s.dimensions for s in specs)


def test_caches_preserve_answers(specs, oracle):
    """Cache-on (intelligent + literal + enrichment) == cache-off."""
    pipeline = QueryPipeline(
        make_source(),
        make_model(),
        options=_options(
            enable_intelligent_cache=True,
            enable_literal_cache=True,
            enrich_for_reuse=True,
        ),
    )
    try:
        # Two passes through the same pipeline: the first populates the
        # caches (and already derives some answers from wider entries),
        # the second is served almost entirely from cache. Both must
        # match the oracle.
        for pass_name in ("cold", "warm"):
            for spec in specs:
                assert_tables_equal(
                    pipeline.run_spec(spec),
                    oracle[spec.canonical()],
                    context=f"cache {pass_name}: {spec.canonical()}",
                )
    finally:
        pipeline.close()


def test_concurrency_preserves_answers(specs, oracle):
    """DOP=N (concurrent batches over the pool) == DOP=1."""
    _check_batched(
        specs,
        oracle,
        _options(concurrent=True, max_workers=8, max_connections=8),
        "dop=8",
    )


def test_fusion_and_batch_graph_preserve_answers(specs, oracle):
    """Fusion + batch-graph derivation == sending every spec alone."""
    _check_batched(
        specs,
        oracle,
        _options(enable_fusion=True, enable_batch_graph=True),
        "fusion",
    )


def test_all_optimizations_together(specs, oracle):
    """The full production configuration against the oracle."""
    _check_batched(
        specs,
        oracle,
        PipelineOptions(),  # everything on, defaults
        "all-on",
    )


def test_distributed_cache_tier_preserves_answers(specs, oracle):
    """The elastic 3-node replicated cache tier (R=2) as the literal
    cache == the all-off oracle, byte-identical through table
    serialization, replica placement, and a mid-run node kill + warmed
    join.

    Three proxies share the tier: the first runs cold and populates it,
    the second starts with a cold L1 so its answers come off the wire
    from the replicated store, and the third serves *after* a cache node
    is killed and a fresh one joins — surviving replicas, re-replication
    and plain misses-gone-remote must all preserve answers.
    """
    from repro.core.cache.distributed import (
        DistributedLiteralCache,
        DistributedQueryCache,
    )
    from repro.core.cache.replicated import ReplicatedStore
    from repro.faults.clock import VirtualTimeClock

    store = ReplicatedStore(
        ("c0", "c1", "c2"),
        replication=2,
        clock=VirtualTimeClock(),
        latency_s=0.0002,
    )

    def proxy(name: str) -> QueryPipeline:
        return QueryPipeline(
            make_source(),
            make_model(),
            options=_options(enable_literal_cache=True),
            literal_cache=DistributedLiteralCache(
                DistributedQueryCache(store, name, use_l1=False), "warehouse"
            ),
        )

    for pass_name in ("cold", "tier-warm", "after-kill"):
        if pass_name == "after-kill":
            store.kill("c1")
            store.join("c3")
        pipeline = proxy(f"proxy-{pass_name}")
        try:
            for start in range(0, len(specs), BATCH):
                chunk = specs[start : start + BATCH]
                result = pipeline.run_batch(chunk)
                assert result.ok, f"{pass_name}: unexpected errors {result.errors}"
                for spec in chunk:
                    assert_tables_equal(
                        result.table_for(spec),
                        oracle[spec.canonical()],
                        context=f"tier {pass_name}: {spec.canonical()}",
                    )
        finally:
            pipeline.close()

    # The warm and post-kill passes genuinely served from the tier (the
    # proxies had no L1), and the kill genuinely degraded some reads.
    assert store.hit_count > 0, "no answer was ever served from the tier"
    assert store.stats.keys_moved > 0, "the join warmed nothing"


def test_concurrent_herd_preserves_answers(specs, oracle):
    """A thread herd over one pipeline (single-flight coalescing live)
    still answers every spec byte-identically to the oracle."""
    import threading
    from concurrent.futures import ThreadPoolExecutor

    herd_specs = specs[:48]
    pipeline = QueryPipeline(
        make_source(),
        make_model(),
        options=PipelineOptions(
            enable_intelligent_cache=False,  # force the coalesce path
            enable_literal_cache=False,
        ),
    )
    n_threads = 6
    barrier = threading.Barrier(n_threads)

    def viewer(_tid: int):
        # Every thread requests the same batches in the same order, so
        # most answers arrive by joining another thread's flight.
        barrier.wait()
        out = []
        for start in range(0, len(herd_specs), BATCH):
            out.append(pipeline.run_batch(herd_specs[start : start + BATCH]))
        return out

    try:
        with ThreadPoolExecutor(max_workers=n_threads) as tp:
            per_thread = list(tp.map(viewer, range(n_threads)))
    finally:
        pipeline.close()

    coalesced = 0
    for results in per_thread:
        for start, result in zip(range(0, len(herd_specs), BATCH), results):
            assert result.ok, f"herd: unexpected errors {result.errors}"
            coalesced += result.coalesced_hits
            for spec in herd_specs[start : start + BATCH]:
                assert_tables_equal(
                    result.table_for(spec),
                    oracle[spec.canonical()],
                    context=f"herd: {spec.canonical()}",
                )
    assert coalesced > 0, "the herd never coalesced"
