"""Differential kernel equivalence: the raw-speed path changes nothing.

The PR-8 hot-path machinery — fused filter/project/aggregate pipelines,
code-space predicate evaluation on dictionary/RLE columns, and the
physical-plan cache — must be invisible in results. A seeded generator
draws 200+ TQL queries over a dataset built to stress the new kernels
(dictionary STR columns, an RLE-sorted INT column, null-bearing columns
of every type); an oracle engine with all three features off computes
the reference; the optimized engine (features on, plans cached and
reused) must return *byte-identical* tables: same column names, same
logical types, same numpy dtypes, same null masks, same values, same
row order.

Strict ``==`` on floats is deliberate: both arms run serially over the
same rows in the same order, so even float aggregation must be bitwise
reproducible — any tolerance here would hide a row-order or
selection-order divergence.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.tde.engine import DataEngine
from repro.tde.optimizer.catalog import StorageCatalog
from repro.tde.optimizer.parallel import PlannerOptions

SEED = 7901
N_SPECS = 220  # the acceptance floor is 200
N_ROWS = 6000
BATCH_SIZE = 1024  # several oracle batches per scan, one fused pass

REGIONS = ["east", "west", "north", "south", "central"]
STATUSES = ["ok", "late", "cancelled"]
PRIORITIES = ["low", "high"]


def _build_shared_dataset() -> DataEngine:
    """Deterministic dataset stressing every new kernel path.

    ``region``/``status``/``priority`` are dictionary-encoded STR (the
    code-space filter path), ``day`` is sorted + RLE (the per-run path),
    and ``status``/``amount``/``qty`` carry nulls so null-mask handling
    differs visibly if either arm drops it.
    """
    rng = random.Random(f"kernel-equivalence|{SEED}")
    n = N_ROWS
    days = sorted(rng.randrange(0, 90) for _ in range(n))
    data = {
        "day": days,
        "region": [rng.choice(REGIONS) for _ in range(n)],
        "status": [
            None if rng.random() < 0.05 else rng.choice(STATUSES) for _ in range(n)
        ],
        "priority": [rng.choice(PRIORITIES) for _ in range(n)],
        "amount": [
            None if rng.random() < 0.03 else round(rng.gauss(50.0, 25.0), 3)
            for _ in range(n)
        ],
        "qty": [None if rng.random() < 0.02 else rng.randrange(0, 100) for _ in range(n)],
        "flag": [rng.random() < 0.3 for _ in range(n)],
    }
    engine = DataEngine(
        "kdiff",
        options=PlannerOptions(max_dop=1, enable_parallel=False),
        batch_size=BATCH_SIZE,
    )
    engine.load_pydict(
        "Extract.events", data, sort_keys=["day"], encodings={"day": "rle"}
    )
    return engine


def _oracle_view(optimized: DataEngine) -> DataEngine:
    """An all-off engine over the *same* storage objects.

    Sharing the database (as a shared-everything cluster node does)
    removes data construction as a variable: both arms read the same
    dictionaries, the same RLE runs, the same null masks.
    """
    oracle = DataEngine(
        "kdiff-oracle",
        options=PlannerOptions(
            max_dop=1,
            enable_parallel=False,
            enable_pipeline_fusion=False,
            enable_code_space=False,
            plan_cache_size=0,
        ),
        batch_size=BATCH_SIZE,
    )
    oracle.database = optimized.database
    oracle.catalog = StorageCatalog(optimized.database)
    return oracle


# ---------------------------------------------------------------------- #
# Seeded TQL generator
# ---------------------------------------------------------------------- #
def _draw_conjunct(rng: random.Random) -> str:
    """One filter conjunct; mixes code-space-eligible predicates
    (single dictionary/RLE column, null-rejecting) with ones that must
    fall back to row space (null-accepting, multi-function, non-encoded
    columns) so both evaluation paths are differentially covered."""
    kind = rng.randrange(12)
    if kind == 0:
        return f'(= region "{rng.choice(REGIONS)}")'
    if kind == 1:
        return f'(<> status "{rng.choice(STATUSES)}")'
    if kind == 2:
        return f'(= priority "{rng.choice(PRIORITIES)}")'
    if kind == 3:
        lo = rng.randrange(0, 60)
        return f"(and (>= day {lo}) (< day {lo + rng.randrange(5, 35)}))"
    if kind == 4:
        # Literal-first comparison: exercises plan-cache normalization
        # and the general comparison path on the RLE day column.
        return f"(< {rng.randrange(10, 80)} day)"
    if kind == 5:
        return f"(> amount {round(rng.uniform(10.0, 80.0), 2)})"
    if kind == 6:
        values = " ".join(f'"{r}"' for r in sorted(rng.sample(REGIONS, rng.randint(1, 3))))
        return f"(in region (list {values}))"
    if kind == 7:
        # Null-accepting: code-space must refuse and fall back.
        return "(isnull status)" if rng.random() < 0.5 else "(not (isnull amount))"
    if kind == 8:
        return "flag" if rng.random() < 0.5 else "(not flag)"
    if kind == 9:
        return f"(= (% qty {rng.randrange(3, 9)}) {rng.randrange(0, 3)})"
    if kind == 10:
        return f'(= status "{rng.choice(STATUSES)}")'
    return f"(<= amount {round(rng.uniform(20.0, 90.0), 2)})"


def _draw_predicate(rng: random.Random) -> str:
    n = rng.randint(1, 3)
    conjs = [_draw_conjunct(rng) for _ in range(n)]
    pred = conjs[0]
    for conj in conjs[1:]:  # ``and`` is binary in this TQL dialect
        pred = f"(and {pred} {conj})"
    return pred


_AGG_MENU = [
    "(n (count))",
    "(s (sum amount))",
    "(lo (min amount))",
    "(hi (max amount))",
    "(a (avg amount))",
    "(q (sum qty))",
    "(u (count_distinct region))",
    "(d (count_distinct day))",
]
_GROUP_COLS = ["region", "status", "priority", "day"]
_PROJECT_MENU = [
    "(r region)",
    "(d day)",
    "(a2 (* amount 2.0))",
    "(a1 (+ amount 1.0))",
    "(q qty)",
    '(tag (case (when flag "y") (else "n")))',
]


def _draw_query(rng: random.Random) -> str:
    scan = '(scan "Extract.events")'
    pred = _draw_predicate(rng)
    selected = f"(select {pred} {scan})" if rng.random() < 0.9 else scan
    shape = rng.randrange(10)
    if shape < 5:
        # Aggregate directly over the (possibly filtered) scan — the
        # E10-style chain the fusion rewrite targets.
        groups = sorted(rng.sample(_GROUP_COLS, rng.randint(0, 2)))
        aggs = sorted(rng.sample(_AGG_MENU, rng.randint(1, 3)))
        return f"(aggregate ({' '.join(groups)}) ({' '.join(aggs)}) {selected})"
    if shape < 7:
        # Project over filter: the fused non-aggregate path.
        items = sorted(rng.sample(_PROJECT_MENU, rng.randint(1, 3)))
        return f"(project ({' '.join(items)}) {selected})"
    if shape == 7:
        # Aggregate over a computed projection: fusion must substitute
        # the project's item map into the aggregate's inputs.
        return (
            "(aggregate (r) ((s (sum a2)) (n (count)))"
            f" (project ((r region) (a2 (* amount 2.0))) {selected}))"
        )
    if shape == 8:
        # Bare filter: the whole chain is just selection.
        return selected
    # Ordered + limited: a deterministic total order above a fused chain
    # (the sort is stable and both arms see the same pre-sort order).
    groups = sorted(rng.sample(_GROUP_COLS, rng.randint(1, 2)))
    aggs = sorted(rng.sample(_AGG_MENU, rng.randint(1, 2)))
    agg = f"(aggregate ({' '.join(groups)}) ({' '.join(aggs)}) {selected})"
    order = " ".join(f"({g} {'asc' if rng.random() < 0.7 else 'desc'})" for g in groups)
    return f"(limit {rng.randint(1, 15)} (order ({order}) {agg}))"


def gen_queries(seed: int, n: int) -> list[str]:
    rng = random.Random(f"kernel-equivalence-queries|{seed}")
    return [_draw_query(rng) for _ in range(n)]


# ---------------------------------------------------------------------- #
# Byte-identity comparison
# ---------------------------------------------------------------------- #
def assert_byte_identical(actual, expected, *, context: str = "") -> None:
    """Names, logical types, numpy dtypes, null masks, values, order."""
    assert actual.column_names == expected.column_names, (
        f"{context}: columns {actual.column_names} != {expected.column_names}"
    )
    assert actual.schema() == expected.schema(), (
        f"{context}: schema {actual.schema()} != {expected.schema()}"
    )
    assert actual.n_rows == expected.n_rows, (
        f"{context}: rows {actual.n_rows} != {expected.n_rows}"
    )
    for name in actual.column_names:
        got, want = actual.column(name), expected.column(name)
        gv, wv = got.storage_values(), want.storage_values()
        assert gv.dtype == wv.dtype, (
            f"{context}: column {name!r} dtype {gv.dtype} != {wv.dtype}"
        )
        gm = got.null_mask if got.null_mask is not None else np.zeros(len(gv), bool)
        wm = want.null_mask if want.null_mask is not None else np.zeros(len(wv), bool)
        assert np.array_equal(gm, wm), f"{context}: column {name!r} null masks differ"
        valid = ~gm
        assert np.array_equal(gv[valid], wv[valid]), (
            f"{context}: column {name!r} values differ"
        )


# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def engines():
    optimized = _build_shared_dataset()
    return optimized, _oracle_view(optimized)


@pytest.fixture(scope="module")
def queries():
    out = gen_queries(SEED, N_SPECS)
    assert len(out) >= 200
    return out


def test_generator_is_seed_deterministic():
    assert gen_queries(SEED, 40) == gen_queries(SEED, 40)
    assert gen_queries(SEED, 40) != gen_queries(SEED + 1, 40)


def test_generator_covers_the_new_kernels(queries):
    text = "\n".join(queries)
    assert "(aggregate" in text  # fusion target
    assert "(project" in text  # item substitution
    assert "isnull" in text  # code-space-unsafe fallback
    assert "(in region" in text  # dictionary set membership
    assert "day" in text  # RLE per-run path
    assert "(limit" in text  # operators above the fused chain


def test_optimized_matches_oracle_byte_for_byte(engines, queries):
    optimized, oracle = engines
    for i, q in enumerate(queries):
        expected = oracle.query(q)
        got = optimized.query(q)
        assert_byte_identical(got, expected, context=f"spec {i}: {q}")


def test_cached_plans_stay_byte_identical(engines, queries):
    """Every query twice through the optimized engine: the second run
    executes the *cached* physical plan and must answer identically."""
    optimized, oracle = engines
    optimized.plan_cache.invalidate("test_reset")
    before = optimized.plan_cache.stats()
    for i, q in enumerate(queries[:60]):
        first = optimized.query(q)
        second = optimized.query(q)
        assert_byte_identical(second, first, context=f"cached spec {i}: {q}")
        assert_byte_identical(second, oracle.query(q), context=f"cached-vs-oracle {i}")
    after = optimized.plan_cache.stats()
    assert after["hits"] - before["hits"] >= 60, (
        "the repeat runs were expected to hit the plan cache"
    )


def test_fusion_actually_fired_for_the_suite(engines, queries):
    """Guard against the suite silently comparing unfused vs unfused."""
    optimized, _ = engines
    fused = sum(
        1 for q in queries[:50] if "FusedPipeline" in optimized.explain(q)
    )
    assert fused >= 25, f"only {fused}/50 sampled specs produced a fused plan"
