"""Seeded random query-spec generator for differential testing.

Draws specs over the flights star schema (tests.conftest) from a
``random.Random(seed)`` stream, so the same seed always yields the same
spec list regardless of PYTHONHASHSEED or platform. The shapes are
constrained to be *deterministic queries*: whenever a LIMIT is drawn,
the ORDER BY is forced to a total order (all dimensions first), so
truncation picks the same rows under every execution strategy. TopN
filters are deliberately excluded — ties at the cut-off would make the
reference answer ambiguous.

Also hosts the result comparator: tables are compared as sorted row
multisets with a float tolerance, because parallel execution (DOP > 1)
may legally reassociate float additions.
"""

from __future__ import annotations

import datetime as dt
import math
import random

from repro.expr.ast import AggExpr, ColumnRef
from repro.queries.spec import CategoricalFilter, QuerySpec, RangeFilter
from tests.conftest import CARRIERS, MARKETS

#: Dimensions the generator may group by. ``name`` / ``market`` come from
#: the joined dimension tables, so generated specs exercise the model's
#: join path too.
DIMENSIONS = ("carrier_id", "market_id", "cancelled", "name", "market")

_MEASURE_FUNCS = ("sum", "min", "max", "avg")
_MEASURE_COLS = ("delay", "distance")


def _measure_menu() -> list[tuple[str, AggExpr]]:
    menu: list[tuple[str, AggExpr]] = [("n", AggExpr("count"))]
    for func in _MEASURE_FUNCS:
        for col in _MEASURE_COLS:
            menu.append((f"{func}_{col}", AggExpr(func, ColumnRef(col))))
    menu.append(("carriers", AggExpr("count_distinct", ColumnRef("carrier_id"))))
    menu.append(("markets", AggExpr("count_distinct", ColumnRef("market_id"))))
    return menu


MEASURES = _measure_menu()


def _draw_filter(rng: random.Random, field: str):
    if field == "carrier_id":
        values = rng.sample(range(len(CARRIERS)), rng.randint(1, 3))
        return CategoricalFilter(field, sorted(values), exclude=rng.random() < 0.2)
    if field == "market_id":
        values = rng.sample(range(len(MARKETS)), rng.randint(1, 3))
        return CategoricalFilter(field, sorted(values), exclude=rng.random() < 0.2)
    if field == "cancelled":
        return CategoricalFilter(field, (rng.random() < 0.5,))
    if field == "name":
        return CategoricalFilter(field, sorted(rng.sample(CARRIERS, rng.randint(1, 3))))
    if field == "market":
        return CategoricalFilter(field, sorted(rng.sample(MARKETS, rng.randint(1, 2))))
    if field == "delay":
        low = round(rng.uniform(-40.0, 20.0), 1)
        return RangeFilter(field, low, round(low + rng.uniform(10.0, 80.0), 1))
    if field == "distance":
        low = rng.randrange(100, 2000)
        return RangeFilter(field, low, low + rng.randrange(300, 2500))
    if field == "date_":
        start = dt.date(2014, 1, 1) + dt.timedelta(days=rng.randrange(0, 300))
        return RangeFilter(field, start, start + dt.timedelta(days=rng.randrange(14, 120)))
    raise AssertionError(f"no filter recipe for {field}")


_FILTER_FIELDS = (
    "carrier_id",
    "market_id",
    "cancelled",
    "name",
    "market",
    "delay",
    "distance",
    "date_",
)


def gen_spec(rng: random.Random, datasource: str = "faa") -> QuerySpec:
    """Draw one deterministic aggregate spec."""
    dims = tuple(
        sorted(rng.sample(DIMENSIONS, rng.randint(0, min(3, len(DIMENSIONS)))))
    )
    n_measures = rng.randint(0 if dims else 1, 3)
    measures = tuple(sorted(rng.sample(MEASURES, n_measures)))
    filters = tuple(
        _draw_filter(rng, field)
        for field in sorted(rng.sample(_FILTER_FIELDS, rng.randint(0, 2)))
    )
    order_by: tuple[tuple[str, bool], ...] = ()
    limit = None
    if dims and rng.random() < 0.3:
        # LIMIT requires a total order for a deterministic answer: order
        # by every dimension (the group-by key is unique per row).
        order_by = tuple((d, rng.random() < 0.7) for d in dims)
        limit = rng.randint(1, 12)
    elif dims and rng.random() < 0.3:
        order_by = tuple(
            (d, rng.random() < 0.7) for d in rng.sample(dims, rng.randint(1, len(dims)))
        )
    return QuerySpec(
        datasource,
        dimensions=dims,
        measures=measures,
        filters=filters,
        order_by=order_by,
        limit=limit,
    )


def gen_specs(seed: int, n: int, datasource: str = "faa") -> list[QuerySpec]:
    """``n`` specs drawn deterministically from ``seed`` (duplicates kept)."""
    rng = random.Random(f"difftest|{seed}")
    return [gen_spec(rng, datasource) for _ in range(n)]


# ---------------------------------------------------------------------- #
# Result comparison
# ---------------------------------------------------------------------- #
def _sort_token(value) -> str:
    """An order token that is stable across runs and float reassociation."""
    if isinstance(value, bool):
        return f"b:{value}"
    if isinstance(value, float):
        if math.isnan(value):
            return "f:nan"
        return f"f:{value:.6e}"
    if isinstance(value, int):
        return f"i:{value:024d}" if value >= 0 else f"i-:{-value:024d}"
    return f"{type(value).__name__}:{value!r}"


def rows_of(table) -> list[tuple]:
    cols = [table.column(name).python_values() for name in table.column_names]
    return [tuple(col[i] for col in cols) for i in range(table.n_rows)]


def sorted_rows(table) -> list[tuple]:
    return sorted(rows_of(table), key=lambda row: tuple(_sort_token(v) for v in row))


def _values_equal(a, b) -> bool:
    if isinstance(a, float) or isinstance(b, float):
        if a is None or b is None:
            return a is b
        if math.isnan(a) and math.isnan(b):
            return True
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
    return a == b


def assert_tables_equal(actual, expected, *, context: str = "") -> None:
    """Multiset row equality with float tolerance; raises AssertionError."""
    assert actual.column_names == expected.column_names, (
        f"{context}: column mismatch {actual.column_names} != {expected.column_names}"
    )
    left, right = sorted_rows(actual), sorted_rows(expected)
    assert len(left) == len(right), (
        f"{context}: row count {len(left)} != {len(right)}"
    )
    for i, (got, want) in enumerate(zip(left, right)):
        for g, w in zip(got, want):
            assert _values_equal(g, w), (
                f"{context}: row {i} differs: {got!r} != {want!r}"
            )
