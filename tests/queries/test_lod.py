"""Level-of-detail calculation tests (paper 3.1's LOD subqueries)."""

import datetime as dt

import pytest

from repro.connectors import SimDbDataSource, SimulatedDatabase, TdeDataSource
from repro.connectors.simdb import ServerProfile
from repro.core.pipeline import QueryPipeline
from repro.errors import BindError
from repro.expr.ast import AggExpr, Call, ColumnRef, Literal
from repro.queries import (
    CategoricalFilter,
    DataSourceModel,
    JoinSpec,
    LocalLod,
    LodCalculation,
    QuerySpec,
    RangeFilter,
    TopNFilter,
    apply_post_ops,
    compile_spec,
)
from repro.sql.dialects import QUIRKDB
from repro.tde.storage import Table
from repro.workloads import flights_model, generate_flights

COUNT = AggExpr("count")
DATASET = generate_flights(3000, seed=19)
ENGINE = DATASET.load_into_engine()


def _model():
    return flights_model().with_lod(
        "market_avg_delay", LodCalculation(("market",), AggExpr("avg", ColumnRef("dep_delay")))
    ).with_lod(
        "carrier_flights", LodCalculation(("carrier_name",), COUNT)
    )


def _tde():
    return TdeDataSource(ENGINE)


def _quirk():
    db = SimulatedDatabase("q", ServerProfile(dialect=QUIRKDB, time_scale=0))
    for s, t, tab in ENGINE.database.iter_tables():
        db.load_table(f"{s}.{t}", tab)
    return SimDbDataSource(db)


def _run(spec, model, source):
    compiled = compile_spec(spec, model, source)
    conn = source.connect()
    try:
        for name, table in compiled.temp_tables.items():
            conn.create_temp_table(name, table)
        return apply_post_ops(conn.execute(compiled.text), compiled.post_ops), compiled
    finally:
        conn.close()


class TestLodModel:
    def test_schema_includes_lod_fields(self):
        schema = _model().schema(_tde())
        from repro.datatypes import LogicalType

        assert schema["market_avg_delay"] is LogicalType.FLOAT
        assert schema["carrier_flights"] is LogicalType.INT

    def test_lod_fixing_unknown_field_rejected(self):
        model = flights_model().with_lod("bad", LodCalculation(("ghost",), COUNT))
        with pytest.raises(BindError):
            model.schema(_tde())

    def test_lod_needs_dimensions(self):
        with pytest.raises(BindError):
            LodCalculation((), COUNT)

    def test_expand_fields_reports_lods(self):
        physical, calcs, lods = _model().expand_fields({"market_avg_delay"}, _tde())
        assert "market_avg_delay" in lods
        assert "market_id" in physical or "dep_delay" in physical


class TestLodValues:
    def test_lod_matches_manual_computation(self):
        """Every flight of a market carries the market's average delay."""
        spec = QuerySpec(
            "faa",
            dimensions=("market", "market_avg_delay"),
            measures=(("own", AggExpr("avg", ColumnRef("dep_delay"))),),
        )
        out, compiled = _run(spec, _model(), _tde())
        assert not compiled.detail_mode
        # FIXED market : AVG(dep_delay) equals the per-market average.
        for market, lod_value, own in out.to_rows():
            assert lod_value == pytest.approx(own), market

    def test_lod_ignores_spec_filters(self):
        """FIXED calculations see the unfiltered view (Tableau semantics)."""
        unfiltered = QuerySpec("faa", dimensions=("market", "market_avg_delay"))
        filtered = QuerySpec(
            "faa",
            dimensions=("market", "market_avg_delay"),
            filters=(RangeFilter("date_", dt.date(2014, 6, 1), dt.date(2014, 7, 1)),),
        )
        base, _c = _run(unfiltered, _model(), _tde())
        narrowed, _c = _run(filtered, _model(), _tde())
        base_map = dict(base.to_rows())
        for market, lod_value in narrowed.to_rows():
            assert lod_value == pytest.approx(base_map[market]), market

    def test_lod_as_filter_field(self):
        """Filter flights to markets whose average delay is high."""
        spec = QuerySpec(
            "faa",
            dimensions=("market",),
            measures=(("n", COUNT),),
            filters=(RangeFilter("market_avg_delay", 13.0, None),),
        )
        out, _c = _run(spec, _model(), _tde())
        domain = dict(
            _run(QuerySpec("faa", dimensions=("market", "market_avg_delay")), _model(), _tde())[
                0
            ].to_rows()
        )
        for market in out.to_pydict()["market"]:
            assert domain[market] >= 13.0

    def test_detail_mode_agrees_with_pushdown(self):
        spec = QuerySpec(
            "faa",
            dimensions=("carrier_name",),
            measures=(("peers", AggExpr("avg", ColumnRef("market_avg_delay"))),),
            filters=(
                CategoricalFilter("market_id", (0, 1, 2, 3)),
                TopNFilter("carrier_name", COUNT, 4),
            ),
        )
        tde_out, tde_compiled = _run(spec, _model(), _tde())
        quirk_out, quirk_compiled = _run(spec, _model(), _quirk())
        assert not tde_compiled.detail_mode
        assert quirk_compiled.detail_mode
        assert tde_out.approx_equals(quirk_out, ordered=False)

    def test_two_lods_in_one_query(self):
        spec = QuerySpec(
            "faa",
            dimensions=("carrier_name", "carrier_flights"),
            measures=(("m", AggExpr("max", ColumnRef("market_avg_delay"))),),
        )
        out, _c = _run(spec, _model(), _tde())
        totals = dict(
            _run(
                QuerySpec("faa", dimensions=("carrier_name",), measures=(("n", COUNT),)),
                _model(),
                _tde(),
            )[0].to_rows()
        )
        for name, flights, _m in out.to_rows():
            assert flights == totals[name]

    def test_pipeline_and_cache_handle_lod(self):
        pipeline = QueryPipeline(_tde(), _model())
        spec = QuerySpec(
            "faa",
            dimensions=("market",),
            measures=(("lift", AggExpr("max", ColumnRef("market_avg_delay"))),),
            filters=(CategoricalFilter("market_id", (0, 1, 2)),),
        )
        first = pipeline.run_batch([spec])
        assert first.remote_queries == 1
        narrowed = spec.with_filters((CategoricalFilter("market_id", (1,)),))
        second = pipeline.run_batch([narrowed])
        assert second.remote_queries == 0  # served via subsumption
        direct = _run(narrowed, _model(), _tde())[0]
        assert second.table_for(narrowed).approx_equals(direct, ordered=False)


class TestLocalLodOp:
    def test_attach_basic(self):
        table = Table.from_pydict({"g": ["a", "a", "b"], "v": [1.0, 3.0, 10.0]})
        out = apply_post_ops(
            table, [LocalLod("avg_v", ("g",), AggExpr("avg", ColumnRef("v")))]
        )
        assert out.to_pydict()["avg_v"] == [2.0, 2.0, 10.0]

    def test_null_dimension_gets_null(self):
        table = Table.from_pydict({"g": ["a", None], "v": [1.0, 3.0]})
        out = apply_post_ops(
            table, [LocalLod("avg_v", ("g",), AggExpr("avg", ColumnRef("v")))]
        )
        assert out.to_pydict()["avg_v"] == [1.0, None]

    def test_empty_input(self):
        table = Table.from_pydict({"g": [], "v": []}, types=None) if False else None
        from repro.datatypes import LogicalType

        table = Table.from_pydict(
            {"g": [], "v": []}, types={"g": LogicalType.STR, "v": LogicalType.FLOAT}
        )
        out = apply_post_ops(
            table, [LocalLod("avg_v", ("g",), AggExpr("avg", ColumnRef("v")))]
        )
        assert out.n_rows == 0
        assert "avg_v" in out.column_names
