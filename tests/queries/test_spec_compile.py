"""Query spec and compiler tests (paper 3.1)."""

import datetime as dt

import pytest

from repro.connectors import SimDbDataSource, SimulatedDatabase, TdeDataSource
from repro.connectors.simdb import ServerProfile
from repro.errors import BindError, WorkloadError
from repro.expr.ast import AggExpr, Call, ColumnRef, Literal
from repro.queries import (
    CategoricalFilter,
    CompiledQuery,
    DataSourceModel,
    JoinSpec,
    QuerySpec,
    RangeFilter,
    TopNFilter,
    apply_post_ops,
    compile_spec,
)
from repro.sql.dialects import ANSI, QUIRKDB
from tests.conftest import build_flights_engine

ENGINE = build_flights_engine(n=3000, seed=13)
TDE = TdeDataSource(ENGINE)
COUNT = AggExpr("count")
AVG_DELAY = AggExpr("avg", ColumnRef("delay"))


def _model(**kwargs) -> DataSourceModel:
    return DataSourceModel(
        "faa",
        "Extract.flights",
        joins=(JoinSpec("Extract.carriers", (("carrier_id", "id"),)),),
        **kwargs,
    )


def _quirk_source():
    db = SimulatedDatabase("quirk", ServerProfile(dialect=QUIRKDB, time_scale=0))
    for s, t, tab in ENGINE.database.iter_tables():
        db.load_table(f"{s}.{t}", tab)
    return SimDbDataSource(db)


def _ansi_source():
    db = SimulatedDatabase("ansi", ServerProfile(time_scale=0))
    for s, t, tab in ENGINE.database.iter_tables():
        db.load_table(f"{s}.{t}", tab)
    return SimDbDataSource(db)


def _run(compiled: CompiledQuery, source):
    conn = source.connect()
    try:
        for name, table in compiled.temp_tables.items():
            conn.create_temp_table(name, table)
        return apply_post_ops(conn.execute(compiled.text), compiled.post_ops)
    finally:
        conn.close()


class TestSpec:
    def test_needs_dims_or_measures(self):
        with pytest.raises(WorkloadError):
            QuerySpec("faa")

    def test_canonical_is_stable(self):
        a = QuerySpec("faa", ("x",), filters=(CategoricalFilter("f", ("b", "a")),))
        b = QuerySpec("faa", ("x",), filters=(CategoricalFilter("f", ("a", "b")),))
        assert a.canonical() == b.canonical()  # value order does not matter

    def test_canonical_distinguishes(self):
        a = QuerySpec("faa", ("x",))
        b = QuerySpec("faa", ("x",), limit=5)
        assert a.canonical() != b.canonical()

    def test_range_filter_needs_bound(self):
        with pytest.raises(WorkloadError):
            RangeFilter("f")

    def test_fields_used(self):
        spec = QuerySpec(
            "faa",
            ("name",),
            (("a", AVG_DELAY),),
            (TopNFilter("name", AggExpr("sum", ColumnRef("distance")), 3),),
            order_by=(("a", False),),
        )
        assert spec.fields_used() == {"name", "delay", "distance"}


class TestCompileFull:
    def test_tql_text(self):
        spec = QuerySpec("faa", ("name",), (("n", COUNT),))
        compiled = compile_spec(spec, _model(), TDE)
        assert compiled.language == "tql"
        assert compiled.text.startswith("(aggregate")
        assert not compiled.detail_mode

    def test_unknown_field(self):
        spec = QuerySpec("faa", ("bogus",))
        with pytest.raises(BindError):
            compile_spec(spec, _model(), TDE)

    def test_bad_order_key(self):
        spec = QuerySpec("faa", ("name",), order_by=(("nope", True),))
        with pytest.raises(BindError):
            compile_spec(spec, _model(), TDE)

    def test_externalization_threshold(self):
        values = tuple(range(100))
        spec = QuerySpec(
            "faa", ("name",), (("n", COUNT),), (CategoricalFilter("market_id", values),)
        )
        compiled = compile_spec(spec, _model(), TDE, externalize_threshold=10)
        assert len(compiled.temp_tables) == 1
        name, table = next(iter(compiled.temp_tables.items()))
        assert name.startswith("#tt")
        assert table.column_names == ["market_id"]
        assert name in compiled.text

    def test_small_lists_stay_inline(self):
        spec = QuerySpec(
            "faa", ("name",), (("n", COUNT),), (CategoricalFilter("market_id", (1, 2)),)
        )
        compiled = compile_spec(spec, _model(), TDE)
        assert not compiled.temp_tables
        assert "(in market_id" in compiled.text

    def test_literal_key_depends_on_temp_contents(self):
        def build(values):
            spec = QuerySpec(
                "faa", ("name",), (("n", COUNT),), (CategoricalFilter("market_id", values),)
            )
            return compile_spec(spec, _model(), TDE, externalize_threshold=2)

        a = build((1, 2, 3, 4))
        b = build((1, 2, 3, 5))
        assert a.text == b.text
        assert a.literal_key != b.literal_key


class TestCompileAcrossBackends:
    SPECS = [
        QuerySpec("faa", ("name",), (("n", COUNT), ("a", AVG_DELAY))),
        QuerySpec(
            "faa",
            ("name",),
            (("n", COUNT),),
            (
                CategoricalFilter("market_id", (0, 1, 2)),
                RangeFilter("date_", dt.date(2014, 3, 1), dt.date(2014, 11, 1)),
            ),
            order_by=(("n", False),),
            limit=3,
        ),
        QuerySpec(
            "faa",
            ("market",),
            (("n", COUNT),),
            (TopNFilter("market", COUNT, 4),),
        ),
        QuerySpec("faa", ("market",)),  # domain query
        QuerySpec(
            "faa",
            ("name",),
            (("u", AggExpr("count_distinct", ColumnRef("market_id"))),),
        ),
    ]

    @pytest.mark.parametrize("idx", range(len(SPECS)))
    def test_backends_agree(self, idx):
        spec = self.SPECS[idx]
        model = DataSourceModel(
            "faa",
            "Extract.flights",
            joins=(
                JoinSpec("Extract.carriers", (("carrier_id", "id"),)),
                JoinSpec("Extract.markets", (("market_id", "mid"),)),
            ),
        )
        reference = _run(compile_spec(spec, model, TDE), TDE)
        for source in (_ansi_source(), _quirk_source()):
            compiled = compile_spec(spec, model, source)
            out = _run(compiled, source)
            ordered = bool(spec.order_by)
            assert reference.approx_equals(out, ordered=ordered) or reference.approx_equals(
                out, ordered=False
            )

    def test_quirk_uses_detail_mode_for_topn(self):
        spec = QuerySpec("faa", ("name",), (("n", COUNT),), (TopNFilter("name", COUNT, 2),))
        compiled = compile_spec(spec, _model(), _quirk_source())
        assert compiled.detail_mode

    def test_quirk_strips_order_limit_without_topn(self):
        spec = QuerySpec("faa", ("name",), (("n", COUNT),), order_by=(("n", False),), limit=2)
        compiled = compile_spec(spec, _model(), _quirk_source())
        assert not compiled.detail_mode
        assert "LIMIT" not in compiled.text
        assert len(compiled.post_ops) == 1

    def test_unsupported_function_goes_local(self):
        model = _model(
            calculations={"upper_name": Call("substr", (ColumnRef("name"), Literal(1), Literal(3)))}
        )
        spec = QuerySpec("faa", ("upper_name",), (("n", COUNT),))
        quirk = _quirk_source()
        compiled = compile_spec(spec, model, quirk)
        assert compiled.detail_mode  # substr missing on quirkdb
        out = _run(compiled, quirk)
        reference = _run(compile_spec(spec, model, TDE), TDE)
        assert reference.equals_unordered(out)


class TestCalculations:
    def test_calc_dimension(self):
        model = _model(
            calculations={"is_far": Call(">", (ColumnRef("distance"), Literal(1500)))}
        )
        spec = QuerySpec("faa", ("is_far",), (("n", COUNT),))
        out = _run(compile_spec(spec, model, TDE), TDE)
        assert out.n_rows == 2
        assert sum(out.to_pydict()["n"]) == 3000

    def test_calc_in_measure_and_filter(self):
        model = _model(
            calculations={"double_delay": Call("*", (ColumnRef("delay"), Literal(2.0)))}
        )
        spec = QuerySpec(
            "faa",
            ("name",),
            (("m", AggExpr("max", ColumnRef("double_delay"))),),
            (RangeFilter("double_delay", 0.0, None),),
        )
        out = _run(compile_spec(spec, model, TDE), TDE)
        assert all(v >= 0 for v in out.to_pydict()["m"])

    def test_unknown_calc_reference(self):
        model = _model(calculations={"c": Call("+", (ColumnRef("nope"), Literal(1)))})
        spec = QuerySpec("faa", ("c",))
        with pytest.raises(BindError):
            compiled = compile_spec(spec, model, TDE)
            _run(compiled, TDE)
