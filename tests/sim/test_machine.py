"""Virtual-time machine tests: the parallelism shapes of paper 4.2."""

import pytest

from repro.sim import MachineModel, simulate_plan
from repro.sim.machine import _lpt_makespan
from repro.sim.metrics import Recorder
from repro.tde.optimizer.parallel import PlannerOptions
from tests.conftest import build_flights_engine

ENGINE = build_flights_engine(n=50_000, max_dop=8, min_work_per_fraction=4000)

AGG = '(aggregate (carrier_id) ((s (sum delay)) (n (count))) (scan "Extract.flights"))'
JOIN = (
    '(aggregate (name) ((s (sum delay))) (join inner ((carrier_id id))'
    ' (scan "Extract.flights") (scan "Extract.carriers")))'
)
SORTED_AGG = '(aggregate (date_) ((n (count))) (scan "Extract.flights"))'


def _elapsed(query: str, *, dop: int, cores: int) -> float:
    plan = ENGINE.plan(query, options=PlannerOptions(max_dop=dop, min_work_per_fraction=4000))
    return simulate_plan(plan, MachineModel(cores=cores)).elapsed_s


class TestLpt:
    def test_empty(self):
        assert _lpt_makespan([], 4) == 0

    def test_single_core_is_sum(self):
        assert _lpt_makespan([3.0, 1.0, 2.0], 1) == 6.0

    def test_perfect_split(self):
        assert _lpt_makespan([1.0, 1.0, 1.0, 1.0], 4) == 1.0

    def test_imbalance(self):
        assert _lpt_makespan([4.0, 1.0, 1.0], 2) == 4.0


class TestParallelShapes:
    @pytest.mark.parametrize("query", [AGG, JOIN, SORTED_AGG])
    def test_parallel_beats_serial_on_multicore(self, query):
        serial = _elapsed(query, dop=1, cores=4)
        parallel = _elapsed(query, dop=8, cores=4)
        assert parallel < serial * 0.6

    @pytest.mark.parametrize("query", [AGG, JOIN, SORTED_AGG])
    def test_parallel_overhead_on_single_core(self, query):
        """With one core the parallel plan can only lose (thread setup)."""
        serial = _elapsed(query, dop=1, cores=1)
        parallel = _elapsed(query, dop=8, cores=1)
        assert parallel >= serial

    def test_speedup_monotone_in_cores(self):
        elapsed = [_elapsed(AGG, dop=8, cores=c) for c in (1, 2, 4, 8)]
        assert elapsed == sorted(elapsed, reverse=True)

    def test_range_partition_scales_better_than_local_global(self):
        """Removing the global phase (Lemma 3) improves 8-core scaling."""
        lg_speedup = _elapsed(AGG, dop=1, cores=8) / _elapsed(AGG, dop=8, cores=8)
        rp_speedup = _elapsed(SORTED_AGG, dop=1, cores=8) / _elapsed(SORTED_AGG, dop=8, cores=8)
        assert rp_speedup > lg_speedup

    def test_cpu_time_close_to_serial(self):
        """Parallelism redistributes work; it must not inflate it much."""
        serial_plan = ENGINE.plan(AGG, options=PlannerOptions(max_dop=1))
        par_plan = ENGINE.plan(AGG, options=PlannerOptions(max_dop=8, min_work_per_fraction=4000))
        serial = simulate_plan(serial_plan, MachineModel(cores=1))
        parallel = simulate_plan(par_plan, MachineModel(cores=8))
        assert parallel.cpu_s < serial.cpu_s * 1.5

    def test_fragments_reported(self):
        plan = ENGINE.plan(AGG, options=PlannerOptions(max_dop=8, min_work_per_fraction=4000))
        report = simulate_plan(plan, MachineModel(cores=8))
        assert report.fragments >= 2
        assert report.speedup_headroom > 1.0

    def test_shared_build_counted_once(self):
        plan = ENGINE.plan(JOIN, options=PlannerOptions(max_dop=8, min_work_per_fraction=4000))
        report_few = simulate_plan(plan, MachineModel(cores=8))
        # Build-side work (5 rows) is negligible; elapsed must be close to
        # the probe fragments' makespan, not multiplied by fragment count.
        probe_only = ENGINE.plan(AGG, options=PlannerOptions(max_dop=8, min_work_per_fraction=4000))
        report_probe = simulate_plan(probe_only, MachineModel(cores=8))
        assert report_few.elapsed_s < report_probe.elapsed_s * 4


class TestRecorder:
    def test_render(self):
        rec = Recorder("demo", columns=["a", "b"])
        rec.add(1, 2.5)
        rec.add("x", 0.00012)
        text = rec.render()
        assert "demo" in text and "2.50" in text and "0.0001" in text
