"""Recorder regressions: row/column alignment and _fmt edge cases."""

import pytest

from repro.sim.metrics import Recorder, _fmt


class TestRecorderRows:
    def test_short_rows_are_padded_not_truncated(self):
        rec = Recorder("t", columns=["a", "b", "c"])
        rec.add(1)
        rec.add(1, 2, 3)
        lines = rec.render().splitlines()
        # The short row renders blanks for its missing cells; the full row
        # keeps every cell (formerly zip() truncated rows to the shortest).
        assert lines[-1].split() == ["1", "2", "3"]
        assert lines[-2].split() == ["1"]
        assert rec.rows == [[1], [1, 2, 3]]

    def test_over_long_row_raises(self):
        rec = Recorder("t", columns=["a", "b"])
        with pytest.raises(ValueError, match="3 cells"):
            rec.add(1, 2, 3)

    def test_no_columns_accepts_any_width(self):
        rec = Recorder("t")
        rec.add(1, 2, 3, 4)
        assert rec.rows == [[1, 2, 3, 4]]

    def test_to_dict(self):
        rec = Recorder("t", columns=["x", "y"])
        rec.add("a", 1.5)
        assert rec.to_dict() == {"title": "t", "columns": ["x", "y"], "rows": [["a", 1.5]]}


class TestFmt:
    def test_zero(self):
        assert _fmt(0.0) == "0"

    def test_negative_floats_in_every_branch(self):
        # abs() guards the branch selection: formerly -0.5 fell through to
        # the >=100 / >=1 comparisons and got the wrong precision.
        assert _fmt(-250.0) == "-250"
        assert _fmt(-2.5) == "-2.50"
        assert _fmt(-0.5) == "-0.5000"

    def test_positive_floats(self):
        assert _fmt(250.0) == "250"
        assert _fmt(2.5) == "2.50"
        assert _fmt(0.5) == "0.5000"

    def test_non_floats_pass_through(self):
        assert _fmt(7) == "7"
        assert _fmt("x") == "x"
