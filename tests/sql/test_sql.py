"""SQL generation/parsing tests: round trips, dialects, capabilities."""

import pytest

from repro.errors import CapabilityError, SqlParseError
from repro.sql import ANSI, QUIRKDB, SQLSERVERISH, generate_sql, parse_sql
from repro.sql.parser import (
    CreateTempTable,
    DropTable,
    InsertValues,
    SelectStatement,
    parse_statement,
)
from repro.tde.tql import parse_tql


class TestGeneration:
    def test_simple_select(self, flights_engine):
        sql = generate_sql(parse_tql('(select (> delay 15) (scan "Extract.flights"))'), ANSI)
        assert sql == 'SELECT * FROM "Extract"."flights" WHERE ("delay" > 15)'

    def test_aggregate(self, flights_engine):
        sql = generate_sql(
            parse_tql('(aggregate (carrier_id) ((n (count))) (scan "Extract.flights"))'), ANSI
        )
        assert 'GROUP BY "carrier_id"' in sql
        assert 'COUNT(*) AS "n"' in sql

    def test_global_aggregate_has_no_group_by(self):
        sql = generate_sql(parse_tql('(aggregate () ((n (count))) (scan "t"))'), ANSI)
        assert "GROUP BY" not in sql

    def test_topn_becomes_order_limit(self):
        sql = generate_sql(parse_tql('(topn 5 ((x desc)) (scan "t"))'), ANSI)
        assert sql.endswith('ORDER BY "x" DESC LIMIT 5')

    def test_quirk_quoting(self):
        sql = generate_sql(parse_tql('(scan "t")'), QUIRKDB)
        assert sql == "SELECT * FROM `t`"

    def test_quirk_rejects_limit(self):
        with pytest.raises(CapabilityError) as err:
            generate_sql(parse_tql('(limit 5 (scan "t"))'), QUIRKDB)
        assert err.value.capability == "limit"

    def test_quirk_rejects_missing_function(self):
        with pytest.raises(CapabilityError) as err:
            generate_sql(parse_tql('(select (contains s "x") (scan "t"))'), QUIRKDB)
        assert err.value.capability == "contains"

    def test_in_list_limit(self):
        values = " ".join(str(i) for i in range(20))
        plan = parse_tql(f'(select (in x (list {values})) (scan "t"))')
        with pytest.raises(CapabilityError) as err:
            generate_sql(plan, QUIRKDB)
        assert err.value.capability == "in_list"
        assert "IN (" in generate_sql(plan, ANSI)

    def test_function_rename(self):
        sql = generate_sql(parse_tql('(project ((l (len s))) (scan "t"))'), SQLSERVERISH)
        assert 'LEN("s")' in sql

    def test_join_requires_catalog(self):
        from repro.errors import SqlError

        plan = parse_tql('(join inner ((a b)) (scan "t1") (scan "t2"))')
        with pytest.raises(SqlError):
            generate_sql(plan, ANSI)

    def test_string_escaping(self):
        sql = generate_sql(parse_tql("(select (= s \"o'brien\") (scan \"t\"))"), ANSI)
        assert "'o''brien'" in sql

    def test_empty_in_list(self):
        sql = generate_sql(parse_tql('(select (in x (list)) (scan "t"))'), ANSI)
        assert "(1 = 0)" in sql


class TestParsing:
    def test_statement_kinds(self):
        assert isinstance(parse_statement("SELECT * FROM t"), SelectStatement)
        assert isinstance(
            parse_statement('CREATE TEMP TABLE "#x" AS SELECT * FROM t'), CreateTempTable
        )
        assert isinstance(
            parse_statement('CREATE TEMP TABLE "#x" ("a" BIGINT, "b" VARCHAR)'),
            CreateTempTable,
        )
        assert isinstance(
            parse_statement('INSERT INTO "#x" VALUES (1, \'a\'), (2, \'b\')'), InsertValues
        )
        assert isinstance(parse_statement('DROP TABLE "#x"'), DropTable)

    def test_insert_values(self):
        stmt = parse_statement("INSERT INTO t VALUES (1, 'x', TRUE, NULL, -2.5)")
        assert stmt.rows == ((1, "x", True, None, -2.5),)

    def test_trailing_semicolon(self):
        assert isinstance(parse_statement("SELECT * FROM t;"), SelectStatement)

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "SELECT",
            "SELECT * FROM",
            "SELECT a b c FROM t",
            "UPDATE t SET a = 1",
            "CREATE TABLE t (a BIGINT)",
            "SELECT * FROM t WHERE",
            "SELECT * FROM t LIMIT x",
            "INSERT INTO t VALUES (a)",
        ],
    )
    def test_parse_errors(self, bad):
        with pytest.raises(SqlParseError):
            parse_statement(bad)

    def test_operator_precedence(self):
        plan = parse_sql("SELECT * FROM t WHERE a + 2 * b < 10 OR c AND d")
        pred = plan.predicate
        assert pred.func == "or"
        assert pred.args[1].func == "and"
        left = pred.args[0]
        assert left.func == "<"
        assert left.args[0].func == "+"
        assert left.args[0].args[1].func == "*"

    def test_not_in(self):
        plan = parse_sql("SELECT * FROM t WHERE x NOT IN (1, 2)")
        assert plan.predicate.func == "not"
        assert plan.predicate.args[0].func == "in"

    def test_is_not_null(self):
        plan = parse_sql("SELECT * FROM t WHERE x IS NOT NULL")
        assert plan.predicate.func == "not"
        assert plan.predicate.args[0].func == "isnull"

    def test_case_expression(self):
        plan = parse_sql("SELECT CASE WHEN a > 0 THEN 'p' ELSE 'n' END AS s FROM t")
        from repro.expr.ast import CaseWhen

        assert isinstance(plan.items[0][1], CaseWhen)


class TestExecutionRoundTrip:
    """generate → parse → execute must equal direct execution."""

    CASES = [
        '(select (and (> delay 10) (not cancelled)) (scan "Extract.flights"))',
        '(aggregate (carrier_id) ((n (count)) (s (sum delay)) (u (count_distinct market_id)))'
        ' (scan "Extract.flights"))',
        '(topn 4 ((s desc)) (aggregate (name) ((s (sum delay)))'
        ' (join inner ((carrier_id id)) (scan "Extract.flights") (scan "Extract.carriers"))))',
        '(project ((x (+ delay 1.0)) (c carrier_id)) (scan "Extract.flights"))',
        '(order ((delay desc) (date_ asc) (market_id asc) (carrier_id asc) (distance asc))'
        ' (select (> delay 55) (scan "Extract.flights")))',
        '(distinct (name) (join left ((carrier_id id)) (scan "Extract.flights")'
        ' (select (< id 3) (scan "Extract.carriers"))))',
        '(aggregate () ((n (count))) (select (in carrier_id (list 0 1 5)) (scan "Extract.flights")))',
        '(select (= (case (when cancelled "c") (else "ok")) "ok") (scan "Extract.flights"))',
    ]

    @pytest.mark.parametrize("tql", CASES)
    @pytest.mark.parametrize("dialect", [ANSI, SQLSERVERISH])
    def test_roundtrip(self, flights_engine, tql, dialect):
        plan = parse_tql(tql)
        sql = generate_sql(plan, dialect, flights_engine.catalog)
        back = parse_sql(sql)
        direct = flights_engine.query_naive(plan)
        via_sql = flights_engine.query_naive(back)
        assert direct.approx_equals(via_sql, ordered=False) or direct.approx_equals(via_sql)
