"""Expression evaluation tests: kernels, NULL semantics, casts."""

import datetime as dt

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes import LogicalType
from repro.errors import BindError, TypeMismatchError
from repro.expr import evaluate, evaluate_predicate, parse_sexpr
from repro.tde.storage import Table


def _table():
    return Table.from_pydict(
        {
            "i": [1, 2, None, -4],
            "f": [0.5, 0.0, 2.0, None],
            "s": ["ab", "CD", None, "xy"],
            "b": [True, False, True, None],
            "d": [dt.date(2014, 3, 1), dt.date(2014, 12, 31), None, dt.date(2015, 1, 1)],
            "ts": [dt.datetime(2014, 3, 1, 13, 45), None, dt.datetime(2014, 3, 2, 0, 0), dt.datetime(2015, 7, 4, 23, 59)],
        },
        types={"s": LogicalType.STR},
    )


def _vals(text, table=None):
    values, mask = evaluate(parse_sexpr(text), table or _table())
    out = list(values)
    if mask is not None:
        out = [None if m else v for v, m in zip(out, mask)]
    return out


class TestArithmetic:
    def test_add_propagates_null(self):
        assert _vals("(+ i 10)") == [11, 12, None, 6]

    def test_mixed_int_float(self):
        assert _vals("(* i f)") == [0.5, 0.0, None, None]

    def test_division_by_zero_yields_null(self):
        assert _vals("(/ i f)") == [2.0, None, None, None]

    def test_mod_by_zero_yields_null(self):
        out = _vals("(% i 2)")
        assert out == [1, 0, None, 0]

    def test_neg(self):
        assert _vals("(neg i)") == [-1, -2, None, 4]


class TestComparisons:
    def test_eq_and_null(self):
        assert _vals("(= i 2)") == [False, True, None, False]

    def test_string_comparison(self):
        assert _vals('(< s "b")') == [True, True, None, False]

    def test_date_literal_comparison(self):
        assert _vals('(>= d (date "2014-12-31"))') == [False, True, None, True]


class TestBooleans:
    def test_kleene_and(self):
        # NULL AND FALSE = FALSE; NULL AND TRUE = NULL
        assert _vals("(and b (= i 1))") == [True, False, None, False]

    def test_kleene_or(self):
        # NULL OR TRUE = TRUE
        t = Table.from_pydict({"x": [None, None], "y": [True, False]}, types={"x": LogicalType.BOOL})
        values, mask = evaluate(parse_sexpr("(or x y)"), t)
        assert bool(values[0]) is True and (mask is None or not mask[0])
        assert mask is not None and mask[1]

    def test_not(self):
        assert _vals("(not b)") == [False, True, False, None]

    def test_predicate_treats_null_as_false(self):
        keep = evaluate_predicate(parse_sexpr("(> i 0)"), _table())
        assert list(keep) == [True, True, False, False]


class TestNullFunctions:
    def test_isnull(self):
        assert _vals("(isnull i)") == [False, False, True, False]

    def test_ifnull(self):
        assert _vals("(ifnull i 0)") == [1, 2, 0, -4]

    def test_ifnull_type_mismatch(self):
        from repro.expr import infer_type

        with pytest.raises(TypeMismatchError):
            infer_type(parse_sexpr("(ifnull i 0.5)"), _table().schema())

    def test_in_with_null(self):
        assert _vals('(in s (list "ab" "xy"))') == [True, False, None, True]

    def test_in_numeric(self):
        assert _vals("(in i (list 1 2 99))") == [True, True, None, False]


class TestStrings:
    def test_upper_skips_nothing_but_masks(self):
        assert _vals("(upper s)") == ["AB", "CD", None, "XY"]

    def test_concat(self):
        assert _vals('(concat s "!")') == ["ab!", "CD!", None, "xy!"]

    def test_substr(self):
        assert _vals("(substr s 1 1)") == ["a", "C", None, "x"]

    def test_len(self):
        assert _vals("(len s)") == [2, 2, None, 2]

    def test_contains(self):
        assert _vals('(contains s "b")') == [True, False, None, False]


class TestTemporal:
    def test_year_month_day(self):
        assert _vals("(year d)") == [2014, 2014, None, 2015]
        assert _vals("(month d)") == [3, 12, None, 1]
        assert _vals("(day d)") == [1, 31, None, 1]

    def test_weekday(self):
        # 2014-03-01 was a Saturday -> 5 (Monday = 0)
        assert _vals("(weekday d)")[0] == 5

    def test_year_of_datetime(self):
        assert _vals("(year ts)") == [2014, None, 2014, 2015]

    def test_hour(self):
        assert _vals("(hour ts)") == [13, None, 0, 23]

    def test_hour_of_date_rejected(self):
        from repro.expr import infer_type

        with pytest.raises(TypeMismatchError):
            infer_type(parse_sexpr("(hour d)"), _table().schema())


class TestCase:
    def test_case_branches(self):
        out = _vals('(case (when (> i 1) "big") (when (= i 1) "one") (else "other"))')
        assert out == ["one", "big", "other", "other"]

    def test_case_null_condition_falls_through(self):
        out = _vals('(case (when b "t") (else "f"))')
        assert out == ["t", "f", "t", "f"]


class TestCast:
    def test_int_to_str_and_back(self):
        assert _vals("(cast (cast i str) int)") == [1, 2, None, -4]

    def test_str_parse_failure_becomes_null(self):
        assert _vals("(cast s int)") == [None, None, None, None]

    def test_date_to_datetime(self):
        values, _mask = evaluate(parse_sexpr("(cast d datetime)"), _table())
        days = (dt.date(2014, 3, 1) - dt.date(1970, 1, 1)).days
        assert values[0] == days * 86_400_000_000

    def test_datetime_to_date(self):
        values, mask = evaluate(parse_sexpr("(cast ts date)"), _table())
        assert values[0] == (dt.date(2014, 3, 1) - dt.date(1970, 1, 1)).days

    def test_float_to_int_truncates(self):
        t = Table.from_pydict({"x": [1.9, -1.9]})
        values, _ = evaluate(parse_sexpr("(cast x int)"), t)
        assert list(values) == [1, -1]

    def test_unknown_column(self):
        with pytest.raises(BindError):
            evaluate(parse_sexpr("(+ zz 1)"), _table())


@given(
    st.lists(st.one_of(st.integers(min_value=-100, max_value=100), st.none()), min_size=1, max_size=50),
    st.integers(min_value=-5, max_value=5),
)
@settings(max_examples=50)
def test_arithmetic_property(values, k):
    t = Table.from_pydict({"x": values}, types={"x": LogicalType.INT})
    out_values, mask = evaluate(parse_sexpr(f"(+ (* x 2) {k})"), t)
    for i, v in enumerate(values):
        if v is None:
            assert mask is not None and mask[i]
        else:
            assert out_values[i] == v * 2 + k
