"""Tests for the expression AST helpers and the s-expression round trip."""

import datetime as dt

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes import LogicalType
from repro.errors import BindError, TqlParseError, TypeMismatchError
from repro.expr import (
    AggExpr,
    Call,
    CaseWhen,
    Cast,
    ColumnRef,
    Literal,
    columns_used,
    infer_type,
    parse_sexpr,
    substitute,
    to_sexpr,
)
from repro.expr.ast import conjoin, conjuncts

SCHEMA = {"a": LogicalType.INT, "b": LogicalType.FLOAT, "s": LogicalType.STR}


class TestInferType:
    def test_promotion(self):
        assert infer_type(parse_sexpr("(+ a b)"), SCHEMA) is LogicalType.FLOAT
        assert infer_type(parse_sexpr("(+ a a)"), SCHEMA) is LogicalType.INT

    def test_division_always_float(self):
        assert infer_type(parse_sexpr("(/ a a)"), SCHEMA) is LogicalType.FLOAT

    def test_comparison_is_bool(self):
        assert infer_type(parse_sexpr("(< a b)"), SCHEMA) is LogicalType.BOOL

    def test_incompatible_comparison(self):
        with pytest.raises(TypeMismatchError):
            infer_type(parse_sexpr("(< a s)"), SCHEMA)

    def test_unknown_column(self):
        with pytest.raises(BindError):
            infer_type(parse_sexpr("zzz"), SCHEMA)

    def test_unknown_function(self):
        with pytest.raises(BindError):
            infer_type(Call("frobnicate", (ColumnRef("a"),)), SCHEMA)

    def test_case_promotes_branches(self):
        e = parse_sexpr("(case (when (> a 0) a) (else b))")
        assert infer_type(e, SCHEMA) is LogicalType.FLOAT

    def test_in_checks_target_only(self):
        assert infer_type(parse_sexpr("(in a (list 1 2))"), SCHEMA) is LogicalType.BOOL


class TestAggExpr:
    def test_unknown_aggregate(self):
        with pytest.raises(BindError):
            AggExpr("median", ColumnRef("a"))

    def test_count_star_allows_no_arg(self):
        assert AggExpr("count", None).arg is None

    def test_sum_requires_arg(self):
        with pytest.raises(BindError):
            AggExpr("sum", None)

    def test_result_types(self):
        assert AggExpr("sum", ColumnRef("a")).result_type(SCHEMA) is LogicalType.INT
        assert AggExpr("avg", ColumnRef("a")).result_type(SCHEMA) is LogicalType.FLOAT
        assert AggExpr("min", ColumnRef("s")).result_type(SCHEMA) is LogicalType.STR
        assert AggExpr("count_distinct", ColumnRef("s")).result_type(SCHEMA) is LogicalType.INT

    def test_sum_of_string_rejected(self):
        with pytest.raises(TypeMismatchError):
            AggExpr("sum", ColumnRef("s")).result_type(SCHEMA)


class TestHelpers:
    def test_columns_used(self):
        assert columns_used(parse_sexpr("(+ a (* b 2))")) == {"a", "b"}
        assert columns_used(None) == set()

    def test_substitute(self):
        e = substitute(parse_sexpr("(+ x 1)"), {"x": parse_sexpr("(* a 2)")})
        assert to_sexpr(e) == "(+ (* a 2) 1)"

    def test_conjuncts_flatten(self):
        e = parse_sexpr("(and (and (> a 1) (< a 5)) (= s \"x\"))")
        assert len(conjuncts(e)) == 3

    def test_conjoin_roundtrip(self):
        parts = conjuncts(parse_sexpr("(and (> a 1) (< a 5))"))
        assert conjuncts(conjoin(parts)) == parts
        assert conjoin([]) is None

    def test_structural_equality_and_hash(self):
        a = parse_sexpr("(+ a (abs b))")
        b = parse_sexpr("(+ a (abs b))")
        assert a == b
        assert hash(a) == hash(b)
        assert a != parse_sexpr("(+ a b)")


class TestSexprRoundTrip:
    CASES = [
        "(+ a 1)",
        '(and (> a 1) (in s (list "x" "y")))',
        "(case (when (> a 0) 1) (else 2))",
        "(cast a float)",
        '(= s "quote\\"inside")',
        "null",
        "true",
        "(neg 1.5)",
        '(in s (list))',
        '(>= d (date "2014-01-02"))',
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_roundtrip(self, text):
        expr = parse_sexpr(text)
        again = parse_sexpr(to_sexpr(expr))
        assert again == expr

    def test_aggregate_roundtrip(self):
        agg = parse_sexpr("(sum (+ a 1))", allow_agg=True)
        assert isinstance(agg, AggExpr)
        assert parse_sexpr(to_sexpr(agg), allow_agg=True) == agg

    def test_count_star_roundtrip(self):
        agg = parse_sexpr("(count)", allow_agg=True)
        assert to_sexpr(agg) == "(count)"

    def test_aggregate_rejected_in_scalar_context(self):
        with pytest.raises(TqlParseError):
            parse_sexpr("(sum a)")

    def test_weird_column_names(self):
        expr = ColumnRef("weird name!")
        assert parse_sexpr(to_sexpr(expr)) == expr

    def test_date_literals(self):
        expr = parse_sexpr('(date "2014-05-06")')
        assert expr == Literal(dt.date(2014, 5, 6))

    def test_parse_errors(self):
        for bad in ["(", ")", "(+ a", "(case (bogus 1 2))", '(col a)', "a b"]:
            with pytest.raises(TqlParseError):
                parse_sexpr(bad)


# Property: generated expression trees survive the text round trip.
_literals = st.one_of(
    st.integers(min_value=-1000, max_value=1000).map(Literal),
    st.floats(allow_nan=False, allow_infinity=False, width=32).map(lambda f: Literal(float(f))),
    st.booleans().map(Literal),
    st.text(max_size=5).map(Literal),
)
_exprs = st.recursive(
    _literals | st.sampled_from(["a", "b", "s"]).map(ColumnRef),
    lambda children: st.one_of(
        st.tuples(st.sampled_from(["+", "-", "*"]), children, children).map(
            lambda t: Call(t[0], (t[1], t[2]))
        ),
        st.tuples(children,).map(lambda t: Call("abs", (t[0],))),
        st.tuples(children, children).map(lambda t: Call("=", (t[0], t[1]))),
        children.map(lambda c: Cast(c, LogicalType.STR)),
    ),
    max_leaves=12,
)


@given(_exprs)
@settings(max_examples=80)
def test_sexpr_roundtrip_property(expr):
    assert parse_sexpr(to_sexpr(expr)) == expr
