"""Fuzz round-trip for the s-expression printer/parser.

A seeded generator draws random expression trees — deliberately heavy on
the hostile corners: non-ASCII and escape-heavy column names and string
literals, non-finite floats, negative zero, huge/tiny magnitudes,
microsecond datetimes, empty and mixed tuples, deep nesting — and asserts
the print → parse → print fixpoint: ``to_sexpr(parse_sexpr(to_sexpr(x)))
== to_sexpr(x)``. (Text fixpoint rather than tree equality because
``nan != nan`` breaks structural comparison by design.)

This suite is what caught the non-finite float bug: ``repr(inf)`` is
``inf``, which the reader tokenized as a bare identifier and rebuilt as
``ColumnRef("inf")`` — fixed by the ``(float "...")`` form.
"""

from __future__ import annotations

import datetime as dt
import math
import random

import pytest

from repro.expr.ast import AggExpr, Call, CaseWhen, Cast, ColumnRef, Literal
from repro.expr.sexpr import parse_sexpr, to_sexpr
from repro.datatypes import LogicalType

# Hostile name/string material: ASCII idents, dotted paths, non-ASCII
# (incl. astral-plane emoji and combining marks), escape-heavy text, and
# strings that look like grammar tokens.
NASTY_STRINGS = [
    "",
    " ",
    "plain",
    "Extract.flights",
    "päivämäärä",
    "日付",
    "столбец",
    "💰 revenue",
    "é",  # e + combining acute
    'quote"inside',
    "back\\slash",
    '\\"both\\"',
    "\\\\\\",
    "new\nline",
    "tab\there",
    "(lparen",
    ")rparen",
    "true",
    "null",
    "-inf",
    "1e99",
    "\x80\x81",
    "col",
    "list",
]

IDENTIFIERS = ["delay", "a", "Extract.flights", "_x9", "inf", "nan", "date_"]

FLOATS = [
    0.0,
    -0.0,
    1.5,
    -2.25,
    1e-300,
    -1e300,
    5e-324,
    math.pi,
    float("inf"),
    float("-inf"),
    float("nan"),
]

INTS = [0, 1, -1, 7, 2**63, -(2**70)]

CALL_OPS = ["+", "-", "*", "/", "%", "=", "<>", "<", "<=", ">", ">=", "and", "or", "not", "in", "abs"]


def _scalar(rng: random.Random):
    pick = rng.randrange(7)
    if pick == 0:
        return rng.choice(INTS)
    if pick == 1:
        return rng.choice(FLOATS)
    if pick == 2:
        return rng.choice(NASTY_STRINGS)
    if pick == 3:
        return rng.random() < 0.5
    if pick == 4:
        return dt.date(2014, 1, 1) + dt.timedelta(days=rng.randrange(0, 400))
    if pick == 5:
        return dt.datetime(2014, 3, 1, 12, 30, 45, rng.randrange(0, 1_000_000))
    return None


def gen_expr(rng: random.Random, depth: int = 0):
    """One random scalar expression, at most ~4 levels deep."""
    if depth >= 4 or rng.random() < 0.35:
        pick = rng.randrange(4)
        if pick == 0:
            return ColumnRef(rng.choice(IDENTIFIERS))
        if pick == 1:
            return ColumnRef(rng.choice(NASTY_STRINGS))
        if pick == 2:
            value = _scalar(rng)
            return Literal(value, LogicalType.INT if value is None else None)
        values = tuple(
            v for v in (_scalar(rng) for _ in range(rng.randrange(0, 4))) if v is not None
        )
        return Literal(values)
    pick = rng.randrange(3)
    if pick == 0:
        op = rng.choice(CALL_OPS)
        n_args = 1 if op in ("not", "abs") else 2
        return Call(op, tuple(gen_expr(rng, depth + 1) for _ in range(n_args)))
    if pick == 1:
        return Cast(gen_expr(rng, depth + 1), rng.choice(list(LogicalType)))
    branches = tuple(
        (gen_expr(rng, depth + 1), gen_expr(rng, depth + 1))
        for _ in range(rng.randrange(1, 3))
    )
    return CaseWhen(branches, gen_expr(rng, depth + 1))


def gen_top(rng: random.Random):
    """A top-level expression; sometimes an aggregate."""
    if rng.random() < 0.25:
        func = rng.choice(sorted(AggExpr.SUPPORTED))
        if func == "count" and rng.random() < 0.5:
            return AggExpr("count", None)
        return AggExpr(func, gen_expr(rng, 1))
    return gen_expr(rng)


def _has_nan(node) -> bool:
    values = []
    stack = [node]
    while stack:
        item = stack.pop()
        if isinstance(item, AggExpr):
            if item.arg is not None:
                stack.append(item.arg)
            continue
        if isinstance(item, Literal):
            values.append(item.value)
            continue
        stack.extend(item.children())
    for v in values:
        for scalar in v if isinstance(v, tuple) else (v,):
            if isinstance(scalar, float) and math.isnan(scalar):
                return True
    return False


@pytest.mark.parametrize("seed", range(10))
def test_fuzz_round_trip(seed):
    rng = random.Random(f"sexpr-fuzz|{seed}")
    for _ in range(300):
        tree = gen_top(rng)
        text = to_sexpr(tree)
        parsed = parse_sexpr(text, allow_agg=True)
        assert to_sexpr(parsed) == text, f"fixpoint failed for {text!r}"
        if not _has_nan(tree):
            assert parsed == tree, f"tree changed through {text!r}"


class TestNonFiniteFloats:
    """Regression: repr(inf) used to read back as ColumnRef('inf')."""

    @pytest.mark.parametrize("value", [float("inf"), float("-inf")])
    def test_infinities_round_trip(self, value):
        parsed = parse_sexpr(to_sexpr(Literal(value)))
        assert isinstance(parsed, Literal)
        assert parsed.value == value

    def test_nan_round_trips_as_nan(self):
        parsed = parse_sexpr(to_sexpr(Literal(float("nan"))))
        assert isinstance(parsed, Literal)
        assert math.isnan(parsed.value)

    def test_non_finite_inside_list(self):
        lit = Literal((1.0, float("inf"), float("-inf")))
        parsed = parse_sexpr(to_sexpr(lit))
        assert parsed == lit

    def test_inf_column_still_a_column(self):
        # A column genuinely named "inf" keeps reading back as a column.
        parsed = parse_sexpr(to_sexpr(ColumnRef("inf")))
        assert parsed == ColumnRef("inf")


class TestHostileStrings:
    @pytest.mark.parametrize("name", NASTY_STRINGS)
    def test_column_names_round_trip(self, name):
        parsed = parse_sexpr(to_sexpr(ColumnRef(name)))
        assert parsed == ColumnRef(name)

    @pytest.mark.parametrize("value", NASTY_STRINGS)
    def test_string_literals_round_trip(self, value):
        parsed = parse_sexpr(to_sexpr(Literal(value)))
        assert parsed == Literal(value)
