"""Dashboard model and rendering tests, incl. the Figure 2 cascade."""

import pytest

from repro.connectors import SimDbDataSource
from repro.connectors.simdb import ServerProfile
from repro.core.pipeline import PipelineOptions, QueryPipeline
from repro.dashboard import Dashboard, DashboardSession, FilterAction, Zone
from repro.errors import WorkloadError
from repro.expr.ast import AggExpr
from repro.workloads import (
    fig1_dashboard,
    fig2_dashboard,
    flights_model,
    generate_flights,
)

COUNT = AggExpr("count")


@pytest.fixture(scope="module")
def faa_pipeline_factory():
    dataset = generate_flights(6000, seed=9)
    db = dataset.load_into_simdb(ServerProfile(time_scale=0))
    source = SimDbDataSource(db)
    model = flights_model()

    def factory(**options):
        return QueryPipeline(source, model, options=PipelineOptions(**options))

    factory.db = db
    return factory


class TestDashboardModel:
    def test_duplicate_zone_rejected(self):
        dash = Dashboard("d", "faa")
        dash.add_zone(Zone("z", dimensions=("market",)))
        with pytest.raises(WorkloadError):
            dash.add_zone(Zone("z", dimensions=("market",)))

    def test_action_validation(self):
        dash = Dashboard("d", "faa")
        dash.add_zone(Zone("a", dimensions=("market",)))
        dash.add_zone(Zone("b", dimensions=("code",)))
        with pytest.raises(WorkloadError):
            dash.add_action(FilterAction("missing", "market", ("b",)))
        with pytest.raises(WorkloadError):
            dash.add_action(FilterAction("a", "market", ("missing",)))
        with pytest.raises(WorkloadError):
            dash.add_action(FilterAction("a", "market", ("a",)))

    def test_legend_zone_has_no_query(self):
        zone = Zone("legend", kind="legend")
        assert not zone.has_query

    def test_fig1_structure(self):
        dash = fig1_dashboard()
        assert len(dash.zones) == 9
        assert len(dash.queryable_zones()) == 8  # legend is static
        assert len(dash.actions) == 3

    def test_fig2_structure(self):
        dash = fig2_dashboard()
        assert set(dash.zones) == {"market", "carrier", "airline_name"}
        assert len(dash.actions) == 2


class TestRendering:
    def test_initial_load(self, faa_pipeline_factory):
        session = DashboardSession(fig2_dashboard(), faa_pipeline_factory())
        result = session.render()
        assert result.iterations == 1
        assert set(session.zone_tables) == {"market", "carrier", "airline_name"}
        assert session.zone_tables["carrier"].n_rows <= 5  # top-5 filter

    def test_rerender_is_free(self, faa_pipeline_factory):
        session = DashboardSession(fig2_dashboard(), faa_pipeline_factory())
        session.render()
        again = session.render()
        assert again.iterations == 0
        assert again.remote_queries == 0

    def test_action_filters_targets(self, faa_pipeline_factory):
        session = DashboardSession(fig2_dashboard(), faa_pipeline_factory())
        session.render()
        all_airlines = session.zone_tables["airline_name"].n_rows
        session.select("market", ["HNL-OGG"])
        filtered = session.zone_tables["airline_name"]
        assert filtered.n_rows < all_airlines
        assert filtered.to_pydict()["carrier_name"] == ["Alaska Airlines"]

    def test_fig2_cascade_drops_stale_selection(self, faa_pipeline_factory):
        """Paper Figure 2: select LAX-SFO then AA, then HNL-OGG — AA is
        not a carrier for HNL-OGG, so its selection is eliminated and a
        second iteration refreshes the airline zone without it."""
        session = DashboardSession(fig2_dashboard(), faa_pipeline_factory())
        session.render()
        session.select("market", ["LAX-SFO"])
        session.select("carrier", ["AA"])
        assert session.selections == {"market": ("LAX-SFO",), "carrier": ("AA",)}
        result = session.select("market", ["HNL-OGG"])
        assert result.iterations == 2
        assert ("carrier", "AA") in result.dropped_selections
        assert "carrier" not in session.selections
        assert session.zone_tables["carrier"].to_pydict()["code"] == ["AS"]

    def test_selection_on_zone_without_actions(self, faa_pipeline_factory):
        session = DashboardSession(fig2_dashboard(), faa_pipeline_factory())
        session.render()
        with pytest.raises(WorkloadError):
            session.select("airline_name", ["Delta Air Lines"])

    def test_clear_selection(self, faa_pipeline_factory):
        session = DashboardSession(fig2_dashboard(), faa_pipeline_factory())
        session.render()
        session.select("market", ["LAX-SFO"])
        narrowed = session.zone_tables["airline_name"].n_rows
        session.clear_selection("market")
        assert session.zone_tables["airline_name"].n_rows >= narrowed

    def test_quick_filter_domains_sent_once(self, faa_pipeline_factory):
        """'the queries for the domains of filters ... need to be sent
        only once. Further interactions might change the selection but
        not the domains.' (paper 3.2)"""
        session = DashboardSession(fig1_dashboard(), faa_pipeline_factory())
        session.render()
        first = session.zone_tables["carrier_filter"]
        result = session.select("carrier_filter", ["AA", "DL"])
        assert session.zone_tables["carrier_filter"].equals(first)
        assert result.remote_queries == 0  # all served from cache

    def test_fig1_interactions_hit_cache(self, faa_pipeline_factory):
        session = DashboardSession(fig1_dashboard(), faa_pipeline_factory())
        load = session.render()
        assert load.remote_queries > 0
        interaction = session.select("origin_map", [0])
        assert interaction.remote_queries == 0
        assert interaction.cache_hits > 0

    def test_caching_disabled_still_correct(self, faa_pipeline_factory):
        cached = DashboardSession(fig2_dashboard(), faa_pipeline_factory())
        uncached = DashboardSession(
            fig2_dashboard(),
            faa_pipeline_factory(
                enable_intelligent_cache=False,
                enable_literal_cache=False,
                enable_fusion=False,
                enable_batch_graph=False,
                enrich_for_reuse=False,
            ),
        )
        cached.render()
        uncached.render()
        cached.select("market", ["JFK-BOS"])
        uncached.select("market", ["JFK-BOS"])
        for zone in ("market", "carrier", "airline_name"):
            assert cached.zone_tables[zone].approx_equals(
                uncached.zone_tables[zone], ordered=False
            ), zone
