"""End-to-end DataEngine tests: querying, persistence, SYS metadata."""

import pytest

from repro.errors import StorageError
from repro.tde import DataEngine


class TestEngineBasics:
    def test_query_returns_table(self, flights_engine):
        out = flights_engine.query('(aggregate () ((n (count))) (scan "Extract.flights"))')
        assert out.to_pydict() == {"n": [20000]}

    def test_explain_is_text(self, flights_engine):
        text = flights_engine.explain('(scan "Extract.carriers")')
        assert "Scan" in text

    def test_missing_table(self, flights_engine):
        from repro.errors import BindError

        with pytest.raises(BindError):
            flights_engine.query('(scan "Extract.nope")')

    def test_drop_table(self):
        engine = DataEngine()
        engine.load_pydict("Extract.t", {"a": [1]})
        assert engine.has_table("Extract.t")
        engine.drop_table("Extract.t")
        assert not engine.has_table("Extract.t")
        with pytest.raises(StorageError):
            engine.drop_table("Extract.t")

    def test_replace_table(self):
        engine = DataEngine()
        engine.load_pydict("Extract.t", {"a": [1]})
        with pytest.raises(StorageError):
            engine.load_pydict("Extract.t", {"a": [2]})
        engine.load_pydict("Extract.t", {"a": [2]}, replace=True)
        assert engine.table("Extract.t").to_pydict() == {"a": [2]}

    def test_sys_tables_queryable(self, flights_engine):
        out = flights_engine.query('(select (= schema_name "Extract") (scan "SYS.tables"))')
        names = out.to_pydict()["table_name"]
        assert set(names) == {"flights", "carriers", "markets"}

    def test_sys_columns_reports_encodings(self, flights_engine):
        out = flights_engine.query(
            '(select (and (= table_name "flights") (= column_name "date_")) (scan "SYS.columns"))'
        )
        assert out.to_pydict()["encoding"] == ["rle"]


class TestPersistence:
    def test_save_open_roundtrip(self, tmp_path, flights_engine):
        path = tmp_path / "faa.tde"
        flights_engine.save(path)
        reopened = DataEngine.open(path)
        q = '(aggregate (carrier_id) ((s (sum delay)) (n (count))) (scan "Extract.flights"))'
        a = flights_engine.query(q)
        b = reopened.query(q)
        assert a.approx_equals(b, ordered=False)

    def test_single_file_on_disk(self, tmp_path):
        engine = DataEngine("mini")
        engine.load_pydict("Extract.t", {"a": [1, 2], "s": ["x", None]})
        path = tmp_path / "mini.tde"
        engine.save(path)
        assert path.is_file()
        assert DataEngine.open(path).table("Extract.t").to_pydict() == {
            "a": [1, 2],
            "s": ["x", None],
        }

    def test_sort_keys_survive(self, tmp_path, flights_engine):
        path = tmp_path / "faa.tde"
        flights_engine.save(path)
        reopened = DataEngine.open(path)
        assert reopened.table("Extract.flights").sort_keys == ("date_",)

    def test_open_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            DataEngine.open(tmp_path / "absent.tde")

    def test_open_garbage_file(self, tmp_path):
        path = tmp_path / "junk.tde"
        path.write_bytes(b"PK\x03\x04 not really")
        with pytest.raises(Exception):
            DataEngine.open(path)
