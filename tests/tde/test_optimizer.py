"""Optimizer tests: simplification, pushdown, culling, plan choices."""

import pytest

from repro.expr import parse_sexpr, to_sexpr
from repro.expr.ast import Literal
from repro.tde.exec import (
    PExchange,
    PHashAggregate,
    PIndexedRleScan,
    PScan,
    PStreamAggregate,
    PTopN,
)
from repro.tde.optimizer.parallel import PlannerOptions
from repro.tde.optimizer.rules import simplify_predicate
from repro.tde.tql import Aggregate, Join, Select, TableScan, parse_tql, to_tql


class TestSimplifyPredicate:
    @pytest.mark.parametrize(
        "before,after",
        [
            ("(and true (> a 1))", "(> a 1)"),
            ("(and (> a 1) true)", "(> a 1)"),
            ("(and false (> a 1))", "false"),
            ("(or false (> a 1))", "(> a 1)"),
            ("(or (> a 1) true)", "true"),
            ("(not (not (> a 1)))", "(> a 1)"),
            ("(not true)", "false"),
            ("(in a (list))", "false"),
            ("(in a (list 5))", "(= a 5)"),
            ("(> 3 1)", "true"),
            ("(= (+ 1 2) 4)", "false"),
            ("(and (> 2 1) (> a 0))", "(> a 0)"),
        ],
    )
    def test_cases(self, before, after):
        assert to_sexpr(simplify_predicate(parse_sexpr(before))) == after

    def test_null_folding(self):
        out = simplify_predicate(parse_sexpr("(+ 1 null)"))
        assert isinstance(out, Literal) and out.value is None

    def test_leaves_column_predicates_alone(self):
        text = "(and (> a 1) (< a 5))"
        assert to_sexpr(simplify_predicate(parse_sexpr(text))) == text


class TestRewrites:
    def test_distinct_becomes_aggregate(self, flights_engine):
        plan = flights_engine.rewrite('(distinct (carrier_id) (scan "Extract.flights"))')
        assert isinstance(plan, Aggregate)
        assert plan.groupby == ("carrier_id",)
        assert plan.aggs == ()

    def test_selects_merge(self, flights_engine):
        plan = flights_engine.rewrite(
            '(select (> delay 1) (select (< delay 50) (scan "Extract.flights")))'
        )
        assert isinstance(plan, Select)
        assert isinstance(plan.child, TableScan)

    def test_pushdown_through_project(self, flights_engine):
        plan = flights_engine.rewrite(
            '(select (> x 5) (project ((x (+ delay 1)) (c carrier_id)) (scan "Extract.flights")))'
        )
        # Select moved below the Project and was rewritten over `delay`.
        assert to_tql(plan).startswith("(project")
        assert "(> (+ delay 1) 5)" in to_tql(plan)

    def test_pushdown_splits_join_conjuncts(self, flights_engine):
        plan = flights_engine.rewrite(
            '(select (and (> delay 5) (= name "AA"))'
            ' (join inner ((carrier_id id)) (scan "Extract.flights") (scan "Extract.carriers")))'
        )
        assert isinstance(plan, Join)
        assert isinstance(plan.left, Select)
        assert isinstance(plan.right, Select)
        assert "delay" in to_tql(plan.left)
        assert "name" in to_tql(plan.right)

    def test_join_key_filter_copied_to_build_side(self, flights_engine):
        plan = flights_engine.rewrite(
            '(select (= carrier_id 2)'
            ' (join inner ((carrier_id id)) (scan "Extract.flights") (scan "Extract.carriers")))'
        )
        assert isinstance(plan, Join)
        assert "(= id 2)" in to_tql(plan.right)

    def test_pushdown_stops_at_topn(self, flights_engine):
        plan = flights_engine.rewrite(
            '(select (> delay 5) (topn 3 ((delay desc)) (scan "Extract.flights")))'
        )
        assert isinstance(plan, Select)  # must stay above TopN

    def test_pushdown_below_aggregate_on_keys_only(self, flights_engine):
        plan = flights_engine.rewrite(
            '(select (and (= carrier_id 1) (> n 10))'
            ' (aggregate (carrier_id) ((n (count))) (scan "Extract.flights")))'
        )
        # (= carrier_id 1) sinks below the aggregate; (> n 10) stays above.
        assert isinstance(plan, Select)
        assert to_sexpr(plan.predicate) == "(> n 10)"
        inner = plan.child
        assert isinstance(inner, Aggregate)
        assert isinstance(inner.child, Select)


class TestCulling:
    def test_unused_dimension_removed(self, flights_engine):
        plan = flights_engine.rewrite(
            '(aggregate (carrier_id) ((n (count)))'
            ' (join inner ((carrier_id id)) (scan "Extract.flights") (scan "Extract.carriers")))'
        )
        assert isinstance(plan, Aggregate)
        assert isinstance(plan.child, TableScan)

    def test_used_dimension_kept(self, flights_engine):
        plan = flights_engine.rewrite(
            '(aggregate (name) ((n (count)))'
            ' (join inner ((carrier_id id)) (scan "Extract.flights") (scan "Extract.carriers")))'
        )
        assert isinstance(plan.child, Join)

    def test_fact_culling_for_domain_query(self, flights_engine):
        plan = flights_engine.rewrite(
            '(distinct (name)'
            ' (join inner ((carrier_id id)) (scan "Extract.flights") (scan "Extract.carriers")))'
        )
        assert isinstance(plan, Aggregate)
        assert isinstance(plan.child, TableScan)
        assert plan.child.table == "Extract.carriers"

    def test_fact_culling_blocked_by_aggregates(self, flights_engine):
        # COUNT changes when the fact table is dropped; must not cull.
        plan = flights_engine.rewrite(
            '(aggregate (name) ((n (count)))'
            ' (join inner ((carrier_id id)) (scan "Extract.flights") (scan "Extract.carriers")))'
        )
        assert isinstance(plan.child, Join)

    def test_culling_requires_declarations(self, flights_engine):
        # markets joined on a column with no FK declaration for carriers.
        plan = flights_engine.rewrite(
            '(aggregate (carrier_id) ((n (count)))'
            ' (join inner ((carrier_id mid)) (scan "Extract.flights") (scan "Extract.markets")))'
        )
        assert isinstance(plan.child, Join)

    def test_culling_results_match(self, flights_engine):
        q = (
            '(distinct (name)'
            ' (join inner ((carrier_id id)) (scan "Extract.flights") (scan "Extract.carriers")))'
        )
        assert flights_engine.query(q).equals_unordered(flights_engine.query_naive(q))


class TestPlanChoices:
    def test_parallel_scan_degree(self, flights_engine):
        plan = flights_engine.plan('(aggregate () ((n (count))) (scan "Extract.flights"))')
        exchanges = [n for n in plan.walk() if isinstance(n, PExchange)]
        assert exchanges and exchanges[0].degree > 1

    def test_small_table_stays_serial(self, flights_engine):
        plan = flights_engine.plan('(scan "Extract.carriers")')
        assert isinstance(plan, PScan)

    def test_local_global_aggregation_shape(self, flights_engine):
        plan = flights_engine.plan(
            '(aggregate (carrier_id) ((s (sum delay))) (scan "Extract.flights"))'
        )
        # global hash agg over an Exchange over local aggs
        assert isinstance(plan, PHashAggregate)
        assert isinstance(plan.child, PExchange)
        assert all(isinstance(c, PHashAggregate) for c in plan.child.children())

    def test_range_partitioned_aggregation_has_no_global_phase(self, flights_engine):
        plan = flights_engine.plan(
            '(aggregate (date_) ((n (count))) (scan "Extract.flights"))'
        )
        assert isinstance(plan, PExchange)
        for frag in plan.children():
            assert isinstance(frag, (PStreamAggregate, PHashAggregate))

    def test_streaming_aggregate_chosen_for_sorted_input(self, flights_engine):
        opts = PlannerOptions(max_dop=1)
        plan = flights_engine.plan(
            '(aggregate (date_) ((n (count))) (scan "Extract.flights"))', options=opts
        )
        assert isinstance(plan, PStreamAggregate)

    def test_count_distinct_forces_exchange_then_complete(self, flights_engine):
        plan = flights_engine.plan(
            '(aggregate (carrier_id) ((u (count_distinct date_))) (scan "Extract.flights"))'
        )
        assert isinstance(plan, PHashAggregate)
        assert isinstance(plan.child, PExchange)
        assert all(isinstance(c, PScan) for c in plan.child.children())

    def test_rle_index_scan_chosen_for_selective_filter(self, flights_engine):
        plan = flights_engine.plan(
            '(select (= date_ (date "2014-03-05")) (scan "Extract.flights"))'
        )
        assert isinstance(plan, PIndexedRleScan)

    def test_rle_index_scan_rejected_for_wide_range(self, flights_engine):
        plan = flights_engine.plan(
            '(select (>= date_ (date "2014-01-01")) (scan "Extract.flights"))',
            options=PlannerOptions(max_dop=1),
        )
        assert isinstance(plan, PScan)

    def test_rle_index_disabled_by_option(self, flights_engine):
        opts = PlannerOptions(enable_rle_index=False, max_dop=1)
        plan = flights_engine.plan(
            '(select (= date_ (date "2014-03-05")) (scan "Extract.flights"))', options=opts
        )
        assert isinstance(plan, PScan)

    def test_topn_local_global(self, flights_engine):
        plan = flights_engine.plan(
            '(topn 5 ((delay desc)) (scan "Extract.flights"))'
        )
        assert isinstance(plan, PTopN)
        assert isinstance(plan.child, PExchange)
        assert all(isinstance(c, PTopN) for c in plan.child.children())

    def test_column_pruning_reaches_scans(self, flights_engine):
        plan = flights_engine.plan(
            '(aggregate (carrier_id) ((s (sum delay))) (scan "Extract.flights"))'
        )
        scans = [n for n in plan.walk() if isinstance(n, PScan)]
        for scan in scans:
            assert scan.columns == ["carrier_id", "delay"]
