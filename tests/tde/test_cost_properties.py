"""Tests for the cost model and property derivation (paper 4.1.2, 4.2)."""

import pytest

from repro.expr import parse_sexpr
from repro.tde.optimizer.cost import (
    estimate_plan,
    estimate_selectivity,
    expr_cost,
)
from repro.tde.optimizer.properties import (
    grouping_satisfied_by_order,
    range_partition_key,
    sorted_prefix,
    unique_sets,
)
from repro.tde.tql import parse_tql


class TestExprCost:
    def test_string_functions_cost_more(self):
        """The paper's 4.2.2 cost profile: string manipulation dominates."""
        cheap = expr_cost(parse_sexpr("(+ delay 1)"))
        stringy = expr_cost(parse_sexpr("(concat s (upper s))"))
        assert stringy > cheap * 3

    def test_in_list_cost_grows_with_size(self):
        small = expr_cost(parse_sexpr("(in x (list 1 2))"))
        values = " ".join(str(i) for i in range(200))
        big = expr_cost(parse_sexpr(f"(in x (list {values}))"))
        assert big > small + 5

    def test_none_is_free(self):
        assert expr_cost(None) == 0.0


class TestSelectivity:
    def test_equality_is_selective(self):
        assert estimate_selectivity(parse_sexpr("(= x 1)")) < 0.1

    def test_and_multiplies(self):
        single = estimate_selectivity(parse_sexpr("(= x 1)"))
        double = estimate_selectivity(parse_sexpr("(and (= x 1) (= y 2))"))
        assert double == pytest.approx(single * single)

    def test_or_adds(self):
        single = estimate_selectivity(parse_sexpr("(= x 1)"))
        either = estimate_selectivity(parse_sexpr("(or (= x 1) (= y 2))"))
        assert single < either <= 2 * single

    def test_not_complements(self):
        a = estimate_selectivity(parse_sexpr("(> x 1)"))
        assert estimate_selectivity(parse_sexpr("(not (> x 1))")) == pytest.approx(1 - a)

    def test_bounded(self):
        values = " ".join(str(i) for i in range(500))
        assert estimate_selectivity(parse_sexpr(f"(in x (list {values}))")) <= 1.0


class TestPlanEstimates:
    def test_filter_reduces_rows(self, flights_engine):
        scan = parse_tql('(scan "Extract.flights")')
        filtered = parse_tql('(select (= carrier_id 1) (scan "Extract.flights"))')
        cat = flights_engine.catalog
        assert estimate_plan(filtered, cat).rows < estimate_plan(scan, cat).rows
        assert estimate_plan(filtered, cat).cost > estimate_plan(scan, cat).cost

    def test_join_keeps_probe_cardinality(self, flights_engine):
        join = parse_tql(
            '(join inner ((carrier_id id)) (scan "Extract.flights") (scan "Extract.carriers"))'
        )
        cat = flights_engine.catalog
        assert estimate_plan(join, cat).rows == estimate_plan(
            parse_tql('(scan "Extract.flights")'), cat
        ).rows

    def test_aggregate_compresses(self, flights_engine):
        agg = parse_tql('(aggregate (carrier_id) ((n (count))) (scan "Extract.flights"))')
        cat = flights_engine.catalog
        est = estimate_plan(agg, cat)
        assert est.rows < cat.row_count("Extract.flights")

    def test_topn_and_limit_bound_rows(self, flights_engine):
        cat = flights_engine.catalog
        top = parse_tql('(topn 5 ((delay desc)) (scan "Extract.flights"))')
        lim = parse_tql('(limit 7 (scan "Extract.flights"))')
        assert estimate_plan(top, cat).rows == 5
        assert estimate_plan(lim, cat).rows == 7


class TestSortedPrefix:
    def test_scan_reports_declared_order(self, flights_engine):
        plan = parse_tql('(scan "Extract.flights")')
        assert sorted_prefix(plan, flights_engine.catalog) == ("date_",)

    def test_select_preserves(self, flights_engine):
        plan = parse_tql('(select (> delay 1) (scan "Extract.flights"))')
        assert sorted_prefix(plan, flights_engine.catalog) == ("date_",)

    def test_project_renames(self, flights_engine):
        plan = parse_tql('(project ((d date_) (x delay)) (scan "Extract.flights"))')
        assert sorted_prefix(plan, flights_engine.catalog) == ("d",)

    def test_project_computed_breaks_prefix(self, flights_engine):
        plan = parse_tql('(project ((d (year date_))) (scan "Extract.flights"))')
        assert sorted_prefix(plan, flights_engine.catalog) == ()

    def test_inner_join_preserves_probe_order(self, flights_engine):
        plan = parse_tql(
            '(join inner ((carrier_id id)) (scan "Extract.flights") (scan "Extract.carriers"))'
        )
        assert sorted_prefix(plan, flights_engine.catalog) == ("date_",)

    def test_left_join_does_not(self, flights_engine):
        plan = parse_tql(
            '(join left ((carrier_id id)) (scan "Extract.flights") (scan "Extract.carriers"))'
        )
        assert sorted_prefix(plan, flights_engine.catalog) == ()

    def test_order_establishes(self, flights_engine):
        plan = parse_tql('(order ((delay asc) (hour asc)) (scan "Extract.flights"))')
        assert sorted_prefix(plan, flights_engine.catalog) == ("delay", "hour")


class TestUniqueness:
    def test_declared_key(self, flights_engine):
        plan = parse_tql('(scan "Extract.carriers")')
        assert frozenset({"id"}) in unique_sets(plan, flights_engine.catalog)

    def test_aggregate_keys_unique(self, flights_engine):
        plan = parse_tql('(aggregate (carrier_id hour) ((n (count))) (scan "Extract.flights"))')
        assert frozenset({"carrier_id", "hour"}) in unique_sets(plan, flights_engine.catalog)

    def test_join_on_unique_right_preserves_left(self, flights_engine):
        plan = parse_tql(
            '(join inner ((carrier_id id)) (scan "Extract.carriers")'
            ' (scan "Extract.carriers"))'
        )
        # left side's declared key survives a key-unique join.
        # (synthetic: carriers joined to itself on its key)
        plan2 = parse_tql(
            '(join inner ((id id)) (scan "Extract.carriers") (scan "Extract.carriers"))'
        )
        assert frozenset({"id"}) in unique_sets(plan2, flights_engine.catalog)


class TestGroupingProperties:
    def test_grouping_satisfied(self):
        assert grouping_satisfied_by_order(("a",), ("a", "b"))
        assert grouping_satisfied_by_order(("b", "a"), ("a", "b", "c"))
        assert not grouping_satisfied_by_order(("c",), ("a", "b"))
        assert not grouping_satisfied_by_order((), ("a",))
        assert not grouping_satisfied_by_order(("a", "b"), ("a",))

    def test_range_partition_key(self):
        assert range_partition_key(("a", "b"), ("a", "c")) == "a"
        assert range_partition_key(("b",), ("a", "b")) is None
        assert range_partition_key(("a",), ()) is None
