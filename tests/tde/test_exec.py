"""Direct tests of the physical operators (paper 4.1.3, 4.2.1)."""

import numpy as np
import pytest

from repro.datatypes import LogicalType
from repro.expr import parse_sexpr
from repro.expr.ast import ColumnRef
from repro.tde.exec import (
    ExecContext,
    FractionTable,
    PExchange,
    PFilter,
    PHashAggregate,
    PHashJoin,
    PIndexedRleScan,
    PLimit,
    PProject,
    PScan,
    PSort,
    PStreamAggregate,
    PTopN,
    SharedBuild,
    execute_to_table,
)
from repro.tde.exec.kernels import AggSpec
from repro.tde.storage import Table


def _ctx(batch_size=16, parallel=True):
    return ExecContext(batch_size=batch_size, parallel=parallel)


def _flights(n=200):
    rng = np.random.default_rng(1)
    return Table.from_pydict(
        {
            "day": sorted(int(d) for d in rng.integers(0, 20, n)),
            "carrier": [int(c) for c in rng.integers(0, 4, n)],
            "delay": [float(x) for x in rng.normal(10, 5, n)],
        },
        sort_keys=["day"],
        encodings={"day": "rle"},
    )


class TestScan:
    def test_batches_cover_table(self):
        t = _flights(100)
        out = execute_to_table(PScan(t), _ctx(batch_size=7))
        assert out.equals(t.slice(0, 100).project(t.column_names))
        assert out.n_rows == 100

    def test_partition_range(self):
        t = _flights(50)
        out = execute_to_table(PScan(t, start=10, stop=20), _ctx())
        assert out.equals(t.slice(10, 20))

    def test_column_pruning(self):
        out = execute_to_table(PScan(_flights(), columns=["delay"]), _ctx())
        assert out.column_names == ["delay"]

    def test_scan_predicate(self):
        t = _flights()
        pred = parse_sexpr("(< day 5)")
        out = execute_to_table(PScan(t, predicate=pred), _ctx(batch_size=13))
        assert all(d < 5 for d in out.to_pydict()["day"])

    def test_empty_result_keeps_schema(self):
        out = execute_to_table(PScan(_flights(), predicate=parse_sexpr("(> day 99)")), _ctx())
        assert out.n_rows == 0
        assert out.column_names == ["day", "carrier", "delay"]

    def test_metrics_rows_scanned(self):
        ctx = _ctx()
        execute_to_table(PScan(_flights(64)), ctx)
        assert ctx.metrics.rows_scanned == 64


class TestIndexedRleScan:
    def test_matches_plain_filter(self):
        t = _flights(300)
        pred = parse_sexpr("(= day 3)")
        indexed = execute_to_table(PIndexedRleScan(t, "day", pred), _ctx())
        plain = execute_to_table(PScan(t, predicate=pred), _ctx())
        assert indexed.equals_unordered(plain)

    def test_skips_rows(self):
        t = _flights(300)
        ctx = _ctx()
        execute_to_table(PIndexedRleScan(t, "day", parse_sexpr("(= day 3)")), ctx)
        assert ctx.metrics.rows_scanned < 300
        assert ctx.metrics.runs_skipped > 0

    def test_residual_applied(self):
        t = _flights(300)
        out = execute_to_table(
            PIndexedRleScan(t, "day", parse_sexpr("(= day 3)"), parse_sexpr("(> delay 10)")),
            _ctx(),
        )
        assert all(d == 3 and x > 10 for d, x in zip(out.to_pydict()["day"], out.to_pydict()["delay"]))

    def test_fallback_for_non_rle(self):
        t = Table.from_pydict({"x": [1, 2, 3]}, encodings={"x": "plain"})
        out = execute_to_table(PIndexedRleScan(t, "x", parse_sexpr("(= x 2)")), _ctx())
        assert out.to_pydict() == {"x": [2]}

    def test_no_match_keeps_schema(self):
        t = _flights(50)
        out = execute_to_table(PIndexedRleScan(t, "day", parse_sexpr("(= day 999)")), _ctx())
        assert out.n_rows == 0
        assert out.column_names == ["day", "carrier", "delay"]


class TestFilterProject:
    def test_filter(self):
        out = execute_to_table(PFilter(PScan(_flights()), parse_sexpr("(= carrier 1)")), _ctx())
        assert set(out.to_pydict()["carrier"]) <= {1}

    def test_project_computed_and_passthrough(self):
        node = PProject(
            PScan(_flights(10)),
            [("double_delay", parse_sexpr("(* delay 2.0)")), ("carrier", ColumnRef("carrier"))],
        )
        out = execute_to_table(node, _ctx(batch_size=3))
        t = _flights(10)
        assert out.column_names == ["double_delay", "carrier"]
        assert out.to_pydict()["double_delay"] == pytest.approx(
            [2 * d for d in t.to_pydict()["delay"]]
        )


class TestLimit:
    def test_limit_stops_stream(self):
        out = execute_to_table(PLimit(PScan(_flights(100)), 5), _ctx(batch_size=3))
        assert out.n_rows == 5

    def test_limit_zero(self):
        out = execute_to_table(PLimit(PScan(_flights(10)), 0), _ctx())
        assert out.n_rows == 0
        assert out.column_names == ["day", "carrier", "delay"]


class TestHashJoin:
    def _dims(self):
        return Table.from_pydict({"cid": [0, 1, 2], "name": ["AA", "UA", "DL"]})

    def test_inner(self):
        t = _flights(60)
        join = PHashJoin("inner", [("carrier", "cid")], PScan(t), PScan(self._dims()))
        out = execute_to_table(join, _ctx(batch_size=9))
        expected = sum(1 for c in t.to_pydict()["carrier"] if c in (0, 1, 2))
        assert out.n_rows == expected
        assert "cid" not in out.column_names

    def test_left_join_fills_nulls(self):
        left = Table.from_pydict({"k": [0, 5, 1]})
        join = PHashJoin("left", [("k", "cid")], PScan(left), PScan(self._dims()))
        out = execute_to_table(join, _ctx())
        d = dict(zip(out.to_pydict()["k"], out.to_pydict()["name"]))
        assert d[0] == "AA" and d[1] == "UA" and d[5] is None

    def test_null_keys_never_match(self):
        left = Table.from_pydict({"k": [0, None]})
        inner = execute_to_table(
            PHashJoin("inner", [("k", "cid")], PScan(left), PScan(self._dims())), _ctx()
        )
        assert inner.to_pydict()["k"] == [0]
        left_join = execute_to_table(
            PHashJoin("left", [("k", "cid")], PScan(left), PScan(self._dims())), _ctx()
        )
        assert left_join.n_rows == 2

    def test_multi_column_key(self):
        left = Table.from_pydict({"a": [1, 1, 2], "b": ["x", "y", "x"]})
        right = Table.from_pydict({"ra": [1, 2], "rb": ["x", "x"], "v": [10, 20]})
        join = PHashJoin("inner", [("a", "ra"), ("b", "rb")], PScan(left), PScan(right))
        out = execute_to_table(join, _ctx())
        assert sorted(out.to_pydict()["v"]) == [10, 20]

    def test_one_to_many_duplicates(self):
        left = Table.from_pydict({"k": [1]})
        right = Table.from_pydict({"rk": [1, 1, 1], "v": [1, 2, 3]})
        out = execute_to_table(
            PHashJoin("inner", [("k", "rk")], PScan(left), PScan(right)), _ctx()
        )
        assert sorted(out.to_pydict()["v"]) == [1, 2, 3]

    def test_shared_build(self):
        t = _flights(40)
        shared = SharedBuild(PScan(self._dims()))
        j1 = PHashJoin("inner", [("carrier", "cid")], PScan(t, stop=20), shared)
        j2 = PHashJoin("inner", [("carrier", "cid")], PScan(t, start=20), shared)
        merged = execute_to_table(PExchange([j1, j2]), _ctx())
        whole = execute_to_table(
            PHashJoin("inner", [("carrier", "cid")], PScan(t), PScan(self._dims())), _ctx()
        )
        assert merged.equals_unordered(whole)


class TestAggregate:
    SPECS = [
        AggSpec("n", "count_star", None, LogicalType.INT),
        AggSpec("total", "sum", "delay", LogicalType.FLOAT),
        AggSpec("lo", "min", "delay", LogicalType.FLOAT),
        AggSpec("hi", "max", "delay", LogicalType.FLOAT),
        AggSpec("mean", "avg", "delay", LogicalType.FLOAT),
        AggSpec("days", "count_distinct", "day", LogicalType.INT),
    ]

    def test_hash_aggregate_matches_python(self):
        t = _flights(150)
        out = execute_to_table(PHashAggregate(PScan(t), ["carrier"], self.SPECS), _ctx())
        rows = {r[0]: r for r in out.to_rows()}
        data = t.to_pydict()
        for c in set(data["carrier"]):
            delays = [d for cc, d in zip(data["carrier"], data["delay"]) if cc == c]
            days = {d for cc, d in zip(data["carrier"], data["day"]) if cc == c}
            row = rows[c]
            assert row[1] == len(delays)
            assert row[2] == pytest.approx(sum(delays))
            assert row[3] == pytest.approx(min(delays))
            assert row[4] == pytest.approx(max(delays))
            assert row[5] == pytest.approx(sum(delays) / len(delays))
            assert row[6] == len(days)

    def test_global_aggregate_empty_input_yields_one_row(self):
        t = _flights(10)
        node = PHashAggregate(
            PScan(t, predicate=parse_sexpr("(> day 999)")),
            [],
            [AggSpec("n", "count_star", None, LogicalType.INT),
             AggSpec("s", "sum", "delay", LogicalType.FLOAT)],
        )
        out = execute_to_table(node, _ctx())
        assert out.n_rows == 1
        assert out.to_pydict() == {"n": [0], "s": [None]}

    def test_null_group_key_is_a_group(self):
        t = Table.from_pydict({"g": [1, None, 1, None], "v": [1, 2, 3, 4]})
        out = execute_to_table(
            PHashAggregate(PScan(t), ["g"], [AggSpec("s", "sum", "v", LogicalType.INT)]), _ctx()
        )
        assert out.n_rows == 2
        assert dict(out.to_rows())[None] == 6

    def test_sum_of_all_null_group_is_null(self):
        t = Table.from_pydict({"g": [1, 1], "v": [None, None]}, types={"v": LogicalType.INT})
        out = execute_to_table(
            PHashAggregate(PScan(t), ["g"], [AggSpec("s", "sum", "v", LogicalType.INT)]), _ctx()
        )
        assert out.to_pydict()["s"] == [None]

    def test_min_max_strings(self):
        t = Table.from_pydict({"g": [1, 1, 2], "s": ["b", "a", "z"]})
        out = execute_to_table(
            PHashAggregate(
                PScan(t),
                ["g"],
                [
                    AggSpec("lo", "min", "s", LogicalType.STR),
                    AggSpec("hi", "max", "s", LogicalType.STR),
                ],
            ),
            _ctx(),
        )
        rows = {r[0]: r[1:] for r in out.to_rows()}
        assert rows[1] == ("a", "b")
        assert rows[2] == ("z", "z")

    def test_stream_aggregate_matches_hash(self):
        t = _flights(200)
        specs = self.SPECS
        stream = execute_to_table(PStreamAggregate(PScan(t), ["day"], specs), _ctx(batch_size=17))
        hashed = execute_to_table(PHashAggregate(PScan(t), ["day"], specs), _ctx())
        assert stream.approx_equals(hashed, ordered=False)

    def test_stream_aggregate_emits_in_order(self):
        t = _flights(200)
        out = execute_to_table(
            PStreamAggregate(PScan(t), ["day"], self.SPECS[:1]), _ctx(batch_size=13)
        )
        days = out.to_pydict()["day"]
        assert days == sorted(days)


class TestSortTopN:
    def test_sort(self):
        t = _flights(80)
        out = execute_to_table(PSort(PScan(t), [("delay", False)]), _ctx(batch_size=11))
        delays = out.to_pydict()["delay"]
        assert delays == sorted(delays, reverse=True)

    def test_topn_matches_sort_head(self):
        t = _flights(300)
        top = execute_to_table(PTopN(PScan(t), 7, [("delay", False)]), _ctx(batch_size=23))
        full = execute_to_table(PSort(PScan(t), [("delay", False)]), _ctx())
        assert top.to_pydict()["delay"] == full.head(7).to_pydict()["delay"]

    def test_topn_bounded_buffer(self):
        t = _flights(5000)
        out = execute_to_table(PTopN(PScan(t), 3, [("delay", True)]), _ctx(batch_size=256))
        assert out.n_rows == 3


class TestExchange:
    def test_merges_all_fragments(self):
        t = _flights(100)
        scans = FractionTable.split_even(t, 4)
        out = execute_to_table(PExchange(list(scans)), _ctx())
        assert out.equals_unordered(t)

    def test_serial_mode_preserves_order(self):
        t = _flights(100)
        scans = FractionTable.split_even(t, 4)
        out = execute_to_table(PExchange(list(scans)), _ctx(parallel=False))
        assert out.equals(t)

    def test_ordered_flag(self):
        t = _flights(60)
        scans = FractionTable.split_even(t, 3)
        out = execute_to_table(PExchange(list(scans), ordered=True), _ctx(parallel=True))
        assert out.equals(t)

    def test_worker_errors_propagate(self):
        t = _flights(50)
        bad = PFilter(PScan(t), parse_sexpr("(> missing_column 1)"))
        with pytest.raises(Exception):
            execute_to_table(PExchange([PScan(t), bad]), _ctx(parallel=True))

    def test_zero_inputs_rejected(self):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            list(PExchange([]).execute(_ctx()))


class TestFractionTable:
    def test_split_even_covers_rows(self):
        t = _flights(103)
        scans = FractionTable.split_even(t, 4)
        assert sum((s.stop - s.start) for s in scans) == 103

    def test_split_by_key_respects_boundaries(self):
        t = _flights(500)
        scans = FractionTable.split_by_key(t, "day", 4)
        assert scans is not None
        days = t.to_pydict()["day"]
        seen: dict[int, int] = {}
        for i, scan in enumerate(scans):
            for d in days[scan.start : scan.stop]:
                assert seen.setdefault(d, i) == i  # each day in exactly one fraction

    def test_split_by_key_low_cardinality_returns_none(self):
        t = Table.from_pydict({"k": [1] * 100})
        assert FractionTable.split_by_key(t, "k", 4) is None
