"""The physical-plan cache: normalization, staleness, bounds, races.

The cache's contract has four load-bearing edges:

* **normalization** — textual variants of the same query (whitespace,
  bare-vs-quoted names, the side a literal sits on) collapse to one key,
  while a *literal change* is a different query and must miss;
* **invalidation** — an extract refresh or any DDL drops every cached
  plan, so no query ever executes a plan bound to dead storage;
* **bounds** — the LRU never exceeds its capacity, and ``capacity=0``
  disables the cache without callers needing a guard;
* **the race** — a compile that snapshotted its generation before an
  ``invalidate()`` can never re-insert its stale plan after
  ``invalidate()`` returns.
"""

from __future__ import annotations

import threading

from repro.connectors import SimDbDataSource, SimulatedDatabase
from repro.connectors.simdb import ServerProfile
from repro.core.pipeline import QueryPipeline
from repro.queries import DataSourceModel
from repro.tde.engine import DataEngine
from repro.tde.optimizer.parallel import PlannerOptions
from repro.tde.plancache import PlanCache, normalize_tql, options_fingerprint

QUERY = '(aggregate (region) ((n (count))) (select (> day 5) (scan "Extract.t")))'


def _engine(plan_cache_size: int = 64) -> DataEngine:
    engine = DataEngine(
        "pc",
        options=PlannerOptions(
            max_dop=1, enable_parallel=False, plan_cache_size=plan_cache_size
        ),
    )
    engine.load_pydict(
        "Extract.t",
        {
            "day": sorted([d % 20 for d in range(200)]),
            "region": [["east", "west", "north"][i % 3] for i in range(200)],
            "amount": [float(i) for i in range(200)],
        },
        sort_keys=["day"],
        encodings={"day": "rle"},
    )
    return engine


# ---------------------------------------------------------------------- #
# Normalization
# ---------------------------------------------------------------------- #
class TestNormalization:
    def test_whitespace_variants_share_a_key(self):
        sprawled = (
            "(aggregate   (region)\n"
            "   ((n (count)))\n"
            '   (select (> day 5)   (scan "Extract.t")))'
        )
        assert normalize_tql(sprawled) == normalize_tql(QUERY)

    def test_literal_position_flips_canonicalize(self):
        # ``5 < day`` is the same predicate as ``day > 5``.
        flipped = '(aggregate (region) ((n (count))) (select (< 5 day) (scan "Extract.t")))'
        assert normalize_tql(flipped) == normalize_tql(QUERY)
        for a, b in [
            ("(< 5 day)", "(> day 5)"),
            ("(<= 5 day)", "(>= day 5)"),
            ('(= "east" region)', '(= region "east")'),
            ('(<> "east" region)', '(<> region "east")'),
        ]:
            assert normalize_tql(f'(select {a} (scan "Extract.t"))') == normalize_tql(
                f'(select {b} (scan "Extract.t"))'
            )

    def test_bare_and_quoted_names_share_a_key(self):
        assert normalize_tql('(select (> day 5) (scan Extract.t))') == normalize_tql(
            '(select (> day 5) (scan "Extract.t"))'
        )

    def test_literal_change_is_a_different_key(self):
        changed = QUERY.replace("(> day 5)", "(> day 6)")
        assert normalize_tql(changed) != normalize_tql(QUERY)

    def test_literal_vs_literal_comparison_is_left_alone(self):
        # Both sides literal: flipping would be wrong (and pointless).
        q = '(select (< 3 5) (scan "Extract.t"))'
        assert "(< 3 5)" in normalize_tql(q)

    def test_options_fingerprint_distinguishes_option_sets(self):
        a = PlannerOptions(max_dop=1)
        b = PlannerOptions(max_dop=2)
        assert options_fingerprint(a) != options_fingerprint(b)
        assert options_fingerprint(a) == options_fingerprint(PlannerOptions(max_dop=1))


# ---------------------------------------------------------------------- #
# Engine wiring: hits, misses, invalidation
# ---------------------------------------------------------------------- #
class TestEngineCacheBehaviour:
    def test_repeat_query_hits(self):
        engine = _engine()
        base = engine.plan_cache.stats()
        engine.query(QUERY)
        engine.query(QUERY)
        stats = engine.plan_cache.stats()
        assert stats["misses"] - base["misses"] == 1
        assert stats["hits"] - base["hits"] == 1

    def test_normalized_variants_hit_the_same_entry(self):
        engine = _engine()
        engine.query(QUERY)
        before = engine.plan_cache.stats()["hits"]
        variants = [
            # whitespace
            QUERY.replace(" (select", "\n   (select"),
            # literal side
            QUERY.replace("(> day 5)", "(< 5 day)"),
            # bare table name
            QUERY.replace('(scan "Extract.t")', "(scan Extract.t)"),
        ]
        for variant in variants:
            engine.query(variant)
        assert engine.plan_cache.stats()["hits"] - before == len(variants)
        assert len(engine.plan_cache) == 1

    def test_literal_change_misses(self):
        engine = _engine()
        engine.query(QUERY)
        before = engine.plan_cache.stats()
        engine.query(QUERY.replace("(> day 5)", "(> day 9)"))
        after = engine.plan_cache.stats()
        assert after["misses"] - before["misses"] == 1
        assert after["hits"] == before["hits"]
        assert len(engine.plan_cache) == 2

    def test_different_options_compile_different_plans(self):
        engine = _engine()
        engine.plan(QUERY)
        engine.plan(
            QUERY,
            options=PlannerOptions(
                max_dop=1, enable_parallel=False, enable_code_space=False
            ),
        )
        # Same normalized text, different fingerprints: two entries.
        assert len(engine.plan_cache) == 2

    def test_refresh_invalidates(self):
        engine = _engine()
        engine.query(QUERY)
        assert len(engine.plan_cache) == 1
        dropped = engine.invalidate_plans("refresh")
        assert dropped == 1
        assert len(engine.plan_cache) == 0
        before = engine.plan_cache.stats()
        engine.query(QUERY)  # must recompile
        assert engine.plan_cache.stats()["misses"] - before["misses"] == 1

    def test_catalog_change_invalidates_and_shifts_the_key(self):
        engine = _engine()
        engine.query(QUERY)
        version_before = engine.catalog.version
        engine.load_pydict("Extract.extra", {"x": [1, 2, 3]})
        # Both defenses engage: the cache is cleared *and* the catalog
        # version baked into new keys moves on.
        assert len(engine.plan_cache) == 0
        assert engine.plan_cache.stats()["invalidations"] >= 1
        assert engine.catalog.version != version_before
        engine.drop_table("Extract.extra")
        assert engine.catalog.version != version_before

    def test_constraint_declaration_shifts_the_key(self):
        engine = _engine()
        key_before = engine._plan_key(QUERY, engine.options)
        engine.declare_unique("Extract.t", ["day"])
        assert engine._plan_key(QUERY, engine.options) != key_before

    def test_pipeline_refresh_invalidates_backend_plans(self):
        """The server-side refresh path: ``QueryPipeline.invalidate()``
        reaches through the data source to the backing engine."""
        db = SimulatedDatabase("warehouse", ServerProfile(time_scale=0))
        db.engine.load_pydict("Extract.t", {"x": [1, 2, 3]})
        pipeline = QueryPipeline(
            SimDbDataSource(db), DataSourceModel("m", "Extract.t")
        )
        db.engine.query('(aggregate () ((n (count))) (scan "Extract.t"))')
        assert len(db.engine.plan_cache) == 1
        invalidations_before = db.engine.plan_cache.stats()["invalidations"]
        pipeline.invalidate()
        assert len(db.engine.plan_cache) == 0
        assert db.engine.plan_cache.stats()["invalidations"] == invalidations_before + 1


# ---------------------------------------------------------------------- #
# LRU bound
# ---------------------------------------------------------------------- #
class TestLruBound:
    def test_capacity_is_a_hard_bound(self):
        cache = PlanCache(capacity=2)
        gen = cache.generation()
        for i in range(5):
            cache.put(("q", i), f"plan{i}", gen)
            assert len(cache) <= 2
        stats = cache.stats()
        assert stats["size"] == 2
        assert stats["evictions"] == 3
        # The survivors are the most recently inserted.
        assert cache.get(("q", 4)) == "plan4"
        assert cache.get(("q", 3)) == "plan3"
        assert cache.get(("q", 0)) is None

    def test_get_refreshes_recency(self):
        cache = PlanCache(capacity=2)
        gen = cache.generation()
        cache.put(("a",), "A", gen)
        cache.put(("b",), "B", gen)
        assert cache.get(("a",)) == "A"  # ``a`` is now the newest
        cache.put(("c",), "C", gen)  # evicts ``b``, not ``a``
        assert cache.get(("a",)) == "A"
        assert cache.get(("b",)) is None
        assert cache.get(("c",)) == "C"

    def test_engine_respects_the_configured_bound(self):
        engine = _engine(plan_cache_size=3)
        for day in range(8):
            engine.query(QUERY.replace("(> day 5)", f"(> day {day})"))
        stats = engine.plan_cache.stats()
        assert stats["capacity"] == 3
        assert stats["size"] == 3
        assert stats["evictions"] == 5

    def test_capacity_zero_disables(self):
        cache = PlanCache(capacity=0)
        assert not cache.enabled
        assert cache.put(("k",), "plan", cache.generation()) is False
        assert cache.get(("k",)) is None
        assert cache.stats()["misses"] == 0  # disabled gets are not misses

    def test_engine_with_cache_disabled_never_caches(self):
        engine = _engine(plan_cache_size=0)
        engine.query(QUERY)
        engine.query(QUERY)
        stats = engine.plan_cache.stats()
        # One invalidation rides along from the load_pydict DDL; nothing
        # was ever looked up or stored.
        assert stats == {
            "capacity": 0,
            "size": 0,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "invalidations": 1,
        }


# ---------------------------------------------------------------------- #
# The two-thread race
# ---------------------------------------------------------------------- #
class TestInvalidationRace:
    def test_stale_generation_put_is_refused(self):
        cache = PlanCache(capacity=8)
        gen = cache.generation()
        cache.invalidate("refresh")
        assert cache.put(("k",), "stale", gen) is False
        assert cache.get(("k",)) is None

    def test_no_stale_plan_after_invalidate_returns(self):
        """Thread A snapshots its generation and compiles; ``invalidate()``
        runs to completion *during* the compile; A's put must be refused,
        so the first get after invalidation recompiles instead of serving
        the pre-refresh plan."""
        cache = PlanCache(capacity=8)
        compiling = threading.Event()
        refreshed = threading.Event()
        outcome: dict = {}

        def compile_thread():
            gen = cache.generation()
            compiling.set()
            # "compile" straddles the refresh
            assert refreshed.wait(5.0)
            outcome["stored"] = cache.put(("dashboard",), "stale-plan", gen)

        worker = threading.Thread(target=compile_thread)
        worker.start()
        assert compiling.wait(5.0)
        cache.invalidate("extract_refresh")
        refreshed.set()
        worker.join(5.0)
        assert worker.is_alive() is False
        assert outcome["stored"] is False, "stale plan must not be inserted"
        assert cache.get(("dashboard",)) is None

    def test_put_after_reinvalidation_round_trip_succeeds(self):
        # A compile started *after* the invalidation is current again.
        cache = PlanCache(capacity=8)
        cache.invalidate("refresh")
        gen = cache.generation()
        assert cache.put(("k",), "fresh", gen) is True
        assert cache.get(("k",)) == "fresh"

    def test_concurrent_readers_and_an_invalidator(self):
        """Hammer get/put/invalidate from threads: no exceptions, no stale
        entries surviving the final invalidation."""
        engine = _engine()
        errors: list[BaseException] = []

        def worker(day: int):
            try:
                for i in range(20):
                    engine.query(QUERY.replace("(> day 5)", f"(> day {day + i % 3})"))
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(d,)) for d in (1, 4, 7)]
        for t in threads:
            t.start()
        for _ in range(5):
            engine.invalidate_plans("refresh")
        for t in threads:
            t.join(10.0)
        assert not errors
        engine.invalidate_plans("final")
        assert len(engine.plan_cache) == 0
