"""Property tests: optimized + parallel execution ≡ naive execution.

This is the central correctness invariant of the reproduction: every
rewrite (pushdown, culling, DISTINCT→GROUP BY), every physical choice
(streaming aggregate, RLE index scan) and every parallel transformation
(Exchange, local/global aggregation, range partitioning, shared build)
must return the same logical result as the unoptimized serial
interpretation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import build_flights_engine

ENGINE = build_flights_engine(n=4000, seed=11, max_dop=4, min_work_per_fraction=200.0)

_FILTERS = st.sampled_from(
    [
        "true",
        "(> delay 12.5)",
        "(not cancelled)",
        "(and (> delay 0) (< delay 40))",
        "(in carrier_id (list 0 2 4))",
        '(= date_ (date "2014-06-15"))',
        '(and (>= date_ (date "2014-03-01")) (< date_ (date "2014-03-08")))',
        "(or cancelled (> distance 2500))",
        "(= (% distance 7) 3)",
    ]
)
_GROUPS = st.sampled_from(
    [
        ("carrier_id",),
        ("date_",),
        ("carrier_id", "market_id"),
        (),
    ]
)
_AGGS = st.sampled_from(
    [
        "((n (count)))",
        "((s (sum delay)) (n (count)))",
        "((a (avg delay)) (lo (min delay)) (hi (max delay)))",
        "((u (count_distinct market_id)))",
        "((w (sum (* delay 2.0))))",
    ]
)


def _agg_query(filter_text, groups, aggs):
    inner = f'(select {filter_text} (scan "Extract.flights"))'
    return f"(aggregate ({' '.join(groups)}) {aggs} {inner})"


@given(_FILTERS, _GROUPS, _AGGS)
@settings(max_examples=40, deadline=None)
def test_aggregate_equivalence(filter_text, groups, aggs):
    q = _agg_query(filter_text, groups, aggs)
    optimized = ENGINE.query(q)
    naive = ENGINE.query_naive(q)
    assert optimized.approx_equals(naive, ordered=False, rel=1e-7, abs_tol=1e-7)


@given(_FILTERS, st.integers(min_value=0, max_value=20))
@settings(max_examples=25, deadline=None)
def test_topn_equivalence(filter_text, n):
    q = (
        f"(topn {n} ((delay desc) (distance asc) (carrier_id asc) (date_ asc)"
        f' (market_id asc)) (select {filter_text} (scan "Extract.flights")))'
    )
    optimized = ENGINE.query(q)
    naive = ENGINE.query_naive(q)
    assert optimized.approx_equals(naive)


@given(_FILTERS, _GROUPS.filter(lambda g: g))
@settings(max_examples=25, deadline=None)
def test_join_aggregate_equivalence(filter_text, groups):
    join = (
        '(join inner ((carrier_id id)) (select '
        + filter_text
        + ' (scan "Extract.flights")) (scan "Extract.carriers"))'
    )
    q = f"(aggregate (name) ((n (count)) (s (sum delay))) {join})"
    optimized = ENGINE.query(q)
    naive = ENGINE.query_naive(q)
    assert optimized.approx_equals(naive, ordered=False, rel=1e-7, abs_tol=1e-7)


@given(_FILTERS)
@settings(max_examples=20, deadline=None)
def test_distinct_equivalence(filter_text):
    q = f'(distinct (carrier_id market_id) (select {filter_text} (scan "Extract.flights")))'
    assert ENGINE.query(q).equals_unordered(ENGINE.query_naive(q))


@pytest.mark.parametrize("dop", [1, 2, 3, 8])
def test_all_dops_agree(dop):
    from repro.tde.optimizer.parallel import PlannerOptions

    q = '(aggregate (date_) ((n (count)) (s (sum delay))) (scan "Extract.flights"))'
    reference = ENGINE.query_naive(q)
    opts = PlannerOptions(max_dop=dop, min_work_per_fraction=100.0)
    out = ENGINE.query(q, options=opts)
    assert out.approx_equals(reference, ordered=False, rel=1e-7, abs_tol=1e-7)
