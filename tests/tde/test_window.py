"""Window / table calculation tests (paper §1's window functions)."""

import pytest

from repro.errors import BindError, TqlParseError
from repro.tde import DataEngine
from repro.tde.tql import parse_tql, to_tql


@pytest.fixture(scope="module")
def engine():
    eng = DataEngine("win")
    eng.load_pydict(
        "Extract.sales",
        {
            "region": ["e", "e", "e", "w", "w", "w"],
            "month": [1, 2, 3, 1, 2, 3],
            "amount": [10.0, 30.0, 20.0, 5.0, None, 15.0],
        },
    )
    return eng


def _query(engine, items):
    return engine.query(f'(window ({items}) (scan "Extract.sales"))')


class TestWindowFunctions:
    def test_row_number(self, engine):
        out = _query(engine, "(rn row_number (partition region) (order (month asc)))")
        rows = {(r, m): n for r, m, _a, n in out.to_rows()}
        assert rows[("e", 1)] == 1 and rows[("e", 3)] == 3
        assert rows[("w", 1)] == 1

    def test_rank_with_ties(self, engine):
        eng = DataEngine("ties")
        eng.load_pydict("Extract.t", {"v": [10, 10, 5, 1]})
        out = eng.query('(window ((r rank (order (v desc)))) (scan "Extract.t"))')
        assert dict(zip(out.to_pydict()["v"], out.to_pydict()["r"])) == {10: 1, 5: 3, 1: 4}

    def test_running_sum_skips_nulls(self, engine):
        out = _query(engine, "(rs running_sum amount (partition region) (order (month asc)))")
        west = [(m, rs) for r, m, _a, rs in out.to_rows() if r == "w"]
        assert dict(west) == {1: 5.0, 2: 5.0, 3: 20.0}

    def test_running_avg(self, engine):
        out = _query(engine, "(ra running_avg amount (partition region) (order (month asc)))")
        east = {m: ra for r, m, _a, ra in out.to_rows() if r == "e"}
        assert east[1] == 10.0
        assert east[2] == 20.0
        assert east[3] == pytest.approx(20.0)

    def test_window_sum_broadcasts(self, engine):
        out = _query(engine, "(total window_sum amount (partition region))")
        totals = {r: t for r, _m, _a, t in out.to_rows()}
        assert totals == {"e": 60.0, "w": 20.0}

    def test_window_min_max(self, engine):
        out = _query(
            engine,
            "(hi window_max amount (partition region)) (lo window_min amount (partition region))",
        )
        east = [(a, hi, lo) for r, _m, a, hi, lo in out.to_rows() if r == "e"]
        assert all(hi == 30.0 and lo == 10.0 for _a, hi, lo in east)

    def test_share(self, engine):
        out = _query(engine, "(pct share amount (partition region))")
        east = {m: p for r, m, _a, p in out.to_rows() if r == "e"}
        assert east[1] == pytest.approx(10 / 60)
        assert sum(east.values()) == pytest.approx(1.0)

    def test_global_partition(self, engine):
        out = _query(engine, "(pct share amount)")
        values = [p for *_rest, p in out.to_rows() if p is not None]
        assert sum(values) == pytest.approx(1.0)

    def test_null_arg_rows_get_null(self, engine):
        out = _query(engine, "(pct share amount (partition region))")
        west_null = [p for r, m, a, p in out.to_rows() if a is None]
        assert west_null == [None]

    def test_over_aggregate(self, engine):
        """Window over an aggregate: share of each region's total."""
        out = engine.query(
            '(window ((pct share total)) (aggregate (region)'
            ' ((total (sum amount))) (scan "Extract.sales")))'
        )
        shares = dict((r, p) for r, _t, p in out.to_rows())
        assert shares["e"] == pytest.approx(60 / 80)

    def test_output_ordered_by_first_item_addressing(self, engine):
        out = _query(engine, "(rn row_number (partition region) (order (amount desc)))")
        regions = out.to_pydict()["region"]
        assert regions == sorted(regions)  # partition-major output order


class TestWindowValidation:
    def test_roundtrip(self, engine):
        text = (
            '(window ((rn row_number (partition region) (order (month asc)))'
            ' (pct share amount (partition region))) (scan "Extract.sales"))'
        )
        plan = parse_tql(text)
        assert parse_tql(to_tql(plan)) == plan

    @pytest.mark.parametrize(
        "bad",
        [
            '(window ((x bogus_fn (order (v asc)))) (scan "t"))',
            '(window ((x row_number)) (scan "t"))',  # needs order
            '(window ((x running_sum (order (v asc)))) (scan "t"))',  # needs arg
            '(window ((x row_number v (order (v asc)))) (scan "t"))',  # no arg allowed
            '(window ((x rank v v (order (v asc)))) (scan "t"))',
        ],
    )
    def test_parse_errors(self, bad):
        with pytest.raises(TqlParseError):
            parse_tql(bad)

    def test_bind_errors(self, engine):
        with pytest.raises(BindError):
            engine.query('(window ((region share amount)) (scan "Extract.sales"))')
        with pytest.raises(BindError):
            engine.query(
                '(window ((x share amount (partition ghost))) (scan "Extract.sales"))'
            )
        with pytest.raises(BindError):
            engine.query('(window ((x share region)) (scan "Extract.sales"))')

    def test_parallel_input_closed_before_window(self):
        from tests.conftest import build_flights_engine

        eng = build_flights_engine(n=4000, max_dop=4, min_work_per_fraction=200)
        q = (
            '(window ((pct share delay (partition carrier_id)))'
            ' (select (> delay 60) (scan "Extract.flights")))'
        )
        serial = eng.query_naive(q)
        parallel = eng.query(q)
        assert parallel.approx_equals(serial, ordered=False, rel=1e-7, abs_tol=1e-9)
