"""Tests for dictionary compression (heap/array kinds, collations)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collation import ACCENT_INSENSITIVE, BINARY, CASE_INSENSITIVE
from repro.errors import StorageError
from repro.tde.storage.dictionary import Dictionary


def _strings(values):
    arr = np.empty(len(values), dtype=object)
    arr[:] = values
    return arr


class TestHeapDictionary:
    def test_encode_decode(self):
        codes, d = Dictionary.encode(_strings(["b", "a", "b", "c"]), is_string=True)
        assert d.kind == "heap"
        assert list(d.values) == ["a", "b", "c"]  # collation-sorted
        assert list(d.decode(codes)) == ["b", "a", "b", "c"]

    def test_codes_are_sorted_by_value(self):
        codes, d = Dictionary.encode(_strings(["z", "a", "m"]), is_string=True)
        assert codes[1] < codes[2] < codes[0]

    def test_case_insensitive_merges(self):
        codes, d = Dictionary.encode(
            _strings(["Foo", "foo", "BAR"]), is_string=True, collation=CASE_INSENSITIVE
        )
        assert len(d) == 2
        assert codes[0] == codes[1]
        # representative is the first occurrence
        assert "Foo" in list(d.values)

    def test_accent_insensitive(self):
        codes, d = Dictionary.encode(
            _strings(["café", "cafe"]), is_string=True, collation=ACCENT_INSENSITIVE
        )
        assert len(d) == 1
        assert codes[0] == codes[1]

    def test_code_for(self):
        _codes, d = Dictionary.encode(_strings(["x", "y"]), is_string=True)
        assert d.code_for("x") >= 0
        assert d.code_for("nope") == -1

    def test_code_for_collation_aware(self):
        _codes, d = Dictionary.encode(
            _strings(["Hello"]), is_string=True, collation=CASE_INSENSITIVE
        )
        assert d.code_for("hELLO") == 0

    def test_code_range(self):
        _codes, d = Dictionary.encode(_strings(["a", "c", "e"]), is_string=True)
        assert d.code_range("<", "c") == (0, 1)
        assert d.code_range("<=", "c") == (0, 2)
        assert d.code_range(">", "c") == (2, 3)
        assert d.code_range(">=", "c") == (1, 3)

    def test_code_range_missing_value(self):
        _codes, d = Dictionary.encode(_strings(["a", "c", "e"]), is_string=True)
        assert d.code_range("<", "d") == (0, 2)
        assert d.code_range(">=", "d") == (2, 3)

    def test_code_range_bad_op(self):
        _codes, d = Dictionary.encode(_strings(["a"]), is_string=True)
        with pytest.raises(StorageError):
            d.code_range("=", "a")


class TestArrayDictionary:
    def test_encode_decode_ints(self):
        codes, d = Dictionary.encode(np.array([30, 10, 30, 20]), is_string=False)
        assert d.kind == "array"
        assert list(d.values) == [10, 20, 30]
        assert list(d.decode(codes)) == [30, 10, 30, 20]

    def test_code_for(self):
        _codes, d = Dictionary.encode(np.array([5, 7]), is_string=False)
        assert d.code_for(7) == 1
        assert d.code_for(6) == -1

    def test_bad_kind_rejected(self):
        with pytest.raises(StorageError):
            Dictionary(np.array([1]), "bogus")


@given(st.lists(st.text(max_size=6), min_size=0, max_size=100))
@settings(max_examples=60)
def test_heap_roundtrip_property(values):
    codes, d = Dictionary.encode(_strings(values), is_string=True)
    assert list(d.decode(codes)) == values
    # codes must be dense: every dictionary slot used
    if values:
        assert set(codes) == set(range(len(d)))


@given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=100))
@settings(max_examples=60)
def test_array_roundtrip_property(values):
    codes, d = Dictionary.encode(np.asarray(values, dtype=np.int64), is_string=False)
    assert list(d.decode(codes)) == values
    assert list(d.values) == sorted(set(values))
