"""Unit and property tests for the storage encodings (paper 4.1.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.tde.storage.vectors import (
    DeltaVector,
    PlainVector,
    RleVector,
    encode_best,
)


class TestPlainVector:
    def test_roundtrip(self):
        arr = np.array([1, 2, 3], dtype=np.int64)
        vec = PlainVector(arr)
        assert len(vec) == 3
        assert vec.materialize() is arr
        assert list(vec.slice(1, 3)) == [2, 3]
        assert list(vec.take(np.array([2, 0]))) == [3, 1]

    def test_nbytes_objects(self):
        arr = np.array(["ab", "cdef"], dtype=object)
        assert PlainVector(arr).nbytes == 6 + 16


class TestRleVector:
    def test_from_plain_basic(self):
        vec = RleVector.from_plain(np.array([5, 5, 5, 1, 1, 9]))
        assert vec.n_runs == 3
        assert list(vec.values) == [5, 1, 9]
        assert list(vec.counts) == [3, 2, 1]
        assert list(vec.starts) == [0, 3, 5]
        assert list(vec.materialize()) == [5, 5, 5, 1, 1, 9]

    def test_empty(self):
        vec = RleVector.from_plain(np.zeros(0, dtype=np.int64))
        assert len(vec) == 0
        assert vec.n_runs == 0
        assert list(vec.materialize()) == []

    def test_take_positions(self):
        vec = RleVector.from_plain(np.array([7, 7, 8, 8, 8, 9]))
        assert list(vec.take(np.array([0, 1, 2, 4, 5]))) == [7, 7, 8, 8, 9]

    def test_slice_within_single_run(self):
        vec = RleVector.from_plain(np.array([4, 4, 4, 4]))
        assert list(vec.slice(1, 3)) == [4, 4]

    def test_slice_across_runs(self):
        vec = RleVector.from_plain(np.array([1, 1, 2, 2, 3, 3]))
        assert list(vec.slice(1, 5)) == [1, 2, 2, 3]

    def test_slice_empty(self):
        vec = RleVector.from_plain(np.array([1, 2]))
        assert len(vec.slice(1, 1)) == 0

    def test_index_table_matches_runs(self):
        vec = RleVector.from_plain(np.array([3, 3, 1, 9, 9, 9]))
        values, counts, starts = vec.index_table()
        triples = list(zip(starts, counts, values))
        assert triples == list(vec.runs())

    def test_length_mismatch_rejected(self):
        with pytest.raises(StorageError):
            RleVector(np.array([1]), np.array([1, 2]))

    @given(
        st.lists(st.integers(min_value=-5, max_value=5), min_size=0, max_size=200)
    )
    @settings(max_examples=60)
    def test_roundtrip_property(self, values):
        arr = np.asarray(values, dtype=np.int64)
        vec = RleVector.from_plain(arr)
        assert list(vec.materialize()) == values
        if values:
            idx = np.arange(0, len(values), 2)
            assert list(vec.take(idx)) == [values[i] for i in idx]

    @given(
        st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=60),
        st.data(),
    )
    @settings(max_examples=60)
    def test_slice_property(self, values, data):
        arr = np.asarray(values, dtype=np.int64)
        vec = RleVector.from_plain(arr)
        start = data.draw(st.integers(min_value=0, max_value=len(values)))
        stop = data.draw(st.integers(min_value=start, max_value=len(values)))
        assert list(vec.slice(start, stop)) == values[start:stop]


class TestDeltaVector:
    def test_roundtrip(self):
        arr = np.array([100, 101, 103, 103, 110], dtype=np.int64)
        vec = DeltaVector.from_plain(arr)
        assert list(vec.materialize()) == list(arr)
        assert len(vec) == 5

    def test_narrow_dtype_chosen(self):
        arr = np.arange(1000, dtype=np.int64)
        vec = DeltaVector.from_plain(arr)
        assert vec.deltas.dtype == np.int8
        assert vec.nbytes < arr.nbytes / 4

    def test_wide_deltas(self):
        arr = np.array([0, 10**12], dtype=np.int64)
        vec = DeltaVector.from_plain(arr)
        assert list(vec.materialize()) == [0, 10**12]

    def test_empty_rejected(self):
        with pytest.raises(StorageError):
            DeltaVector.from_plain(np.zeros(0, dtype=np.int64))

    @given(st.lists(st.integers(min_value=-(2**40), max_value=2**40), min_size=1, max_size=100))
    @settings(max_examples=60)
    def test_roundtrip_property(self, values):
        arr = np.asarray(values, dtype=np.int64)
        vec = DeltaVector.from_plain(arr)
        assert list(vec.materialize()) == values


class TestEncodeBest:
    def test_prefers_rle_for_runs(self):
        arr = np.repeat(np.arange(10), 50)
        assert encode_best(arr).encoding == "rle"

    def test_prefers_delta_for_monotone(self):
        arr = np.arange(0, 1000, 3, dtype=np.int64)
        assert encode_best(arr).encoding == "delta"

    def test_plain_for_random(self):
        rng = np.random.default_rng(0)
        arr = rng.integers(-(2**40), 2**40, size=500)
        assert encode_best(arr).encoding == "plain"

    def test_respects_preference(self):
        arr = np.array([1, 2, 3], dtype=np.int64)
        assert encode_best(arr, prefer="rle").encoding == "rle"
        assert encode_best(arr, prefer="plain").encoding == "plain"
        assert encode_best(arr, prefer="delta").encoding == "delta"

    def test_unknown_preference(self):
        with pytest.raises(StorageError):
            encode_best(np.array([1]), prefer="zstd")

    def test_object_arrays_stay_plain(self):
        arr = np.array(["a", "a", "a", "b"], dtype=object)
        assert encode_best(arr).encoding == "plain"

    @given(st.lists(st.integers(min_value=-100, max_value=100), min_size=0, max_size=300))
    @settings(max_examples=60)
    def test_any_choice_roundtrips(self, values):
        arr = np.asarray(values, dtype=np.int64)
        vec = encode_best(arr)
        assert list(vec.materialize()) == values
