"""TQL parser/printer/binder tests."""

import pytest

from repro.datatypes import LogicalType as L
from repro.errors import BindError, TqlParseError
from repro.tde.tql import Aggregate, Join, Select, TableScan, TopN, bind, parse_tql, to_tql
from repro.tde.tql.binder import DictCatalog

CATALOG = DictCatalog(
    {
        "Extract.flights": {
            "carrier_id": L.INT,
            "delay": L.FLOAT,
            "cancelled": L.BOOL,
            "date_": L.DATE,
        },
        "Extract.carriers": {"id": L.INT, "name": L.STR},
    }
)


class TestParse:
    def test_scan(self):
        plan = parse_tql('(scan "Extract.flights")')
        assert isinstance(plan, TableScan)
        assert plan.table == "Extract.flights"

    def test_nested(self):
        plan = parse_tql(
            '(topn 5 ((d desc)) (aggregate (carrier_id) ((d (avg delay)))'
            ' (select (not cancelled) (scan "Extract.flights"))))'
        )
        assert isinstance(plan, TopN)
        assert isinstance(plan.child, Aggregate)
        assert isinstance(plan.child.child, Select)

    def test_join_kinds(self):
        plan = parse_tql(
            '(join left ((carrier_id id)) (scan "Extract.flights") (scan "Extract.carriers"))'
        )
        assert isinstance(plan, Join)
        assert plan.kind == "left"
        with pytest.raises(TqlParseError):
            parse_tql('(join outer ((a b)) (scan "x") (scan "y"))')

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "(scan)",
            "(select (scan \"t\"))",
            "(project (a) (scan \"t\"))",
            "(aggregate (g) (scan \"t\"))",
            "(order ((a sideways)) (scan \"t\"))",
            "(topn x ((a asc)) (scan \"t\"))",
            "(limit -1)",
            "(frobnicate)",
            '(scan "a") (scan "b")',
        ],
    )
    def test_parse_errors(self, bad):
        with pytest.raises(TqlParseError):
            parse_tql(bad)


class TestRoundTrip:
    CASES = [
        '(scan "Extract.flights")',
        '(select (> delay 15) (scan "Extract.flights"))',
        '(project ((x (+ delay 1)) (y carrier_id)) (scan "Extract.flights"))',
        '(join inner ((carrier_id id)) (scan "Extract.flights") (scan "Extract.carriers"))',
        '(aggregate (carrier_id) ((n (count)) (s (sum delay))) (scan "Extract.flights"))',
        '(order ((delay desc) (carrier_id asc)) (scan "Extract.flights"))',
        '(topn 3 ((delay desc)) (scan "Extract.flights"))',
        '(limit 10 (scan "Extract.flights"))',
        '(distinct (carrier_id) (scan "Extract.flights"))',
        '(aggregate () ((n (count))) (scan "Extract.flights"))',
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_roundtrip(self, text):
        plan = parse_tql(text)
        assert to_tql(plan) == text
        assert parse_tql(to_tql(plan)) == plan


class TestBind:
    def test_join_schema_drops_right_keys(self):
        plan = parse_tql(
            '(join inner ((carrier_id id)) (scan "Extract.flights") (scan "Extract.carriers"))'
        )
        schema = bind(plan, CATALOG)
        assert "id" not in schema
        assert schema["name"] is L.STR
        assert schema["carrier_id"] is L.INT

    def test_aggregate_schema(self):
        plan = parse_tql(
            '(aggregate (carrier_id) ((n (count)) (a (avg delay))) (scan "Extract.flights"))'
        )
        assert bind(plan, CATALOG) == {"carrier_id": L.INT, "n": L.INT, "a": L.FLOAT}

    @pytest.mark.parametrize(
        "bad",
        [
            '(scan "Extract.nope")',
            '(select (+ delay 1) (scan "Extract.flights"))',  # non-BOOL predicate
            '(select (> nope 1) (scan "Extract.flights"))',
            '(project ((x delay) (x delay)) (scan "Extract.flights"))',
            '(join inner ((delay name)) (scan "Extract.flights") (scan "Extract.carriers"))',
            '(join inner () (scan "Extract.flights") (scan "Extract.carriers"))',
            '(aggregate (nope) ((n (count))) (scan "Extract.flights"))',
            '(aggregate (carrier_id) ((s (sum name)))'
            ' (join inner ((carrier_id id)) (scan "Extract.flights") (scan "Extract.carriers")))',
            '(order ((nope asc)) (scan "Extract.flights"))',
            '(topn 3 () (scan "Extract.flights"))',
            '(distinct () (scan "Extract.flights"))',
        ],
    )
    def test_bind_errors(self, bad):
        with pytest.raises(BindError):
            bind(parse_tql(bad), CATALOG)

    def test_join_collision(self):
        catalog = DictCatalog({"t1": {"k": L.INT, "v": L.INT}, "t2": {"k2": L.INT, "v": L.INT}})
        plan = parse_tql('(join inner ((k k2)) (scan "t1") (scan "t2"))')
        with pytest.raises(BindError):
            bind(plan, catalog)

    def test_streaming_classification(self):
        assert parse_tql('(scan "t")').is_streaming()
        assert parse_tql('(select true (scan "t"))').is_streaming()
        assert parse_tql('(limit 1 (scan "t"))').is_streaming()
        assert not parse_tql('(order ((a asc)) (scan "t"))').is_streaming()
        assert not parse_tql('(aggregate (a) () (scan "t"))').is_streaming()
