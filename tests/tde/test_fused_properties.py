"""Property tests for the fused pipeline and code-space kernels.

Seeded generation over the storage shapes the fused operator treats
specially — dictionary-encoded STR, RLE runs, null masks — plus the
hand-picked edge cases where per-entry/per-run evaluation could diverge
from per-row evaluation: empty inputs, all-null columns, single-run RLE,
dictionaries holding entries no surviving row references, and ±inf/NaN
flowing into MIN/MAX. Two invariant families:

* **agreement** — the fused plan (code space on) answers exactly like
  the unfused plan (code space off) on the same engine;
* **mask invariants** — ``predicate_mask`` with code-space evaluation
  enabled is positionally identical to pure row-space evaluation, and
  filtering by the mask yields exactly ``mask.sum()`` rows.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.datatypes import LogicalType as L
from repro.expr.ast import conjuncts
from repro.expr.sexpr import parse_sexpr
from repro.tde.engine import DataEngine
from repro.tde.exec.kernels import code_space_safe, predicate_mask
from repro.tde.optimizer.parallel import PlannerOptions
from repro.tde.storage.table import Table

REGIONS = ["east", "west", "north", "south"]
STATUSES = ["ok", "late", "cancelled"]

UNFUSED = PlannerOptions(
    max_dop=1,
    enable_parallel=False,
    enable_pipeline_fusion=False,
    enable_code_space=False,
    plan_cache_size=0,
)


def _engine_for(table: Table, name: str = "Extract.t") -> DataEngine:
    engine = DataEngine("props", options=PlannerOptions(max_dop=1, enable_parallel=False))
    engine.create_table(name, table)
    return engine


def _random_table(rng: random.Random, n: int) -> Table:
    data = {
        "day": sorted(rng.randrange(0, 25) for _ in range(n)),
        "region": [rng.choice(REGIONS) for _ in range(n)],
        "status": [
            None if rng.random() < 0.1 else rng.choice(STATUSES) for _ in range(n)
        ],
        "amount": [
            None if rng.random() < 0.05 else round(rng.gauss(10.0, 5.0), 3)
            for _ in range(n)
        ],
        "flag": [rng.random() < 0.5 for _ in range(n)],
    }
    types = {
        "day": L.INT,
        "region": L.STR,
        "status": L.STR,
        "amount": L.FLOAT,
        "flag": L.BOOL,
    }
    return Table.from_pydict(
        data, types=types, sort_keys=["day"], encodings={"day": "rle"}
    )


def _check_agreement(
    engine: DataEngine, query: str, *, expect_fused: bool | None = None
) -> bool:
    """Assert fused == unfused; returns whether the plan actually fused.

    ``expect_fused`` pins the planner's choice when the caller knows it
    (``None`` leaves it free — e.g. group-by on the sort key picks the
    streaming aggregate, which fusion deliberately never absorbs).
    """
    fused_plan = "FusedPipeline" in engine.explain(query)
    if expect_fused is not None:
        assert fused_plan == expect_fused, (
            f"expected fused={expect_fused}: {engine.explain(query)}"
        )
    fused = engine.query(query)
    unfused = engine.query(query, options=UNFUSED)
    assert fused.column_names == unfused.column_names
    assert fused.schema() == unfused.schema()
    assert fused.n_rows == unfused.n_rows, f"{query}: {fused.n_rows} != {unfused.n_rows}"
    for name in fused.column_names:
        a, b = fused.column(name), unfused.column(name)
        am = a.null_mask if a.null_mask is not None else np.zeros(fused.n_rows, bool)
        bm = b.null_mask if b.null_mask is not None else np.zeros(fused.n_rows, bool)
        assert np.array_equal(am, bm), f"{query}: null masks differ on {name!r}"
        av, bv = a.storage_values(), b.storage_values()
        if av.dtype.kind == "f":
            assert np.array_equal(av[~am], bv[~bm], equal_nan=True), (
                f"{query}: float values differ on {name!r}"
            )
        else:
            assert np.array_equal(av[~am], bv[~bm]), (
                f"{query}: values differ on {name!r}"
            )
    return fused_plan


# ---------------------------------------------------------------------- #
# Seeded fused-vs-unfused agreement
# ---------------------------------------------------------------------- #
_PREDICATES = [
    '(= region "east")',
    '(<> status "ok")',
    "(and (>= day 5) (< day 18))",
    "(< 3 day)",
    '(and (= region "west") (> amount 8.0))',
    "(isnull status)",
    "(not (isnull amount))",
    '(in region (list "east" "north"))',
    "(not flag)",
    "true",
]
_SHAPES = [
    "(aggregate (region) ((n (count)) (s (sum amount))) {sel})",
    # Group-by on the sorted key: the planner prefers the streaming
    # aggregate, which fusion never absorbs — agreement must still hold.
    "(aggregate (day) ((lo (min amount)) (hi (max amount))) {sel})",
    "(aggregate () ((n (count)) (u (count_distinct region))) {sel})",
    "(aggregate (status) ((a (avg amount))) {sel})",
    "(project ((r region) (a2 (* amount 2.0))) {sel})",
    "{sel}",
]


class TestSeededAgreement:
    @pytest.mark.parametrize("seed", [11, 29, 47])
    def test_random_tables_random_chains(self, seed):
        rng = random.Random(f"fused-props|{seed}")
        table = _random_table(rng, rng.randrange(50, 400))
        engine = _engine_for(table)
        fused_count = 0
        for _ in range(25):
            pred = rng.choice(_PREDICATES)
            shape = rng.choice(_SHAPES)
            sel = f'(select {pred} (scan "Extract.t"))'
            fused_count += _check_agreement(engine, shape.format(sel=sel))
        # The draw must actually exercise the fused operator, not just
        # compare stock plans against themselves.
        assert fused_count >= 6, f"only {fused_count}/25 draws produced a fused plan"


# ---------------------------------------------------------------------- #
# Edge cases
# ---------------------------------------------------------------------- #
class TestEdgeCases:
    def test_empty_input(self):
        table = Table.from_pydict(
            {"region": [], "amount": []}, types={"region": L.STR, "amount": L.FLOAT}
        )
        engine = _engine_for(table)
        for q in [
            '(aggregate (region) ((n (count))) (select (= region "east") (scan "Extract.t")))',
            '(aggregate () ((s (sum amount)) (lo (min amount))) (select (> amount 0.0) (scan "Extract.t")))',
            '(project ((a2 (+ amount 1.0))) (select (= region "east") (scan "Extract.t")))',
        ]:
            _check_agreement(engine, q)

    def test_predicate_filters_everything(self):
        rng = random.Random("all-filtered")
        engine = _engine_for(_random_table(rng, 120))
        q = (
            "(aggregate (region) ((n (count)) (s (sum amount)))"
            ' (select (= region "nowhere") (scan "Extract.t")))'
        )
        _check_agreement(engine, q)
        assert engine.query(q).n_rows == 0

    def test_all_null_column(self):
        table = Table.from_pydict(
            {"status": [None] * 40, "x": list(range(40))},
            types={"status": L.STR, "x": L.INT},
        )
        engine = _engine_for(table)
        for q in [
            '(aggregate () ((n (count))) (select (= status "ok") (scan "Extract.t")))',
            "(aggregate (status) ((n (count))) (select (isnull status) (scan \"Extract.t\")))",
            "(aggregate () ((n (count))) (select (not (isnull status)) (scan \"Extract.t\")))",
        ]:
            _check_agreement(engine, q)

    def test_single_run_rle(self):
        table = Table.from_pydict(
            {"day": [7] * 64, "amount": [float(i) for i in range(64)]},
            types={"day": L.INT, "amount": L.FLOAT},
            sort_keys=["day"],
            encodings={"day": "rle"},
        )
        engine = _engine_for(table)
        for pred in ["(= day 7)", "(= day 8)", "(< day 9)", "(< 6 day)"]:
            # Global aggregate (not grouped by the sort key) so the plan
            # fuses and the predicate runs per-RLE-run in table mode.
            # ``(= day 8)`` matches nothing: the planner serves it via the
            # RLE index instead, which fusion does not absorb — agreement
            # must hold either way.
            q = f'(aggregate () ((s (sum amount)) (n (count))) (select {pred} (scan "Extract.t")))'
            _check_agreement(engine, q, expect_fused=(pred != "(= day 8)"))

    def test_dictionary_with_unused_entries(self):
        """Filtering keeps the full dictionary (``Column.take``), so the
        fused code-space verdict covers entries no row references."""
        rng = random.Random("unused-entries")
        base = _random_table(rng, 200)
        keep = np.array([r != "east" for r in base.column("region").python_values()])
        subset = base.filter(keep)
        assert "east" in list(subset.column("region").dictionary.values)
        engine = _engine_for(subset)
        for pred in ['(= region "east")', '(<> region "east")', '(in region (list "east" "west"))']:
            q = f'(aggregate (region) ((n (count))) (select {pred} (scan "Extract.t")))'
            _check_agreement(engine, q)

    def test_nan_and_inf_through_minmax(self):
        values = [1.5, float("inf"), -2.0, float("-inf"), 3.25, float("nan"), 0.0, 9.5]
        table = Table.from_pydict(
            {"g": ["a", "a", "b", "b", "a", "b", "a", "b"], "v": values},
            types={"g": L.STR, "v": L.FLOAT},
        )
        engine = _engine_for(table)
        for q in [
            '(aggregate (g) ((lo (min v)) (hi (max v))) (select (<> g "zzz") (scan "Extract.t")))',
            '(aggregate () ((lo (min v)) (hi (max v)) (s (sum v))) (select (= g "a") (scan "Extract.t")))',
        ]:
            _check_agreement(engine, q)
        out = engine.query(
            '(aggregate () ((hi (max v))) (select (= g "a") (scan "Extract.t")))'
        )
        assert out.to_rows()[0][0] == float("inf")


# ---------------------------------------------------------------------- #
# Join-miss padding (regression for the object-dtype fill asymmetry)
# ---------------------------------------------------------------------- #
class TestJoinMissPadding:
    """Left-join misses pad the right side with ``fill_array`` slots under
    an all-true null mask. The STR fill used to come from ``np.full``,
    which interns a fixed-width ``<U`` dtype while every live STR column
    carries ``object`` — the two arms then disagreed on ``storage_values``
    dtype even though the logical values matched. Pin the padded columns
    byte-identical across fused/unfused plans."""

    def _engine(self) -> DataEngine:
        engine = DataEngine(
            "joins", options=PlannerOptions(max_dop=1, enable_parallel=False)
        )
        engine.load_pydict(
            "Extract.orders",
            {
                "oid": [1, 2, 3, 4, 5, 6],
                "cid": [10, 10, 11, 99, 98, 11],  # 99/98 have no customer
                "amount": [5.0, 7.5, 1.25, 3.0, 2.0, 9.0],
            },
        )
        engine.load_pydict(
            "Extract.customers",
            {
                "id": [10, 11, 12],
                "cname": ["ada", "bob", "cyd"],
                "tier": ["gold", None, "silver"],
            },
        )
        return engine

    def test_str_padding_is_byte_identical_across_arms(self):
        engine = self._engine()
        q = (
            "(join left ((cid id))"
            ' (scan "Extract.orders") (scan "Extract.customers"))'
        )
        _check_agreement(engine, q)
        out = engine.query(q)
        miss = np.asarray(
            [c in (99, 98) for c in out.column("cid").python_values()]
        )
        for name in ("cname", "tier"):
            col = out.column(name)
            assert col.storage_values().dtype == np.dtype(object)
            assert col.null_mask is not None
            assert col.null_mask[miss].all(), f"{name}: miss rows must be NULL"
            # The unobservable fill slot is the canonical "" sentinel.
            assert all(v == "" for v in col.storage_values()[miss])

    def test_padding_under_a_fused_aggregate(self):
        """A fused chain above the join consumes the padded batch: the
        NULL padding must not leak into group keys or aggregates."""
        engine = self._engine()
        q = (
            "(aggregate (cname) ((n (count)) (s (sum amount)))"
            ' (select (> amount 1.0)'
            " (join left ((cid id))"
            ' (scan "Extract.orders") (scan "Extract.customers"))))'
        )
        _check_agreement(engine, q)
        rows = dict(
            (name, (n, s))
            for name, n, s in engine.query(q).to_rows()
        )
        assert rows["ada"] == (2, 12.5)
        assert rows["bob"] == (2, 10.25)
        assert rows[None] == (2, 5.0)  # the two join misses group together


# ---------------------------------------------------------------------- #
# Mask / selectivity invariants
# ---------------------------------------------------------------------- #
class TestMaskInvariants:
    @pytest.mark.parametrize("seed", [5, 17])
    def test_code_space_mask_equals_row_space_mask(self, seed):
        rng = random.Random(f"mask-props|{seed}")
        table = _random_table(rng, 256)
        for text in _PREDICATES:
            conjs = conjuncts(parse_sexpr(text))
            fast = predicate_mask(table, conjs, cache={}, code_space=True)
            slow = predicate_mask(table, conjs, cache={}, code_space=False)
            assert fast.dtype == np.bool_ and slow.dtype == np.bool_
            assert len(fast) == table.n_rows
            assert np.array_equal(fast, slow), f"mask divergence for {text}"
            # Selectivity invariant: the mask is exactly the row count
            # of the filtered table.
            assert table.filter(fast).n_rows == int(fast.sum())

    def test_code_space_safety_classifier(self):
        assert code_space_safe(parse_sexpr('(= region "east")'))
        assert code_space_safe(parse_sexpr("(< day 5)"))
        assert not code_space_safe(parse_sexpr("(isnull status)"))
        assert not code_space_safe(parse_sexpr('(ifnull status "x")'))
        assert not code_space_safe(
            parse_sexpr('(case (when flag "y") (else "n"))')
        )

    def test_null_rows_never_survive_code_space_conjuncts(self):
        rng = random.Random("null-rows")
        table = _random_table(rng, 300)
        status = table.column("status")
        assert status.null_mask is not None and status.null_mask.any()
        conjs = conjuncts(parse_sexpr('(<> status "ok")'))
        mask = predicate_mask(table, conjs, cache={}, code_space=True)
        assert not (mask & status.null_mask).any()
