"""Tests for Column and Table (nulls, collation, sorting, concat)."""

import datetime as dt

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collation import CASE_INSENSITIVE
from repro.datatypes import LogicalType
from repro.errors import StorageError
from repro.tde.storage import Column, Table


class TestColumn:
    def test_from_values_infers_type(self):
        col = Column.from_values([1, 2, None])
        assert col.ltype is LogicalType.INT
        assert col.python_values() == [1, 2, None]

    def test_all_null_rejected(self):
        with pytest.raises(StorageError):
            Column.from_values([None, None])

    def test_explicit_type_for_all_null(self):
        col = Column.from_values([None, None], LogicalType.FLOAT)
        assert col.python_values() == [None, None]

    def test_strings_dictionary_compressed_by_default(self):
        col = Column.from_values(["a", "b", "a"])
        assert col.is_dictionary_encoded
        assert len(col.dictionary) == 2

    def test_dates_roundtrip(self):
        days = [dt.date(2014, 1, 1), None, dt.date(2015, 6, 30)]
        col = Column.from_values(days)
        assert col.ltype is LogicalType.DATE
        assert col.python_values() == days

    def test_datetimes_roundtrip(self):
        stamps = [dt.datetime(2014, 1, 1, 12, 30, 15), dt.datetime(2014, 1, 2, 0, 0, 0, 250)]
        col = Column.from_values(stamps)
        assert col.ltype is LogicalType.DATETIME
        assert col.python_values() == stamps

    def test_take_preserves_nulls_and_dict(self):
        col = Column.from_values(["x", None, "y", "x"])
        taken = col.take(np.array([3, 1]))
        assert taken.python_values() == ["x", None]
        assert taken.is_dictionary_encoded

    def test_slice(self):
        col = Column.from_values([10, 20, 30, 40])
        assert col.slice(1, 3).python_values() == [20, 30]

    def test_value_at(self):
        col = Column.from_values([1.5, None])
        assert col.value_at(0) == 1.5
        assert col.value_at(1) is None

    def test_stats(self):
        col = Column.from_values([3, 1, 1, None, 2])
        st_ = col.stats
        assert st_.null_count == 1
        assert st_.n_distinct == 3  # NULL slots are excluded
        assert st_.min_value == 1
        assert st_.max_value == 3
        assert not st_.is_sorted

    def test_stats_sorted(self):
        col = Column.from_values([1, 2, 3])
        assert col.stats.is_sorted
        assert col.stats.min_value == 1
        assert col.stats.max_value == 3

    def test_equals(self):
        assert Column.from_values([1, None]).equals(Column.from_values([1, None]))
        assert not Column.from_values([1]).equals(Column.from_values([2]))
        assert not Column.from_values([1]).equals(Column.from_values([1.0]))

    def test_mask_length_mismatch(self):
        from repro.tde.storage.vectors import PlainVector

        with pytest.raises(StorageError):
            Column(
                LogicalType.INT,
                PlainVector(np.array([1, 2])),
                null_mask=np.array([True]),
            )


class TestTable:
    def test_ragged_rejected(self):
        with pytest.raises(StorageError):
            Table.from_pydict({"a": [1, 2], "b": [1]})

    def test_project_and_drop(self):
        t = Table.from_pydict({"a": [1], "b": [2], "c": [3]})
        assert t.project(["c", "a"]).column_names == ["c", "a"]
        assert t.drop(["b"]).column_names == ["a", "c"]

    def test_project_keeps_contiguous_sort_prefix(self):
        t = Table.from_pydict({"a": [1], "b": [2], "c": [3]}, sort_keys=["a", "b"])
        assert t.project(["a", "c"]).sort_keys == ("a",)
        assert t.project(["b", "c"]).sort_keys == ()

    def test_rename(self):
        t = Table.from_pydict({"a": [1]}, sort_keys=["a"])
        renamed = t.rename({"a": "x"})
        assert renamed.column_names == ["x"]
        assert renamed.sort_keys == ("x",)

    def test_rename_collision(self):
        t = Table.from_pydict({"a": [1], "b": [2]})
        with pytest.raises(StorageError):
            t.rename({"a": "b"})

    def test_with_column_length_check(self):
        t = Table.from_pydict({"a": [1, 2]})
        with pytest.raises(StorageError):
            t.with_column("b", Column.from_values([1]))

    def test_sort_nulls_first_both_directions(self):
        t = Table.from_pydict({"a": [2, None, 1]})
        assert t.sort_by([("a", True)]).to_pydict()["a"] == [None, 1, 2]
        assert t.sort_by([("a", False)]).to_pydict()["a"] == [None, 2, 1]

    def test_sort_multi_key_stable(self):
        t = Table.from_pydict({"g": [1, 1, 0, 0], "v": [9, 8, 7, 6], "tag": list("abcd")})
        out = t.sort_by([("g", True), ("v", True)])
        assert out.to_pydict()["tag"] == ["d", "c", "b", "a"]

    def test_sort_strings_with_collation(self):
        t = Table.from_pydict(
            {"s": ["b", "A", "a", "B"]}, collations={"s": CASE_INSENSITIVE}
        )
        # CI collation groups case variants under one representative.
        out = t.sort_by([("s", True)]).to_pydict()["s"]
        assert [v.lower() for v in out] == ["a", "a", "b", "b"]

    def test_sort_uncompressed_strings_desc(self):
        t = Table.from_pydict({"s": ["b", "a", "c"]}, compress=False)
        assert t.sort_by([("s", False)]).to_pydict()["s"] == ["c", "b", "a"]

    def test_concat(self):
        a = Table.from_pydict({"x": [1, None], "s": ["p", "q"]})
        b = Table.from_pydict({"x": [3], "s": [None]}, types={"s": LogicalType.STR})
        out = Table.concat([a, b])
        assert out.to_pydict() == {"x": [1, None, 3], "s": ["p", "q", None]}

    def test_concat_schema_mismatch(self):
        a = Table.from_pydict({"x": [1]})
        b = Table.from_pydict({"y": [1]})
        with pytest.raises(StorageError):
            Table.concat([a, b])

    def test_equals_unordered(self):
        a = Table.from_pydict({"x": [1, 2], "y": ["a", "b"]})
        b = Table.from_pydict({"x": [2, 1], "y": ["b", "a"]})
        assert a.equals_unordered(b)
        assert not a.equals(b)

    def test_approx_equals_tolerates_float_noise(self):
        a = Table.from_pydict({"x": [0.1 + 0.2]})
        b = Table.from_pydict({"x": [0.3]})
        assert a.approx_equals(b)
        assert not a.equals(b)

    def test_approx_equals_rejects_real_difference(self):
        a = Table.from_pydict({"x": [1.0]})
        b = Table.from_pydict({"x": [1.1]})
        assert not a.approx_equals(b)

    def test_to_rows(self):
        t = Table.from_pydict({"a": [1, 2], "b": ["x", "y"]})
        assert t.to_rows() == [(1, "x"), (2, "y")]

    def test_bad_sort_key_rejected(self):
        with pytest.raises(StorageError):
            Table.from_pydict({"a": [1]}, sort_keys=["nope"])


@given(
    st.lists(
        st.one_of(st.integers(min_value=-50, max_value=50), st.none()),
        min_size=1,
        max_size=80,
    )
)
@settings(max_examples=50)
def test_sort_property_matches_python(values):
    t = Table.from_pydict({"a": values}, types={"a": LogicalType.INT})
    out = t.sort_by([("a", True)]).to_pydict()["a"]
    expected = sorted(values, key=lambda v: (v is not None, v if v is not None else 0))
    assert out == expected


@given(
    st.lists(st.integers(min_value=0, max_value=9), min_size=0, max_size=60),
    st.integers(min_value=1, max_value=5),
)
@settings(max_examples=40)
def test_slice_concat_roundtrip(values, parts):
    if not values:
        return
    t = Table.from_pydict({"a": values})
    bounds = np.linspace(0, len(values), parts + 1).astype(int)
    pieces = [t.slice(int(bounds[i]), int(bounds[i + 1])) for i in range(parts)]
    assert Table.concat(pieces).to_pydict()["a"] == values
