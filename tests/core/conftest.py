"""Core-layer fixtures: a shared backend + helpers to evaluate specs."""

import datetime as dt

import pytest

from repro.connectors import SimDbDataSource, SimulatedDatabase
from repro.connectors.simdb import ServerProfile
from repro.core.pipeline import PipelineOptions, QueryPipeline
from repro.expr.ast import AggExpr, ColumnRef
from repro.queries import DataSourceModel, JoinSpec, QuerySpec
from tests.conftest import build_flights_engine

ENGINE = build_flights_engine(n=4000, seed=21)

COUNT = AggExpr("count")
SUM_DELAY = AggExpr("sum", ColumnRef("delay"))
AVG_DELAY = AggExpr("avg", ColumnRef("delay"))
MIN_DELAY = AggExpr("min", ColumnRef("delay"))
DISTINCT_MARKETS = AggExpr("count_distinct", ColumnRef("market_id"))


def make_source(**profile_kwargs) -> SimDbDataSource:
    profile = ServerProfile(time_scale=0, **profile_kwargs)
    db = SimulatedDatabase("warehouse", profile)
    for s, t, tab in ENGINE.database.iter_tables():
        db.load_table(f"{s}.{t}", tab)
    return SimDbDataSource(db)


def make_model() -> DataSourceModel:
    return DataSourceModel(
        "faa",
        "Extract.flights",
        joins=(
            JoinSpec("Extract.carriers", (("carrier_id", "id"),)),
            JoinSpec("Extract.markets", (("market_id", "mid"),)),
        ),
    )


@pytest.fixture()
def source():
    return make_source()


@pytest.fixture()
def model():
    return make_model()


@pytest.fixture()
def raw_pipeline(source, model):
    """A pipeline with every optimization off — the reference oracle."""
    return QueryPipeline(
        source,
        model,
        options=PipelineOptions(
            enable_intelligent_cache=False,
            enable_literal_cache=False,
            enable_fusion=False,
            enable_batch_graph=False,
            enrich_for_reuse=False,
            concurrent=False,
        ),
    )


def spec(**kwargs) -> QuerySpec:
    return QuerySpec("faa", **kwargs)
