"""Single-flight coalescing: registry semantics and the pipeline herd path.

The registry's contract: one leader per canonical key, followers share
the leader's *fresh* result (exact joins directly, subsumption joins via
a local post-op derivation), failures propagate so followers recover on
their own, and every wait is bounded by a timeout.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.core.coalesce import CoalesceTimeoutError, SingleFlightRegistry
from repro.core.pipeline import PipelineOptions, QueryPipeline
from repro.errors import SourceUnavailableError
from repro.queries.postops import apply_post_ops
from repro.queries.spec import CategoricalFilter
from tests.core.conftest import AVG_DELAY, COUNT, SUM_DELAY, make_model, make_source, spec

WIDE = spec(
    dimensions=("name", "market_id"),
    measures=(("n", COUNT), ("s", SUM_DELAY)),
)
NARROW = spec(dimensions=("name",), measures=(("n", COUNT),))
OTHER = spec(dimensions=("market",), measures=(("a", AVG_DELAY),))


class TestRegistry:
    def test_first_caller_leads(self):
        reg = SingleFlightRegistry("test")
        flight, ticket = reg.lead_or_join(WIDE)
        assert flight is not None and ticket is None
        assert reg.in_flight() == 1
        reg.publish(flight, "table")
        assert reg.in_flight() == 0

    def test_exact_join_shares_published_result(self):
        reg = SingleFlightRegistry("test")
        flight, _ = reg.lead_or_join(WIDE)
        _none, ticket = reg.lead_or_join(WIDE)
        assert _none is None and ticket is not None
        assert not ticket.subsumed and ticket.post_ops == ()
        followers = reg.publish(flight, "answer")
        assert followers == 1
        outcome = ticket.wait(1.0)
        assert outcome.ok and outcome.table == "answer"

    def test_subsumption_join_carries_post_ops(self):
        reg = SingleFlightRegistry("test")
        flight, _ = reg.lead_or_join(WIDE)
        _none, ticket = reg.lead_or_join(NARROW)
        assert ticket is not None and ticket.subsumed
        assert ticket.post_ops  # roll-up from the wider grain
        assert ticket.leader_key == WIDE.canonical()
        reg.publish(flight, "wide-table")
        assert ticket.wait(1.0).table == "wide-table"

    def test_subsumption_can_be_disabled(self):
        reg = SingleFlightRegistry("test")
        reg.lead_or_join(WIDE)
        flight, ticket = reg.lead_or_join(NARROW, subsume=False)
        assert flight is not None and ticket is None

    def test_unrelated_spec_leads_its_own_flight(self):
        reg = SingleFlightRegistry("test")
        reg.lead_or_join(WIDE)
        flight, ticket = reg.lead_or_join(OTHER)
        assert flight is not None and ticket is None
        assert reg.in_flight() == 2

    def test_failure_propagates_error_not_result(self):
        reg = SingleFlightRegistry("test")
        flight, _ = reg.lead_or_join(WIDE)
        _none, ticket = reg.lead_or_join(WIDE)
        reg.fail(flight, SourceUnavailableError("backend died"))
        outcome = ticket.wait(1.0)
        assert not outcome.ok
        assert isinstance(outcome.error, SourceUnavailableError)
        # The key is free again: the next caller leads a fresh flight.
        flight2, ticket2 = reg.lead_or_join(WIDE)
        assert flight2 is not None and ticket2 is None
        reg.publish(flight2, "recovered")

    def test_wait_timeout(self):
        reg = SingleFlightRegistry("test")
        reg.lead_or_join(WIDE)
        _none, ticket = reg.lead_or_join(WIDE)
        outcome = ticket.wait(0.01)
        assert not outcome.ok
        assert isinstance(outcome.error, CoalesceTimeoutError)

    def test_exclude_prevents_subsumption_join(self):
        """A batch must not wait on its own flights for derivable specs."""
        reg = SingleFlightRegistry("test")
        reg.lead_or_join(WIDE)
        flight, ticket = reg.lead_or_join(
            NARROW, exclude=frozenset({WIDE.canonical()})
        )
        assert flight is not None and ticket is None  # led, not joined

    def test_exact_join_ignores_exclude(self):
        """Duplicate keys always join: re-leading would orphan the flight."""
        reg = SingleFlightRegistry("test")
        flight, _ = reg.lead_or_join(WIDE)
        _none, ticket = reg.lead_or_join(
            WIDE, exclude=frozenset({WIDE.canonical()})
        )
        assert ticket is not None
        reg.publish(flight, "t")
        assert ticket.wait(1.0).table == "t"

    def test_peek_is_side_effect_free(self):
        reg = SingleFlightRegistry("test")
        assert reg.peek(WIDE) is None
        flight, _ = reg.lead_or_join(WIDE)
        ticket = reg.peek(NARROW)
        assert ticket is not None and ticket.subsumed
        assert flight.followers == 0  # peek never joins
        reg.publish(flight, "t")

    def test_late_joiner_races_completion_safely(self):
        """A ticket taken just before publish still resolves correctly."""
        reg = SingleFlightRegistry("test")
        flight, _ = reg.lead_or_join(WIDE)
        _none, ticket = reg.lead_or_join(WIDE)
        reg.publish(flight, "t")
        # The flight is out of the registry but the ticket still works.
        assert ticket.wait(0.0).table == "t"

    def test_snapshot_counts(self):
        reg = SingleFlightRegistry("kv")
        flight, _ = reg.lead_or_join(WIDE)
        reg.lead_or_join(WIDE)
        reg.lead_or_join(NARROW)
        snap = reg.snapshot()
        assert snap["name"] == "kv"
        assert snap["leads"] == 1
        assert snap["exact_joins"] == 1
        assert snap["subsumed_joins"] == 1
        assert snap["in_flight"] == {WIDE.canonical(): 2}
        reg.publish(flight, "t")
        assert reg.snapshot()["published"] == 1


# ---------------------------------------------------------------------- #
# Deterministic cross-thread scenarios via a gated source
# ---------------------------------------------------------------------- #
class GatedSource:
    """Wraps a source so remote executes block until ``gate`` is set.

    ``started`` fires when the first execute begins, letting the test
    thread register followers while the leader is provably in flight.
    """

    def __init__(self, inner, *, fail_with: Exception | None = None):
        self._inner = inner
        self.gate = threading.Event()
        self.started = threading.Event()
        self.fail_with = fail_with

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def connect(self):
        conn = self._inner.connect()
        inner_driver = conn.driver
        outer = self

        class _GatedDriver:
            def execute(self, text):
                outer.started.set()
                assert outer.gate.wait(10.0), "test gate never opened"
                if outer.fail_with is not None:
                    raise outer.fail_with
                return inner_driver.execute(text)

            def __getattr__(self, name):
                return getattr(inner_driver, name)

        conn.driver = _GatedDriver()
        return conn


def _pipeline(source=None, *, coalescer=None, **overrides):
    options = dict(
        enable_intelligent_cache=False,
        enable_literal_cache=False,
        enrich_for_reuse=False,
        coalesce_wait_timeout_s=10.0,
    )
    options.update(overrides)
    return QueryPipeline(
        source or make_source(),
        make_model(),
        options=PipelineOptions(**options),
        coalescer=coalescer,
    )


class TestPipelineCoalescing:
    def test_herd_of_identical_batches_executes_once(self):
        pipeline = _pipeline()
        herd = 8
        barrier = threading.Barrier(herd)

        def request(_i):
            barrier.wait()
            return pipeline.run_batch([NARROW])

        with ThreadPoolExecutor(max_workers=herd) as tp:
            results = list(tp.map(request, range(herd)))

        remote = sum(r.remote_queries for r in results)
        coalesced = sum(r.coalesced_hits for r in results)
        assert remote + coalesced == herd
        assert remote >= 1 and coalesced >= 1  # at least one herd formed
        reference = results[0].tables[NARROW.canonical()]
        for result in results:
            assert result.ok
            assert result.tables[NARROW.canonical()].equals_unordered(reference)

    def test_follower_waits_on_provably_inflight_leader(self):
        source = GatedSource(make_source())
        registry = SingleFlightRegistry("warehouse")
        leader_pipe = _pipeline(source, coalescer=registry)
        follower_pipe = _pipeline(source, coalescer=registry)

        leader_result = {}
        leader_thread = threading.Thread(
            target=lambda: leader_result.update(r=leader_pipe.run_batch([NARROW]))
        )
        leader_thread.start()
        assert source.started.wait(10.0)

        follower_done = {}
        follower_thread = threading.Thread(
            target=lambda: follower_done.update(r=follower_pipe.run_batch([NARROW]))
        )
        follower_thread.start()
        # The follower has joined (not led) once the registry shows it.
        _wait_until(lambda: registry.stats.exact_joins == 1)
        source.gate.set()
        leader_thread.join(10.0)
        follower_thread.join(10.0)

        assert leader_result["r"].remote_queries == 1
        follower = follower_done["r"]
        assert follower.remote_queries == 0
        assert follower.coalesced_hits == 1
        assert follower.coalesce_wait_s >= 0.0
        assert follower.tables[NARROW.canonical()].equals_unordered(
            leader_result["r"].tables[NARROW.canonical()]
        )

    def test_subsumed_follower_derives_locally(self):
        source = GatedSource(make_source())
        registry = SingleFlightRegistry("warehouse")
        leader_pipe = _pipeline(source, coalescer=registry)
        follower_pipe = _pipeline(source, coalescer=registry)

        leader_out = {}
        leader = threading.Thread(
            target=lambda: leader_out.update(r=leader_pipe.run_batch([WIDE]))
        )
        leader.start()
        assert source.started.wait(10.0)

        follower_out = {}
        follower = threading.Thread(
            target=lambda: follower_out.update(r=follower_pipe.run_batch([NARROW]))
        )
        follower.start()
        _wait_until(lambda: registry.stats.subsumed_joins == 1)
        source.gate.set()
        leader.join(10.0)
        follower.join(10.0)

        result = follower_out["r"]
        assert result.remote_queries == 0
        assert result.coalesced_hits == 1
        # The local derivation equals a direct evaluation of the spec.
        oracle = _pipeline().run_spec(NARROW)
        assert result.tables[NARROW.canonical()].equals_unordered(oracle)

    def test_follower_populates_its_own_intelligent_cache(self):
        """A coalesced answer warms the follower node's semantic cache."""
        source = GatedSource(make_source())
        registry = SingleFlightRegistry("warehouse")
        leader_pipe = _pipeline(
            source, coalescer=registry, enable_intelligent_cache=True
        )
        follower_pipe = _pipeline(
            source, coalescer=registry, enable_intelligent_cache=True
        )

        leader = threading.Thread(target=lambda: leader_pipe.run_batch([WIDE]))
        leader.start()
        assert source.started.wait(10.0)
        follower_out = {}
        follower = threading.Thread(
            target=lambda: follower_out.update(r=follower_pipe.run_batch([NARROW]))
        )
        follower.start()
        _wait_until(lambda: registry.stats.joins == 1)
        source.gate.set()
        leader.join(10.0)
        follower.join(10.0)
        assert follower_out["r"].coalesced_hits == 1

        # Next narrow request on the follower node: pure cache hit.
        repeat = follower_pipe.run_batch([NARROW])
        assert repeat.cache_hits == 1
        assert repeat.remote_queries == 0

    def test_disabled_coalescing_never_joins(self):
        pipeline = _pipeline(enable_coalescing=False)
        herd = 4
        barrier = threading.Barrier(herd)

        def request(_i):
            barrier.wait()
            return pipeline.run_batch([NARROW])

        with ThreadPoolExecutor(max_workers=herd) as tp:
            results = list(tp.map(request, range(herd)))
        assert sum(r.coalesced_hits for r in results) == 0
        assert pipeline.coalescer.stats.leads == 0

    def test_explain_reports_inflight_coalesce(self):
        source = GatedSource(make_source())
        registry = SingleFlightRegistry("warehouse")
        pipeline = _pipeline(source, coalescer=registry)
        leader = threading.Thread(target=lambda: pipeline.run_batch([WIDE]))
        leader.start()
        assert source.started.wait(10.0)
        try:
            explain_pipe = _pipeline(make_source(), coalescer=registry)
            exact = explain_pipe.explain_batch([WIDE])[0]
            assert "in-flight leader" in exact.get("coalesce", "")
            derived = explain_pipe.explain_batch([NARROW])[0]
            assert "subsumed" in derived.get("coalesce", "")
        finally:
            source.gate.set()
            leader.join(10.0)

    def test_subsumption_post_ops_match_cache_derivation(self):
        """The coalesce derivation is literally the cache's proof."""
        narrowed = spec(
            dimensions=("name",),
            measures=(("n", COUNT),),
            filters=(CategoricalFilter("market_id", (0, 1)),),
        )
        registry = SingleFlightRegistry("warehouse")
        flight, _ = registry.lead_or_join(WIDE)
        _none, ticket = registry.lead_or_join(narrowed)
        assert ticket is not None and ticket.subsumed
        wide_table = _pipeline().run_spec(WIDE)
        registry.publish(flight, wide_table)
        derived = apply_post_ops(ticket.wait(1.0).table, ticket.post_ops)
        oracle = _pipeline().run_spec(narrowed)
        assert derived.equals_unordered(oracle)


def _wait_until(predicate, timeout_s: float = 10.0) -> None:
    import time

    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached before timeout")
        time.sleep(0.001)


class TestHerdOverVizServer:
    def test_k_viewers_one_backend_execution(self):
        from repro.connectors import SimDbDataSource
        from repro.connectors.simdb import ServerProfile
        from repro.core.cache.distributed import KeyValueStore
        from repro.workloads import fig2_dashboard, flights_model, generate_flights
        from repro.server import VizServer

        dataset = generate_flights(2000, seed=23)
        db = dataset.load_into_simdb(ServerProfile(work_unit_time_s=2e-6))
        server = VizServer(
            3,
            SimDbDataSource(db),
            flights_model(),
            store=KeyValueStore(latency_s=0.0),
        )
        server.register_dashboard(fig2_dashboard())

        herd = 8
        barrier = threading.Barrier(herd)

        def view(i):
            barrier.wait()
            return server.load(f"viewer{i}", "market-carrier-airline")

        with ThreadPoolExecutor(max_workers=herd) as tp:
            results = list(tp.map(view, range(herd)))

        # Every viewer rendered every zone, identically.
        reference = results[0][1].zone_tables
        for _node, render in results:
            assert not render.degraded
            assert render.zone_tables.keys() == reference.keys()
            for zone, table in render.zone_tables.items():
                assert table.equals_unordered(reference[zone])
        # The herd coalesced: the cluster observed joins, and the backend
        # saw far fewer queries than viewers x zones.
        summary = server.cache_summary()
        assert summary["coalesce_joins"] > 0
        assert db.stats.queries < herd * len(reference)
