"""Query fusion and batch-graph tests (paper 3.3, 3.4)."""

import pytest

from repro.core.batch import build_batch_graph
from repro.core.fusion import fuse_batch
from repro.queries import CategoricalFilter
from repro.queries.postops import apply_post_ops
from tests.core.conftest import AVG_DELAY, COUNT, MIN_DELAY, SUM_DELAY, spec


class TestFusion:
    def test_same_relation_fuses(self):
        a = spec(dimensions=("name",), measures=(("n", COUNT),))
        b = spec(dimensions=("name",), measures=(("s", SUM_DELAY),))
        fused = fuse_batch([a, b])
        assert len(fused) == 1
        assert len(fused[0].spec.measures) == 2
        assert set(fused[0].extract_ops) == {a.canonical(), b.canonical()}

    def test_shared_measures_deduplicated(self):
        a = spec(dimensions=("name",), measures=(("n", COUNT), ("s", SUM_DELAY)))
        b = spec(dimensions=("name",), measures=(("total", SUM_DELAY),))
        fused = fuse_batch([a, b])
        assert len(fused) == 1
        assert len(fused[0].spec.measures) == 2  # SUM shared

    def test_different_filters_do_not_fuse(self):
        a = spec(dimensions=("name",), measures=(("n", COUNT),))
        b = a.with_filters((CategoricalFilter("market_id", (1,)),))
        assert len(fuse_batch([a, b])) == 2

    def test_different_dims_do_not_fuse(self):
        a = spec(dimensions=("name",), measures=(("n", COUNT),))
        b = spec(dimensions=("market",), measures=(("n", COUNT),))
        assert len(fuse_batch([a, b])) == 2

    def test_disabled(self):
        a = spec(dimensions=("name",), measures=(("n", COUNT),))
        b = spec(dimensions=("name",), measures=(("s", SUM_DELAY),))
        assert len(fuse_batch([a, b], enabled=False)) == 2

    def test_extraction_recovers_members(self, raw_pipeline):
        a = spec(dimensions=("name",), measures=(("n", COUNT),), order_by=(("n", False),))
        b = spec(dimensions=("name",), measures=(("s", SUM_DELAY), ("lo", MIN_DELAY)))
        fused = fuse_batch([a, b])
        assert len(fused) == 1
        fused_table = raw_pipeline.run_spec(fused[0].spec)
        for member in (a, b):
            extracted = apply_post_ops(fused_table, fused[0].extract_ops[member.canonical()])
            direct = raw_pipeline.run_spec(member)
            ordered = bool(member.order_by)
            assert extracted.approx_equals(direct, ordered=ordered)

    def test_order_limit_stripped_from_fused(self):
        a = spec(dimensions=("name",), measures=(("n", COUNT),), limit=2)
        b = spec(dimensions=("name",), measures=(("s", SUM_DELAY),))
        fused = fuse_batch([a, b])
        assert len(fused) == 1
        assert fused[0].spec.limit is None
        ops = fused[0].extract_ops[a.canonical()]
        assert len(ops) == 2  # project + local topn


class TestBatchGraph:
    def test_paper_partition(self):
        """A detail query feeds roll-ups; roll-ups are local."""
        q_detail = spec(dimensions=("name", "market_id"), measures=(("n", COUNT),))
        q_rollup = spec(dimensions=("name",), measures=(("n", COUNT),))
        q_other = spec(dimensions=("date_",), measures=(("n", COUNT),))
        graph = build_batch_graph([q_detail, q_rollup, q_other])
        assert graph.remote == [0, 2]
        assert graph.local == [1]
        assert graph.provider_of[1] == 0

    def test_chain(self):
        q0 = spec(dimensions=("name", "market_id", "date_"), measures=(("n", COUNT),))
        q1 = spec(dimensions=("name", "market_id"), measures=(("n", COUNT),))
        q2 = spec(dimensions=("name",), measures=(("n", COUNT),))
        graph = build_batch_graph([q0, q1, q2])
        assert graph.remote == [0]
        assert set(graph.local) == {1, 2}
        # Both prefer the remote source as provider.
        assert graph.provider_of[1] == 0 and graph.provider_of[2] == 0

    def test_equivalent_specs_keep_one_source(self):
        a = spec(dimensions=("name",), measures=(("n", COUNT),))
        b = spec(dimensions=("name",), measures=(("m", COUNT),))  # same agg, alias differs
        graph = build_batch_graph([a, b])
        assert graph.remote == [0]
        assert graph.local == [1]

    def test_independent_queries_all_remote(self):
        qs = [
            spec(dimensions=("name",), measures=(("n", COUNT),)),
            spec(dimensions=("date_",), measures=(("n", COUNT),)),
            spec(dimensions=("market",), measures=(("n", COUNT),)),
        ]
        graph = build_batch_graph(qs)
        assert graph.remote == [0, 1, 2]
        assert graph.local == []

    def test_describe(self):
        q0 = spec(dimensions=("name", "market_id"), measures=(("n", COUNT),))
        q1 = spec(dimensions=("name",), measures=(("n", COUNT),))
        text = build_batch_graph([q0, q1]).describe()
        assert "1 remote" in text and "1 local" in text
