"""Pipeline integration tests + literal/distributed/persisted caches."""

import datetime as dt

import pytest

from repro.core.cache.distributed import (
    DistributedQueryCache,
    KeyValueStore,
    deserialize_table,
    serialize_table,
)
from repro.core.cache.literal import LiteralCache
from repro.core.cache.persistence import (
    load_intelligent_cache,
    save_intelligent_cache,
    spec_from_json,
    spec_to_json,
)
from repro.core.cache.intelligent import IntelligentCache
from repro.core.pipeline import PipelineOptions, QueryPipeline
from repro.queries import CategoricalFilter, RangeFilter, TopNFilter
from repro.tde.storage import Table
from tests.core.conftest import (
    AVG_DELAY,
    COUNT,
    DISTINCT_MARKETS,
    SUM_DELAY,
    make_model,
    make_source,
    spec,
)


class TestPipeline:
    def test_single_remote_for_fusable_batch(self, source, model):
        pipe = QueryPipeline(source, model)
        batch = [
            spec(dimensions=("name",), measures=(("n", COUNT), ("a", AVG_DELAY))),
            spec(dimensions=("name",), measures=(("s", SUM_DELAY),)),
            spec(measures=(("total", COUNT),)),
        ]
        result = pipe.run_batch(batch)
        assert result.remote_queries == 1
        assert result.fused_away == 1
        assert result.batch_local == 1
        assert len(result.tables) == 3

    def test_interaction_served_from_cache(self, source, model):
        pipe = QueryPipeline(source, model)
        base = spec(
            dimensions=("name",),
            measures=(("n", COUNT),),
            filters=(CategoricalFilter("market_id", (0, 1, 2, 3)),),
        )
        pipe.run_batch([base])
        narrowed = base.with_filters((CategoricalFilter("market_id", (1, 2)),))
        result = pipe.run_batch([narrowed])
        assert result.remote_queries == 0
        assert result.cache_hits == 1

    def test_results_match_raw(self, source, model, raw_pipeline):
        pipe = QueryPipeline(source, model)
        batch = [
            spec(dimensions=("name",), measures=(("n", COUNT), ("a", AVG_DELAY))),
            spec(dimensions=("name",), measures=(("s", SUM_DELAY),)),
            spec(
                dimensions=("market",),
                measures=(("n", COUNT),),
                filters=(TopNFilter("market", COUNT, 3),),
                order_by=(("n", False),),
            ),
            spec(
                dimensions=("date_",),
                measures=(("n", COUNT),),
                filters=(RangeFilter("date_", dt.date(2014, 2, 1), dt.date(2014, 5, 1)),),
            ),
            spec(measures=(("u", DISTINCT_MARKETS),)),
        ]
        result = pipe.run_batch(batch)
        for s in batch:
            direct = raw_pipeline.run_spec(s)
            assert result.table_for(s).approx_equals(
                direct, ordered=bool(s.order_by), rel=1e-7, abs_tol=1e-7
            ), s.canonical()

    def test_repeat_batch_hits_everything(self, source, model):
        pipe = QueryPipeline(source, model)
        batch = [
            spec(dimensions=("name",), measures=(("n", COUNT),)),
            spec(dimensions=("market",), measures=(("n", COUNT),)),
        ]
        pipe.run_batch(batch)
        again = pipe.run_batch(batch)
        assert again.remote_queries == 0
        assert again.cache_hits == 2

    def test_literal_cache_catches_post_compile_duplicates(self, source, model):
        # Intelligent cache off: only the text-keyed cache can help.
        options = PipelineOptions(
            enable_intelligent_cache=False, enrich_for_reuse=False, enable_batch_graph=False
        )
        pipe = QueryPipeline(source, model, options=options)
        s = spec(dimensions=("name",), measures=(("n", COUNT),))
        pipe.run_batch([s])
        again = pipe.run_batch([s])
        assert again.remote_queries == 0
        assert again.literal_hits == 1

    def test_invalidate_purges(self, source, model):
        pipe = QueryPipeline(source, model)
        s = spec(dimensions=("name",), measures=(("n", COUNT),))
        pipe.run_batch([s])
        pipe.invalidate()
        result = pipe.run_batch([s])
        assert result.remote_queries == 1

    def test_everything_off_still_correct(self, source, model, raw_pipeline):
        s = spec(dimensions=("name",), measures=(("a", AVG_DELAY),))
        direct = raw_pipeline.run_spec(s)
        assert raw_pipeline.run_spec(s).approx_equals(direct, ordered=False)

    def test_duplicate_specs_in_batch(self, source, model):
        pipe = QueryPipeline(source, model)
        s = spec(dimensions=("name",), measures=(("n", COUNT),))
        result = pipe.run_batch([s, s, s])
        assert result.remote_queries == 1
        assert len(result.tables) == 1


class TestLiteralCache:
    def test_hit_miss(self):
        cache = LiteralCache()
        table = Table.from_pydict({"a": [1]})
        assert cache.get("k") is None
        cache.put("k", "ds", table)
        assert cache.get("k").equals(table)
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_invalidate(self):
        cache = LiteralCache()
        cache.put("k1", "ds1", Table.from_pydict({"a": [1]}))
        cache.put("k2", "ds2", Table.from_pydict({"a": [2]}))
        assert cache.invalidate("ds1") == 1
        assert len(cache) == 1


class TestDistributedCache:
    def test_serialization_roundtrip(self):
        table = Table.from_pydict({"a": [1, None], "s": ["x", "y"]})
        assert deserialize_table(serialize_table(table)).equals(table)

    def test_l1_over_l2(self):
        store = KeyValueStore(latency_s=0.0)
        node_a = DistributedQueryCache(store, "a")
        node_b = DistributedQueryCache(store, "b")
        table = Table.from_pydict({"a": [1]})
        node_a.put("k", table)
        # Node B was never warmed locally; the shared store serves it.
        assert node_b.get("k").equals(table)
        assert node_b.l2_hits == 1
        # Second read on B comes from its own L1.
        assert node_b.get("k").equals(table)
        assert node_b.l1_hits == 1
        # Node A reads from its L1 directly.
        assert node_a.get("k").equals(table)
        assert node_a.l1_hits == 1

    def test_l1_disabled(self):
        store = KeyValueStore(latency_s=0.0)
        node = DistributedQueryCache(store, "a", use_l1=False)
        node.put("k", Table.from_pydict({"a": [1]}))
        node.get("k")
        node.get("k")
        assert node.l1_hits == 0 and node.l2_hits == 2

    def test_miss(self):
        node = DistributedQueryCache(KeyValueStore(latency_s=0.0), "a")
        assert node.get("nope") is None
        assert node.misses == 1


class TestPersistence:
    def test_spec_json_roundtrip(self):
        s = spec(
            dimensions=("name",),
            measures=(("a", AVG_DELAY), ("u", DISTINCT_MARKETS)),
            filters=(
                CategoricalFilter("market_id", (1, 2)),
                RangeFilter("date_", dt.date(2014, 1, 1), dt.date(2015, 1, 1)),
                TopNFilter("name", COUNT, 5),
                CategoricalFilter("code", ("AA",), exclude=True),
            ),
            order_by=(("a", False),),
            limit=7,
        )
        assert spec_from_json(spec_to_json(s)) == s

    def test_save_load(self, tmp_path, source, model):
        pipe = QueryPipeline(source, model)
        s = spec(dimensions=("name",), measures=(("n", COUNT),))
        expected = pipe.run_spec(s)
        path = tmp_path / "cache.zip"
        assert save_intelligent_cache(pipe.intelligent_cache, path) >= 1
        # A brand-new session loads the persisted cache: no remote queries.
        restored = load_intelligent_cache(path)
        fresh = QueryPipeline(make_source(), make_model(), intelligent_cache=restored)
        result = fresh.run_batch([s])
        assert result.remote_queries == 0
        assert result.table_for(s).approx_equals(expected, ordered=False)

    def test_load_missing(self, tmp_path):
        from repro.errors import CacheError

        with pytest.raises(CacheError):
            load_intelligent_cache(tmp_path / "absent.zip")
