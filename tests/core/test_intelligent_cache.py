"""Intelligent cache tests: subsumption proofs must be sound (paper 3.2).

Every accepted match is verified against direct evaluation; every
rejection case encodes a soundness hazard the matcher must refuse.
"""

import datetime as dt

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache.intelligent import IntelligentCache, enrich_spec, match_specs
from repro.queries import CategoricalFilter, RangeFilter, TopNFilter
from repro.queries.postops import apply_post_ops
from tests.core.conftest import (
    AVG_DELAY,
    COUNT,
    DISTINCT_MARKETS,
    MIN_DELAY,
    SUM_DELAY,
    spec,
)


class TestMatchAccepts:
    def test_exact(self):
        s = spec(dimensions=("name",), measures=(("n", COUNT),))
        match = match_specs(s, s)
        assert match is not None and match.post_ops == ()

    def test_rollup_dims(self):
        provider = spec(dimensions=("name", "market"), measures=(("n", COUNT),))
        request = spec(dimensions=("name",), measures=(("n", COUNT),))
        assert match_specs(provider, request) is not None

    def test_narrower_categorical_filter(self):
        provider = spec(
            dimensions=("name", "market_id"),
            measures=(("n", COUNT),),
            filters=(CategoricalFilter("market_id", (0, 1, 2, 3)),),
        )
        request = provider.with_filters((CategoricalFilter("market_id", (1, 3)),))
        assert match_specs(provider, request) is not None

    def test_narrower_range_filter(self):
        provider = spec(
            dimensions=("date_",),
            measures=(("n", COUNT),),
            filters=(RangeFilter("date_", dt.date(2014, 1, 1), dt.date(2014, 12, 31)),),
        )
        request = provider.with_filters(
            (RangeFilter("date_", dt.date(2014, 3, 1), dt.date(2014, 4, 1)),)
        )
        assert match_specs(provider, request) is not None

    def test_new_filter_on_grouped_column(self):
        provider = spec(dimensions=("name", "market_id"), measures=(("n", COUNT),))
        request = spec(
            dimensions=("name",),
            measures=(("n", COUNT),),
            filters=(CategoricalFilter("market_id", (0, 2)),),
        )
        assert match_specs(provider, request) is not None

    def test_avg_from_components(self):
        provider = spec(
            dimensions=("name", "market_id"),
            measures=(("s", SUM_DELAY), ("c", AVG_DELAY.__class__("count", AVG_DELAY.arg))),
        )
        request = spec(dimensions=("name",), measures=(("a", AVG_DELAY),))
        assert match_specs(provider, request) is not None

    def test_order_limit_applied_locally(self):
        provider = spec(dimensions=("name",), measures=(("n", COUNT),))
        request = spec(
            dimensions=("name",), measures=(("n", COUNT),), order_by=(("n", False),), limit=2
        )
        match = match_specs(provider, request)
        assert match is not None and match.post_ops


class TestMatchRejects:
    def test_different_datasource(self):
        a = spec(dimensions=("name",))
        b = spec(dimensions=("name",)).__class__("other", ("name",))
        assert match_specs(a, b) is None

    def test_missing_dimension(self):
        provider = spec(dimensions=("name",), measures=(("n", COUNT),))
        request = spec(dimensions=("name", "market"), measures=(("n", COUNT),))
        assert match_specs(provider, request) is None

    def test_provider_filter_not_implied(self):
        provider = spec(
            dimensions=("name",),
            measures=(("n", COUNT),),
            filters=(CategoricalFilter("market_id", (0, 1)),),
        )
        request = spec(dimensions=("name",), measures=(("n", COUNT),))
        assert match_specs(provider, request) is None  # provider lacks rows

    def test_wider_request_filter(self):
        provider = spec(
            dimensions=("name", "market_id"),
            measures=(("n", COUNT),),
            filters=(CategoricalFilter("market_id", (0, 1)),),
        )
        request = provider.with_filters((CategoricalFilter("market_id", (0, 1, 2)),))
        assert match_specs(provider, request) is None

    def test_filter_on_ungrouped_column(self):
        provider = spec(dimensions=("name",), measures=(("n", COUNT),))
        request = spec(
            dimensions=("name",),
            measures=(("n", COUNT),),
            filters=(CategoricalFilter("market_id", (0,)),),
        )
        assert match_specs(provider, request) is None

    def test_avg_not_additive(self):
        provider = spec(dimensions=("name", "market_id"), measures=(("a", AVG_DELAY),))
        request = spec(dimensions=("name",), measures=(("a", AVG_DELAY),))
        assert match_specs(provider, request) is None

    def test_count_distinct_not_additive(self):
        provider = spec(dimensions=("name", "market_id"), measures=(("u", DISTINCT_MARKETS),))
        request = spec(dimensions=("name",), measures=(("u", DISTINCT_MARKETS),))
        assert match_specs(provider, request) is None

    def test_count_distinct_same_dims_ok(self):
        provider = spec(dimensions=("name",), measures=(("u", DISTINCT_MARKETS),))
        request = spec(dimensions=("name",), measures=(("u2", DISTINCT_MARKETS),))
        assert match_specs(provider, request) is not None

    def test_truncated_provider(self):
        provider = spec(dimensions=("name",), measures=(("n", COUNT),), limit=2)
        request = spec(dimensions=("name",), measures=(("n", COUNT),))
        assert match_specs(provider, request) is None

    def test_topn_filters_must_agree(self):
        provider = spec(
            dimensions=("name",),
            measures=(("n", COUNT),),
            filters=(TopNFilter("name", COUNT, 5),),
        )
        request = spec(dimensions=("name",), measures=(("n", COUNT),))
        assert match_specs(provider, request) is None
        assert match_specs(provider, provider.with_filters(provider.filters)) is not None

    def test_topn_with_narrowed_filters_rejected(self):
        """Regression: the top-n surviving set depends on sibling filters,
        so a provider with a TopNFilter cannot answer a request that
        narrows (or adds) other filters — re-ranking would be required."""
        provider = spec(
            dimensions=("code", "market_id"),
            measures=(("n", COUNT),),
            filters=(TopNFilter("code", COUNT, 5),),
        )
        request = provider.with_filters(
            (TopNFilter("code", COUNT, 5), CategoricalFilter("market_id", (1,)))
        )
        assert match_specs(provider, request) is None

    def test_exclude_vs_include(self):
        provider = spec(
            dimensions=("name", "market_id"),
            measures=(("n", COUNT),),
            filters=(CategoricalFilter("market_id", (0, 1, 2)),),
        )
        request = provider.with_filters((CategoricalFilter("market_id", (3,), exclude=True),))
        assert match_specs(provider, request) is None

    def test_exclude_subsumption(self):
        provider = spec(
            dimensions=("name", "market_id"),
            measures=(("n", COUNT),),
            filters=(CategoricalFilter("market_id", (9,), exclude=True),),
        )
        request = provider.with_filters(
            (CategoricalFilter("market_id", (9, 3), exclude=True),)
        )
        assert match_specs(provider, request) is not None


class TestMatchSoundness:
    """Accepted matches must produce the same table as direct evaluation."""

    PAIRS = [
        # (provider kwargs, request kwargs)
        (
            dict(dimensions=("name", "market_id"), measures=(("n", COUNT), ("s", SUM_DELAY))),
            dict(dimensions=("name",), measures=(("n", COUNT), ("s", SUM_DELAY))),
        ),
        (
            dict(
                dimensions=("name", "market_id"),
                measures=(("s", SUM_DELAY), ("c", COUNT), ("cd", AVG_DELAY.__class__("count", AVG_DELAY.arg))),
            ),
            dict(dimensions=("market_id",), measures=(("a", AVG_DELAY),)),
        ),
        (
            dict(
                dimensions=("name", "market_id"),
                measures=(("n", COUNT),),
                filters=(CategoricalFilter("market_id", (0, 1, 2, 3, 4)),),
            ),
            dict(
                dimensions=("name",),
                measures=(("n", COUNT),),
                filters=(CategoricalFilter("market_id", (1, 4)),),
                order_by=(("n", False),),
                limit=3,
            ),
        ),
        (
            dict(dimensions=("date_", "name"), measures=(("lo", MIN_DELAY),)),
            dict(
                dimensions=("name",),
                measures=(("lo", MIN_DELAY),),
                filters=(RangeFilter("date_", dt.date(2014, 2, 1), dt.date(2014, 7, 1)),),
            ),
        ),
    ]

    @pytest.mark.parametrize("idx", range(len(PAIRS)))
    def test_served_equals_direct(self, idx, raw_pipeline):
        provider_kwargs, request_kwargs = self.PAIRS[idx]
        provider = spec(**provider_kwargs)
        request = spec(**request_kwargs)
        match = match_specs(provider, request)
        assert match is not None
        provider_table = raw_pipeline.run_spec(provider)
        served = apply_post_ops(provider_table, match.post_ops)
        direct = raw_pipeline.run_spec(request)
        ordered = bool(request.order_by)
        assert served.approx_equals(direct, ordered=ordered, rel=1e-7, abs_tol=1e-7)


class TestCacheBehaviour:
    def test_first_match_vs_best_match(self):
        wide = spec(dimensions=("name", "market_id", "date_"), measures=(("n", COUNT),))
        narrow = spec(dimensions=("name", "market_id"), measures=(("n", COUNT),))
        request = spec(dimensions=("name",), measures=(("n", COUNT),))
        # Both providers match; choose_best should pick the narrower one.
        assert match_specs(wide, request) is not None
        assert match_specs(narrow, request) is not None

    def test_stats_and_eviction(self, raw_pipeline):
        from repro.core.cache.eviction import EvictionPolicy

        cache = IntelligentCache(EvictionPolicy(max_entries=2))
        specs = [
            spec(dimensions=("name",), measures=((f"n{i}", COUNT),)) for i in range(4)
        ]
        for s in specs:
            cache.put(s, raw_pipeline.run_spec(s))
        assert len(cache) == 2
        assert cache.stats.evictions == 2

    def test_invalidate_by_datasource(self, raw_pipeline):
        cache = IntelligentCache()
        s = spec(dimensions=("name",), measures=(("n", COUNT),))
        cache.put(s, raw_pipeline.run_spec(s))
        assert cache.invalidate("other") == 0
        assert cache.invalidate("faa") == 1
        assert cache.lookup(s) is None

    def test_lookup_counts(self, raw_pipeline):
        cache = IntelligentCache()
        provider = spec(dimensions=("name", "market_id"), measures=(("n", COUNT),))
        cache.put(provider, raw_pipeline.run_spec(provider))
        assert cache.lookup(provider) is not None
        assert cache.stats.exact_hits == 1
        rollup = spec(dimensions=("name",), measures=(("n", COUNT),))
        assert cache.lookup(rollup) is not None
        assert cache.stats.subsumption_hits == 1
        miss = spec(dimensions=("date_",), measures=(("n", COUNT),))
        assert cache.lookup(miss) is None
        assert cache.stats.misses == 1


class TestEnrichment:
    def test_filter_fields_become_dims(self):
        s = spec(
            dimensions=("name",),
            measures=(("n", COUNT),),
            filters=(CategoricalFilter("market_id", (0, 1)),),
        )
        enriched = enrich_spec(s)
        assert "market_id" in enriched.dimensions
        assert match_specs(enriched, s) is not None

    def test_avg_gets_components(self):
        s = spec(dimensions=("name",), measures=(("a", AVG_DELAY),))
        enriched = enrich_spec(s)
        funcs = sorted(agg.func for _n, agg in enriched.measures)
        assert funcs == ["avg", "count", "sum"]

    def test_reuse_fields(self):
        s = spec(dimensions=("name",), measures=(("n", COUNT),))
        enriched = enrich_spec(s, reuse_fields=frozenset({"market_id"}))
        assert "market_id" in enriched.dimensions

    def test_count_distinct_blocks_widening(self):
        s = spec(
            dimensions=("name",),
            measures=(("u", DISTINCT_MARKETS),),
            filters=(CategoricalFilter("date_", (dt.date(2014, 1, 1),)),),
        )
        enriched = enrich_spec(s, reuse_fields=frozenset({"market_id"}))
        assert enriched.dimensions == ("name",)
        assert match_specs(enriched, s) is not None

    def test_order_limit_dropped(self):
        s = spec(dimensions=("name",), measures=(("n", COUNT),), order_by=(("n", False),), limit=2)
        enriched = enrich_spec(s)
        assert enriched.order_by == () and enriched.limit is None
        assert match_specs(enriched, s) is not None


@given(
    provider_values=st.frozensets(st.integers(min_value=0, max_value=9), min_size=1, max_size=10),
    request_values=st.frozensets(st.integers(min_value=0, max_value=9), min_size=1, max_size=10),
)
@settings(max_examples=40, deadline=None)
def test_categorical_subsumption_property(provider_values, request_values):
    """Match accepted iff request values ⊆ provider values; accepted
    matches stay sound under direct evaluation (checked on a sample)."""
    provider = spec(
        dimensions=("name", "market_id"),
        measures=(("n", COUNT),),
        filters=(CategoricalFilter("market_id", tuple(sorted(provider_values))),),
    )
    request = provider.with_filters(
        (CategoricalFilter("market_id", tuple(sorted(request_values))),)
    )
    match = match_specs(provider, request)
    assert (match is not None) == (request_values <= provider_values)
