"""Tests for the paper's future-work features (§3.2 and §7):

* the cache index ("maintain an index over the cache");
* choose_best ("the entry that requires the least post-processing");
* the interaction prefetcher (DICE-style prediction);
* the order-preserving parallel merge (§4.2.2 follow-up).
"""

import pytest

from repro.core.cache.index import CacheIndex
from repro.core.cache.intelligent import IntelligentCache, match_specs
from repro.core.pipeline import QueryPipeline
from repro.core.prefetch import InteractionPrefetcher
from repro.dashboard import DashboardSession
from repro.queries import CategoricalFilter, QuerySpec, TopNFilter
from tests.core.conftest import COUNT, SUM_DELAY, spec


# ---------------------------------------------------------------------- #
# Cache index
# ---------------------------------------------------------------------- #
class TestCacheIndex:
    def _populate(self, index: CacheIndex, specs):
        for s in specs:
            index.add(s.canonical(), s)

    def test_candidates_superset_of_matches(self, raw_pipeline):
        """Soundness: the index may over-approximate but never prune a
        real match (it encodes only *necessary* conditions)."""
        providers = [
            spec(dimensions=("name", "market_id"), measures=(("n", COUNT),)),
            spec(dimensions=("name",), measures=(("n", COUNT),)),
            spec(dimensions=("date_",), measures=(("n", COUNT),)),
            spec(
                dimensions=("name", "market_id"),
                measures=(("n", COUNT),),
                filters=(CategoricalFilter("market_id", (0, 1, 2)),),
            ),
            spec(dimensions=("name",), measures=(("n", COUNT),), limit=3),
            spec(
                dimensions=("name",),
                measures=(("n", COUNT),),
                filters=(TopNFilter("name", COUNT, 2),),
            ),
        ]
        index = CacheIndex()
        self._populate(index, providers)
        requests = [
            spec(dimensions=("name",), measures=(("n", COUNT),)),
            spec(
                dimensions=("name",),
                measures=(("n", COUNT),),
                filters=(CategoricalFilter("market_id", (1,)),),
            ),
            spec(dimensions=("market_id",), measures=(("n", COUNT),)),
            spec(measures=(("n", COUNT),)),
        ]
        for request in requests:
            survivors = set(index.candidates(request))
            for provider in providers:
                if provider.canonical() == request.canonical():
                    continue
                if match_specs(provider, request) is not None:
                    assert provider.canonical() in survivors, (
                        f"index pruned a real match: {provider.canonical()}"
                    )

    def test_prunes_impossible_dimensions(self):
        index = CacheIndex()
        self._populate(index, [spec(dimensions=("date_",), measures=(("n", COUNT),))])
        request = spec(dimensions=("name",), measures=(("n", COUNT),))
        assert index.candidates(request) == []

    def test_prunes_truncated_and_foreign_datasource(self):
        index = CacheIndex()
        index.add("a", spec(dimensions=("name",), measures=(("n", COUNT),), limit=1))
        index.add("b", QuerySpec("other", ("name",), (("n", COUNT),)))
        request = spec(dimensions=("name",), measures=(("n", COUNT),))
        assert index.candidates(request) == []

    def test_remove_and_clear(self):
        index = CacheIndex()
        s = spec(dimensions=("name",), measures=(("n", COUNT),))
        index.add(s.canonical(), s)
        assert len(index) == 1
        index.remove(s.canonical())
        assert len(index) == 0
        assert index.candidates(s) == []
        index.add(s.canonical(), s)
        index.clear("faa")
        assert len(index) == 0

    def test_indexed_cache_agrees_with_linear_scan(self, raw_pipeline):
        providers = [
            spec(dimensions=("name", "market_id"), measures=(("n", COUNT), ("s", SUM_DELAY))),
            spec(dimensions=("date_",), measures=(("n", COUNT),)),
        ]
        requests = [
            spec(dimensions=("name",), measures=(("n", COUNT),)),
            spec(dimensions=("market_id",), measures=(("s", SUM_DELAY),)),
            spec(dimensions=("hour",), measures=(("n", COUNT),)),
        ]
        plain = IntelligentCache()
        indexed = IntelligentCache(use_index=True)
        for p in providers:
            table = raw_pipeline.run_spec(p)
            plain.put(p, table)
            indexed.put(p, table)
        for request in requests:
            a = plain.lookup(request)
            b = indexed.lookup(request)
            if a is None:
                assert b is None
            else:
                assert b is not None and a.approx_equals(b, ordered=False)

    def test_index_reduces_examined_entries(self, raw_pipeline):
        indexed = IntelligentCache(use_index=True)
        table = raw_pipeline.run_spec(spec(dimensions=("name",), measures=(("n", COUNT),)))
        for i in range(20):
            indexed.put(
                spec(dimensions=("date_",), measures=((f"n{i}", COUNT),)), table
            )
        indexed.put(spec(dimensions=("name", "market_id"), measures=(("n", COUNT),)), table)
        indexed.lookup(spec(dimensions=("name",), measures=(("n", COUNT),)))
        # Only the one dimensionally-compatible entry was examined.
        assert indexed.index.candidates_examined <= 2


class TestChooseBest:
    def test_picks_cheapest_provider(self, raw_pipeline):
        wide = spec(dimensions=("date_", "name"), measures=(("n", COUNT),))
        narrow = spec(dimensions=("name", "market_id"), measures=(("n", COUNT),))
        request = spec(dimensions=("name",), measures=(("n", COUNT),))
        wide_table = raw_pipeline.run_spec(wide)
        narrow_table = raw_pipeline.run_spec(narrow)
        assert wide_table.n_rows > narrow_table.n_rows
        cache = IntelligentCache(choose_best=True)
        cache.put(wide, wide_table)
        cache.put(narrow, narrow_table)
        served = cache.lookup(request)
        direct = raw_pipeline.run_spec(request)
        assert served.approx_equals(direct, ordered=False)
        # The narrow provider must have been the one consulted.
        entries = {s.canonical(): e for (s, _t), e in zip(cache.entries(), cache._entries.values())}
        assert cache._entries[narrow.canonical()].uses == 1
        assert cache._entries[wide.canonical()].uses == 0

    def test_exact_match_still_wins(self, raw_pipeline):
        s = spec(dimensions=("name",), measures=(("n", COUNT),))
        cache = IntelligentCache(choose_best=True)
        cache.put(s, raw_pipeline.run_spec(s))
        assert cache.lookup(s) is not None
        assert cache.stats.exact_hits == 1


# ---------------------------------------------------------------------- #
# Prefetcher
# ---------------------------------------------------------------------- #
class TestPrefetcher:
    def _session(self, source, model):
        from repro.workloads import fig2_dashboard

        session = DashboardSession(fig2_dashboard(), QueryPipeline(source, model))
        session.render()
        return session

    @pytest.fixture()
    def fig2_session(self):
        from repro.connectors import SimDbDataSource
        from repro.connectors.simdb import ServerProfile
        from repro.workloads import flights_model, generate_flights

        dataset = generate_flights(4000, seed=31)
        db = dataset.load_into_simdb(ServerProfile(time_scale=0))
        return self._session(SimDbDataSource(db), flights_model()), db

    def test_predictions_are_plausible_next_specs(self, fig2_session):
        session, _db = fig2_session
        prefetcher = InteractionPrefetcher(background=False, max_candidates=2)
        session.select("market", ["LAX-SFO"])
        predicted = prefetcher.predict(session, "market", ("LAX-SFO",))
        assert predicted
        for s in predicted:
            assert any(
                isinstance(f, CategoricalFilter) and f.field == "market" for f in s.filters
            )
            # Predictions never repeat the current selection.
            for f in s.filters:
                if isinstance(f, CategoricalFilter) and f.field == "market":
                    assert f.values != ("LAX-SFO",)

    def test_prefetch_turns_next_click_into_cache_hit(self, fig2_session):
        session, db = fig2_session
        prefetcher = InteractionPrefetcher(background=False, max_candidates=11)
        session.select("market", ["LAX-SFO"])
        prefetcher.observe(session, "market", ("LAX-SFO",))
        queries_before = db.stats.queries
        # The user clicks one of the predicted markets next.
        result = session.select("market", ["JFK-BOS"])
        assert result.remote_queries == 0
        assert db.stats.queries == queries_before
        assert prefetcher.stats.specs_prefetched > 0

    def test_background_mode(self, fig2_session):
        session, _db = fig2_session
        prefetcher = InteractionPrefetcher(background=True, max_candidates=1)
        session.select("market", ["LAX-SFO"])
        prefetcher.observe(session, "market", ("LAX-SFO",))
        prefetcher.wait(timeout=10)
        assert prefetcher.stats.batches == 1

    def test_no_predictions_without_actions(self, fig2_session):
        session, _db = fig2_session
        prefetcher = InteractionPrefetcher(background=False)
        assert prefetcher.predict(session, "airline_name", ("Delta Air Lines",)) == []


# ---------------------------------------------------------------------- #
# Order-preserving parallel merge
# ---------------------------------------------------------------------- #
class TestOrderPreservingMerge:
    QUERY = (
        '(order ((delay desc) (date_ asc) (carrier_id asc) (market_id asc)'
        ' (distance asc)) (select (> delay 25) (scan "Extract.flights")))'
    )

    def test_plan_shape_and_equivalence(self):
        from repro.tde.exec import PMergeSorted
        from repro.tde.exec.physical import ExecContext, execute_to_table
        from repro.tde.optimizer.parallel import PlannerOptions
        from tests.conftest import build_flights_engine

        engine = build_flights_engine(n=6000, max_dop=4, min_work_per_fraction=500)
        options = PlannerOptions(
            max_dop=4, min_work_per_fraction=500, enable_order_preserving_merge=True
        )
        plan = engine.plan(self.QUERY, options=options)
        assert isinstance(plan, PMergeSorted)
        assert plan.degree > 1
        merged = execute_to_table(plan, ExecContext())
        assert merged.equals(engine.query_naive(self.QUERY))

    def test_merge_handles_empty_fragments(self):
        import numpy as np

        from repro.tde.exec import PMergeSorted
        from repro.tde.exec.physical import ExecContext, PScan, PSort, execute_to_table
        from repro.tde.storage import Table

        full = Table.from_pydict({"a": [2, 1]})
        empty = Table.from_pydict({"a": []}, types={"a": full.column("a").ltype})
        node = PMergeSorted(
            [PSort(PScan(full), [("a", True)]), PSort(PScan(empty), [("a", True)])],
            [("a", True)],
        )
        out = execute_to_table(node, ExecContext())
        assert out.to_pydict() == {"a": [1, 2]}

    def test_merge_nulls_first(self):
        from repro.tde.exec import PMergeSorted
        from repro.tde.exec.physical import ExecContext, PScan, PSort, execute_to_table
        from repro.tde.storage import Table

        t1 = Table.from_pydict({"a": [3, None]})
        t2 = Table.from_pydict({"a": [1]})
        node = PMergeSorted(
            [PSort(PScan(t1), [("a", True)]), PSort(PScan(t2), [("a", True)])],
            [("a", True)],
        )
        out = execute_to_table(node, ExecContext())
        assert out.to_pydict() == {"a": [None, 1, 3]}
