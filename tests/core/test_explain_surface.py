"""Per-request EXPLAIN surfacing: pipeline.explain_batch, VizServer.explain."""

import pytest

from repro import obs
from repro.core.pipeline import QueryPipeline
from repro.queries import CategoricalFilter, QuerySpec

from .conftest import AVG_DELAY, COUNT, SUM_DELAY, make_model, make_source


@pytest.fixture(autouse=True)
def _clean_obs():
    yield
    obs.disable()


def _spec(measures, markets=(0, 1, 2)):
    return QuerySpec(
        "faa",
        dimensions=("name",),
        measures=measures,
        filters=(CategoricalFilter("market_id", markets),),
    )


class TestExplainBatch:
    def test_cold_batch_reports_fusion_and_plans(self):
        pipeline = QueryPipeline(make_source(), make_model())
        reports = pipeline.explain_batch(
            [
                _spec((("n", COUNT),)),
                _spec((("s", SUM_DELAY),)),
                _spec((("n", COUNT),), markets=(4,)),  # different relation
            ]
        )
        assert len(reports) == 3
        decisions = [r["decision"] for r in reports]
        assert decisions[2] == "sent remote"
        assert all("fused into" in d for d in decisions[:2])
        assert reports[0].get("post_ops") == ["LocalProject"]
        for report in reports:
            assert report["language"] == "sql"
            assert report["text"]  # the generated SQL
            assert "== physical plan ==" in report["plan"]
            assert "== optimizer provenance ==" in report["plan"]

    def test_cached_spec_reports_cache_decision(self):
        pipeline = QueryPipeline(make_source(), make_model())
        spec = _spec((("n", COUNT), ("a", AVG_DELAY)))
        pipeline.run_batch([spec])
        report = pipeline.explain_batch([spec])[0]
        assert "cache" in report["decision"]
        assert report.get("plan") is None  # nothing would run remotely

    def test_analyze_includes_actuals(self):
        pipeline = QueryPipeline(make_source(), make_model())
        report = pipeline.explain_batch([_spec((("n", COUNT),))], analyze=True)[0]
        assert "actual=" in report["plan"]


class TestVizServerExplain:
    def test_per_zone_reports(self):
        from repro.connectors import SimDbDataSource
        from repro.connectors.simdb import ServerProfile
        from repro.core.cache.distributed import KeyValueStore
        from repro.server import VizServer
        from repro.workloads import fig2_dashboard, flights_model, generate_flights

        data = generate_flights(2000, seed=23)
        db = data.load_into_simdb(ServerProfile(time_scale=0))
        server = VizServer(
            1,
            SimDbDataSource(db),
            flights_model(),
            store=KeyValueStore(latency_s=0.0),
        )
        server.register_dashboard(fig2_dashboard())
        server.load("alice", "market-carrier-airline")
        result = server.explain("alice", "market-carrier-airline")
        assert result["dashboard"] == "market-carrier-airline"
        assert result["zones"]
        for _zone, report in result["zones"].items():
            assert report["decision"]
            assert report["spec"].startswith("(query faa")
        # The dashboard was just loaded, so the specs are warm.
        assert any(
            "cache" in report["decision"] for report in result["zones"].values()
        )
