"""Eviction policy and local post-op unit tests."""

import time

import numpy as np
import pytest

from repro.core.cache.eviction import CacheEntry, EvictionPolicy
from repro.expr.ast import AggExpr, Call, ColumnRef, Literal
from repro.queries.postops import (
    LocalAggregate,
    LocalFilter,
    LocalProject,
    LocalSort,
    LocalTopN,
    LocalTopNFilter,
    apply_post_ops,
)
from repro.tde.storage import Table


def _entry(key, *, size=10, cost=0.0, uses=0, age_s=0.0):
    entry = CacheEntry(key, "ds", None, size, cost)
    entry.uses = uses
    entry.created_at -= age_s
    entry.last_used -= age_s
    return entry


class TestEvictionPolicy:
    def test_within_capacity_no_eviction(self):
        entries = {f"k{i}": _entry(f"k{i}") for i in range(3)}
        assert EvictionPolicy(max_entries=3).purge(entries) == []
        assert len(entries) == 3

    def test_entry_cap(self):
        entries = {f"k{i}": _entry(f"k{i}") for i in range(5)}
        evicted = EvictionPolicy(max_entries=2).purge(entries)
        assert len(evicted) == 3 and len(entries) == 2

    def test_byte_cap(self):
        entries = {f"k{i}": _entry(f"k{i}", size=100) for i in range(4)}
        EvictionPolicy(max_entries=100, max_bytes=250).purge(entries)
        assert len(entries) == 2

    def test_age_cap(self):
        entries = {"old": _entry("old", age_s=100.0), "new": _entry("new")}
        evicted = EvictionPolicy(max_age_s=10.0).purge(entries)
        assert evicted == ["old"]
        assert "new" in entries

    def test_usage_and_cost_protect_entries(self):
        """Paper 3.2: purged by a combination of age, usage, and the
        expense of re-evaluating the query."""
        entries = {
            "cheap_unused": _entry("cheap_unused", cost=0.001, uses=0, age_s=5),
            "expensive": _entry("expensive", cost=10.0, uses=0, age_s=5),
            "popular": _entry("popular", cost=0.001, uses=50, age_s=5),
        }
        EvictionPolicy(max_entries=2).purge(entries)
        assert set(entries) == {"expensive", "popular"}

    def test_recency_matters(self):
        entries = {
            "stale": _entry("stale", uses=1, age_s=1000.0),
            "fresh": _entry("fresh", uses=1, age_s=0.0),
        }
        EvictionPolicy(max_entries=1).purge(entries)
        assert set(entries) == {"fresh"}

    def test_retention_score_monotonicity(self):
        now = time.monotonic()
        low = _entry("a", cost=0.1, uses=1, age_s=100)
        high = _entry("b", cost=0.1, uses=1, age_s=1)
        assert high.retention_score(now) > low.retention_score(now)


class TestPostOps:
    def _table(self):
        return Table.from_pydict(
            {
                "g": ["a", "a", "b", "b", "c"],
                "v": [1.0, 3.0, 10.0, 20.0, 100.0],
                "n": [1, 1, 2, 2, 5],
            }
        )

    def test_filter(self):
        out = apply_post_ops(
            self._table(), [LocalFilter(Call(">", (ColumnRef("v"), Literal(5.0))))]
        )
        assert out.to_pydict()["v"] == [10.0, 20.0, 100.0]

    def test_project(self):
        out = apply_post_ops(
            self._table(),
            [LocalProject((("g", ColumnRef("g")), ("double", Call("*", (ColumnRef("v"), Literal(2.0))))))],
        )
        assert out.column_names == ["g", "double"]
        assert out.to_pydict()["double"][0] == 2.0

    def test_aggregate(self):
        out = apply_post_ops(
            self._table(),
            [LocalAggregate(("g",), (("total", AggExpr("sum", ColumnRef("v"))),))],
        )
        assert dict(out.to_rows()) == {"a": 4.0, "b": 30.0, "c": 100.0}

    def test_aggregate_with_computed_arg(self):
        out = apply_post_ops(
            self._table(),
            [
                LocalAggregate(
                    (),
                    (("s", AggExpr("sum", Call("*", (ColumnRef("v"), Literal(2.0))))),),
                )
            ],
        )
        assert out.to_pydict()["s"] == [268.0]

    def test_sort_and_topn(self):
        out = apply_post_ops(self._table(), [LocalSort((("v", False),))])
        assert out.to_pydict()["v"][0] == 100.0
        out = apply_post_ops(self._table(), [LocalTopN(2, (("v", False),))])
        assert out.to_pydict()["v"] == [100.0, 20.0]

    def test_topn_filter(self):
        """Keep all rows of the top-2 groups by total v."""
        out = apply_post_ops(
            self._table(),
            [LocalTopNFilter("g", AggExpr("sum", ColumnRef("v")), 2)],
        )
        assert set(out.to_pydict()["g"]) == {"b", "c"}
        assert out.n_rows == 3

    def test_topn_filter_ascending(self):
        out = apply_post_ops(
            self._table(),
            [LocalTopNFilter("g", AggExpr("sum", ColumnRef("v")), 1, ascending=True)],
        )
        assert set(out.to_pydict()["g"]) == {"a"}

    def test_chained_ops(self):
        out = apply_post_ops(
            self._table(),
            [
                LocalFilter(Call("<", (ColumnRef("v"), Literal(50.0)))),
                LocalAggregate(("g",), (("s", AggExpr("sum", ColumnRef("v"))),)),
                LocalSort((("s", False),)),
            ],
        )
        assert out.to_rows() == [("b", 30.0), ("a", 4.0)]

    def test_empty_input_flows_through(self):
        empty = self._table().slice(0, 0)
        out = apply_post_ops(
            empty,
            [
                LocalFilter(Call(">", (ColumnRef("v"), Literal(0.0)))),
                LocalAggregate(("g",), (("n", AggExpr("count"),),)),
                LocalTopN(3, (("n", False),)),
            ],
        )
        assert out.n_rows == 0
        assert out.column_names == ["g", "n"]

    def test_unknown_op_rejected(self):
        with pytest.raises(TypeError):
            apply_post_ops(self._table(), [object()])
