"""Property suite for the consistent-hash ring (`core/cache/ring.py`).

The placement function under the elastic cache tier has to earn three
promises before replication or resharding can trust it:

* **balance** — with enough virtual nodes, primary ownership over a
  seeded key population stays within a small max/mean skew bound (and
  measurably beats ``vnodes=1``);
* **minimal movement** — a join moves only ~``1/(n+1)`` of primaries and
  never re-homes a key between two *surviving* nodes; a leave only
  promotes, never demotes, the survivors already on the key's list;
* **determinism** — placement is a pure function of the node set and
  vnode count (insertion order irrelevant, ``PYTHONHASHSEED`` ignored),
  which is what makes chaos replays byte-identical.

Everything here is seeded and exact: the ring hashes with MD5, so these
are not statistical flakes — the asserted bounds hold for these
populations on every platform, forever.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache.ring import HashRing, stable_hash

VNODE_COUNTS = (16, 64, 128)
NODE_COUNTS = (3, 5, 8)


def _keys(seed: int, n: int = 4000) -> list[str]:
    return [f"key-{seed}-{i}" for i in range(n)]


def _node_ids(n: int) -> list[str]:
    return [f"node{i}" for i in range(n)]


# --------------------------------------------------------------------- #
# Balance
# --------------------------------------------------------------------- #
class TestBalance:
    @pytest.mark.parametrize("vnodes", VNODE_COUNTS)
    @pytest.mark.parametrize("n_nodes", NODE_COUNTS)
    @pytest.mark.parametrize("seed", (11, 97))
    def test_primary_skew_bounded(self, vnodes, n_nodes, seed):
        ring = HashRing(_node_ids(n_nodes), vnodes=vnodes)
        skew = ring.skew(_keys(seed))
        assert 1.0 <= skew <= 1.35, (
            f"vnodes={vnodes} n={n_nodes}: max/mean primary skew {skew:.3f}"
        )

    def test_vnodes_beat_single_point_placement(self):
        keys = _keys(23)
        coarse = HashRing(_node_ids(5), vnodes=1).skew(keys)
        fine = HashRing(_node_ids(5), vnodes=64).skew(keys)
        assert coarse > 1.5  # one point per node lands badly...
        assert fine < 1.35  # ...virtual nodes are what fix it

    def test_every_node_owns_some_keys(self):
        for vnodes in VNODE_COUNTS:
            ring = HashRing(_node_ids(8), vnodes=vnodes)
            counts = ring.ownership(_keys(5), r=1)
            assert set(counts) == set(ring.nodes)
            assert all(count > 0 for count in counts.values())

    def test_replica_slots_also_balanced(self):
        ring = HashRing(_node_ids(5), vnodes=64)
        counts = ring.ownership(_keys(7), r=2)
        mean = sum(counts.values()) / len(counts)
        assert max(counts.values()) / mean <= 1.35


# --------------------------------------------------------------------- #
# Minimal movement on topology change
# --------------------------------------------------------------------- #
class TestMinimalMovement:
    @pytest.mark.parametrize("vnodes", VNODE_COUNTS)
    @pytest.mark.parametrize("n_nodes", NODE_COUNTS)
    def test_join_moves_expected_primary_fraction(self, vnodes, n_nodes):
        keys = _keys(31)
        ring = HashRing(_node_ids(n_nodes), vnodes=vnodes)
        before = {k: ring.primary(k) for k in keys}
        ring.add_node("joiner")
        after = {k: ring.primary(k) for k in keys}
        moved = sum(1 for k in keys if before[k] != after[k])
        expected = len(keys) / (n_nodes + 1)
        assert expected / 2 <= moved <= expected * 2, (
            f"vnodes={vnodes} n={n_nodes}: {moved} primaries moved, "
            f"expected ~{expected:.0f}"
        )

    @pytest.mark.parametrize("r", (1, 2, 3))
    def test_join_never_remaps_between_survivors(self, r):
        """Every post-join owner is either an old owner or the joiner, and
        a key the joiner didn't take keeps its exact preference list."""
        keys = _keys(43)
        ring = HashRing(_node_ids(5), vnodes=64)
        before = {k: ring.owners(k, r) for k in keys}
        ring.add_node("joiner")
        touched = 0
        for k in keys:
            after = ring.owners(k, r)
            assert set(after) - {"joiner"} <= set(before[k])
            if "joiner" not in after:
                assert after == before[k], f"{k} remapped between survivors"
            else:
                touched += 1
        assert 0 < touched < len(keys)

    @pytest.mark.parametrize("r", (1, 2, 3))
    def test_leave_only_promotes_survivors(self, r):
        """Removal drops the leaver and back-fills from behind: survivors
        already on a key's list keep their slots (in order)."""
        keys = _keys(59)
        ring = HashRing(_node_ids(5), vnodes=64)
        before = {k: ring.owners(k, r) for k in keys}
        ring.remove_node("node2")
        for k in keys:
            after = ring.owners(k, r)
            survivors = tuple(n for n in before[k] if n != "node2")
            assert after[: len(survivors)] == survivors
            if "node2" not in before[k]:
                assert after == before[k], f"{k} remapped though node2 not an owner"

    def test_leave_then_rejoin_restores_placement(self):
        keys = _keys(61)
        ring = HashRing(_node_ids(5), vnodes=64)
        before = {k: ring.owners(k, 2) for k in keys}
        ring.remove_node("node3")
        ring.add_node("node3")
        assert {k: ring.owners(k, 2) for k in keys} == before


# --------------------------------------------------------------------- #
# Determinism / placement contract
# --------------------------------------------------------------------- #
class TestPlacementContract:
    def test_stable_hash_is_pinned(self):
        # MD5-derived: if this moves, every committed chaos replay and
        # the E24 baseline placement silently shifts — pin it.
        assert stable_hash("key-0") == 0xB4428B7E85E1FA85
        assert stable_hash("") == 0xD41D8CD98F00B204

    def test_insertion_order_is_irrelevant(self):
        keys = _keys(71, 500)
        forward = HashRing(_node_ids(6), vnodes=32)
        backward = HashRing(reversed(_node_ids(6)), vnodes=32)
        assert [forward.owners(k, 3) for k in keys] == [
            backward.owners(k, 3) for k in keys
        ]

    @given(
        key=st.text(min_size=0, max_size=60),
        n_nodes=st.integers(min_value=1, max_value=9),
        r=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=120, deadline=None)
    def test_owners_shape(self, key, n_nodes, r):
        ring = HashRing(_node_ids(n_nodes), vnodes=8)
        owners = ring.owners(key, r)
        assert len(owners) == min(r, n_nodes)
        assert len(set(owners)) == len(owners)  # distinct physical nodes
        assert set(owners) <= set(ring.nodes)
        assert owners[:1] == ((ring.primary(key),) if owners else ())
        # The preference list is a prefix chain: widening r only appends.
        if r > 1:
            assert ring.owners(key, r - 1) == owners[: r - 1]

    def test_empty_ring(self):
        ring = HashRing()
        assert ring.owners("anything", 3) == ()
        assert ring.primary("anything") is None
        assert ring.skew([]) == 0.0

    def test_duplicate_and_missing_nodes_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError):
            ring.add_node("a")
        with pytest.raises(ValueError):
            ring.remove_node("ghost")
        with pytest.raises(ValueError):
            HashRing(vnodes=0)
