"""Races between cache eviction and concurrent lookups.

Threads hammer the intelligent and literal caches with interleaved
``put`` (forcing constant eviction through a tiny policy), ``lookup``,
``probe`` and ``invalidate`` calls, then the invariants that the
per-cache locks are supposed to protect are checked:

* internal maps stay consistent (``_entries`` / ``_specs`` / index agree);
* capacity limits hold;
* stats are conserved (every lookup is exactly one hit or miss);
* a lookup never returns the *wrong* entry's table, no matter how the
  eviction interleaves.

The prefetcher test at the bottom covers the shared-state bug this suite
caught: background warm threads updated ``PrefetchStats`` with plain
``+=``, losing increments when two batches finished at once.
"""

from __future__ import annotations

import random
import threading
from types import SimpleNamespace

from repro.core.cache.eviction import EvictionPolicy
from repro.core.cache.intelligent import IntelligentCache
from repro.core.cache.literal import LiteralCache
from repro.core.prefetch import InteractionPrefetcher
from repro.core.stale import StaleResultStore
from repro.expr.ast import AggExpr, ColumnRef
from repro.queries.spec import QuerySpec
from repro.tde.storage.table import Table

N_THREADS = 8
OPS_PER_THREAD = 300


def _run_threads(worker, n=N_THREADS):
    """Run ``worker(thread_index)`` on n threads; re-raise any failure."""
    errors: list[BaseException] = []
    barrier = threading.Barrier(n)

    def wrapped(i):
        try:
            barrier.wait()
            worker(i)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


def _spec(i: int) -> QuerySpec:
    """Specs on distinct datasources: no pair is subsumable, so a lookup
    can only ever return entry i's own table."""
    return QuerySpec(
        f"ds{i}", ("g",), (("v_sum", AggExpr("sum", ColumnRef("v"))),)
    )


def _table(i: int) -> Table:
    return Table.from_pydict({"g": [i], "v": [float(i)]})


class TestIntelligentCacheRaces:
    def _hammer(self, cache: IntelligentCache, n_specs: int = 32) -> int:
        specs = [_spec(i) for i in range(n_specs)]
        tables = [_table(i) for i in range(n_specs)]
        lookups = [0]
        lock = threading.Lock()

        def worker(thread_index: int) -> None:
            rng = random.Random(f"cache-race|{thread_index}")
            mine = 0
            for _ in range(OPS_PER_THREAD):
                i = rng.randrange(n_specs)
                roll = rng.random()
                if roll < 0.35:
                    cache.put(specs[i], tables[i], cost_s=0.01)
                elif roll < 0.85:
                    mine += 1
                    got = cache.lookup(specs[i])
                    if got is not None:
                        # Never another entry's table: marker must match.
                        assert got.column("g").python_values() == [i]
                elif roll < 0.95:
                    cache.probe(specs[i])
                else:
                    cache.invalidate(specs[i].datasource)
            with lock:
                lookups[0] += mine

        _run_threads(worker)
        return lookups[0]

    def _check_consistent(self, cache: IntelligentCache, lookups: int) -> None:
        assert set(cache._entries) == set(cache._specs)
        assert len(cache) <= cache.policy.max_entries
        if cache.index is not None:
            assert set(cache.index._facts) == set(cache._entries)
        stats = cache.stats
        assert stats.exact_hits + stats.subsumption_hits + stats.misses == lookups
        assert stats.puts >= stats.evictions

    def test_eviction_racing_lookups(self):
        cache = IntelligentCache(EvictionPolicy(max_entries=8))
        self._check_consistent(cache, self._hammer(cache))

    def test_eviction_racing_lookups_with_index(self):
        cache = IntelligentCache(
            EvictionPolicy(max_entries=8), use_index=True, choose_best=True
        )
        self._check_consistent(cache, self._hammer(cache))

    def test_size_accounting_under_churn(self):
        cache = IntelligentCache(EvictionPolicy(max_entries=6))
        self._hammer(cache, n_specs=12)
        assert cache.size_bytes() == sum(
            e.size_bytes for e in cache._entries.values()
        )

    def test_subsumption_under_eviction_is_right_or_absent(self):
        """A rollup answer derived while the provider is being evicted and
        re-put must be the correct derivation or a miss — never garbage."""
        cache = IntelligentCache(EvictionPolicy(max_entries=4))
        provider = QuerySpec(
            "ds", ("g",), (("v_sum", AggExpr("sum", ColumnRef("v"))),)
        )
        request = QuerySpec("ds", (), (("v_sum", AggExpr("sum", ColumnRef("v"))),))
        table = Table.from_pydict({"g": [1, 2], "v_sum": [1.0, 2.0]})

        def worker(thread_index: int) -> None:
            rng = random.Random(f"subsume-race|{thread_index}")
            for _ in range(OPS_PER_THREAD):
                roll = rng.random()
                if roll < 0.4:
                    cache.put(provider, table)
                elif roll < 0.9:
                    got = cache.lookup(request)
                    if got is not None:
                        assert got.column("v_sum").python_values() == [3.0]
                else:
                    cache.invalidate("ds")

        _run_threads(worker)


class TestLiteralCacheRaces:
    def test_eviction_racing_gets(self):
        cache = LiteralCache(EvictionPolicy(max_entries=8))
        keys = [f"select {i}" for i in range(32)]
        tables = [_table(i) for i in range(32)]
        gets = [0]
        lock = threading.Lock()

        def worker(thread_index: int) -> None:
            rng = random.Random(f"literal-race|{thread_index}")
            mine = 0
            for _ in range(OPS_PER_THREAD):
                i = rng.randrange(32)
                roll = rng.random()
                if roll < 0.4:
                    cache.put(keys[i], f"ds{i % 4}", tables[i])
                elif roll < 0.95:
                    mine += 1
                    got = cache.get(keys[i])
                    if got is not None:
                        assert got.column("g").python_values() == [i]
                else:
                    cache.invalidate(f"ds{rng.randrange(4)}")
            with lock:
                gets[0] += mine

        _run_threads(worker)
        assert len(cache) <= 8
        assert cache.stats.hits + cache.stats.misses == gets[0]


class TestStaleStoreRaces:
    def test_bounded_lru_under_concurrent_put_get(self):
        store = StaleResultStore(max_entries=8)
        tables = [_table(i) for i in range(32)]

        def worker(thread_index: int) -> None:
            rng = random.Random(f"stale-race|{thread_index}")
            for _ in range(OPS_PER_THREAD):
                i = rng.randrange(32)
                if rng.random() < 0.5:
                    store.put(f"k{i}", tables[i])
                else:
                    entry = store.get(f"k{i}")
                    if entry is not None:
                        table, age_s = entry
                        assert table.column("g").python_values() == [i]
                        assert age_s >= 0.0

        _run_threads(worker)
        assert len(store) <= 8


class TestPrefetcherStatsRace:
    def test_concurrent_warms_lose_no_counts(self):
        """Regression: ``PrefetchStats`` was updated with unsynchronized
        ``+=`` from background warm threads, dropping increments."""
        prefetcher = InteractionPrefetcher(background=False)
        specs = [_spec(i) for i in range(3)]
        session = SimpleNamespace(
            dashboard=SimpleNamespace(actions=[]),
            pipeline=SimpleNamespace(
                run_batch=lambda batch, reuse_fields=frozenset(): SimpleNamespace(
                    tables={s.canonical(): None for s in batch}
                )
            ),
        )

        per_thread = 200

        def worker(thread_index: int) -> None:
            for _ in range(per_thread):
                prefetcher._warm(session, specs)

        _run_threads(worker)
        assert prefetcher.stats.batches == N_THREADS * per_thread
        assert prefetcher.stats.specs_prefetched == N_THREADS * per_thread * 3


class TestKeyValueStoreAccounting:
    """Regression (PR 9): the shared store's counters must be one
    snapshot-consistent family.

    ``hit_count`` used to be incremented under the lock while readers
    summed the public attributes one by one — a sampler could see
    ``gets`` advance before the matching hit/miss landed, so hit-rate
    math over the fleet drifted. ``stats()`` now reads every counter in
    a single lock acquisition; ``hits + misses == gets`` must hold in
    *every* concurrent snapshot, not just at quiescence.
    """

    def _store(self):
        from repro.core.cache.distributed import KeyValueStore

        return KeyValueStore(latency_s=0.0, per_mb_s=0.0)

    def test_snapshots_conserve_counts_under_concurrency(self):
        store = self._store()
        stop = threading.Event()
        bad_snapshots: list[dict] = []

        def sampler() -> None:
            while not stop.is_set():
                snap = store.stats()
                if snap["hits"] + snap["misses"] != snap["gets"]:
                    bad_snapshots.append(snap)
                if snap["deletes"] > snap["puts"]:
                    bad_snapshots.append(snap)

        watcher = threading.Thread(target=sampler)
        watcher.start()
        try:

            def worker(thread_index: int) -> None:
                rng = random.Random(f"kv-acct|{thread_index}")
                for _ in range(OPS_PER_THREAD):
                    key = f"k{rng.randrange(16)}"
                    roll = rng.random()
                    if roll < 0.45:
                        store.put(key, b"x" * rng.randrange(1, 64))
                    elif roll < 0.9:
                        store.get(key)
                    else:
                        store.delete(key)

            _run_threads(worker)
        finally:
            stop.set()
            watcher.join()
        assert not bad_snapshots, bad_snapshots[:3]

        final = store.stats()
        issued = N_THREADS * OPS_PER_THREAD
        assert final["gets"] + final["puts"] + final["deletes"] <= issued
        assert final["hits"] + final["misses"] == final["gets"]
        # Only keys that existed count as deletes, so puts bound them.
        assert final["deletes"] <= final["puts"]
        assert final["entries"] == len(store)
        assert final["bytes"] == store.total_bytes()

    def test_len_and_keys_are_locked_snapshots(self):
        store = self._store()

        def worker(thread_index: int) -> None:
            rng = random.Random(f"kv-len|{thread_index}")
            for i in range(OPS_PER_THREAD):
                key = f"k{rng.randrange(16)}"
                if rng.random() < 0.5:
                    store.put(key, b"payload")
                else:
                    store.delete(key)
                # These iterate the dict internally: they must never see
                # a mid-mutation view (RuntimeError) under writers.
                assert len(store) >= 0
                assert isinstance(store.keys(), tuple)
                store.total_bytes()

        _run_threads(worker)

    def test_delete_counts_only_real_removals(self):
        store = self._store()
        store.put("k", b"v")
        store.delete("k")
        store.delete("k")  # second delete is a no-op
        store.delete("ghost")
        assert store.stats()["deletes"] == 1

    def test_peek_skews_no_counters(self):
        store = self._store()
        store.put("k", b"v")
        before = store.stats()
        assert store.peek("k") == b"v"
        assert store.peek("ghost") is None
        after = store.stats()
        assert before == after
