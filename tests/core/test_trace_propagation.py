"""Causal links end to end: every documented link kind, at its real site.

Each scenario drives the actual production code path (pipeline, cache,
prefetcher, retry helper, breaker, pool) under a live recording and
asserts the causal edge lands where the critical-path analyzer expects.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import obs
from repro.connectors.pool import ConnectionPool
from repro.core.coalesce import SingleFlightRegistry
from repro.core.pipeline import PipelineOptions, QueryPipeline
from repro.core.prefetch import InteractionPrefetcher
from repro.dashboard.render import DashboardSession
from repro.errors import CircuitOpenError, TransientSourceError
from repro.faults.breaker import CircuitBreaker
from repro.faults.retry import RetryPolicy, call_with_retry
from repro.obs import critical_path, link_resolver
from repro.workloads import fig2_dashboard, flights_model, generate_flights
from tests.core.conftest import AVG_DELAY, COUNT, SUM_DELAY, make_model, make_source, spec
from tests.core.test_coalesce import GatedSource

WIDE = spec(
    dimensions=("name", "market_id"),
    measures=(("n", COUNT), ("s", SUM_DELAY)),
)
NARROW = spec(dimensions=("name",), measures=(("n", COUNT),))
OTHER = spec(dimensions=("market",), measures=(("a", AVG_DELAY),))


def _pipeline(source=None, *, coalescer=None, **overrides):
    options = dict(
        enable_intelligent_cache=False,
        enable_literal_cache=False,
        enrich_for_reuse=False,
        coalesce_wait_timeout_s=10.0,
    )
    options.update(overrides)
    return QueryPipeline(
        source or make_source(),
        make_model(),
        options=PipelineOptions(**options),
        coalescer=coalescer,
    )


def _wait_until(predicate, timeout_s: float = 10.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.001)


def _links(root, kind):
    return [
        link
        for span in root.walk()
        for link in (span.links or ())
        if link.kind == kind
    ]


class TestExecutorFanout:
    def test_worker_spans_join_the_batch_trace(self):
        pipeline = _pipeline()  # concurrent fan-out is the default
        with obs.recording():
            pipeline.run_batch([WIDE, NARROW, OTHER])
            roots = obs.get_tracer().roots
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "pipeline.run_batch"
        fanned = root.find_all("executor.query")
        # Fusion folds NARROW into WIDE, so two remote queries fan out.
        assert len(fanned) == 2
        # obs.bind carried the batch span into the workers: every
        # executor span shares the request identity and nests under the
        # remote-execution phase instead of rooting its own trace.
        assert {s.trace_id for s in fanned} == {root.trace_id}
        assert {s.parent.name for s in fanned} == {"pipeline.remote_execution"}


class TestCoalesceLeaderLink:
    def test_follower_wait_links_to_the_leader_flight(self):
        source = GatedSource(make_source())
        registry = SingleFlightRegistry("warehouse")
        leader_pipe = _pipeline(source, coalescer=registry)
        follower_pipe = _pipeline(source, coalescer=registry)

        with obs.recording():
            leader_thread = threading.Thread(
                target=lambda: leader_pipe.run_batch([NARROW])
            )
            leader_thread.start()
            assert source.started.wait(10.0)
            follower_thread = threading.Thread(
                target=lambda: follower_pipe.run_batch([NARROW])
            )
            follower_thread.start()
            _wait_until(lambda: registry.stats.exact_joins == 1)
            source.gate.set()
            leader_thread.join(10.0)
            follower_thread.join(10.0)
            roots = obs.get_tracer().roots

        follower_root = next(
            r for r in roots if r.find("pipeline.coalesce_wait") is not None
        )
        leader_root = next(r for r in roots if r is not follower_root)
        links = _links(follower_root, "coalesce.leader")
        assert len(links) == 1
        assert links[0].trace_id == leader_root.trace_id
        assert links[0].trace_id != follower_root.trace_id
        # The analyzer follows the edge: part of the follower's critical
        # path is charged inside the leader's trace.
        segments = critical_path(
            follower_root, resolve_link=link_resolver(list(roots))
        )
        assert any(seg.via == "coalesce.leader" for seg in segments)
        assert any(seg.trace_id == leader_root.trace_id for seg in segments)


class TestCacheLink:
    def test_hit_links_to_the_populating_trace(self):
        pipeline = _pipeline(
            enable_intelligent_cache=True, concurrent=False
        )
        with obs.recording():
            pipeline.run_batch([WIDE])  # populates
            pipeline.run_batch([NARROW])  # subsumption hit
            pipeline.run_batch([WIDE])  # exact hit
            populating, subsumed, exact = obs.get_tracer().roots
        for hit in (subsumed, exact):
            links = _links(hit, "cache.populated_by")
            assert len(links) >= 1
            assert {link.trace_id for link in links} == {populating.trace_id}

    def test_hit_inside_the_populating_trace_is_not_linked(self):
        pipeline = _pipeline(
            enable_intelligent_cache=True, concurrent=False
        )
        with obs.recording():
            # Same batch: NARROW derives from WIDE's just-cached result,
            # but within one trace there is no cross-request causality.
            pipeline.run_batch([WIDE, NARROW])
            root = obs.get_tracer().roots[-1]
        assert _links(root, "cache.populated_by") == []


class TestPrefetchLink:
    def test_background_warm_links_to_its_trigger(self):
        from repro.connectors import SimDbDataSource
        from repro.connectors.simdb import ServerProfile

        dataset = generate_flights(2000, seed=31)
        db = dataset.load_into_simdb(ServerProfile(time_scale=0))
        session = DashboardSession(
            fig2_dashboard(), QueryPipeline(SimDbDataSource(db), flights_model())
        )
        session.render()
        prefetcher = InteractionPrefetcher(background=True, max_candidates=2)
        session.select("market", ["LAX-SFO"])
        with obs.recording():
            with obs.span("vizserver.request") as trigger:
                prefetcher.observe(session, "market", ("LAX-SFO",))
            prefetcher.wait(timeout=10)
            roots = obs.get_tracer().roots
        warm = next(r for r in roots if r.name == "prefetch.warm")
        assert warm.trace_id != trigger.trace_id  # its own root...
        links = _links(warm, "prefetch.triggered_by")
        assert [link.trace_id for link in links] == [trigger.trace_id]


class TestRetryChain:
    def test_attempts_link_to_their_predecessors(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientSourceError("transient")
            return "ok"

        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)
        with obs.recording():
            with obs.span("vizserver.request") as request:
                assert call_with_retry(flaky, policy=policy, key="k") == "ok"
            root = obs.get_tracer().roots[0]
        attempts = root.find_all("retry.attempt")
        assert [a.attributes["attempt"] for a in attempts] == [2, 3]
        # The chain: attempt 2 -> the context attempt 1 failed in,
        # attempt 3 -> attempt 2.
        assert attempts[0].links[0].kind == "retry.prior_attempt"
        assert attempts[0].links[0].span_id == request.span_id
        assert attempts[1].links[0].span_id == attempts[0].span_id


class TestBreakerLink:
    def test_rejection_links_to_the_tripping_trace(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_s=60.0, name="db")
        with obs.recording():
            with obs.span("vizserver.request") as tripper:
                breaker.record_failure()  # trips: captures this trace
            with obs.span("vizserver.request") as rejected:
                with pytest.raises(CircuitOpenError):
                    breaker.admit()
        assert rejected.links is not None
        link = rejected.links[0]
        assert link.kind == "breaker.opened_by"
        assert link.trace_id == tripper.trace_id
        assert link.trace_id != rejected.trace_id


class TestPoolWaitLink:
    def test_waiter_links_behind_the_previous_holder(self):
        pool = ConnectionPool(make_source(), max_connections=1)
        with obs.recording():
            with obs.span("vizserver.request") as holder_span:
                conn = pool.acquire()

                waiter_root = {}

                def waiter():
                    with obs.span("dataserver.query") as sp:
                        waiter_root["span"] = sp
                        inner = pool.acquire()
                        pool.release(inner)

                thread = threading.Thread(target=waiter)
                thread.start()
                _wait_until(lambda: pool.stats.wait_events >= 1)
                pool.release(conn)
                thread.join(10.0)
        links = waiter_root["span"].links or []
        assert [link.kind for link in links] == ["pool.waited_behind"]
        assert links[0].trace_id == holder_span.trace_id

    def test_unblocked_checkout_records_no_link(self):
        pool = ConnectionPool(make_source(), max_connections=1)
        with obs.recording():
            with obs.span("vizserver.request") as sp:
                conn = pool.acquire()
                pool.release(conn)
                again = pool.acquire()
                pool.release(again)
        assert sp.links is None
