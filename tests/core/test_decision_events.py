"""Decision events from caches, eviction, fusion, prefetch, and the pool.

The event contract matters more than the prose: each emitter must name
its decision (kind + outcome) and carry the inputs the paper says drive
it — most precisely for eviction, where the victim's age, usage, and
re-evaluation cost (and their combined retention score) must appear on
the event, and the chosen victim must follow the documented ordering
(expired entries first, then lowest retention score).
"""

import time

import pytest

from repro import obs
from repro.connectors import ConnectionPool
from repro.core.cache.eviction import CacheEntry, EvictionPolicy
from repro.core.cache.intelligent import IntelligentCache, explain_mismatch
from repro.core.cache.literal import LiteralCache
from repro.core.fusion import fuse_batch
from repro.core.pipeline import QueryPipeline
from repro.queries import CategoricalFilter, QuerySpec
from repro.tde.storage import Table

from .conftest import AVG_DELAY, COUNT, make_model, make_source


@pytest.fixture(autouse=True)
def _clean_obs():
    yield
    obs.disable()


def _table(rows: int = 4) -> Table:
    return Table.from_pydict({"x": list(range(rows))})


def _entry(key: str, *, uses: int, cost_s: float, idle_s: float) -> CacheEntry:
    now = time.monotonic()
    entry = CacheEntry(key, "db", _table(), 64, cost_s)
    entry.uses = uses
    entry.last_used = now - idle_s
    return entry


class TestEvictionEvents:
    def test_event_carries_victim_scores(self):
        policy = EvictionPolicy(max_entries=2)
        entries = {
            e.key: e
            for e in [
                _entry("keep-hot", uses=50, cost_s=2.0, idle_s=0.1),
                _entry("keep-costly", uses=5, cost_s=5.0, idle_s=1.0),
                _entry("victim", uses=0, cost_s=0.01, idle_s=60.0),
            ]
        }
        with obs.recording() as rec:
            evicted = policy.purge(entries)
        assert evicted == ["victim"]
        events = rec.events("cache.eviction")
        assert len(events) == 1
        ev = events[0]
        assert ev.outcome == "evicted"
        assert ev.attributes["key"] == "victim"
        # The three documented retention inputs, plus the combined score.
        assert ev.attributes["age_s"] == pytest.approx(60.0, abs=1.0)
        assert ev.attributes["uses"] == 0
        assert ev.attributes["cost_s"] == 0.01
        assert ev.attributes["score"] == pytest.approx(
            entries_score := (0.01 + 1e-3) * 1 / (1 + ev.attributes["age_s"]),
            rel=1e-6,
        ), entries_score
        assert "retention score" in ev.reason
        assert "capacity pressure" in ev.reason

    def test_victim_matches_policy_ordering(self):
        # Lowest retention_score loses first, regardless of insert order.
        policy = EvictionPolicy(max_entries=3)
        entries = {
            e.key: e
            for e in [
                _entry("a", uses=1, cost_s=0.5, idle_s=5.0),
                _entry("b", uses=9, cost_s=0.5, idle_s=5.0),
                _entry("c", uses=1, cost_s=0.5, idle_s=50.0),
                _entry("d", uses=1, cost_s=4.0, idle_s=5.0),
            ]
        }
        now = time.monotonic()
        expected_victim = min(entries.values(), key=lambda e: e.retention_score(now))
        with obs.recording() as rec:
            evicted = policy.purge(entries)
        assert evicted == [expected_victim.key]
        assert rec.events("cache.eviction")[0].attributes["key"] == expected_victim.key

    def test_expired_entries_evict_first_with_reason(self):
        policy = EvictionPolicy(max_age_s=10.0)
        stale = _entry("stale", uses=100, cost_s=9.0, idle_s=0.0)
        stale.created_at = time.monotonic() - 60.0
        entries = {"stale": stale, "fresh": _entry("fresh", uses=0, cost_s=0.0, idle_s=0.0)}
        with obs.recording() as rec:
            evicted = policy.purge(entries)
        # Expired beats score: "stale" has a far better score than "fresh".
        assert evicted == ["stale"]
        ev = rec.events("cache.eviction")[0]
        assert "expired" in ev.reason
        assert "max age" in ev.reason

    def test_no_events_when_disabled(self):
        policy = EvictionPolicy(max_entries=1)
        entries = {
            e.key: e
            for e in [
                _entry("x", uses=0, cost_s=0.0, idle_s=1.0),
                _entry("y", uses=0, cost_s=0.0, idle_s=2.0),
            ]
        }
        policy.purge(entries)  # obs off: must not raise, must still purge
        assert len(entries) == 1


def _spec(markets=(0, 1, 2), dims=("name",), measures=None):
    return QuerySpec(
        "faa",
        dimensions=dims,
        measures=(("n", COUNT), ("a", AVG_DELAY)) if measures is None else measures,
        filters=(CategoricalFilter("market_id", markets),),
    )


class TestSubsumptionEvents:
    def test_accept_and_reject_reasons_in_recording(self):
        pipeline = QueryPipeline(make_source(), make_model())
        with obs.recording() as rec:
            pipeline.run_batch([_spec()])  # cold: rejected, no entries
            pipeline.run_batch([_spec(markets=(0, 2))])  # narrower: accepted
        rejects = rec.events("cache.subsumption", outcome="rejected")
        accepts = rec.events("cache.subsumption", outcome="accepted")
        assert rejects and accepts
        assert "no cached entries" in rejects[0].reason
        assert "proven to subsume" in accepts[-1].reason
        assert "post-processing" in accepts[-1].reason or "deriving via" in accepts[-1].reason

    def test_reject_names_failing_candidate_condition(self):
        cache = IntelligentCache()
        provider = _spec(markets=(0, 1))
        cache.put(provider, _table(), cost_s=0.1)
        wider = _spec(markets=(0, 1, 2, 3))
        with obs.recording() as rec:
            assert cache.lookup(wider) is None
        ev = rec.events("cache.subsumption", outcome="rejected")[0]
        assert ev.attributes["candidates"] == 1
        assert "not provably a subset" in ev.reason

    def test_explain_mismatch_is_specific(self):
        a = _spec(dims=("name", "market_id"))
        b = _spec(dims=("name",))
        # b's grain lacks market_id, so it cannot answer a.
        assert "absent from the cached grain" in explain_mismatch(b, a)


class TestLiteralCacheEvents:
    def test_hit_and_miss(self):
        cache = LiteralCache()
        with obs.recording() as rec:
            assert cache.get("q-text") is None
            cache.put("q-text", "db", _table())
            assert cache.get("q-text") is not None
        assert [e.outcome for e in rec.events("cache.literal")] == ["miss", "hit"]


class TestFusionEvents:
    def test_fused_and_not_fused(self):
        fusable = [
            _spec(measures=(("n", COUNT),)),
            _spec(measures=(("a", AVG_DELAY),)),
        ]
        loner = _spec(markets=(5,))
        with obs.recording() as rec:
            fuse_batch(fusable + [loner])
        fused = rec.events("fusion", outcome="fused")
        declined = rec.events("fusion", outcome="not_fused")
        assert len(fused) == 1 and len(declined) == 1
        assert "2 queries over the same relation" in fused[0].reason
        assert "shares this query's relation" in declined[0].reason


class TestPoolEvents:
    def test_open_reuse_evict(self):
        pool = ConnectionPool(make_source(), max_connections=2, idle_ttl_s=0.0)
        with obs.recording() as rec:
            with pool.connection():
                pass
            with pool.connection():
                pass
            pool.evict_idle()
        outcomes = [e.outcome for e in rec.events("pool")]
        assert outcomes == ["opened", "reused", "evicted"]
        opened, reused, evicted = rec.events("pool")
        assert "opened a new one (1/2)" in opened.reason
        assert "reused an idle connection" in reused.reason
        assert "release remote resources" in evicted.reason


class TestPrefetchEvents:
    def test_skipped_when_nothing_to_predict(self):
        from repro.core.prefetch import InteractionPrefetcher

        class _Session:  # minimal duck-typed session with no actions
            class dashboard:
                zones: dict = {}

                @staticmethod
                def actions_from(_name):
                    return []

            zone_tables: dict = {}
            selections: dict = {}

        prefetcher = InteractionPrefetcher(background=False)
        with obs.recording() as rec:
            assert prefetcher.observe(_Session(), "map", ("east",)) == 0
        ev = rec.events("prefetch")[0]
        assert ev.outcome == "skipped"
        assert "no candidate next interactions" in ev.reason
