"""Lint: every span name, event kind and link kind in src/ is registered.

Attribution is keyed by span name (:func:`repro.obs.names.component_of`);
an unregistered name would silently land in the catch-all component and
rot aggregate reports. This test greps the source tree so the registry
and the call sites cannot drift apart.
"""

import re
from pathlib import Path

from repro.obs import LINK_KINDS, SPAN_REGISTRY, component_of
from repro.obs.names import EVENT_REGISTRY, UNKNOWN_COMPONENT

SRC = Path(__file__).resolve().parents[2] / "src"

# \s* spans newlines, so multi-line call sites like
#   with obs.span(
#       "dataserver.query", ...
# are matched too.
SPAN_SITE = re.compile(r'obs\.span\(\s*"([^"]+)"')
LINK_SITE = re.compile(r'add_link\(\s*"([^"]+)"')
# Decision events are emitted either through the module-level helper
# (``obs.event("...")``) or the Telemetry plane's ``self._emit("...")``.
EVENT_SITE = re.compile(r'(?:obs\.event|self\._emit)\(\s*"([^"]+)"')


def _sites(pattern):
    found = {}
    for path in sorted(SRC.rglob("*.py")):
        for name in pattern.findall(path.read_text()):
            found.setdefault(name, []).append(str(path.relative_to(SRC)))
    return found


class TestSpanRegistry:
    def test_every_span_site_is_registered(self):
        unregistered = {
            name: paths
            for name, paths in _sites(SPAN_SITE).items()
            if name not in SPAN_REGISTRY
        }
        assert unregistered == {}, (
            f"span names missing from SPAN_REGISTRY: {unregistered}"
        )

    def test_every_registered_span_has_a_call_site(self):
        used = set(_sites(SPAN_SITE))
        stale = set(SPAN_REGISTRY) - used
        assert stale == set(), f"registry entries with no src/ call site: {stale}"

    def test_registry_entries_are_well_formed(self):
        for name, (component, description) in SPAN_REGISTRY.items():
            assert re.fullmatch(r"[a-z_]+\.[a-z_]+", name), name
            assert component and component != UNKNOWN_COMPONENT
            assert description
            assert component_of(name) == component

    def test_unknown_names_fall_into_the_catch_all(self):
        assert component_of("nonexistent.span") == UNKNOWN_COMPONENT


class TestEventRegistry:
    def test_every_event_site_is_registered(self):
        unregistered = {
            name: paths
            for name, paths in _sites(EVENT_SITE).items()
            if name not in EVENT_REGISTRY
        }
        assert unregistered == {}, (
            f"event kinds missing from EVENT_REGISTRY: {unregistered}"
        )

    def test_every_registered_event_has_a_call_site(self):
        used = set(_sites(EVENT_SITE))
        stale = set(EVENT_REGISTRY) - used
        assert stale == set(), f"registry entries with no src/ call site: {stale}"

    def test_event_entries_are_well_formed(self):
        # Historic single-word kinds ("fusion", "pool", "prefetch") are
        # grandfathered; every dotted kind follows area.verb.
        for name, description in EVENT_REGISTRY.items():
            assert re.fullmatch(r"[a-z_]+(\.[a-z_]+)?", name), name
            assert description


class TestLinkKinds:
    def test_every_link_site_uses_a_documented_kind(self):
        undocumented = {
            kind: paths
            for kind, paths in _sites(LINK_SITE).items()
            if kind not in LINK_KINDS
        }
        assert undocumented == {}, (
            f"link kinds missing from LINK_KINDS: {undocumented}"
        )

    def test_every_documented_kind_has_a_call_site(self):
        used = set(_sites(LINK_SITE))
        stale = set(LINK_KINDS) - used
        assert stale == set(), f"documented link kinds with no src/ site: {stale}"

    def test_kinds_carry_descriptions(self):
        for kind, description in LINK_KINDS.items():
            assert re.fullmatch(r"[a-z_]+\.[a-z_]+", kind), kind
            assert description
