"""Trace identity: deterministic ids, wire round-trips, activate, stitch, bind."""

from concurrent.futures import ThreadPoolExecutor

from repro import obs
from repro.obs import Span, TraceContext, Tracer, VirtualClock, stitch


def _workload(tracer: Tracer, clock: VirtualClock) -> list[Span]:
    """A fixed serial span shape; identical on every run."""
    for _ in range(3):
        with tracer.span("vizserver.request"):
            clock.advance(0.01)
            with tracer.span("pipeline.run_batch"):
                clock.advance(0.02)
                with tracer.span("executor.query"):
                    clock.advance(0.03)
    return tracer.roots


class TestDeterministicIdentity:
    def test_ids_are_counters_not_entropy(self):
        tracer = Tracer(clock=VirtualClock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        a, c = tracer.roots
        assert a.trace_id == f"{1:016x}"
        assert c.trace_id == f"{2:016x}"
        assert a.span_id == f"{1:012x}"
        assert a.children[0].span_id == f"{2:012x}"
        assert a.children[0].trace_id == a.trace_id
        assert a.children[0].parent_span_id == a.span_id

    def test_two_seeded_runs_are_byte_identical(self):
        runs = []
        for _ in range(2):
            clock = VirtualClock()
            roots = _workload(Tracer(clock=clock), clock)
            runs.append([r.to_dict() for r in roots])
        assert runs[0] == runs[1]

    def test_distinct_requests_get_distinct_trace_ids(self):
        clock = VirtualClock()
        roots = _workload(Tracer(clock=clock), clock)
        ids = [r.trace_id for r in roots]
        assert len(set(ids)) == 3


class TestWireFormat:
    def test_round_trip(self):
        ctx = TraceContext("00ab", "cd12")
        wire = ctx.to_wire()
        assert wire == {"trace_id": "00ab", "span_id": "cd12"}
        assert TraceContext.from_wire(wire) == ctx

    def test_tolerant_of_missing_or_foreign_envelopes(self):
        assert TraceContext.from_wire(None) is None
        assert TraceContext.from_wire({}) is None
        assert TraceContext.from_wire({"trace_id": "x"}) is None
        assert TraceContext.from_wire({"span_id": "y"}) is None
        assert TraceContext.from_wire({"trace_id": "", "span_id": "y"}) is None

    def test_span_context_property(self):
        tracer = Tracer(clock=VirtualClock())
        with tracer.span("a") as sp:
            ctx = sp.context
        assert ctx == TraceContext(sp.trace_id, sp.span_id)
        orphan = Span("loose", 0.0)
        assert orphan.context is None


class TestActivate:
    def test_next_root_adopts_wire_identity(self):
        tracer = Tracer(clock=VirtualClock())
        with tracer.span("vizserver.request") as near:
            wire = near.context.to_wire()
        remote = TraceContext.from_wire(wire)
        with tracer.activate(remote):
            with tracer.span("cluster.query"):
                pass
        far = tracer.roots[1]
        assert far.trace_id == near.trace_id
        assert far.parent_span_id == near.span_id

    def test_activate_detaches_the_local_stack(self):
        tracer = Tracer(clock=VirtualClock())
        with tracer.span("outer") as outer:
            with tracer.activate(TraceContext("00ff", "aa")):
                assert tracer.current() is None
                assert tracer.context() == TraceContext("00ff", "aa")
                with tracer.span("hop") as hop:
                    assert hop.parent is None  # a root, even in-process
            # state restored on exit
            assert tracer.current() is outer
        assert tracer.roots[1].trace_id == "00ff"

    def test_activate_none_is_a_transparent_noop(self):
        tracer = Tracer(clock=VirtualClock())
        with tracer.span("outer") as outer:
            with tracer.activate(None):
                with tracer.span("inner") as inner:
                    assert inner.parent is outer
        assert len(tracer.roots) == 1

    def test_stitch_reassembles_the_hop(self):
        tracer = Tracer(clock=VirtualClock())
        with tracer.span("vizserver.request") as near:
            wire = near.context.to_wire()
            with tracer.activate(TraceContext.from_wire(wire)):
                with tracer.span("dataserver.query"):
                    pass
        roots = stitch(tracer.roots)
        assert len(roots) == 1
        assert [s.name for s in roots[0].walk()] == [
            "vizserver.request",
            "dataserver.query",
        ]
        assert {s.trace_id for s in roots[0].walk()} == {near.trace_id}

    def test_stitch_leaves_unknown_parents_alone(self):
        orphan = Span("far", 0.0)
        orphan.trace_id, orphan.span_id = "0a", "01"
        orphan.parent_span_id = "unknown"
        orphan.end_s = 1.0
        assert stitch([orphan]) == [orphan]


class TestModuleSurfaces:
    def test_bind_is_identity_when_off(self):
        def fn():
            return 42

        assert obs.bind(fn) is fn

    def test_bind_carries_the_span_into_workers(self):
        clock = VirtualClock()
        with obs.recording(clock=clock):
            with obs.span("pipeline.remote_execution") as parent:

                def work(i):
                    with obs.span("executor.query", i=i):
                        clock.advance(0.01)
                    return i

                with ThreadPoolExecutor(max_workers=2) as tp:
                    list(tp.map(obs.bind(work), range(4)))
            root = obs.get_tracer().roots[0]
        assert len(root.find_all("executor.query")) == 4
        assert {c.trace_id for c in root.children} == {parent.trace_id}

    def test_current_trace_context_is_none_when_off(self):
        assert obs.current_trace_context() is None
        assert obs.current_span() is None

    def test_null_span_link_and_identity_surfaces(self):
        with obs.span("anything") as sp:  # tracing off: the null span
            assert sp.trace_id == ""
            assert sp.context is None
            assert sp.add_link("coalesce.leader", TraceContext("a", "b")) is sp
            assert sp.links is None

    def test_enable_with_sink_diverts_roots(self):
        seen = []
        obs.enable(VirtualClock(), sink=seen.append)
        try:
            with obs.span("vizserver.request"):
                pass
            assert [s.name for s in seen] == ["vizserver.request"]
            assert obs.get_tracer().roots == []  # not double-kept
        finally:
            obs.disable()
