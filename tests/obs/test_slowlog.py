"""The worst-N slow-query log: cheap admission, heap eviction, snapshots."""

from __future__ import annotations

from repro.obs.slowlog import SlowQueryEntry, SlowQueryLog


def entry(key: str, wall_s: float, **kwargs) -> SlowQueryEntry:
    defaults = dict(t_s=0.0, outcome="ok", context={}, ledgers={}, events=[])
    defaults.update(kwargs)
    return SlowQueryEntry(key=key, wall_s=wall_s, **defaults)


class TestAdmission:
    def test_below_threshold_is_never_a_candidate(self):
        log = SlowQueryLog(4, threshold_s=0.1)
        assert not log.would_admit(0.05)
        assert log.would_admit(0.2)
        # Sub-threshold requests bail before the (locked) considered
        # bump — the per-request cost of a quiet server is one compare.
        assert log.considered == 1

    def test_would_admit_peeks_the_heap_once_full(self):
        log = SlowQueryLog(2)
        log.admit(entry("a", 1.0))
        log.admit(entry("b", 2.0))
        assert not log.would_admit(0.5)  # not worse than the best kept
        assert log.would_admit(1.5)

    def test_admit_returns_false_when_raced_out(self):
        """A request that passed would_admit can still lose the race to a
        worse one admitted in between; admit() says so instead of lying."""
        log = SlowQueryLog(1)
        log.admit(entry("a", 1.0))
        assert not log.admit(entry("b", 0.5))
        assert [e.key for e in log.entries()] == ["a"]


class TestEviction:
    def test_keeps_the_worst_n(self):
        log = SlowQueryLog(3)
        for i, wall in enumerate([0.1, 0.5, 0.3, 0.9, 0.2, 0.7]):
            log.admit(entry(f"q{i}", wall))
        assert [e.wall_s for e in log.entries()] == [0.9, 0.7, 0.5]
        assert log.admitted == 5  # 0.2 never displaced anything

    def test_entries_sorted_worst_first_stable_on_ties(self):
        log = SlowQueryLog(4)
        log.admit(entry("first", 1.0))
        log.admit(entry("second", 1.0))
        log.admit(entry("worst", 2.0))
        assert [e.key for e in log.entries()] == ["worst", "first", "second"]


class TestSnapshot:
    def test_snapshot_is_plain_data(self):
        log = SlowQueryLog(2, threshold_s=0.1)
        log.admit(
            entry(
                "u/dash/load",
                1.5,
                outcome="degraded",
                context={"node": 0},
                ledgers={"zone": {"wall_s": 1.5}},
                events=[{"kind": "cache.literal"}],
                explain={"zone": "market"},
            )
        )
        snap = log.snapshot()
        assert snap["capacity"] == 2 and snap["threshold_s"] == 0.1
        (e,) = snap["entries"]
        assert e["key"] == "u/dash/load"
        assert e["outcome"] == "degraded"
        assert e["ledgers"]["zone"]["wall_s"] == 1.5
        assert e["explain"] == {"zone": "market"}

    def test_reset_clears_entries_and_counters(self):
        log = SlowQueryLog(2)
        log.admit(entry("a", 1.0))
        log.reset()
        assert len(log) == 0
        assert log.considered == 0 and log.admitted == 0
