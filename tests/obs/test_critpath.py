"""Critical-path analyzer: hand-built DAGs, link descent, conservation."""

import itertools

from repro.obs import Span, TraceContext, aggregate_report, critical_path, link_resolver
from repro.obs.critpath import slowlog_path
from repro.obs.sampling import SamplingPolicy, TraceBuffer

_IDS = itertools.count(1)


def _span(name, start, end, *, trace="0000000000000001", parent=None):
    span = Span(name, float(start))
    span.end_s = None if end is None else float(end)
    span.trace_id = trace
    span.span_id = f"{next(_IDS):012x}"
    if parent is not None:
        span.parent = parent
        span.parent_span_id = parent.span_id
        parent.children.append(span)
    return span


def _total(segments):
    return sum(seg.duration_s for seg in segments)


def _shape(segments):
    return [(seg.name, seg.start_s, seg.end_s, seg.via) for seg in segments]


class TestSingleTrace:
    def test_sequential_children_partition_exactly(self):
        root = _span("vizserver.request", 0, 10)
        _span("pipeline.compile", 1, 4, parent=root)
        _span("executor.query", 5, 9, parent=root)
        segments = critical_path(root)
        assert _shape(segments) == [
            ("vizserver.request", 0, 1, ""),
            ("pipeline.compile", 1, 4, ""),
            ("vizserver.request", 4, 5, ""),
            ("executor.query", 5, 9, ""),
            ("vizserver.request", 9, 10, ""),
        ]
        assert _total(segments) == root.duration_s

    def test_concurrent_sibling_is_not_determinative(self):
        # a finishes at 7 while b runs until 10: shortening a would not
        # have shortened the response, so a contributes nothing.
        root = _span("pipeline.remote_execution", 0, 10)
        _span("executor.query", 0, 7, parent=root)
        b = _span("executor.query", 3, 10, parent=root)
        segments = critical_path(root)
        assert _shape(segments) == [
            ("pipeline.remote_execution", 0, 3, ""),
            ("executor.query", 3, 10, ""),
        ]
        assert segments[1].trace_id == b.trace_id
        assert _total(segments) == root.duration_s

    def test_nested_descent_charges_leaf_self_time(self):
        root = _span("vizserver.request", 0, 10)
        batch = _span("pipeline.run_batch", 1, 9, parent=root)
        _span("executor.remote_fetch", 2, 8, parent=batch)
        segments = critical_path(root)
        assert _shape(segments) == [
            ("vizserver.request", 0, 1, ""),
            ("pipeline.run_batch", 1, 2, ""),
            ("executor.remote_fetch", 2, 8, ""),
            ("pipeline.run_batch", 8, 9, ""),
            ("vizserver.request", 9, 10, ""),
        ]
        assert [seg.component for seg in segments] == [
            "server",
            "pipeline",
            "backend",
            "pipeline",
            "server",
        ]

    def test_open_or_zero_width_roots(self):
        open_root = _span("vizserver.request", 0, None)
        assert critical_path(open_root) == []
        instant = _span("vizserver.request", 5, 5)
        assert critical_path(instant) == []

    def test_open_children_are_ignored(self):
        root = _span("vizserver.request", 0, 10)
        _span("executor.query", 1, None, parent=root)  # never closed
        segments = critical_path(root)
        assert _shape(segments) == [("vizserver.request", 0, 10, "")]


class TestLinkDescent:
    def _follower_and_leader(self, leader_window=(2, 8)):
        leader = _span(
            "executor.remote_fetch",
            leader_window[0],
            leader_window[1],
            trace="000000000000000a",
        )
        follower = _span("vizserver.request", 0, 10, trace="000000000000000b")
        wait = _span(
            "pipeline.coalesce_wait", 2, 8, trace="000000000000000b", parent=follower
        )
        wait.add_link("coalesce.leader", TraceContext(leader.trace_id, leader.span_id))
        return follower, leader

    def test_path_descends_into_the_linked_trace(self):
        follower, leader = self._follower_and_leader()
        segments = critical_path(follower, resolve_link=link_resolver([follower, leader]))
        assert _shape(segments) == [
            ("vizserver.request", 0, 2, ""),
            ("executor.remote_fetch", 2, 8, "coalesce.leader"),
            ("vizserver.request", 8, 10, ""),
        ]
        assert segments[1].trace_id == leader.trace_id
        assert segments[1].component == "backend"
        assert _total(segments) == follower.duration_s

    def test_partial_overlap_charges_the_remainder_to_the_waiter(self):
        # Leader only covers [4, 8] of the wait's [2, 8]: the leading
        # 2s stay charged to the waiting span itself.
        follower, leader = self._follower_and_leader(leader_window=(4, 8))
        segments = critical_path(follower, resolve_link=link_resolver([follower, leader]))
        assert _shape(segments) == [
            ("vizserver.request", 0, 2, ""),
            ("pipeline.coalesce_wait", 2, 4, ""),
            ("executor.remote_fetch", 4, 8, "coalesce.leader"),
            ("vizserver.request", 8, 10, ""),
        ]
        assert _total(segments) == follower.duration_s

    def test_no_absolute_overlap_falls_back_to_a_plain_segment(self):
        follower, leader = self._follower_and_leader(leader_window=(20, 30))
        segments = critical_path(follower, resolve_link=link_resolver([follower, leader]))
        assert _shape(segments) == [
            ("vizserver.request", 0, 2, ""),
            ("pipeline.coalesce_wait", 2, 8, ""),
            ("vizserver.request", 8, 10, ""),
        ]

    def test_unresolvable_link_is_charged_locally(self):
        follower, _ = self._follower_and_leader()
        segments = critical_path(follower, resolve_link=link_resolver([follower]))
        assert _shape(segments)[1] == ("pipeline.coalesce_wait", 2, 8, "")

    def test_max_link_depth_zero_disables_following(self):
        follower, leader = self._follower_and_leader()
        segments = critical_path(
            follower, resolve_link=link_resolver([follower, leader]), max_link_depth=0
        )
        assert _shape(segments)[1] == ("pipeline.coalesce_wait", 2, 8, "")

    def test_conservation_holds_through_links(self):
        follower, leader = self._follower_and_leader()
        _span("simdb.select", 3, 7, trace=leader.trace_id, parent=leader)
        segments = critical_path(follower, resolve_link=link_resolver([follower, leader]))
        assert abs(_total(segments) - follower.duration_s) < 1e-9
        assert _total(segments) <= follower.duration_s + 1e-9


class TestAggregateReport:
    def _traces(self):
        roots = []
        for n, backend_s in enumerate((8.0, 8.0, 1.0), start=1):
            root = _span("vizserver.request", 0, 10, trace=f"{n:016x}")
            _span(
                "executor.remote_fetch", 1, 1 + backend_s, trace=root.trace_id, parent=root
            )
            roots.append(root)
        return roots

    def test_dominant_component_and_share_sum(self):
        report = aggregate_report(self._traces(), percentile=0.0)
        assert report["traces"] == 3
        assert report["analyzed"] == 3
        assert report["dominant"] == "backend"
        assert abs(sum(row["share"] for row in report["components"]) - 1.0) < 1e-9
        by_name = {row["component"]: row["self_s"] for row in report["components"]}
        assert by_name["backend"] == 17.0
        assert by_name["server"] == 13.0
        assert abs(sum(by_name.values()) - 30.0) < 1e-9  # = total wall analyzed

    def test_percentile_narrows_the_analyzed_set(self):
        roots = self._traces()
        roots[0].end_s = 20.0  # one distinctly slow trace
        report = aggregate_report(roots, percentile=0.95)
        assert report["analyzed"] == 1
        assert report["threshold_s"] == 20.0

    def test_path_signature_is_first_touch_component_order(self):
        report = aggregate_report(self._traces(), percentile=0.0)
        assert report["top_paths"][0]["path"] == "server > backend"
        assert report["top_paths"][0]["count"] == 3

    def test_empty_input(self):
        report = aggregate_report([])
        assert report == {
            "traces": 0,
            "analyzed": 0,
            "threshold_s": 0.0,
            "components": [],
            "dominant": None,
            "top_paths": [],
        }


class TestSlowlogPath:
    def test_none_for_untraced_or_open_roots(self):
        assert slowlog_path(None) is None
        untraced = Span("vizserver.request", 0.0)
        untraced.end_s = 1.0
        assert slowlog_path(untraced) is None
        open_root = _span("vizserver.request", 0, None)
        assert slowlog_path(open_root) is None

    def test_rows_conserve_the_wall_time(self):
        root = _span("vizserver.request", 0, 10)
        _span("executor.query", 2, 9, parent=root)
        rows = slowlog_path(root)
        assert [row["name"] for row in rows] == [
            "vizserver.request",
            "executor.query",
            "vizserver.request",
        ]
        assert abs(sum(row["self_s"] for row in rows) - root.duration_s) < 1e-9

    def test_buffer_supplies_link_targets(self):
        leader = _span("executor.remote_fetch", 2, 8, trace="00000000000000aa")
        follower = _span("vizserver.request", 0, 10, trace="00000000000000bb")
        wait = _span(
            "pipeline.coalesce_wait", 2, 8, trace=follower.trace_id, parent=follower
        )
        wait.add_link("coalesce.leader", TraceContext(leader.trace_id, leader.span_id))
        buf = TraceBuffer(SamplingPolicy(slow_threshold_s=1.0))
        buf.offer(leader)
        rows = slowlog_path(follower, buf)
        assert [(row["name"], row.get("via", "")) for row in rows] == [
            ("vizserver.request", ""),
            ("executor.remote_fetch", "coalesce.leader"),
            ("vizserver.request", ""),
        ]
