"""End-to-end traces over the real pipeline: phase spans, thread hand-off,
phase-sum ≈ elapsed, and the new derived_hits accounting."""

import pytest

from repro import obs
from repro.core.pipeline import PipelineOptions, QueryPipeline
from repro.queries import CategoricalFilter
from tests.core.conftest import AVG_DELAY, COUNT, SUM_DELAY, make_model, make_source, spec

PHASES = [
    "pipeline.cache_probe",
    "pipeline.batch_graph",
    "pipeline.fusion",
    "pipeline.compile",
    "pipeline.remote_execution",
    "pipeline.post_processing",
    "pipeline.local_answers",
]


def fusable_batch():
    return [
        spec(dimensions=("name",), measures=(("n", COUNT), ("a", AVG_DELAY))),
        spec(dimensions=("name",), measures=(("s", SUM_DELAY),)),
        spec(measures=(("total", COUNT),)),
    ]


class TestPipelineTrace:
    def test_run_batch_has_all_phase_spans(self):
        pipe = QueryPipeline(make_source(), make_model())
        with obs.recording() as rec:
            pipe.run_batch(fusable_batch())
        root = rec.find("pipeline.run_batch")
        assert root is not None
        child_names = [c.name for c in root.children]
        assert child_names == PHASES
        assert root.attributes["specs"] == 3
        assert root.attributes["remote_queries"] == 1
        assert root.attributes["fused_away"] == 1

    def test_phase_spans_sum_close_to_elapsed(self):
        pipe = QueryPipeline(make_source(), make_model())
        with obs.recording() as rec:
            result = pipe.run_batch(fusable_batch())
        root = rec.find("pipeline.run_batch")
        phase_total = sum(c.duration_s for c in root.children)
        # The phases cover the batch end-to-end: their sum accounts for
        # (nearly) all of BatchResult.elapsed_s.
        assert phase_total == pytest.approx(result.elapsed_s, rel=0.10)
        assert root.duration_s >= phase_total

    def test_executor_spans_nest_under_remote_execution(self):
        # The executor runs queries on pool threads; spans must still land
        # under pipeline.remote_execution via the explicit attach hand-off.
        pipe = QueryPipeline(make_source(), make_model())
        batch = [
            spec(dimensions=("name",), measures=(("n", COUNT),)),
            spec(dimensions=("market",), measures=(("s", SUM_DELAY),)),
        ]
        with obs.recording() as rec:
            pipe.run_batch(batch)
        remote = rec.find("pipeline.remote_execution")
        queries = remote.find_all("executor.query")
        assert len(queries) == 2
        # No executor span escaped to become its own root.
        assert [r.name for r in rec.spans] == ["pipeline.run_batch"]
        for q in queries:
            assert q.find("executor.remote_fetch") is not None

    def test_metrics_populated_along_the_hot_path(self):
        pipe = QueryPipeline(make_source(), make_model())
        with obs.recording() as rec:
            pipe.run_batch(fusable_batch())
            pipe.run_batch(fusable_batch())  # second pass hits the cache
        snap = rec.metrics.snapshot()
        assert snap["cache.intelligent.misses"]["value"] >= 1
        # The repeat batch is answered from cache (the enriched entry
        # subsumes each member spec).
        assert snap["cache.intelligent.subsumption_hits"]["value"] >= 1
        assert snap["executor.query_s"]["count"] >= 1
        assert snap["pool.opened"]["value"] >= 1
        assert snap["simdb.queries"]["value"] >= 1

    def test_tde_operator_recorder_attached(self):
        pipe = QueryPipeline(make_source(), make_model())
        with obs.recording() as rec:
            pipe.run_batch(fusable_batch())
        tde = rec.find("tde.execute")
        assert tde is not None
        ops = tde.attributes["operators"]
        assert ops
        for stats in ops.values():
            assert {"rows", "seconds", "batches"} <= set(stats)

    def test_tracing_does_not_change_results(self):
        batch = fusable_batch()
        plain = QueryPipeline(make_source(), make_model()).run_batch(batch)
        with obs.recording():
            traced = QueryPipeline(make_source(), make_model()).run_batch(batch)
        for s in batch:
            assert traced.table_for(s).approx_equals(plain.table_for(s), ordered=False)


class TestDerivedHits:
    def test_batch_local_answer_counts_as_derived_hit(self):
        pipe = QueryPipeline(make_source(), make_model())
        result = pipe.run_batch(fusable_batch())
        # The grand-total spec is answered locally from the cache entry the
        # fused remote result populated — a derivation, not a probe hit.
        assert result.batch_local == 1
        assert result.derived_hits >= 1
        assert result.cache_hits == 0

    def test_probe_hits_stay_separate_from_derived_hits(self):
        pipe = QueryPipeline(make_source(), make_model())
        base = spec(
            dimensions=("name",),
            measures=(("n", COUNT),),
            filters=(CategoricalFilter("market_id", (0, 1, 2, 3)),),
        )
        pipe.run_batch([base])
        narrowed = base.with_filters((CategoricalFilter("market_id", (1, 2)),))
        result = pipe.run_batch([narrowed])
        assert result.cache_hits == 1
        assert result.derived_hits == 0

    def test_exact_refetch_is_not_a_derived_hit(self):
        # Without enrichment the sent spec equals the member spec, so the
        # phase-4 cache read-back of its own fresh entry must not count.
        pipe = QueryPipeline(
            make_source(), make_model(), options=PipelineOptions(enrich_for_reuse=False)
        )
        result = pipe.run_batch([spec(dimensions=("name",), measures=(("n", COUNT),))])
        assert result.remote_queries == 1
        assert result.derived_hits == 0
