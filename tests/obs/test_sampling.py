"""Tail-based sampling: keep rules, deterministic 1-in-N, bounded memory."""

import json

from repro.obs import SamplingPolicy, Span, TraceBuffer, TraceContext
from repro.obs.trace import VirtualClock, Tracer


def _root(wall_s: float, n: int = 1, **attributes) -> Span:
    """A closed single-span trace with deterministic identity."""
    span = Span("vizserver.request", 0.0)
    span.end_s = wall_s
    span.trace_id = f"{n:016x}"
    span.span_id = f"{n:012x}"
    span.attributes.update(attributes)
    return span


class TestKeepRules:
    def test_slow_traces_are_always_kept(self):
        buf = TraceBuffer(SamplingPolicy(slow_threshold_s=0.25, sample_every_n=0))
        assert buf.offer(_root(0.30)) == "slow"
        assert buf.offer(_root(0.25)) == "slow"  # threshold is inclusive
        assert buf.offer(_root(0.10)) is None
        assert buf.snapshot()["reasons"] == {"slow": 2}

    def test_errors_and_stale_serves_are_kept(self):
        buf = TraceBuffer(SamplingPolicy(slow_threshold_s=10.0, sample_every_n=0))
        assert buf.offer(_root(0.01, 1, error="ValueError('x')")) == "error"
        assert buf.offer(_root(0.01, 2, stale=True)) == "stale"
        assert buf.offer(_root(0.01, 3, stale_zones=["z"])) == "stale"

    def test_error_anywhere_in_the_tree_is_found(self):
        root = _root(0.01)
        child = Span("executor.query", 0.0)
        child.end_s = 0.01
        child.attributes["error"] = "SourceUnavailableError"
        root.children.append(child)
        buf = TraceBuffer(SamplingPolicy(slow_threshold_s=10.0, sample_every_n=0))
        assert buf.offer(root) == "error"

    def test_breaker_links_are_kept(self):
        root = _root(0.01)
        root.add_link("breaker.opened_by", TraceContext("0a", "01"))
        buf = TraceBuffer(SamplingPolicy(slow_threshold_s=10.0, sample_every_n=0))
        assert buf.offer(root) == "breaker"

    def test_force_overrides_the_tree_inspection(self):
        buf = TraceBuffer(SamplingPolicy(slow_threshold_s=10.0, sample_every_n=0))
        assert buf.offer(_root(0.01), force="stale") == "stale"
        assert buf.snapshot()["reasons"] == {"stale": 1}


class TestDeterministicSample:
    def test_one_in_n_by_offer_order(self):
        buf = TraceBuffer(SamplingPolicy(slow_threshold_s=10.0, sample_every_n=10))
        reasons = [buf.offer(_root(0.01, n)) for n in range(1, 26)]
        kept_offers = [i + 1 for i, r in enumerate(reasons) if r == "sampled"]
        assert kept_offers == [1, 11, 21]
        assert buf.dropped == 25 - 3

    def test_every_one_keeps_everything(self):
        buf = TraceBuffer(SamplingPolicy(slow_threshold_s=10.0, sample_every_n=1))
        assert all(
            buf.offer(_root(0.01, n)) == "sampled" for n in range(1, 6)
        )
        assert buf.dropped == 0

    def test_zero_disables_sampling(self):
        buf = TraceBuffer(SamplingPolicy(slow_threshold_s=10.0, sample_every_n=0))
        assert buf.offer(_root(0.01)) is None
        assert buf.dropped == 1

    def test_null_spans_are_ignored_before_counting(self):
        buf = TraceBuffer(SamplingPolicy(sample_every_n=1))
        assert buf.offer(Span("untraced", 0.0)) is None  # no trace_id
        assert buf.offered == 0
        assert buf.dropped == 0


class TestBoundsAndExport:
    def test_populations_are_bounded_oldest_evict_first(self):
        buf = TraceBuffer(
            SamplingPolicy(
                slow_threshold_s=0.1, sample_every_n=1, max_kept=2, max_sampled=2
            )
        )
        for n in range(1, 5):
            buf.offer(_root(0.5, n))  # all slow
        for n in range(5, 9):
            buf.offer(_root(0.01, n))  # all sampled
        ids = [r.trace_id for r in buf.traces()]
        assert ids == [f"{n:016x}" for n in (3, 4, 7, 8)]

    def test_find_by_trace_id(self):
        buf = TraceBuffer(SamplingPolicy(slow_threshold_s=0.1))
        root = _root(0.5, 7)
        buf.offer(root)
        assert buf.find(root.trace_id) is root
        assert buf.find("missing") is None

    def test_snapshot_shape(self):
        buf = TraceBuffer(SamplingPolicy(slow_threshold_s=0.1, sample_every_n=2))
        buf.offer(_root(0.5, 1))  # kept: slow
        buf.offer(_root(0.01, 2))  # offer 2: 2 % 2 != 1 -> dropped
        buf.offer(_root(0.01, 3))  # offer 3: 3 % 2 == 1 -> sampled
        snap = buf.snapshot()
        assert snap["offered"] == 3
        assert snap["dropped"] == 1
        assert snap["kept"] == 1
        assert snap["sampled"] == 1
        assert snap["kept_trace_ids"][0]["reason"] == "slow"
        assert snap["kept_trace_ids"][0]["wall_s"] == 0.5

    def test_export_jsonl_round_trips(self):
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("vizserver.request", user="u1"):
            clock.advance(0.4)
            with tracer.span("pipeline.run_batch"):
                clock.advance(0.2)
        buf = TraceBuffer(SamplingPolicy(slow_threshold_s=0.1))
        buf.offer(tracer.roots[0])
        lines = buf.export_jsonl().splitlines()
        assert len(lines) == 1
        rebuilt = Span.from_dict(json.loads(lines[0]))
        assert rebuilt.to_dict() == tracer.roots[0].to_dict()

    def test_reset_clears_everything(self):
        buf = TraceBuffer(SamplingPolicy(slow_threshold_s=0.1))
        buf.offer(_root(0.5))
        buf.reset()
        assert buf.traces() == []
        assert buf.offered == 0
        assert buf.snapshot()["reasons"] == {}
