"""EXPLAIN/ANALYZE: determinism, estimates vs actuals, provenance."""

import json
import re

from repro.obs.explain import ExplainResult

AGG = '(aggregate (name) ((n (count)) (d (avg delay))) (join inner ((carrier_id id)) (scan "Extract.flights") (scan "Extract.carriers")))'
RLE = '(aggregate () ((n (count))) (select (= date_ (date "2014-03-05")) (scan "Extract.flights")))'


class TestExplain:
    def test_deterministic_text(self, flights_engine):
        first = flights_engine.explain(AGG)
        second = flights_engine.explain(AGG)
        assert first == second

    def test_no_raw_identities(self, flights_engine):
        text = flights_engine.explain(AGG, analyze=True)
        assert "0x" not in text
        assert "object at" not in text

    def test_operators_numbered_preorder(self, flights_engine):
        result = flights_engine.explain(AGG)
        ops = re.findall(r"#(\d+) ", str(result))
        assert ops == [str(i) for i in range(len(ops))]
        assert len(ops) >= 3

    def test_every_operator_has_estimate(self, flights_engine):
        result = flights_engine.explain(AGG)
        assert isinstance(result, ExplainResult)

        def walk(entry):
            yield entry
            for child in entry["children"]:
                yield from walk(child)

        nodes = list(walk(result.to_dict()["plan"]))
        assert nodes
        for node in nodes:
            assert node["est_rows"] >= 0
            assert node.get("actual") is None  # not an ANALYZE run

    def test_analyze_has_actuals_for_every_operator(self, flights_engine):
        result = flights_engine.explain(AGG, analyze=True)
        data = result.to_dict()
        assert data["analyze"] is True
        assert data["result_rows"] > 0

        def walk(entry):
            yield entry
            for child in entry["children"]:
                yield from walk(child)

        nodes = list(walk(data["plan"]))
        for node in nodes:
            actual = node["actual"]
            assert actual is not None, node["label"]
            assert actual["rows"] >= 0
            assert actual["seconds"] >= 0
        # The text form carries both estimate and actual per line.
        for line in str(result).splitlines():
            if line.strip().startswith("#"):
                assert "est=" in line and "actual=" in line

    def test_provenance_sections(self, flights_engine):
        text = str(flights_engine.explain(AGG))
        assert "== optimizer provenance ==" in text
        assert "fired:" in text and "declined:" in text
        assert "parallel.decide_dop" in text
        # The join collapses through the total+onto FK: culling must
        # explain itself either way it decided.
        assert "culling.dimension_removal" in text

    def test_rle_index_provenance(self, flights_engine):
        text = str(flights_engine.explain(RLE))
        assert "decompression.rle_index" in text
        assert "IndexedRleScan" in text or "selectivity" in text

    def test_json_round_trip(self, flights_engine):
        result = flights_engine.explain(AGG, analyze=True)
        data = json.loads(result.to_json())
        assert data["query"] == AGG
        assert data["plan"]["op"] == 0

    def test_result_is_still_a_string(self, flights_engine):
        # Pre-existing callers treat explain() as text; keep that contract.
        text = flights_engine.explain(AGG)
        assert isinstance(text, str)
        assert "HashJoin" in text
