"""Per-request latency ledgers: the conservation invariant, end to end.

The contract under test: every spec a ledger-enabled pipeline serves —
fresh, cache hit, derived, fused, coalesced follower, degraded stale,
error — carries a finished :class:`RequestLedger` whose named phases sum
*exactly* to its measured wall time (``queue`` absorbs the residual), and
the disabled path allocates nothing from the telemetry modules at all.
"""

from __future__ import annotations

import threading
import time
import tracemalloc

import pytest

from repro.core.coalesce import SingleFlightRegistry
from repro.core.pipeline import PipelineOptions, QueryPipeline
from repro.faults import FaultPlan, FaultRule, FaultyDataSource, VirtualTimeClock
from repro.obs.ledger import PHASES, LedgerBook, RequestLedger
from tests.core.conftest import COUNT, make_model, make_source, spec
from tests.core.test_coalesce import GatedSource
from tests.difftest.gen import gen_specs

#: Every outcome a pipeline-owned ledger may legally finish with.
OUTCOMES = {
    "cache_hit", "fresh", "derived", "fused", "batch_local",
    "coalesced", "stale", "error",
}


def assert_conserved(ledger: RequestLedger) -> None:
    """The invariant: finished, phases sum to wall, no negative work."""
    assert ledger.finished, ledger
    phases = ledger.phases
    assert set(phases) == set(PHASES)
    assert sum(phases.values()) == pytest.approx(ledger.wall_s, abs=1e-9), ledger
    for phase, charged in phases.items():
        if phase != "queue":  # queue is the residual; tiny float error ok
            assert charged >= 0.0, ledger
    assert phases["queue"] >= -1e-9, ledger


def _pipeline(source=None, *, coalescer=None, clock=None, **overrides):
    options = dict(enable_ledger=True)
    options.update(overrides)
    return QueryPipeline(
        source or make_source(),
        make_model(),
        options=PipelineOptions(**options),
        coalescer=coalescer,
        clock=clock,
    )


# ---------------------------------------------------------------------- #
# RequestLedger / LedgerBook units
# ---------------------------------------------------------------------- #
class TestRequestLedger:
    def test_unknown_phase_rejected(self):
        ledger = RequestLedger("k", 0.0)
        with pytest.raises(ValueError, match="unknown ledger phase"):
            ledger.charge("gpu", 1.0)

    def test_nonpositive_charges_ignored(self):
        ledger = RequestLedger("k", 0.0)
        ledger.charge("execute", 0.0)
        ledger.charge("execute", -1.0)
        ledger.finish(1.0, "fresh")
        assert ledger.phases["execute"] == 0.0
        assert ledger.phases["queue"] == pytest.approx(1.0)

    def test_residual_lands_in_queue(self):
        ledger = RequestLedger("k", 10.0)
        ledger.charge("compile", 0.25)
        ledger.charge("execute", 0.5)
        ledger.finish(11.0, "fresh")
        assert ledger.wall_s == pytest.approx(1.0)
        assert ledger.phases["queue"] == pytest.approx(0.25)
        assert_conserved(ledger)

    def test_finish_is_idempotent(self):
        ledger = RequestLedger("k", 0.0)
        ledger.finish(1.0, "fresh")
        ledger.finish(99.0, "error")
        assert ledger.outcome == "fresh"
        assert ledger.wall_s == pytest.approx(1.0)

    def test_close_out_widens_both_margins(self):
        ledger = RequestLedger("k", 5.0)
        ledger.charge("execute", 1.0)
        ledger.finish(6.0, "fresh")
        ledger.close_out(4.0, 8.0)
        assert ledger.phases["queue"] == pytest.approx(1.0)  # 4.0 -> 5.0
        assert ledger.phases["render"] == pytest.approx(2.0)  # 6.0 -> 8.0
        assert ledger.wall_s == pytest.approx(4.0)
        assert_conserved(ledger)

    def test_close_out_again_with_wider_window_only_adds_margins(self):
        ledger = RequestLedger("k", 5.0)
        ledger.finish(6.0, "cache_hit")
        ledger.close_out(4.5, 6.5)  # the render window
        ledger.close_out(4.0, 7.0)  # the server-request window
        assert ledger.wall_s == pytest.approx(3.0)
        assert ledger.phases["queue"] == pytest.approx(2.0)
        assert ledger.phases["render"] == pytest.approx(1.0)
        assert_conserved(ledger)

    def test_active_s_excludes_queue_and_render(self):
        ledger = RequestLedger("k", 0.0)
        ledger.charge("execute", 2.0)
        ledger.charge("post_ops", 1.0)
        ledger.finish(5.0, "fresh")
        ledger.close_out(0.0, 6.0)
        assert ledger.active_s == pytest.approx(3.0)

    def test_to_dict_shape(self):
        ledger = RequestLedger("k", 0.0)
        ledger.finish(1.0, "fresh")
        d = ledger.to_dict()
        assert d["key"] == "k" and d["outcome"] == "fresh"
        assert list(d["phases"]) == list(PHASES)


class TestLedgerBook:
    def test_open_is_idempotent_per_key(self):
        book = LedgerBook(lambda: 0.0)
        assert book.open("a") is book.open("a")

    def test_close_finishes_stragglers(self):
        t = [0.0]
        book = LedgerBook(lambda: t[0])
        book.open("a")
        t[0] = 2.0
        book.finish("a", "fresh")
        book.charge("b", "execute", 0.5)
        t[0] = 3.0
        ledgers = book.close(default_outcome="batch_local")
        assert ledgers["a"].outcome == "fresh"
        assert ledgers["b"].outcome == "batch_local"
        for ledger in ledgers.values():
            assert_conserved(ledger)


# ---------------------------------------------------------------------- #
# Pipeline integration: conservation on every serving path
# ---------------------------------------------------------------------- #
class TestPipelineConservation:
    @pytest.mark.parametrize("seed", [3, 17, 42])
    def test_generated_batches_conserve_cold_and_warm(self, seed):
        """Property-style: difftest-generated specs, cold then warm."""
        pipeline = _pipeline()
        specs = gen_specs(seed, 8)
        cold = pipeline.run_batch(specs)
        assert cold.ok
        for s in specs:
            ledger = cold.ledger_for(s)
            assert ledger is not None and ledger.key == s.canonical()
            assert ledger.outcome in OUTCOMES
            assert_conserved(ledger)
        warm = pipeline.run_batch(specs)
        for s in specs:
            ledger = warm.ledger_for(s)
            assert ledger.outcome == "cache_hit"
            assert ledger.phases["cache_probe"] > 0.0
            assert_conserved(ledger)

    def test_elapsed_bounds_every_ledger(self):
        pipeline = _pipeline()
        specs = gen_specs(5, 6)
        result = pipeline.run_batch(specs)
        for ledger in result.ledgers.values():
            assert ledger.wall_s <= result.elapsed_s + 1e-6

    def test_coalesced_follower_charges_the_wait(self):
        source = GatedSource(make_source())
        registry = SingleFlightRegistry("warehouse")
        options = dict(
            enable_intelligent_cache=False,
            enable_literal_cache=False,
            enrich_for_reuse=False,
            coalesce_wait_timeout_s=10.0,
        )
        narrow = spec(dimensions=("name",), measures=(("n", COUNT),))
        leader_pipe = _pipeline(source, coalescer=registry, **options)
        follower_pipe = _pipeline(source, coalescer=registry, **options)

        leader_out, follower_out = {}, {}
        leader = threading.Thread(
            target=lambda: leader_out.update(r=leader_pipe.run_batch([narrow]))
        )
        leader.start()
        assert source.started.wait(10.0)
        follower = threading.Thread(
            target=lambda: follower_out.update(r=follower_pipe.run_batch([narrow]))
        )
        follower.start()
        deadline = time.monotonic() + 10.0
        while registry.stats.exact_joins < 1:
            assert time.monotonic() < deadline, "follower never joined"
            time.sleep(0.001)
        source.gate.set()
        leader.join(10.0)
        follower.join(10.0)

        lead_ledger = leader_out["r"].ledger_for(narrow)
        assert lead_ledger.outcome == "fresh"
        assert lead_ledger.phases["execute"] > 0.0
        assert_conserved(lead_ledger)
        follow_ledger = follower_out["r"].ledger_for(narrow)
        assert follow_ledger.outcome == "coalesced"
        assert follow_ledger.phases["coalesce_wait"] > 0.0
        assert_conserved(follow_ledger)

    def test_degraded_stale_serve_conserves(self):
        clock = VirtualTimeClock()
        plan = FaultPlan.scripted(
            [FaultRule("error", t_from=100.0)], clock=clock
        )
        source = FaultyDataSource(make_source(), plan, clock=clock)
        pipeline = _pipeline(
            source,
            clock=clock,
            enable_intelligent_cache=False,
            enable_literal_cache=False,
            serve_stale=True,
        )
        specs = gen_specs(11, 4)
        warm = pipeline.run_batch(specs)
        assert warm.ok and not warm.stale_keys
        clock.advance(150.0)  # into the outage
        degraded = pipeline.run_batch(specs)
        assert degraded.ok
        for s in specs:
            assert degraded.is_stale(s)
            ledger = degraded.ledger_for(s)
            assert ledger.outcome == "stale"
            assert_conserved(ledger)

    def test_unanswerable_spec_finishes_as_error(self):
        plan = FaultPlan.scripted([FaultRule("error")])
        source = FaultyDataSource(make_source(), plan)
        pipeline = _pipeline(
            source,
            enable_intelligent_cache=False,
            enable_literal_cache=False,
            serve_stale=True,  # cold store: nothing to fall back to
        )
        s = spec(dimensions=("name",), measures=(("n", COUNT),))
        result = pipeline.run_batch([s])
        assert not result.ok and s.canonical() in result.errors
        ledger = result.ledger_for(s)
        assert ledger.outcome == "error"
        assert ledger.phases["degrade"] >= 0.0
        assert_conserved(ledger)

    def test_disabled_pipeline_produces_no_ledgers(self):
        pipeline = _pipeline(enable_ledger=False)
        result = pipeline.run_batch(gen_specs(1, 3))
        assert result.ok
        assert result.ledgers == {}


# ---------------------------------------------------------------------- #
# The disabled hot path is allocation-free in the telemetry modules
# ---------------------------------------------------------------------- #
class TestDisabledPathIsFree:
    def test_run_batch_allocates_nothing_from_telemetry_modules(self):
        pipeline = _pipeline(enable_ledger=False)
        specs = gen_specs(2, 4)
        pipeline.run_batch(specs)  # warm caches and lazy imports first
        filters = [
            tracemalloc.Filter(True, "*/obs/ledger.py"),
            tracemalloc.Filter(True, "*/obs/window.py"),
            tracemalloc.Filter(True, "*/obs/slowlog.py"),
        ]
        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot().filter_traces(filters)
            pipeline.run_batch(specs)
            after = tracemalloc.take_snapshot().filter_traces(filters)
        finally:
            tracemalloc.stop()
        stats = after.compare_to(before, "lineno")
        grew = [s for s in stats if s.size_diff > 0 or s.count_diff > 0]
        assert not grew, f"telemetry modules allocated on the disabled path: {grew}"
