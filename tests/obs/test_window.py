"""Windowed telemetry: ring rotation, key caps, burn-rate SLO, the hub.

Everything runs on a hand-cranked or virtual clock — the point of the
layer is that breach→recovery timelines are deterministic in tests.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.faults import VirtualTimeClock
from repro.obs.window import (
    SLOMonitor,
    SLOObjective,
    Telemetry,
    TelemetryOptions,
    WindowedHistogram,
    WindowSet,
)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def monotonic(self) -> float:
        return self.t


class TestWindowedHistogram:
    def test_rejects_degenerate_windows(self):
        with pytest.raises(ValueError):
            WindowedHistogram("w", window_s=0.0)
        with pytest.raises(ValueError):
            WindowedHistogram("w", window_s=10.0, buckets=0)

    def test_merged_sees_only_the_trailing_window(self):
        clock = FakeClock()
        window = WindowedHistogram("w", window_s=60.0, buckets=6, clock=clock)
        window.observe(1.0)
        clock.t = 30.0
        window.observe(2.0)
        assert window.merged().snapshot()["count"] == 2
        clock.t = 65.0  # the t=0 cell has aged out; t=30 is still live
        assert window.merged().snapshot()["count"] == 1
        clock.t = 200.0
        assert window.merged().snapshot()["count"] == 0

    def test_stale_cell_is_recycled_on_write(self):
        clock = FakeClock()
        window = WindowedHistogram("w", window_s=10.0, buckets=2, clock=clock)
        window.observe(1.0)
        clock.t = 10.0  # same slot (epoch 2 -> slot 0), new epoch
        window.observe(2.0)
        merged = window.merged()
        assert merged.snapshot()["count"] == 1
        assert window.observed == 2  # the total never forgets

    def test_horizon_narrows_the_read(self):
        clock = FakeClock()
        window = WindowedHistogram("w", window_s=60.0, buckets=6, clock=clock)
        window.observe(1.0)
        clock.t = 55.0
        window.observe(2.0)
        assert window.merged().snapshot()["count"] == 2
        assert window.merged(horizon_s=10.0).snapshot()["count"] == 1

    def test_snapshot_carries_window_metadata(self):
        window = WindowedHistogram("w", window_s=30.0, clock=FakeClock())
        window.observe(0.5)
        snap = window.snapshot()
        assert snap["window_s"] == 30.0
        assert snap["observed_total"] == 1
        assert snap["count"] == 1


class TestWindowSet:
    def test_keys_get_independent_windows(self):
        ws = WindowSet("dash", clock=FakeClock())
        ws.observe("a", 1.0)
        ws.observe("b", 2.0)
        ws.observe("b", 3.0)
        snap = ws.snapshot()
        assert set(snap["keys"]) == {"a", "b"}
        assert snap["keys"]["b"]["count"] == 2

    def test_key_cap_counts_overflow_instead_of_growing(self):
        ws = WindowSet("session", max_keys=2, clock=FakeClock())
        for key in ("a", "b", "c", "d"):
            ws.observe(key, 1.0)
        assert ws.keys() == ["a", "b"]
        assert ws.overflowed == 2
        assert ws.snapshot()["overflowed"] == 2


class TestSLOMonitor:
    def _monitor(self, clock):
        return SLOMonitor(
            SLOObjective(
                threshold_s=0.25,
                objective=0.95,
                fast_window_s=30.0,
                slow_window_s=300.0,
                burn_threshold=2.0,
            ),
            clock=clock,
        )

    def test_fast_window_must_fit_in_slow(self):
        with pytest.raises(ValueError):
            SLOMonitor(SLOObjective(fast_window_s=600.0, slow_window_s=300.0))

    def test_deterministic_breach_and_recovery(self):
        clock = VirtualTimeClock()
        monitor = self._monitor(clock)
        for _ in range(120):  # healthy second-by-second traffic
            assert monitor.record(0.05) == "ok"
            clock.advance(1.0)
        breach_t = None
        for _ in range(40):  # the outage: every request blows the budget
            state = monitor.record(1.0)
            if state == "breach" and breach_t is None:
                breach_t = clock.monotonic()
            clock.advance(1.0)
        assert monitor.state == "breach"
        assert breach_t is not None and 120.0 <= breach_t < 160.0
        recover_t = None
        for _ in range(120):  # healthy again; the fast window drains
            state = monitor.record(0.05)
            if state == "ok" and recover_t is None:
                recover_t = clock.monotonic()
            clock.advance(1.0)
        assert monitor.state == "ok"
        assert monitor.breaches == 1
        assert recover_t is not None and recover_t > 160.0
        # Replaying the same timeline reproduces the same transitions.
        clock2 = VirtualTimeClock()
        monitor2 = self._monitor(clock2)
        transitions = []
        for latency, n in ((0.05, 120), (1.0, 40), (0.05, 120)):
            for _ in range(n):
                before = monitor2.state
                after = monitor2.record(latency)
                if after != before:
                    transitions.append((after, clock2.monotonic()))
                clock2.advance(1.0)
        assert transitions == [("breach", breach_t), ("ok", recover_t)]

    def test_single_bad_burst_without_slow_burn_does_not_page(self):
        """The slow window vetoes paging on a blip: 5 bad requests out of
        hundreds burn the fast window but not the slow one."""
        clock = VirtualTimeClock()
        monitor = self._monitor(clock)
        for _ in range(290):
            monitor.record(0.05)
            clock.advance(1.0)
        for _ in range(5):
            monitor.record(1.0)
            clock.advance(1.0)
        assert monitor.state == "ok"
        assert monitor.breaches == 0

    def test_transitions_emit_decision_events(self):
        clock = VirtualTimeClock()
        with obs.recording(clock=clock.monotonic) as rec:
            monitor = self._monitor(clock)
            for latency, n in ((0.05, 120), (1.0, 40), (0.05, 120)):
                for _ in range(n):
                    monitor.record(latency)
                    clock.advance(1.0)
            kinds = rec.event_log.kinds()
        assert kinds.get("slo.breach") == 1
        assert kinds.get("slo.recovered") == 1
        breach = rec.events("slo.breach")[0]
        assert breach.attributes["fast_burn"] >= 2.0
        assert breach.attributes["slow_burn"] >= 1.0

    def test_snapshot_shape(self):
        monitor = self._monitor(VirtualTimeClock())
        monitor.record(0.05)
        snap = monitor.snapshot()
        assert snap["state"] == "ok"
        assert snap["good_total"] == 1 and snap["bad_total"] == 0
        assert snap["fast_burn"] == 0.0


class TestTelemetryHub:
    def test_observe_feeds_every_surface(self):
        clock = FakeClock()
        telemetry = Telemetry(
            TelemetryOptions(slo=SLOObjective(threshold_s=0.25)), clock=clock
        )
        assert telemetry.observe(0.1, dimensions={"dashboard": "flights"})
        assert telemetry.observe(0.4, degraded=True)
        statz = telemetry.statz()
        assert statz["requests"] == {"total": 2, "degraded": 1, "failed": 0}
        assert statz["window"]["count"] == 2
        assert statz["dimensions"]["dashboard"]["keys"]["flights"]["count"] == 1
        assert statz["slo"]["bad_total"] == 1
        assert statz["slowlog"]["considered"] == 2

    def test_slow_threshold_filters_candidates(self):
        telemetry = Telemetry(
            TelemetryOptions(slow_threshold_s=0.5), clock=FakeClock()
        )
        assert not telemetry.observe(0.1)
        assert telemetry.observe(0.9)
