"""MetricsRegistry: counters, gauges, histogram percentile math, null path."""

import pytest

from repro.obs import NULL_METRICS, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_and_snapshot(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert reg.counter("hits") is c  # get-or-create
        assert reg.snapshot()["hits"] == {"type": "counter", "value": 5}


class TestGauge:
    def test_set_inc_dec_high_water(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(3)
        g.inc()
        g.inc()
        g.dec()
        assert g.value == 4
        assert g.high_water == 5
        snap = reg.snapshot()["depth"]
        assert snap == {"type": "gauge", "value": 4, "high_water": 5}


class TestHistogramPercentiles:
    def test_linear_interpolation_between_closest_ranks(self):
        h = Histogram("t")
        for v in range(1, 101):
            h.observe(float(v))
        # numpy-style linear interpolation: rank = (p/100) * (n-1)
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(95) == pytest.approx(95.05)
        assert h.percentile(99) == pytest.approx(99.01)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0

    def test_single_observation(self):
        h = Histogram("t")
        h.observe(7.0)
        assert h.percentile(50) == 7.0
        assert h.percentile(99) == 7.0

    def test_empty_histogram_has_no_percentiles(self):
        h = Histogram("t")
        assert h.percentile(50) is None
        assert h.snapshot() == {"type": "histogram", "count": 0}

    def test_out_of_range_percentile_raises(self):
        h = Histogram("t")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_unsorted_observations(self):
        h = Histogram("t")
        for v in (5.0, 1.0, 3.0, 2.0, 4.0):
            h.observe(v)
        assert h.percentile(50) == 3.0
        assert h.count == 5
        assert h.mean == pytest.approx(3.0)
        assert h.total == pytest.approx(15.0)

    def test_snapshot_keys(self):
        reg = MetricsRegistry()
        reg.histogram("lat").observe(1.0)
        snap = reg.snapshot()["lat"]
        assert set(snap) == {"type", "count", "sum", "min", "max", "mean", "p50", "p95", "p99"}
        assert snap["count"] == 1 and snap["p99"] == 1.0


class TestRegistry:
    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {}

    def test_null_registry_shares_instruments_and_records_nothing(self):
        c = NULL_METRICS.counter("a")
        assert NULL_METRICS.counter("b") is c  # shared singleton: no allocation
        c.inc(100)
        NULL_METRICS.gauge("g").set(9)
        NULL_METRICS.histogram("h").observe(1.0)
        assert NULL_METRICS.snapshot() == {}
        assert NULL_METRICS.histogram("h").percentile(50) is None
