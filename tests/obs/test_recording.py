"""PerformanceRecording export + BENCH_*.json schema validation."""

import json

import pytest

from repro.obs import (
    SCHEMA_VERSION,
    MetricsRegistry,
    PerformanceRecording,
    Tracer,
    VirtualClock,
)
from repro.sim.metrics import Recorder


def make_recording():
    clock = VirtualClock()
    tracer = Tracer(clock=clock)
    metrics = MetricsRegistry()
    with tracer.span("pipeline.run_batch", specs=2):
        with tracer.span("pipeline.cache_probe"):
            clock.advance(0.010)
        with tracer.span("pipeline.remote_execution"):
            with tracer.span("executor.query", rows=5):
                clock.advance(0.100)
            with tracer.span("executor.query", rows=7):
                clock.advance(0.300)
    metrics.counter("cache.hits").inc(3)
    metrics.histogram("executor.query_s").observe(0.1)
    metrics.histogram("executor.query_s").observe(0.3)
    return PerformanceRecording(tracer, metrics)


class TestPerformanceRecording:
    def test_find_and_phase_summary(self):
        rec = make_recording()
        assert rec.find("pipeline.cache_probe").duration_s == pytest.approx(0.010)
        assert len(rec.find_all("executor.query")) == 2
        phases = rec.phase_summary()
        q = phases["executor.query"]
        assert q["count"] == 2
        assert q["total_s"] == pytest.approx(0.4)
        assert q["mean_s"] == pytest.approx(0.2)
        assert q["max_s"] == pytest.approx(0.3)
        assert phases["pipeline.run_batch"]["total_s"] == pytest.approx(0.410)

    def test_render_timeline(self):
        rec = make_recording()
        text = rec.render()
        assert "== Performance Recording ==" in text
        assert "pipeline.run_batch" in text
        # Children are indented below the root, with offsets and durations.
        assert "\n  [" in text
        assert "rows=5" in text
        assert "-- metrics --" in text
        assert "cache.hits: 3" in text
        # max_depth prunes the executor spans (depth 2) from the timeline;
        # the metric lines still mention the histogram by name.
        shallow = rec.render(max_depth=1)
        timeline = shallow.split("-- metrics --")[0]
        assert "executor.query" not in timeline
        assert "pipeline.remote_execution" in timeline

    def test_render_empty(self):
        rec = PerformanceRecording(Tracer())
        assert "(no spans recorded)" in rec.render()

    def test_to_dict_and_json(self):
        rec = make_recording()
        d = rec.to_dict()
        assert d["schema_version"] == SCHEMA_VERSION
        assert [s["name"] for s in d["spans"]] == ["pipeline.run_batch"]
        assert "executor.query" in d["phases"]
        assert d["metrics"]["cache.hits"]["value"] == 3
        # to_json round-trips.
        assert json.loads(rec.to_json())["schema_version"] == SCHEMA_VERSION


class TestBenchJsonSchema:
    """The benchmark harness artifact: series + trace, schema-versioned."""

    def test_record_writes_schema_valid_bench_json(self, tmp_path, monkeypatch, capsys):
        import benchmarks.conftest as bench

        monkeypatch.setattr(bench, "RESULTS_DIR", tmp_path)
        recorder = Recorder("E1 demo", columns=["iteration", "ms"])
        recorder.add(1, 12.5)
        recorder.add(2, 0.8)
        bench.record("demo_exp", recorder, trace=make_recording())
        capsys.readouterr()  # swallow the emitted table

        assert (tmp_path / "demo_exp.txt").exists()
        payload = json.loads((tmp_path / "BENCH_demo_exp.json").read_text())
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["experiment"] == "demo_exp"
        series = payload["series"]
        assert series["title"] == "E1 demo"
        assert series["columns"] == ["iteration", "ms"]
        assert series["rows"] == [[1, 12.5], [2, 0.8]]
        trace = payload["trace"]
        assert set(trace) == {"phases", "metrics", "events", "event_counts"}
        assert trace["phases"]["executor.query"]["count"] == 2
        assert trace["metrics"]["cache.hits"] == {"type": "counter", "value": 3}

    def test_record_without_trace_writes_null(self, tmp_path, monkeypatch, capsys):
        import benchmarks.conftest as bench

        monkeypatch.setattr(bench, "RESULTS_DIR", tmp_path)
        recorder = Recorder("bare", columns=["x"])
        recorder.add(1)
        bench.record("bare_exp", recorder)
        capsys.readouterr()
        payload = json.loads((tmp_path / "BENCH_bare_exp.json").read_text())
        assert payload["trace"] is None
