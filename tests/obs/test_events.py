"""The decision-event log: ring buffer, queries, wiring, null path."""

from repro import obs
from repro.obs import NULL_EVENTS, DecisionEvent, EventLog


class TestEventLog:
    def test_emit_and_order(self):
        log = EventLog()
        log.emit("cache.literal", "miss", "cold")
        log.emit("cache.subsumption", "accepted", "exact match", spec="q1")
        events = log.events()
        assert [e.kind for e in events] == ["cache.literal", "cache.subsumption"]
        assert [e.seq for e in events] == [0, 1]
        assert events[1].attributes == {"spec": "q1"}

    def test_ring_is_bounded(self):
        log = EventLog(maxlen=3)
        for i in range(5):
            log.emit("k", "o", f"r{i}")
        events = log.events()
        assert len(events) == 3
        assert [e.reason for e in events] == ["r2", "r3", "r4"]
        assert log.dropped == 2
        # Sequence numbers keep counting across rotation.
        assert [e.seq for e in events] == [2, 3, 4]

    def test_kind_prefix_query(self):
        log = EventLog()
        log.emit("cache.literal", "hit", "x")
        log.emit("cache.subsumption", "rejected", "y")
        log.emit("cachemonger", "hit", "decoy: prefix must respect dots")
        log.emit("fusion", "fused", "z")
        assert len(log.events("cache")) == 2
        assert len(log.events("cache.literal")) == 1
        assert len(log.events("cache", outcome="rejected")) == 1
        assert len(log.events(outcome="hit")) == 2
        assert len(log.events("fusion")) == 1

    def test_kinds_summary(self):
        log = EventLog()
        log.emit("b", "o", "r")
        log.emit("a", "o", "r")
        log.emit("b", "o", "r")
        assert log.kinds() == {"a": 1, "b": 2}

    def test_str_and_to_dict(self):
        log = EventLog(clock=lambda: 1.5)
        log.emit("pool", "opened", "no idle connection", source="db", n=2)
        ev = log.events()[0]
        assert isinstance(ev, DecisionEvent)
        assert str(ev) == "[pool] opened: no idle connection  source=db n=2"
        assert ev.to_dict() == {
            "seq": 0,
            "t_s": 1.5,
            "kind": "pool",
            "outcome": "opened",
            "reason": "no idle connection",
            "attributes": {"source": "db", "n": 2},
        }


class TestCursorDrain:
    """Incremental consumption: events(since_seq=...) -> (new, cursor)."""

    def test_drain_returns_only_new_events_and_next_cursor(self):
        log = EventLog()
        log.emit("a", "o", "r0")
        cursor = log.cursor()
        log.emit("b", "o", "r1")
        log.emit("c", "o", "r2")
        fresh, next_cursor = log.events(since_seq=cursor)
        assert [e.kind for e in fresh] == ["b", "c"]
        assert next_cursor == 3
        again, final = log.events(since_seq=next_cursor)
        assert again == [] and final == next_cursor

    def test_drain_composes_with_kind_filters(self):
        log = EventLog()
        log.emit("cache.literal", "hit", "old")
        cursor = log.cursor()
        log.emit("cache.literal", "miss", "new")
        log.emit("fusion", "fused", "new")
        fresh, _next = log.events("cache", since_seq=cursor)
        assert [e.reason for e in fresh] == ["new"]

    def test_cursor_survives_ring_rotation(self):
        """Events that rotated out are simply gone; the drain never
        double-counts or fails on a stale cursor."""
        log = EventLog(maxlen=3)
        log.emit("a", "o", "r")
        cursor = log.cursor()  # 1
        for i in range(5):
            log.emit("b", "o", f"r{i}")
        fresh, next_cursor = log.events(since_seq=cursor)
        assert [e.reason for e in fresh] == ["r2", "r3", "r4"]
        assert next_cursor == 6

    def test_null_log_drain_is_empty(self):
        assert NULL_EVENTS.cursor() == 0
        assert NULL_EVENTS.events(since_seq=0) == ([], 0)


class TestNullPath:
    def test_null_log_discards(self):
        NULL_EVENTS.emit("k", "o", "r")
        assert NULL_EVENTS.events() == []
        assert not NULL_EVENTS.enabled

    def test_module_helper_is_noop_when_disabled(self):
        assert not obs.events_enabled()
        obs.event("cache.literal", "hit", "should vanish")
        assert obs.get_events().events() == []

    def test_disable_is_symmetric(self):
        obs.enable()
        assert obs.events_enabled()
        obs.event("k", "o", "r")
        assert len(obs.get_events().events()) == 1
        obs.disable()
        assert not obs.events_enabled()
        assert obs.get_events() is NULL_EVENTS


class TestRecordingIntegration:
    def test_recording_captures_and_renders_events(self):
        with obs.recording() as rec:
            with obs.span("work"):
                obs.event("fusion", "fused", "2 queries merged", members=2)
        events = rec.events("fusion")
        assert len(events) == 1
        assert events[0].reason == "2 queries merged"
        rendered = rec.render()
        assert "-- decision events --" in rendered
        assert "[fusion] fused: 2 queries merged" in rendered

    def test_to_dict_includes_events_and_counts(self):
        with obs.recording() as rec:
            obs.event("cache.literal", "miss", "cold")
            obs.event("cache.literal", "hit", "warm")
        data = rec.to_dict()
        assert data["schema_version"] == obs.SCHEMA_VERSION
        assert data["event_counts"] == {"cache.literal": 2}
        assert [e["outcome"] for e in data["events"]] == ["miss", "hit"]
