"""Tracer: span nesting, contextvar propagation, virtual clock, no-op path."""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro import obs
from repro.obs import NULL_TRACER, Tracer, VirtualClock


class TestSpanNesting:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer()
        with tracer.span("root", kind="test") as root:
            with tracer.span("child1"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child2"):
                pass
        assert [r.name for r in tracer.roots] == ["root"]
        assert [c.name for c in root.children] == ["child1", "child2"]
        assert root.children[0].children[0].name == "grandchild"
        assert root.attributes == {"kind": "test"}
        assert [s.name for s in root.walk()] == ["root", "child1", "grandchild", "child2"]

    def test_siblings_after_exit_attach_to_parent_not_sibling(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a"):
                pass
            assert tracer.current() is root
        assert tracer.current() is None
        assert len(root.children) == 1

    def test_find_and_durations(self):
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer"):
            clock.advance(1.0)
            with tracer.span("inner"):
                clock.advance(0.25)
        outer = tracer.roots[0]
        assert outer.duration_s == 1.25
        assert outer.find("inner").duration_s == 0.25
        assert outer.find("nope") is None
        assert len(outer.find_all("inner")) == 1

    def test_exception_closes_span_and_records_error(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        span = tracer.roots[0]
        assert span.end_s is not None
        assert "error" in span.attributes
        assert tracer.current() is None

    def test_to_dict_shape(self):
        tracer = Tracer(clock=VirtualClock())
        with tracer.span("a", n=1):
            with tracer.span("b"):
                pass
        d = tracer.roots[0].to_dict()
        assert d["name"] == "a"
        assert d["attributes"] == {"n": 1}
        assert d["children"][0]["name"] == "b"


class TestThreadPropagation:
    def test_attach_joins_worker_threads_to_the_trace(self):
        tracer = Tracer()
        with tracer.span("submit") as parent:
            captured = tracer.current()

            def work(i):
                # Without attach, contextvars don't cross thread pools.
                assert tracer.current() is None
                with tracer.attach(captured):
                    with tracer.span(f"task{i}"):
                        pass
                assert tracer.current() is None

            with ThreadPoolExecutor(max_workers=4) as tp:
                list(tp.map(work, range(8)))
        assert len(parent.children) == 8
        assert {c.name for c in parent.children} == {f"task{i}" for i in range(8)}
        assert len(tracer.roots) == 1

    def test_threads_have_isolated_current_span(self):
        tracer = Tracer()
        seen = []

        def work():
            seen.append(tracer.current())
            with tracer.span("in-thread"):
                seen.append(tracer.current().name)

        with tracer.span("main"):
            t = threading.Thread(target=work)
            t.start()
            t.join()
        # The raw thread saw no inherited span and opened its own root.
        assert seen == [None, "in-thread"]
        assert {r.name for r in tracer.roots} == {"main", "in-thread"}


class TestDisabledPath:
    def test_null_tracer_is_free_and_shared(self):
        ctx1 = NULL_TRACER.span("anything", big=list(range(3)))
        ctx2 = NULL_TRACER.span("other")
        assert ctx1 is ctx2  # shared singleton: no allocation per span
        with ctx1 as span:
            assert span.set(x=1) is span
            assert span.find("x") is None
        assert NULL_TRACER.current() is None
        assert NULL_TRACER.roots == ()

    def test_module_helpers_default_to_noop(self):
        assert not obs.enabled()
        with obs.span("free") as span:
            span.set(a=1)
        assert obs.current_span() is None

    def test_recording_restores_previous_state(self):
        assert not obs.enabled()
        with obs.recording() as rec:
            assert obs.enabled()
            with obs.span("x"):
                pass
        assert not obs.enabled()
        assert [s.name for s in rec.spans] == ["x"]
