"""Obs test hygiene: never leak live instrumentation between tests.

Every test in this package runs with a teardown that calls
:func:`repro.obs.disable` — the symmetric counterpart of ``enable`` — so
a test that enables observability (directly or via ``obs.recording``)
and then fails mid-block cannot poison later tests with a live tracer,
registry, or event log.
"""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def obs_disabled_after_each_test():
    yield
    obs.disable()
    assert not obs.enabled()
    assert not obs.events_enabled()
