"""Tableau Server components: Data Server, temp state, clusters, VizServer.

Section 5 of the paper: publishing data sources once instead of embedding
them in every workbook, proxying queries through Data Server with a
unified optimization pipeline, temporary-table state on the proxy and the
database, row-level user filters, and the distributed cache across server
nodes.
"""

from .dataserver import DataServer, DataServerSession, PublishedDataSource
from .tempstate import TempTableState
from .cluster import TdeCluster
from .sharding import ShardedTdeCluster
from .schedule import RefreshScheduler, RefreshEvent
from .vizserver import VizServer, ServerNode

__all__ = [
    "DataServer",
    "DataServerSession",
    "PublishedDataSource",
    "TempTableState",
    "TdeCluster",
    "ShardedTdeCluster",
    "RefreshScheduler",
    "RefreshEvent",
    "VizServer",
    "ServerNode",
]
