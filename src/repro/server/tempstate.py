"""Temporary-table state management on Data Server (paper 5.4).

"Temporary table state is maintained in two different places in Data
Server: in memory and on the underlying database. In both cases, this
state is maintained while the client connection to Data Server remains
active; it is reclaimed when the connection is closed or expired due to
inactivity. To alleviate the in-memory cost of temporary tables, temporary
table definitions are shared across client connections. ... The
definitions are removed when all references to them are removed."
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..errors import ServerError
from ..tde.storage.table import Table


@dataclass
class _SharedDefinition:
    """One shared in-memory temp table definition with a refcount."""

    name: str
    table: Table
    fingerprint: str
    refs: int = 0
    created_at: float = field(default_factory=time.monotonic)
    last_used: float = field(default_factory=time.monotonic)


class TempTableState:
    """Shared in-memory temp-table definitions, refcounted per session."""

    def __init__(self, *, idle_ttl_s: float = 600.0):
        self.idle_ttl_s = idle_ttl_s
        self._defs: dict[str, _SharedDefinition] = {}
        self._by_fingerprint: dict[str, str] = {}
        self._lock = threading.Lock()
        self.shared_hits = 0
        self.definitions_created = 0

    # ------------------------------------------------------------------ #
    def register(self, name: str, table: Table) -> str:
        """Register (or share) a definition; returns the canonical name.

        Identical contents registered under any name share one definition,
        which is what keeps N clients of the same published source from
        holding N copies.
        """
        fingerprint = _fingerprint(table)
        with self._lock:
            existing = self._by_fingerprint.get(fingerprint)
            if existing is not None:
                shared = self._defs[existing]
                shared.refs += 1
                shared.last_used = time.monotonic()
                self.shared_hits += 1
                return shared.name
            if name in self._defs:
                name = f"{name}_{len(self._defs)}"
            self._defs[name] = _SharedDefinition(name, table, fingerprint, refs=1)
            self._by_fingerprint[fingerprint] = name
            self.definitions_created += 1
            return name

    def get(self, name: str) -> Table:
        with self._lock:
            if name not in self._defs:
                raise ServerError(f"no temp table {name!r}")
            shared = self._defs[name]
            shared.last_used = time.monotonic()
            return shared.table

    def has(self, name: str) -> bool:
        with self._lock:
            return name in self._defs

    def release(self, name: str) -> None:
        """Drop one reference; the definition dies with the last one."""
        with self._lock:
            shared = self._defs.get(name)
            if shared is None:
                return
            shared.refs -= 1
            if shared.refs <= 0:
                del self._defs[name]
                del self._by_fingerprint[shared.fingerprint]

    def expire_idle(self) -> int:
        """Reclaim definitions idle beyond the TTL (expired sessions)."""
        now = time.monotonic()
        with self._lock:
            doomed = [
                n for n, d in self._defs.items() if now - d.last_used > self.idle_ttl_s
            ]
            for name in doomed:
                shared = self._defs.pop(name)
                self._by_fingerprint.pop(shared.fingerprint, None)
        return len(doomed)

    def __len__(self) -> int:
        with self._lock:
            return len(self._defs)


def _fingerprint(table: Table) -> str:
    import hashlib

    digest = hashlib.sha256()
    digest.update("|".join(table.column_names).encode())
    for row in table.to_rows():
        digest.update(repr(row).encode())
    return digest.hexdigest()
