"""TDE cluster deployment (paper 4.1.4).

"When the TDE is used in the server environment, it is deployed either as
a shared-nothing architecture or shared-everything architecture. Each node
in the cluster is a separate TDE program. In the shared-everything
architecture, storage is shared across all the nodes. A load balancer
dispatches queries to different nodes in the TDE cluster."
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from .. import obs
from ..core.cache.distributed import DistributedQueryCache
from ..errors import ServerError
from ..obs.metrics import Histogram
from ..obs.window import SLOMonitor, SLOObjective, WindowedHistogram
from ..tde.engine import DataEngine
from ..tde.optimizer.catalog import StorageCatalog
from ..tde.optimizer.parallel import PlannerOptions
from ..tde.plancache import normalize_tql
from ..tde.storage.table import Table


class _Node:
    def __init__(self, node_id: int, engine: DataEngine, window: WindowedHistogram | None):
        self.node_id = node_id
        self.engine = engine
        self.in_flight = 0
        self.queries_served = 0
        self.failures = 0
        #: Trailing-window query latency, when cluster telemetry is on.
        self.window = window


class TdeCluster:
    """A cluster of TDE nodes behind a load balancer."""

    MODES = ("shared-nothing", "shared-everything")
    BALANCERS = ("round-robin", "least-loaded")

    def __init__(
        self,
        n_nodes: int,
        loader: Callable[[DataEngine], None],
        *,
        mode: str = "shared-everything",
        balancer: str = "round-robin",
        options: PlannerOptions | None = None,
        telemetry: bool = False,
        slo: SLOObjective | None = None,
        result_store=None,
        clock=None,
    ):
        """``loader`` populates one engine with tables and constraints.

        Shared-everything builds one storage database and points every
        node's engine at it; shared-nothing calls the loader once per
        node, giving each node its own replica. With ``telemetry=True``
        each node keeps a trailing-window latency histogram and the
        cluster evaluates a fleet-level SLO; :meth:`statz` merges the
        per-node windows into a fleet view.

        ``result_store`` (a KeyValueStore or elastic ReplicatedStore)
        adds a cluster-wide result cache in front of the balancer: string
        queries are keyed on normalized TQL **plus the catalog version**,
        the plan cache's invalidation discipline — a refresh or DDL bumps
        the version, so stale results can never be served after one.
        """
        if mode not in self.MODES:
            raise ServerError(f"unknown cluster mode {mode!r}")
        if balancer not in self.BALANCERS:
            raise ServerError(f"unknown balancer {balancer!r}")
        if n_nodes < 1:
            raise ServerError("cluster needs at least one node")
        self.mode = mode
        self.balancer = balancer
        self._lock = threading.Lock()
        self._rr = 0
        self._now = clock.monotonic if clock is not None else time.monotonic
        self.telemetry = telemetry
        self.slo = SLOMonitor(slo, clock=clock) if telemetry else None

        def _window(i: int) -> WindowedHistogram | None:
            if not telemetry:
                return None
            return WindowedHistogram(f"node{i}.query_s", clock=clock)

        self.result_cache: DistributedQueryCache | None = (
            DistributedQueryCache(result_store, "tde-cluster")
            if result_store is not None
            else None
        )
        self.result_cache_hits = 0
        self.result_cache_misses = 0
        self.nodes: list[_Node] = []
        if mode == "shared-everything":
            primary = DataEngine("tde-cluster", options=options)
            loader(primary)
            for i in range(n_nodes):
                engine = DataEngine(f"node{i}", options=options)
                engine.database = primary.database  # shared storage
                engine.catalog = primary.catalog
                self.nodes.append(_Node(i, engine, _window(i)))
        else:
            for i in range(n_nodes):
                engine = DataEngine(f"node{i}", options=options)
                loader(engine)
                self.nodes.append(_Node(i, engine, _window(i)))

    # ------------------------------------------------------------------ #
    def _pick(self) -> _Node:
        with self._lock:
            if self.balancer == "round-robin":
                node = self.nodes[self._rr % len(self.nodes)]
                self._rr += 1
            else:
                # Ties on in_flight break toward the node that has served
                # least, so an idle cluster still spreads instead of
                # hammering whichever node ``min`` sees first.
                node = min(
                    self.nodes, key=lambda n: (n.in_flight, n.queries_served)
                )
            node.in_flight += 1
            return node

    def _result_key(self, tql: str) -> str:
        """Result-cache key: normalized TQL + catalog version.

        Node 0's catalog stamps the version — in shared-everything mode
        the catalog *is* shared, and in shared-nothing mode every node
        was populated by the same loader, so versions advance together.
        A refresh or DDL bumps the pair and orphans every older entry.
        """
        ddl_version, decl_version = self.nodes[0].engine.catalog.version
        return f"tql|{ddl_version}.{decl_version}|{normalize_tql(tql)}"

    def query(
        self, tql: str, *, trace_parent: dict | None = None
    ) -> tuple[int, Table]:
        """Dispatch one query; returns (node_id, result).

        ``trace_parent`` (wire format, from
        :meth:`repro.obs.TraceContext.to_wire`) joins the dispatched
        node's span tree to the caller's trace — the load-balancer hop
        stitches instead of starting a fresh trace.

        With a result cache configured, a hit short-circuits the balancer
        entirely and reports ``node_id = -1``.
        """
        cache_key = None
        if self.result_cache is not None and isinstance(tql, str):
            cache_key = self._result_key(tql)
            cached = self.result_cache.get(cache_key)
            if cached is not None:
                with self._lock:
                    self.result_cache_hits += 1
                if obs.events_enabled():
                    obs.event(
                        "cache.literal",
                        "hit",
                        "cluster result cache served the normalized query "
                        "without dispatching a node",
                        tier="tde-cluster",
                    )
                return -1, cached
            with self._lock:
                self.result_cache_misses += 1
        node = self._pick()
        started = self._now() if self.telemetry else 0.0
        failed = False
        remote_ctx = obs.TraceContext.from_wire(trace_parent) if trace_parent else None
        trace_id = None
        try:
            with obs.activate(remote_ctx):
                with obs.span(
                    "cluster.query", node=node.node_id, balancer=self.balancer
                ) as sp:
                    trace_id = getattr(sp, "trace_id", "") or None
                    result = node.engine.query(tql)
        except Exception:
            failed = True
            raise
        finally:
            with self._lock:
                node.in_flight -= 1
                node.queries_served += 1
                if failed:
                    node.failures += 1
            if self.telemetry:
                elapsed = self._now() - started
                node.window.observe(elapsed, trace_id=trace_id)
                self.slo.record(elapsed)
        if cache_key is not None:
            self.result_cache.put(cache_key, result)
        return node.node_id, result

    def in_flight_snapshot(self) -> list[int]:
        """Momentary per-node in-flight counts (consistent snapshot)."""
        with self._lock:
            return [n.in_flight for n in self.nodes]

    def served_per_node(self) -> list[int]:
        return [n.queries_served for n in self.nodes]

    @property
    def storage_copies(self) -> int:
        """Distinct storage databases held by the cluster."""
        return len({id(n.engine.database) for n in self.nodes})

    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        """Cluster liveness view: load, balance and failure counts."""
        with self._lock:
            nodes = {
                f"node{n.node_id}": {
                    "in_flight": n.in_flight,
                    "queries_served": n.queries_served,
                    "failures": n.failures,
                }
                for n in self.nodes
            }
        return {
            "mode": self.mode,
            "balancer": self.balancer,
            "storage_copies": self.storage_copies,
            "queries_served": sum(s["queries_served"] for s in nodes.values()),
            "failures": sum(s["failures"] for s in nodes.values()),
            "nodes": nodes,
        }

    def statz(self) -> dict:
        """Per-node windowed latency merged into a fleet rollup.

        The fleet view folds every node's live window cells into one
        histogram via ``Histogram.merge`` — the same percentile math a
        single node uses, so node and fleet numbers are comparable.
        Each node also reports its plan-cache counters (every node
        compiles independently even under shared storage), summed into a
        fleet ``plan_cache`` rollup.
        """
        snap = self.health()
        snap["telemetry_enabled"] = self.telemetry
        plan_fleet = {"hits": 0, "misses": 0, "evictions": 0, "invalidations": 0}
        for node in self.nodes:
            stats = node.engine.plan_cache.stats()
            snap["nodes"][f"node{node.node_id}"]["plan_cache"] = stats
            for key in plan_fleet:
                plan_fleet[key] += stats[key]
        snap["plan_cache"] = plan_fleet
        if self.result_cache is not None:
            with self._lock:
                snap["result_cache"] = {
                    "hits": self.result_cache_hits,
                    "misses": self.result_cache_misses,
                    "l1_hits": self.result_cache.l1_hits,
                    "l2_hits": self.result_cache.l2_hits,
                }
            tier_statz = getattr(self.result_cache.store, "statz", None)
            if tier_statz is not None:
                snap["cache_tier"] = tier_statz()
        if not self.telemetry:
            return snap
        fleet = Histogram("fleet.query_s")
        for node in self.nodes:
            node_hist = node.window.merged()
            snap["nodes"][f"node{node.node_id}"]["window"] = node_hist.snapshot()
            fleet.merge(node_hist)
        snap["fleet"] = {"window": fleet.snapshot(), "slo": self.slo.snapshot()}
        return snap
