"""Extract refresh scheduling (paper §2).

"If visualizations are published with accompanying TDE extracts, a
schedule can be created to automatically refresh the extracts, ensuring
the data is always current."

The scheduler runs on an injected clock (virtual in tests, wall time in
production use), fires due refreshes through :class:`DataServer`, and
records history. Refreshing purges the published source's caches, which
is the paper's 3.2 purge-on-refresh rule working end to end.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Callable

from ..errors import ServerError
from .dataserver import DataServer


@dataclass(order=True)
class _ScheduledRefresh:
    next_fire: float
    name: str = field(compare=False)
    interval_s: float = field(compare=False)
    refresher: Callable | None = field(compare=False, default=None)
    enabled: bool = field(compare=False, default=True)


@dataclass(frozen=True)
class RefreshEvent:
    """One completed refresh."""

    name: str
    fired_at: float
    refresh_count: int


class RefreshScheduler:
    """Interval-based refresh schedules over a DataServer."""

    def __init__(self, server: DataServer, *, clock: Callable[[], float] | None = None):
        self.server = server
        self.clock = clock or time.monotonic
        self._heap: list[_ScheduledRefresh] = []
        self._by_name: dict[str, _ScheduledRefresh] = {}
        self.history: list[RefreshEvent] = []

    # ------------------------------------------------------------------ #
    def schedule(
        self,
        name: str,
        *,
        interval_s: float,
        refresher: Callable | None = None,
        first_delay_s: float | None = None,
    ) -> None:
        """Schedule ``name`` (a published data source) every ``interval_s``."""
        if interval_s <= 0:
            raise ServerError("refresh interval must be positive")
        self.server.get(name)  # validates the source exists
        if name in self._by_name:
            raise ServerError(f"{name!r} already has a schedule")
        delay = interval_s if first_delay_s is None else first_delay_s
        entry = _ScheduledRefresh(self.clock() + delay, name, interval_s, refresher)
        self._by_name[name] = entry
        heapq.heappush(self._heap, entry)

    def unschedule(self, name: str) -> None:
        entry = self._by_name.pop(name, None)
        if entry is None:
            raise ServerError(f"no schedule for {name!r}")
        entry.enabled = False  # lazily discarded from the heap

    def next_due(self) -> tuple[str, float] | None:
        """(name, fire_time) of the next enabled schedule, if any."""
        while self._heap and not self._heap[0].enabled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].name, self._heap[0].next_fire

    # ------------------------------------------------------------------ #
    def run_due(self) -> list[RefreshEvent]:
        """Fire every schedule whose time has come; returns the events."""
        now = self.clock()
        fired: list[RefreshEvent] = []
        while self._heap and (not self._heap[0].enabled or self._heap[0].next_fire <= now):
            entry = heapq.heappop(self._heap)
            if not entry.enabled:
                continue
            count = self.server.refresh_extract(entry.name, entry.refresher)
            event = RefreshEvent(entry.name, now, count)
            fired.append(event)
            self.history.append(event)
            # Fixed cadence: catch-up fires collapse into the next slot.
            entry.next_fire += entry.interval_s
            while entry.next_fire <= now:
                entry.next_fire += entry.interval_s
            heapq.heappush(self._heap, entry)
        return fired
