"""Data Server: published data sources behind a proxy (paper 5.2–5.4).

"Users publish data sources that can be leveraged, without duplication,
by multiple workbooks ... a complex calculation in a data source can be
defined once and used everywhere. ... Instead of 100 workbooks with
distinct copies of the same extract, a single extract is created."

A :class:`DataServerSession` is the client-facing connection: it serves
metadata, applies the user's row-level filter, resolves in-memory
temporary sets, and funnels queries through the published source's shared
pipeline (the unified optimization path of 5.3). Client→proxy traffic is
accounted in bytes so the temp-table experiments can measure the saving.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from .. import obs
from ..core.cache.distributed import DistributedLiteralCache, DistributedQueryCache
from ..core.pipeline import PipelineOptions, QueryPipeline
from ..errors import PermissionError_, ServerError, SourceUnavailableError
from ..obs.critpath import slowlog_path
from ..obs.slowlog import SlowQueryEntry
from ..obs.window import Telemetry, TelemetryOptions
from ..queries.model import DataSourceModel
from ..queries.spec import CategoricalFilter, Filter, QuerySpec
from ..tde.storage.table import Table
from .tempstate import TempTableState


@dataclass
class PublishedDataSource:
    """One published source: model + backing source + shared services."""

    name: str
    model: DataSourceModel
    source: Any  # a DataSource
    pipeline: QueryPipeline
    temp_state: TempTableState
    user_filters: dict[str, Filter] = field(default_factory=dict)
    refresh_count: int = 0


class DataServer:
    """Registry of published data sources and session factory."""

    def __init__(
        self,
        *,
        store=None,
        telemetry: TelemetryOptions | bool | None = None,
        clock=None,
    ) -> None:
        self._published: dict[str, PublishedDataSource] = {}
        self._lock = threading.Lock()
        self._clock = clock
        self._now = clock.monotonic if clock is not None else time.monotonic
        #: Optional shared cache tier (a KeyValueStore or elastic
        #: ReplicatedStore): when present, every published pipeline's
        #: literal cache is backed by it (namespaced per source), so
        #: results stay warm across proxy restarts and server nodes, and
        #: an extract refresh fans its invalidation out across the tier.
        self.store = store
        self.telemetry: Telemetry | None = None
        if telemetry:
            telemetry_options = (
                telemetry if isinstance(telemetry, TelemetryOptions) else None
            )
            self.telemetry = Telemetry(telemetry_options, clock=clock)

    # ------------------------------------------------------------------ #
    def publish(
        self,
        name: str,
        model: DataSourceModel,
        source,
        *,
        user_filters: Mapping[str, Filter] | None = None,
        options: PipelineOptions | None = None,
    ) -> PublishedDataSource:
        """Publish a data source (model + extract/live connection)."""
        with self._lock:
            if name in self._published:
                raise ServerError(f"data source {name!r} already published")
            if self.telemetry is not None:
                # The proxy's telemetry needs per-request ledgers from
                # every published pipeline.
                options = dataclasses.replace(
                    options or PipelineOptions(), enable_ledger=True
                )
            literal_cache = None
            if self.store is not None:
                literal_cache = DistributedLiteralCache(
                    DistributedQueryCache(self.store, f"dataserver:{name}"), name
                )
            pipeline = QueryPipeline(
                source,
                model,
                options=options,
                literal_cache=literal_cache,
                clock=self._clock,
            )
            published = PublishedDataSource(
                name, model, source, pipeline, TempTableState(), dict(user_filters or {})
            )
            self._published[name] = published
            return published

    def unpublish(self, name: str) -> None:
        with self._lock:
            published = self._published.pop(name, None)
        if published is None:
            raise ServerError(f"no published data source {name!r}")
        published.pipeline.close()

    def published_names(self) -> list[str]:
        return sorted(self._published)

    def get(self, name: str) -> PublishedDataSource:
        if name not in self._published:
            raise ServerError(f"no published data source {name!r}")
        return self._published[name]

    def set_user_filter(self, name: str, user: str, filter_: Filter) -> None:
        """Restrict ``user``'s rows on a published source (paper 5.2)."""
        self.get(name).user_filters[user] = filter_

    def refresh_extract(self, name: str, refresher=None) -> int:
        """Refresh the single shared extract behind a published source.

        ``refresher`` (optional) mutates the backing source in place.
        Caches for the source are purged — the paper's purge-on-refresh
        rule (3.2). Returns the total refresh count, which experiment E14
        compares against the one-copy-per-workbook alternative.
        """
        published = self.get(name)
        if refresher is not None:
            refresher(published.source)
        published.pipeline.invalidate()
        published.refresh_count += 1
        return published.refresh_count

    def connect(self, name: str, user: str) -> "DataServerSession":
        return DataServerSession(self.get(name), user, telemetry=self.telemetry)

    # ------------------------------------------------------------------ #
    def statz(self) -> dict:
        """Windowed latency, SLO burn state and slow queries for the proxy."""
        published: dict[str, Any] = {}
        for name in sorted(self._published):
            entry: dict[str, Any] = {
                "refresh_count": self._published[name].refresh_count,
            }
            backend = self._published[name].pipeline._backend_engine()
            if backend is not None:
                entry["plan_cache"] = backend.plan_cache.stats()
            published[name] = entry
        snap: dict[str, Any] = {
            "telemetry_enabled": self.telemetry is not None,
            "published": published,
        }
        tier_statz = getattr(self.store, "statz", None)
        if tier_statz is not None:
            snap["cache_tier"] = tier_statz()
        if self.telemetry is not None:
            snap.update(self.telemetry.statz())
        return snap


class DataServerSession:
    """One client connection to a published data source."""

    def __init__(
        self,
        published: PublishedDataSource,
        user: str,
        *,
        telemetry: Telemetry | None = None,
    ):
        self.published = published
        self.user = user
        self.telemetry = telemetry
        self.closed = False
        self.bytes_from_client = 0
        self.queries_answered = 0
        #: Whether the most recent :meth:`query` was a degraded (stale)
        #: serve, plus a running count — the proxy-level `stale=True` flag.
        self.last_stale = False
        self.stale_serves = 0
        self._sets: dict[str, tuple[str, str]] = {}  # handle -> (field, shared name)

    # ------------------------------------------------------------------ #
    def metadata(self) -> dict:
        """What the client needs to populate its data window (paper 5.2)."""
        model = self.published.model
        return {
            "datasource": self.published.name,
            "schema": {
                k: t.value for k, t in model.schema(self.published.source).items()
            },
            "calculations": [name for name, _e in model.calculations],
            "supports_temp_tables": self.published.source.dialect.supports_temp_tables,
        }

    # ------------------------------------------------------------------ #
    def create_set(self, handle: str, field_name: str, values) -> str:
        """Create an in-memory temporary set on the proxy (paper 5.3).

        The values travel once; later queries reference the handle.
        """
        self._check_open()
        values = tuple(values)
        obs.counter("dataserver.sets_created").inc()
        self.bytes_from_client += len(repr(values)) + len(handle)
        ltype = self.published.model.schema(self.published.source)[field_name]
        table = Table.from_pydict({field_name: sorted(set(values))}, types={field_name: ltype})
        shared = self.published.temp_state.register(handle, table)
        self._sets[handle] = (field_name, shared)
        return handle

    def drop_set(self, handle: str) -> None:
        entry = self._sets.pop(handle, None)
        if entry is not None:
            self.published.temp_state.release(entry[1])

    # ------------------------------------------------------------------ #
    def query(
        self,
        spec: QuerySpec,
        *,
        use_sets: Mapping[str, str] | None = None,
        trace_parent: Mapping[str, str] | None = None,
    ) -> Table:
        """Answer a spec, applying user filters and resolving set handles.

        ``use_sets`` maps field name → set handle: the named set's values
        are injected as a categorical filter during compilation, without
        re-shipping them from the client.

        ``trace_parent`` is an optional wire-format trace context (from
        :meth:`repro.obs.TraceContext.to_wire` on the calling node): the
        proxy's span tree then joins the caller's trace, so a VizServer
        request that crossed into Data Server stitches into one tree.
        """
        self._check_open()
        if spec.datasource != self.published.name:
            raise ServerError(
                f"spec targets {spec.datasource!r}, session is {self.published.name!r}"
            )
        now = self.published.pipeline._ledger_now
        cursor = obs.get_events().cursor() if self.telemetry is not None else 0
        started = now() if self.telemetry is not None else 0.0
        remote_ctx = obs.TraceContext.from_wire(trace_parent) if trace_parent else None
        sp = None
        batch = None
        # The proxy hop: client spec → published pipeline → result.
        try:
            with obs.activate(remote_ctx):
                with obs.span(
                    "dataserver.query", datasource=self.published.name, user=self.user
                ) as sp:
                    self.bytes_from_client += len(spec.canonical()) + sum(
                        len(h) for h in (use_sets or {}).values()
                    )
                    filters = list(spec.filters)
                    for field_name, handle in (use_sets or {}).items():
                        if handle not in self._sets:
                            raise ServerError(f"unknown set handle {handle!r}")
                        set_field, shared = self._sets[handle]
                        if set_field != field_name:
                            raise ServerError(
                                f"set {handle!r} is over {set_field!r}, not {field_name!r}"
                            )
                        values = self.published.temp_state.get(shared).column(set_field).python_values()
                        filters.append(CategoricalFilter(field_name, tuple(values)))
                    user_filter = self.published.user_filters.get(self.user)
                    if user_filter is not None:
                        filters.append(user_filter)
                    effective = spec.with_filters(tuple(filters))
                    batch = self.published.pipeline.run_batch([effective])
                    # For a single-spec session API, an unanswerable query
                    # raises (SourceUnavailableError out of table_for); a
                    # stale serve succeeds but is flagged on the session.
                    result = batch.table_for(effective)
                    self.last_stale = batch.is_stale(effective)
                    if self.last_stale:
                        self.stale_serves += 1
                        obs.counter("dataserver.stale_serves").inc()
                        sp.set(stale=True)
                    self.queries_answered += 1
                    obs.counter("dataserver.queries").inc()
                    sp.set(rows=result.n_rows)
        except SourceUnavailableError:
            # The span is closed here (the raise unwound it), so the
            # error trace is offered whole to the tail sampler.
            if self.telemetry is not None and batch is not None:
                self._observe(
                    effective, batch, started, now() - started, cursor,
                    failed=True, sp=sp,
                )
            raise
        if self.telemetry is not None:
            self._observe(
                effective, batch, started, now() - started, cursor,
                failed=False, sp=sp,
            )
        return result

    # ------------------------------------------------------------------ #
    def _observe(
        self,
        effective: QuerySpec,
        batch,
        started,
        elapsed,
        cursor,
        *,
        failed: bool,
        sp=None,
    ) -> None:
        """Feed one proxied query into the server's telemetry plane."""
        key = effective.canonical()
        ledger = batch.ledgers.get(key)
        if ledger is not None:
            ledger.close_out(started, started + elapsed)
        degraded = batch.is_stale(effective)
        trace_id = getattr(sp, "trace_id", "") or None
        if trace_id:
            # Tail-based sampling: errors and degraded serves are always
            # kept; the rest compete on latency or the 1-in-N sample.
            force = "error" if failed else "stale" if degraded else None
            self.telemetry.offer_trace(sp, force=force)
        slow = self.telemetry.observe(
            elapsed,
            dimensions={
                "source": self.published.name,
                "session": self.user,
                "backend": self.published.source.name,
            },
            degraded=degraded,
            failed=failed,
            trace_id=trace_id,
        )
        if not slow:
            return
        events, _next = obs.get_events().events(since_seq=cursor)
        explain = None
        if self.telemetry.options.capture_explain:
            report = self.published.pipeline.explain_batch(
                [effective], assume_cold=True
            )[0]
            plan = report.get("plan")
            explain = {
                "spec": report["spec"],
                "decision": report.get("decision"),
                "query": report.get("text"),
                "plan": str(plan) if plan is not None else None,
            }
        self.telemetry.slowlog.admit(
            SlowQueryEntry(
                key=f"{self.user}/{self.published.name}/query",
                wall_s=elapsed,
                t_s=started,
                outcome="failed" if failed else "degraded" if degraded else "ok",
                context={
                    "spec": key,
                    "remote_queries": batch.remote_queries,
                    "cache_hits": batch.cache_hits,
                },
                ledgers={key: ledger.to_dict()} if ledger is not None else {},
                events=[ev.to_dict() for ev in events],
                explain=explain,
                trace_id=trace_id,
                critical_path=slowlog_path(sp, self.telemetry.traces),
            )
        )

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if not self.closed:
            for handle in list(self._sets):
                self.drop_set(handle)
            self.closed = True

    def _check_open(self) -> None:
        if self.closed:
            raise ServerError("session is closed")
