"""Sharded TDE cluster: data partitioning in a distributed architecture.

Paper §7: "Substantial sizes of federated datasets and rapidly growing
popularity of our SaaS platform put more pressure on the Tableau Data
Engine to process larger extracts. Therefore, we are considering using
data partitioning in a distributed architecture."

This module realizes that plan with machinery the paper already describes:
the fact table is range-sharded across shared-nothing TDE nodes
(dimensions replicated), and aggregate queries run scatter-gather using
the *same local/global decomposition* as the intra-node parallel
aggregation of 4.2.3 — each shard computes partial aggregates, the
coordinator merges them. COUNT DISTINCT is handled by widening the local
grain with the distinct column (shards may then repeat a (group, value)
pair, which the coordinator's distinct count absorbs). Non-aggregate
queries concatenate shard results, with order/top-n/limit re-applied at
the coordinator.
"""

from __future__ import annotations

import threading
from typing import Callable

import numpy as np

from ..datatypes import LogicalType
from ..errors import ServerError
from ..expr.ast import AggExpr, Call, ColumnRef, Expr, Literal
from ..queries.postops import LocalProject, apply_post_ops
from ..tde.engine import DataEngine
from ..tde.exec.kernels import AggSpec
from ..tde.exec.physical import aggregate_table
from ..tde.optimizer.parallel import PlannerOptions
from ..tde.optimizer.rules import rewrite_logical
from ..tde.storage.table import Table
from ..tde.tql.binder import bind
from ..tde.tql.parser import parse_tql
from ..tde.tql.plan import Aggregate, Limit, LogicalPlan, Order, TopN

_ZERO = Literal(0)


class ShardedTdeCluster:
    """Shared-nothing TDE nodes over a range-sharded fact table."""

    def __init__(
        self,
        n_nodes: int,
        loader: Callable[[DataEngine], None],
        shard_table: str,
        *,
        options: PlannerOptions | None = None,
    ):
        """``loader`` fills a staging engine; ``shard_table``'s rows are
        then split into contiguous ranges (preserving any sort order, so
        per-shard streaming aggregation keeps working) while every other
        table is replicated to all nodes.
        """
        if n_nodes < 1:
            raise ServerError("sharded cluster needs at least one node")
        staging = DataEngine("staging")
        loader(staging)
        if not staging.has_table(shard_table):
            raise ServerError(f"shard table {shard_table!r} was not loaded")
        self.shard_table = shard_table
        self.nodes: list[DataEngine] = []
        fact = staging.table(shard_table)
        bounds = np.linspace(0, fact.n_rows, n_nodes + 1).astype(np.int64)
        for i in range(n_nodes):
            node = DataEngine(f"shard{i}", options=options)
            loader(node)
            shard = fact.slice(int(bounds[i]), int(bounds[i + 1]))
            shard.sort_keys = fact.sort_keys  # contiguous slices stay sorted
            node.create_table(shard_table, shard, replace=True)
            self.nodes.append(node)
        self.scatter_queries = 0

    # ------------------------------------------------------------------ #
    def row_counts(self) -> list[int]:
        return [node.table(self.shard_table).n_rows for node in self.nodes]

    def query(self, tql: str) -> Table:
        """Run a query over the whole sharded dataset."""
        plan = rewrite_logical(parse_tql(tql), self.nodes[0].catalog)
        bind(plan, self.nodes[0].catalog)
        return self._execute(plan)

    # ------------------------------------------------------------------ #
    def _execute(self, plan: LogicalPlan) -> Table:
        if isinstance(plan, Aggregate):
            return self._scatter_aggregate(plan)
        if isinstance(plan, TopN):
            if isinstance(plan.child, Aggregate):
                merged = self._scatter_aggregate(plan.child)
            else:
                # Per-shard top-n bounds the shuffle; re-rank globally.
                merged = self._gather(TopN(plan.child, plan.n, plan.keys))
            return merged.sort_by(list(plan.keys)).head(plan.n)
        if isinstance(plan, Order):
            return self._execute(plan.child).sort_by(list(plan.keys))
        if isinstance(plan, Limit):
            return self._gather(Limit(plan.child, plan.n)).head(plan.n)
        return self._gather(plan)

    def _gather(self, plan: LogicalPlan) -> Table:
        """Run the same plan on every shard and concatenate (scatter)."""
        self.scatter_queries += 1
        results: list[Table | None] = [None] * len(self.nodes)
        errors: list[BaseException] = []

        def worker(i: int, node: DataEngine) -> None:
            try:
                results[i] = node.query(plan)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i, node), daemon=True)
            for i, node in enumerate(self.nodes)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]
        return Table.concat([r for r in results if r is not None])

    # ------------------------------------------------------------------ #
    def _scatter_aggregate(self, plan: Aggregate) -> Table:
        """Local/global decomposition across shards (cf. paper 4.2.3)."""
        child_schema = bind(plan.child, self.nodes[0].catalog)
        distinct_cols: list[str] = []
        for _alias, agg in plan.aggs:
            if agg.func == "count_distinct":
                if not isinstance(agg.arg, ColumnRef):
                    raise ServerError(
                        "scatter COUNT DISTINCT requires a plain column argument"
                    )
                if agg.arg.name not in distinct_cols:
                    distinct_cols.append(agg.arg.name)
        local_groupby = list(plan.groupby) + [
            c for c in distinct_cols if c not in plan.groupby
        ]
        local_aggs: list[tuple[str, AggExpr]] = []
        global_specs: list[AggSpec] = []
        final_items: list[tuple[str, Expr]] = [(g, ColumnRef(g)) for g in plan.groupby]
        needs_final = False
        for alias, agg in plan.aggs:
            result_type = agg.result_type(child_schema)
            if agg.func in ("sum", "min", "max"):
                local_aggs.append((alias, agg))
                global_specs.append(AggSpec(alias, agg.func, alias, result_type))
                final_items.append((alias, ColumnRef(alias)))
            elif agg.func == "count":
                local_aggs.append((alias, agg))
                global_specs.append(AggSpec(alias, "sum", alias, LogicalType.INT))
                final_items.append((alias, Call("ifnull", (ColumnRef(alias), _ZERO))))
                needs_final = True
            elif agg.func == "avg":
                s_alias, c_alias = f"__s_{alias}", f"__c_{alias}"
                local_aggs.append((s_alias, AggExpr("sum", agg.arg)))
                local_aggs.append((c_alias, AggExpr("count", agg.arg)))
                global_specs.append(AggSpec(s_alias, "sum", s_alias, LogicalType.FLOAT))
                global_specs.append(AggSpec(c_alias, "sum", c_alias, LogicalType.INT))
                final_items.append(
                    (alias, Call("/", (ColumnRef(s_alias), ColumnRef(c_alias))))
                )
                needs_final = True
            elif agg.func == "count_distinct":
                global_specs.append(
                    AggSpec(alias, "count_distinct", agg.arg.name, LogicalType.INT)
                )
                final_items.append((alias, ColumnRef(alias)))
            else:  # pragma: no cover - AggExpr validates its func
                raise ServerError(f"cannot scatter aggregate {agg.func}")
        local_plan = Aggregate(plan.child, local_groupby, local_aggs)
        partials = self._gather(local_plan)
        merged = aggregate_table(partials, list(plan.groupby), global_specs)
        if needs_final:
            merged = apply_post_ops(merged, [LocalProject(tuple(final_items))])
        return merged
