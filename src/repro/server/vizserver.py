"""VizServer: multi-node request handling over the distributed cache.

Paper 3.2, server side: "Tableau Server does not persist the caches but
it utilizes a distributed layer ... This allows sharing data across nodes
in the cluster and keeping data warm regardless of which node handles
particular requests. For efficiency, recent entries are also stored in
memory on the nodes processing particular queries."

Each :class:`ServerNode` runs its own pipeline whose literal cache is
backed by the shared :class:`KeyValueStore` with a node-local L1.
Requests are routed round-robin, so without the distributed layer every
node would re-fetch the same dashboards from the backend.
"""

from __future__ import annotations

import dataclasses
import threading
import time

from .. import obs
from ..core.cache.distributed import (
    DistributedLiteralCache,
    DistributedQueryCache,
    KeyValueStore,
)
from ..core.cache.eviction import EvictionPolicy
from ..core.coalesce import SingleFlightRegistry
from ..core.pipeline import PipelineOptions, QueryPipeline
from ..dashboard.model import Dashboard
from ..dashboard.render import DashboardSession, RenderResult
from ..errors import ServerError
from ..obs.critpath import slowlog_path
from ..obs.slowlog import SlowQueryEntry
from ..obs.window import Telemetry, TelemetryOptions
from ..queries.model import DataSourceModel


class ServerNode:
    """One VizServer worker process."""

    def __init__(
        self,
        node_id: str,
        source,
        model: DataSourceModel,
        store: KeyValueStore,
        *,
        options: PipelineOptions | None = None,
        use_l1: bool = True,
        coalescer: SingleFlightRegistry | None = None,
        clock=None,
    ):
        self.node_id = node_id
        self.distributed = DistributedQueryCache(
            store, node_id, l1_policy=EvictionPolicy(max_entries=64), use_l1=use_l1
        )
        self.pipeline = QueryPipeline(
            source,
            model,
            options=options,
            literal_cache=DistributedLiteralCache(
                self.distributed, getattr(source, "name", "source")
            ),
            coalescer=coalescer,
            clock=clock,
        )
        self.requests_handled = 0


class VizServer:
    """A cluster of nodes serving dashboard sessions."""

    def __init__(
        self,
        n_nodes: int,
        source,
        model: DataSourceModel,
        *,
        store: KeyValueStore | None = None,
        options: PipelineOptions | None = None,
        use_l1: bool = True,
        telemetry: TelemetryOptions | bool | None = None,
        clock=None,
    ):
        if n_nodes < 1:
            raise ServerError("VizServer needs at least one node")
        # ``store`` is any KeyValueStore-shaped byte store — the single
        # shared store E7 models, or an elastic
        # :class:`~repro.core.cache.replicated.ReplicatedStore` tier whose
        # nodes can join/leave/crash while this server keeps serving.
        # `store or KeyValueStore()` would discard an *empty* store —
        # both KeyValueStore and ReplicatedStore are falsy at len() == 0.
        self.store = store if store is not None else KeyValueStore()
        self._now = clock.monotonic if clock is not None else time.monotonic
        # The telemetry plane (windowed latency, SLO burn, slow-query
        # log) needs per-request ledgers, so enabling it forces
        # enable_ledger into every node's pipeline options.
        self.telemetry: Telemetry | None = None
        if telemetry:
            telemetry_options = (
                telemetry if isinstance(telemetry, TelemetryOptions) else None
            )
            self.telemetry = Telemetry(telemetry_options, clock=clock)
            options = dataclasses.replace(
                options or PipelineOptions(), enable_ledger=True
            )
        # One single-flight registry for the whole cluster: a herd of
        # identical initial loads coalesces across nodes, not just within
        # the node that happened to serve the first request.
        self.coalescer = SingleFlightRegistry(
            getattr(source, "name", "source"), clock=clock
        )
        self.nodes = [
            ServerNode(
                f"node{i}",
                source,
                model,
                self.store,
                options=options,
                use_l1=use_l1,
                coalescer=self.coalescer,
                clock=clock,
            )
            for i in range(n_nodes)
        ]
        self._sessions: dict[tuple[str, str], DashboardSession] = {}
        self._dashboards: dict[str, Dashboard] = {}
        self._lock = threading.Lock()
        self._rr = 0

    # ------------------------------------------------------------------ #
    def register_dashboard(self, dashboard: Dashboard) -> None:
        with self._lock:
            self._dashboards[dashboard.name] = dashboard

    def _route(self) -> ServerNode:
        with self._lock:
            node = self.nodes[self._rr % len(self.nodes)]
            self._rr += 1
            node.requests_handled += 1
            return node

    def _session(self, user: str, dashboard_name: str) -> DashboardSession:
        key = (user, dashboard_name)
        with self._lock:
            session = self._sessions.get(key)
            if session is None:
                if dashboard_name not in self._dashboards:
                    raise ServerError(f"unknown dashboard {dashboard_name!r}")
                session = DashboardSession(
                    self._dashboards[dashboard_name], self.nodes[0].pipeline
                )
                self._sessions[key] = session
        return session

    # ------------------------------------------------------------------ #
    def load(
        self, user: str, dashboard_name: str, *, trace_parent=None
    ) -> tuple[str, RenderResult]:
        return self._serve(
            "load", user, dashboard_name, lambda s: s.render(),
            trace_parent=trace_parent,
        )

    def select(
        self, user: str, dashboard_name: str, zone: str, values, *, trace_parent=None
    ) -> tuple[str, RenderResult]:
        return self._serve(
            "select", user, dashboard_name, lambda s: s.select(zone, values),
            trace_parent=trace_parent,
        )

    def _serve(
        self, op, user, dashboard_name, action, *, trace_parent=None
    ) -> tuple[str, RenderResult]:
        node = self._route()
        session = self._session(user, dashboard_name)
        # The event cursor marks where this request starts in the
        # decision-event ring; the slow-query log drains from here so a
        # captured entry carries exactly this request's decisions.
        cursor = obs.get_events().cursor() if self.telemetry is not None else 0
        started = self._now()
        # ``trace_parent`` is the wire form of the caller's TraceContext
        # (a front-end tier, a test's synthetic hop). Activating it makes
        # this request's span a new root adopting the caller's trace_id,
        # exactly as if the request had crossed a process boundary.
        remote_ctx = obs.TraceContext.from_wire(trace_parent) if trace_parent else None
        with obs.activate(remote_ctx):
            with obs.span(
                "vizserver.request", op=op, node=node.node_id, dashboard=dashboard_name
            ) as sp:
                # Any node may serve any request; the session state is
                # shared, the pipeline (and its caches) is the serving
                # node's. The swap happens under the session lock so a
                # concurrent request for the same session never sees a
                # mid-render pipeline change.
                with session.lock:
                    session.pipeline = node.pipeline
                    result = action(session)
                self._note_degradation(sp, result)
        elapsed = self._now() - started
        obs.histogram("vizserver.request_s").observe(elapsed)
        if self.telemetry is not None:
            self._observe_request(
                op, user, dashboard_name, node, session, result,
                started, elapsed, cursor, sp,
            )
        return node.node_id, result

    @staticmethod
    def _note_degradation(sp, result: RenderResult) -> None:
        if result.degraded:
            obs.counter("vizserver.degraded_requests").inc()
            sp.set(
                stale_zones=sorted(result.stale_zones),
                zone_errors=sorted(result.zone_errors),
            )

    # ------------------------------------------------------------------ #
    def _observe_request(
        self, op, user, dashboard_name, node, session, result,
        started, elapsed, cursor, sp,
    ) -> None:
        """Feed one served request into the telemetry plane."""
        # ``sp`` is the request's (now closed) root span — a null span
        # with an empty trace_id while tracing is off, so every trace
        # surface below is conditional on that emptiness.
        trace_id = getattr(sp, "trace_id", "") or None
        if trace_id is not None:
            force = (
                "error" if result.zone_errors
                else "stale" if result.degraded
                else None
            )
            self.telemetry.offer_trace(sp, force=force)
        # Widen each zone's ledger to the server request window: routing
        # and session-lock wait become queue, response assembly render.
        for ledger in result.zone_ledgers.values():
            ledger.close_out(started, started + elapsed)
        slow = self.telemetry.observe(
            elapsed,
            dimensions={
                "dashboard": dashboard_name,
                "session": user,
                "node": node.node_id,
                "backend": node.pipeline.source.name,
            },
            degraded=result.degraded,
            failed=bool(result.zone_errors),
            trace_id=trace_id,
        )
        if not slow:
            return
        events, _next = obs.get_events().events(since_seq=cursor)
        outcome = (
            "failed" if result.zone_errors
            else "degraded" if result.degraded
            else "ok"
        )
        entry = SlowQueryEntry(
            key=f"{user}/{dashboard_name}/{op}",
            wall_s=elapsed,
            t_s=started,
            outcome=outcome,
            context={
                "node": node.node_id,
                "iterations": result.iterations,
                "remote_queries": result.remote_queries,
                "cache_hits": result.cache_hits,
                "stale_zones": sorted(result.stale_zones),
                "zone_errors": dict(result.zone_errors),
            },
            ledgers={
                zone: ledger.to_dict()
                for zone, ledger in sorted(result.zone_ledgers.items())
            },
            events=[ev.to_dict() for ev in events],
            explain=self._explain_worst_zone(node, session, result),
            trace_id=trace_id,
            critical_path=slowlog_path(sp, self.telemetry.traces),
        )
        self.telemetry.slowlog.admit(entry)

    def _explain_worst_zone(self, node, session, result) -> dict | None:
        """Auto-capture an EXPLAIN of the slowest zone's query, as-if cold."""
        if not self.telemetry.options.capture_explain or not result.zone_ledgers:
            return None
        worst_zone = max(
            result.zone_ledgers, key=lambda z: result.zone_ledgers[z].active_s
        )
        with session.lock:
            zone = session.dashboard.zones.get(worst_zone)
            if zone is None or not zone.has_query:
                return None
            spec = session.effective_spec(zone)
        report = node.pipeline.explain_batch([spec], assume_cold=True)[0]
        plan = report.get("plan")
        return {
            "zone": worst_zone,
            "spec": report["spec"],
            "decision": report.get("decision"),
            "query": report.get("text"),
            "plan": str(plan) if plan is not None else None,
        }

    # ------------------------------------------------------------------ #
    def explain(
        self, user: str, dashboard_name: str, *, analyze: bool = False
    ) -> dict:
        """Per-request plans for a dashboard in its current session state.

        Routes like a real request, computes every queryable zone's
        effective spec (selections applied), and returns the serving
        pipeline's :meth:`~repro.core.pipeline.QueryPipeline.explain_batch`
        report keyed by zone name — which zones would be cache hits, which
        would be derived batch-locally, which go remote (and fused with
        what), plus the backend engine's EXPLAIN of each remote plan.
        """
        node = self._route()
        session = self._session(user, dashboard_name)
        with session.lock:
            zones = session.dashboard.queryable_zones()
            zone_specs = [(zone.name, session.effective_spec(zone)) for zone in zones]
            # Mirror the renderer's reuse hint so the explained queries
            # (and their literal-cache keys) are the ones a render sends.
            reuse = frozenset(
                action.field
                for zone in zones
                for action in session.dashboard.actions_onto(zone.name)
            )
        reports = node.pipeline.explain_batch(
            [spec for _name, spec in zone_specs],
            analyze=analyze,
            reuse_fields=reuse,
        )
        by_canonical = {report["spec"]: report for report in reports}
        return {
            "node": node.node_id,
            "dashboard": dashboard_name,
            "zones": {
                name: by_canonical[spec.canonical()] for name, spec in zone_specs
            },
        }

    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        """Per-node robustness snapshot: breaker state, pool wear, stale serves.

        The cluster-operator view of graceful degradation: a node whose
        breaker is open (or whose pool keeps discarding members) is
        serving stale results / per-zone errors rather than failing, and
        this is where that shows up.
        """
        nodes = {}
        for node in self.nodes:
            pool = node.pipeline.pool
            breaker = getattr(pool, "breaker", None)
            stale_store = node.pipeline.stale_store
            nodes[node.node_id] = {
                "requests_handled": node.requests_handled,
                "breaker": breaker.snapshot() if breaker is not None else None,
                "pool": {
                    "size": pool.size(),
                    "discarded": pool.stats.discarded,
                    "connect_failures": pool.stats.connect_failures,
                },
                "stale_entries": len(stale_store) if stale_store is not None else 0,
                "stale_serves": (
                    stale_store.stale_serves if stale_store is not None else 0
                ),
            }
        degraded = [
            node_id
            for node_id, snap in nodes.items()
            if snap["breaker"] is not None and snap["breaker"]["state"] != "closed"
        ]
        health = {
            "nodes": nodes,
            "degraded_nodes": degraded,
            "coalesce": self.coalescer.snapshot(),
        }
        tier_statz = getattr(self.store, "statz", None)
        if tier_statz is not None:
            tier = tier_statz()
            health["cache_tier"] = {
                "live_nodes": tier["fleet"]["live_nodes"],
                "degraded_cache_nodes": sorted(
                    node_id
                    for node_id, snap in tier["nodes"].items()
                    if not snap["alive"]
                ),
                "under_quorum_writes": tier["fleet"]["under_quorum_writes"],
            }
        return health

    # ------------------------------------------------------------------ #
    def statz(self) -> dict:
        """The live telemetry snapshot: windowed latency percentiles
        (global + per dimension), SLO burn state, and the slow-query log.

        The always-available skeleton (node request counts, coalescing)
        is returned even with telemetry off, so callers can probe one
        endpoint unconditionally; ``telemetry_enabled`` says whether the
        windowed sections are present.
        """
        snap = {
            "telemetry_enabled": self.telemetry is not None,
            "nodes": {
                node.node_id: {"requests_handled": node.requests_handled}
                for node in self.nodes
            },
            "coalesce": self.coalescer.snapshot(),
        }
        tier_statz = getattr(self.store, "statz", None)
        if tier_statz is not None:
            snap["cache_tier"] = tier_statz()
        if self.telemetry is not None:
            snap.update(self.telemetry.statz())
        return snap

    # ------------------------------------------------------------------ #
    def cache_summary(self) -> dict:
        return {
            "store_entries": len(self.store),
            "store_gets": self.store.gets,
            "store_hits": self.store.hit_count,
            "l1_hits": sum(n.distributed.l1_hits for n in self.nodes),
            "l2_hits": sum(n.distributed.l2_hits for n in self.nodes),
            "misses": sum(n.distributed.misses for n in self.nodes),
            "remote_queries": sum(
                n.pipeline.executor.remote_queries_sent for n in self.nodes
            ),
            "coalesce_leads": self.coalescer.stats.leads,
            "coalesce_joins": self.coalescer.stats.joins,
        }
