"""VizServer: multi-node request handling over the distributed cache.

Paper 3.2, server side: "Tableau Server does not persist the caches but
it utilizes a distributed layer ... This allows sharing data across nodes
in the cluster and keeping data warm regardless of which node handles
particular requests. For efficiency, recent entries are also stored in
memory on the nodes processing particular queries."

Each :class:`ServerNode` runs its own pipeline whose literal cache is
backed by the shared :class:`KeyValueStore` with a node-local L1.
Requests are routed round-robin, so without the distributed layer every
node would re-fetch the same dashboards from the backend.
"""

from __future__ import annotations

import threading
import time

from .. import obs
from ..core.cache.distributed import DistributedQueryCache, KeyValueStore
from ..core.cache.eviction import EvictionPolicy
from ..core.coalesce import SingleFlightRegistry
from ..core.pipeline import PipelineOptions, QueryPipeline
from ..dashboard.model import Dashboard
from ..dashboard.render import DashboardSession, RenderResult
from ..errors import ServerError
from ..queries.model import DataSourceModel
from ..tde.storage.table import Table


class _DistributedLiteralCache:
    """Adapter exposing the distributed cache as a literal-cache."""

    def __init__(self, cache: DistributedQueryCache):
        self.cache = cache

    def get(self, key: str) -> Table | None:
        return self.cache.get(key)

    def put(self, key: str, datasource: str, result: Table, *, cost_s: float = 0.0) -> None:
        self.cache.put(key, result)

    def invalidate(self, datasource: str | None = None) -> int:
        return 0  # entries age out of the shared store; nothing local


class ServerNode:
    """One VizServer worker process."""

    def __init__(
        self,
        node_id: str,
        source,
        model: DataSourceModel,
        store: KeyValueStore,
        *,
        options: PipelineOptions | None = None,
        use_l1: bool = True,
        coalescer: SingleFlightRegistry | None = None,
    ):
        self.node_id = node_id
        self.distributed = DistributedQueryCache(
            store, node_id, l1_policy=EvictionPolicy(max_entries=64), use_l1=use_l1
        )
        self.pipeline = QueryPipeline(
            source,
            model,
            options=options,
            literal_cache=_DistributedLiteralCache(self.distributed),
            coalescer=coalescer,
        )
        self.requests_handled = 0


class VizServer:
    """A cluster of nodes serving dashboard sessions."""

    def __init__(
        self,
        n_nodes: int,
        source,
        model: DataSourceModel,
        *,
        store: KeyValueStore | None = None,
        options: PipelineOptions | None = None,
        use_l1: bool = True,
    ):
        if n_nodes < 1:
            raise ServerError("VizServer needs at least one node")
        self.store = store or KeyValueStore()
        # One single-flight registry for the whole cluster: a herd of
        # identical initial loads coalesces across nodes, not just within
        # the node that happened to serve the first request.
        self.coalescer = SingleFlightRegistry(getattr(source, "name", "source"))
        self.nodes = [
            ServerNode(
                f"node{i}",
                source,
                model,
                self.store,
                options=options,
                use_l1=use_l1,
                coalescer=self.coalescer,
            )
            for i in range(n_nodes)
        ]
        self._sessions: dict[tuple[str, str], DashboardSession] = {}
        self._dashboards: dict[str, Dashboard] = {}
        self._lock = threading.Lock()
        self._rr = 0

    # ------------------------------------------------------------------ #
    def register_dashboard(self, dashboard: Dashboard) -> None:
        with self._lock:
            self._dashboards[dashboard.name] = dashboard

    def _route(self) -> ServerNode:
        with self._lock:
            node = self.nodes[self._rr % len(self.nodes)]
            self._rr += 1
            node.requests_handled += 1
            return node

    def _session(self, user: str, dashboard_name: str) -> DashboardSession:
        key = (user, dashboard_name)
        with self._lock:
            session = self._sessions.get(key)
            if session is None:
                if dashboard_name not in self._dashboards:
                    raise ServerError(f"unknown dashboard {dashboard_name!r}")
                session = DashboardSession(
                    self._dashboards[dashboard_name], self.nodes[0].pipeline
                )
                self._sessions[key] = session
        return session

    # ------------------------------------------------------------------ #
    def load(self, user: str, dashboard_name: str) -> tuple[str, RenderResult]:
        node = self._route()
        session = self._session(user, dashboard_name)
        started = time.monotonic()
        with obs.span(
            "vizserver.request", op="load", node=node.node_id, dashboard=dashboard_name
        ) as sp:
            # Any node may serve any request; the session state is shared,
            # the pipeline (and its caches) is the serving node's. The
            # swap happens under the session lock so a concurrent request
            # for the same session never sees a mid-render pipeline change.
            with session.lock:
                session.pipeline = node.pipeline
                result = session.render()
            self._note_degradation(sp, result)
        obs.histogram("vizserver.request_s").observe(time.monotonic() - started)
        return node.node_id, result

    def select(
        self, user: str, dashboard_name: str, zone: str, values
    ) -> tuple[str, RenderResult]:
        node = self._route()
        session = self._session(user, dashboard_name)
        started = time.monotonic()
        with obs.span(
            "vizserver.request", op="select", node=node.node_id, dashboard=dashboard_name
        ) as sp:
            with session.lock:
                session.pipeline = node.pipeline
                result = session.select(zone, values)
            self._note_degradation(sp, result)
        obs.histogram("vizserver.request_s").observe(time.monotonic() - started)
        return node.node_id, result

    @staticmethod
    def _note_degradation(sp, result: RenderResult) -> None:
        if result.degraded:
            obs.counter("vizserver.degraded_requests").inc()
            sp.set(
                stale_zones=sorted(result.stale_zones),
                zone_errors=sorted(result.zone_errors),
            )

    # ------------------------------------------------------------------ #
    def explain(
        self, user: str, dashboard_name: str, *, analyze: bool = False
    ) -> dict:
        """Per-request plans for a dashboard in its current session state.

        Routes like a real request, computes every queryable zone's
        effective spec (selections applied), and returns the serving
        pipeline's :meth:`~repro.core.pipeline.QueryPipeline.explain_batch`
        report keyed by zone name — which zones would be cache hits, which
        would be derived batch-locally, which go remote (and fused with
        what), plus the backend engine's EXPLAIN of each remote plan.
        """
        node = self._route()
        session = self._session(user, dashboard_name)
        with session.lock:
            zones = session.dashboard.queryable_zones()
            zone_specs = [(zone.name, session.effective_spec(zone)) for zone in zones]
        reports = node.pipeline.explain_batch(
            [spec for _name, spec in zone_specs], analyze=analyze
        )
        by_canonical = {report["spec"]: report for report in reports}
        return {
            "node": node.node_id,
            "dashboard": dashboard_name,
            "zones": {
                name: by_canonical[spec.canonical()] for name, spec in zone_specs
            },
        }

    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        """Per-node robustness snapshot: breaker state, pool wear, stale serves.

        The cluster-operator view of graceful degradation: a node whose
        breaker is open (or whose pool keeps discarding members) is
        serving stale results / per-zone errors rather than failing, and
        this is where that shows up.
        """
        nodes = {}
        for node in self.nodes:
            pool = node.pipeline.pool
            breaker = getattr(pool, "breaker", None)
            stale_store = node.pipeline.stale_store
            nodes[node.node_id] = {
                "requests_handled": node.requests_handled,
                "breaker": breaker.snapshot() if breaker is not None else None,
                "pool": {
                    "size": pool.size(),
                    "discarded": pool.stats.discarded,
                    "connect_failures": pool.stats.connect_failures,
                },
                "stale_entries": len(stale_store) if stale_store is not None else 0,
                "stale_serves": (
                    stale_store.stale_serves if stale_store is not None else 0
                ),
            }
        degraded = [
            node_id
            for node_id, snap in nodes.items()
            if snap["breaker"] is not None and snap["breaker"]["state"] != "closed"
        ]
        return {
            "nodes": nodes,
            "degraded_nodes": degraded,
            "coalesce": self.coalescer.snapshot(),
        }

    # ------------------------------------------------------------------ #
    def cache_summary(self) -> dict:
        return {
            "store_entries": len(self.store),
            "store_gets": self.store.gets,
            "store_hits": self.store.hit_count,
            "l1_hits": sum(n.distributed.l1_hits for n in self.nodes),
            "l2_hits": sum(n.distributed.l2_hits for n in self.nodes),
            "misses": sum(n.distributed.misses for n in self.nodes),
            "remote_queries": sum(
                n.pipeline.executor.remote_queries_sent for n in self.nodes
            ),
            "coalesce_leads": self.coalescer.stats.leads,
            "coalesce_joins": self.coalescer.stats.joins,
        }
