"""The paper's headline contribution: query processing for dashboards.

* ``repro.core.cache`` — two-level query caching: the *intelligent*
  (semantic, view-matching) cache with subsumption proofs and local
  post-processing, and the *literal* cache keyed on query text (3.2);
  persistence (Desktop) and a distributed layer (Server).
* ``repro.core.fusion`` — query fusion: merging same-relation queries that
  differ in their projection lists (3.4).
* ``repro.core.batch`` — the cache-hit opportunity graph and the
  local/remote partition of a query batch (3.3, Figure 3).
* ``repro.core.executor`` — concurrent execution of remote queries over
  pooled connections (3.5).
* ``repro.core.coalesce`` — single-flight coalescing of concurrent
  identical (or subsumable) queries: the herd-traffic answer to 3.2's
  "saturated by initial load requests".
* ``repro.core.pipeline`` — the end-to-end batch pipeline gluing the
  above together.
"""

from .cache.intelligent import IntelligentCache, enrich_spec, match_specs
from .coalesce import CoalesceStats, CoalesceTimeoutError, SingleFlightRegistry
from .cache.index import CacheIndex
from .cache.literal import LiteralCache
from .cache.eviction import EvictionPolicy
from .cache.distributed import KeyValueStore, DistributedQueryCache
from .fusion import FusedQuery, fuse_batch
from .batch import BatchGraph, build_batch_graph
from .executor import ConcurrentQueryExecutor
from .pipeline import BatchResult, PipelineOptions, QueryPipeline
from .prefetch import InteractionPrefetcher

__all__ = [
    "IntelligentCache",
    "LiteralCache",
    "EvictionPolicy",
    "KeyValueStore",
    "DistributedQueryCache",
    "enrich_spec",
    "match_specs",
    "FusedQuery",
    "fuse_batch",
    "BatchGraph",
    "build_batch_graph",
    "ConcurrentQueryExecutor",
    "QueryPipeline",
    "PipelineOptions",
    "BatchResult",
    "CacheIndex",
    "InteractionPrefetcher",
    "SingleFlightRegistry",
    "CoalesceStats",
    "CoalesceTimeoutError",
]
