"""Query batch analysis: the cache-hit opportunity graph (paper 3.3).

"Consider a query batch B=[q1..qn] ... consider a directed graph G with
the queries as nodes and edges pointing from qi to qj iff the result of qj
can be computed from the results of qi. ... we analyze it and partition
the nodes of G into two sets. One set contains queries that need to be
sent to the remote back-ends; they correspond to the source nodes, i.e.
the nodes without incoming edges. The second set contains queries that
are cache hits that can be processed locally."

Edges are decided by the same matching logic the intelligent cache uses
(:func:`match_specs`). Mutually derivable (equivalent) specs would form
2-cycles; the earlier node is treated as the provider, so the partition
remains well-founded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..queries.spec import QuerySpec
from .cache.intelligent import match_specs


@dataclass
class BatchGraph:
    """The analyzed batch: nodes, derivability edges, and the partition."""

    specs: list[QuerySpec]
    edges: list[tuple[int, int]]  # (provider, consumer)
    remote: list[int]
    local: list[int]
    provider_of: dict[int, int]  # consumer -> chosen provider

    def describe(self) -> str:
        lines = [f"batch of {len(self.specs)}: {len(self.remote)} remote, {len(self.local)} local"]
        for j in self.local:
            lines.append(f"  q{j} <- q{self.provider_of[j]}")
        return "\n".join(lines)


def build_batch_graph(specs: list[QuerySpec]) -> BatchGraph:
    """Build G and partition it into remote sources and local hits."""
    n = len(specs)
    edges: list[tuple[int, int]] = []
    incoming: dict[int, list[int]] = {j: [] for j in range(n)}
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if match_specs(specs[i], specs[j]) is not None:
                forward_only = not (j < i and match_specs(specs[j], specs[i]) is not None)
                if forward_only:
                    edges.append((i, j))
                    incoming[j].append(i)
    remote = [j for j in range(n) if not incoming[j]]
    local = [j for j in range(n) if incoming[j]]
    provider_of: dict[int, int] = {}
    remote_set = set(remote)
    for j in local:
        # Prefer a provider that is itself remote (available earliest).
        candidates = incoming[j]
        direct = [i for i in candidates if i in remote_set]
        provider_of[j] = direct[0] if direct else candidates[0]
    return BatchGraph(list(specs), edges, remote, local, provider_of)
