"""The end-to-end query batch pipeline (paper sections 3.2–3.5 combined).

For each batch of query specs:

1. **Intelligent cache probe** — specs answerable from the semantic cache
   are served locally.
2. **Batch graph** — remaining specs form the cache-hit opportunity graph;
   source nodes go remote, derivable nodes wait locally (3.3, Fig. 3).
3. **Query fusion** — remote specs over the same relation merge their
   projection lists (3.4).
4. **Concurrent execution** — fused queries run concurrently over pooled
   connections, consulting the literal cache, creating temporary tables
   for externalized filters (3.5, 3.1).
5. **Reuse** — results are (optionally enriched and) inserted into the
   intelligent cache; local nodes are then answered from it.

Degradation: a source failure (retries exhausted, circuit breaker open,
pool member dead) never raises out of :meth:`QueryPipeline.run_batch`.
The failed spec is served from the :class:`~repro.core.stale.
StaleResultStore` — flagged via :attr:`BatchResult.stale_keys` — when a
last-known-good answer exists, and recorded in :attr:`BatchResult.errors`
otherwise, so one dead connector degrades its own zones instead of
failing the whole dashboard. Every degrade decision lands in the
``obs.events`` ring (``degrade.*``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .. import obs
from ..connectors.pool import ConnectionPool
from ..obs.ledger import LedgerBook, RequestLedger
from ..errors import SourceError, SourceUnavailableError
from ..faults.breaker import CircuitBreaker
from ..faults.retry import RetryPolicy
from ..queries.compile import compile_spec
from ..queries.model import DataSourceModel
from ..queries.postops import apply_post_ops
from ..queries.spec import QuerySpec
from ..tde.storage.table import Table
from .batch import build_batch_graph
from .cache.intelligent import IntelligentCache, enrich_spec, match_specs
from .cache.literal import LiteralCache
from .coalesce import JoinTicket, SingleFlightRegistry, _Flight
from .executor import ConcurrentQueryExecutor
from .fusion import fuse_batch
from .stale import StaleResultStore


@dataclass
class PipelineOptions:
    """Feature toggles — each maps to one of the paper's optimizations,
    so the benchmarks can ablate them independently. The robustness knobs
    (retry/breaker/stale) default to the seed behaviour: no retries, no
    breaker, but stale serves on — a failure with no history is an error
    either way, and one *with* history is a better user experience served
    stale."""

    enable_intelligent_cache: bool = True
    enable_literal_cache: bool = True
    enable_fusion: bool = True
    enable_batch_graph: bool = True
    concurrent: bool = True
    enrich_for_reuse: bool = True
    choose_best_match: bool = False
    max_workers: int = 8
    max_connections: int = 8
    externalize_threshold: int | None = None
    #: Retry/backoff for transient source errors (None = single attempt).
    retry: RetryPolicy | None = None
    #: Build a circuit breaker into the pool (ignored when a pool is
    #: passed in; configure that pool's breaker directly instead).
    enable_breaker: bool = False
    breaker_threshold: int = 5
    breaker_recovery_s: float = 30.0
    #: Serve last-known-good results (flagged stale) when a source is down.
    serve_stale: bool = True
    stale_max_entries: int = 256
    #: Single-flight coalescing: concurrent identical queries share one
    #: execution (leader runs, followers wait on its published result).
    enable_coalescing: bool = True
    #: Also join leaders whose in-flight spec *subsumes* the request
    #: (proved by ``match_specs``); the follower answers with post-ops.
    coalesce_subsumption: bool = True
    #: How long a follower waits on a leader before treating the flight
    #: as failed and retrying on its own.
    coalesce_wait_timeout_s: float = 30.0
    #: Attach a :class:`~repro.obs.ledger.RequestLedger` to every spec in
    #: every batch (servers with telemetry force this on). Ledgers are
    #: also built whenever global observability is enabled; with both
    #: off, the ledger path allocates nothing.
    enable_ledger: bool = False


@dataclass
class BatchResult:
    """Answers plus accounting for one processed batch."""

    tables: dict[str, Table]  # spec canonical -> result
    remote_queries: int = 0
    cache_hits: int = 0
    #: Intelligent-cache answers during result distribution (phases 4–5):
    #: a member or local node served by a cache *derivation* rather than
    #: its own remote fetch. Kept separate from ``cache_hits`` (phase-0
    #: probe hits) so hit-rate metrics stay truthful.
    derived_hits: int = 0
    batch_local: int = 0
    fused_away: int = 0
    literal_hits: int = 0
    #: Specs answered by waiting on another request's in-flight execution
    #: (single-flight coalescing) instead of going remote themselves.
    coalesced_hits: int = 0
    #: Total seconds this batch spent blocked on in-flight leaders (also
    #: observed per wait in the ``coalesce.wait_s`` histogram).
    coalesce_wait_s: float = 0.0
    elapsed_s: float = 0.0
    #: Canonical keys answered from the stale store because their source
    #: failed — the ``stale=True`` flag of a degraded serve.
    stale_keys: set[str] = field(default_factory=set)
    #: Canonical key -> error description for specs that could not be
    #: answered at all (no fresh result, no stale fallback).
    errors: dict[str, str] = field(default_factory=dict)
    #: Canonical key -> per-request latency attribution (only populated
    #: when ledgers are enabled; see ``PipelineOptions.enable_ledger``).
    ledgers: dict[str, RequestLedger] = field(default_factory=dict)

    def ledger_for(self, spec: QuerySpec) -> RequestLedger | None:
        return self.ledgers.get(spec.canonical())

    def table_for(self, spec: QuerySpec) -> Table:
        key = spec.canonical()
        if key not in self.tables and key in self.errors:
            raise SourceUnavailableError(self.errors[key])
        return self.tables[key]

    def is_stale(self, spec: QuerySpec) -> bool:
        """Whether this spec's answer was a degraded (stale) serve."""
        return spec.canonical() in self.stale_keys

    @property
    def stale_hits(self) -> int:
        return len(self.stale_keys)

    @property
    def ok(self) -> bool:
        return not self.errors


class QueryPipeline:
    """Processes query batches for one data source + model."""

    def __init__(
        self,
        source,
        model: DataSourceModel,
        *,
        options: PipelineOptions | None = None,
        pool: ConnectionPool | None = None,
        intelligent_cache: IntelligentCache | None = None,
        literal_cache: LiteralCache | None = None,
        stale_store: StaleResultStore | None = None,
        coalescer: SingleFlightRegistry | None = None,
        clock=None,
    ):
        self.source = source
        self.model = model
        self.options = options or PipelineOptions()
        self.clock = clock
        # Ledger charges, executor timings and batch elapsed all read
        # this one monotonic source, so phase sums stay conserved under
        # a virtual clock exactly as under the system clock.
        self._ledger_now = clock.monotonic if clock is not None else time.monotonic
        if pool is None:
            breaker = None
            if self.options.enable_breaker:
                breaker = CircuitBreaker(
                    failure_threshold=self.options.breaker_threshold,
                    recovery_s=self.options.breaker_recovery_s,
                    clock=clock,
                    name=source.name,
                )
            pool = ConnectionPool(
                source,
                max_connections=self.options.max_connections,
                breaker=breaker,
            )
        self.pool = pool
        self.intelligent_cache = intelligent_cache or IntelligentCache(
            choose_best=self.options.choose_best_match
        )
        self.literal_cache = literal_cache or LiteralCache()
        self.stale_store = stale_store or (
            StaleResultStore(self.options.stale_max_entries, clock=clock)
            if self.options.serve_stale
            else None
        )
        # One registry per source; a VizServer passes the same instance to
        # every node's pipeline so coalescing works cluster-wide.
        self.coalescer = coalescer or SingleFlightRegistry(
            source.name,
            clock=clock,
            wait_timeout_s=self.options.coalesce_wait_timeout_s,
        )
        self.executor = ConcurrentQueryExecutor(
            self.pool,
            max_workers=self.options.max_workers,
            literal_cache=self.literal_cache if self.options.enable_literal_cache else None,
            retry=self.options.retry,
            clock=clock,
        )

    # ------------------------------------------------------------------ #
    def run_spec(self, spec: QuerySpec) -> Table:
        """Convenience wrapper: a batch of one."""
        return self.run_batch([spec]).table_for(spec)

    def run_batch(
        self, specs: list[QuerySpec], *, reuse_fields: frozenset[str] = frozenset()
    ) -> BatchResult:
        book = (
            LedgerBook(self._ledger_now)
            if (self.options.enable_ledger or obs.enabled())
            else None
        )
        started = book.t0 if book is not None else self._ledger_now()
        result = BatchResult({})
        with obs.span("pipeline.run_batch", specs=len(specs)) as batch_span:
            ordered: list[QuerySpec] = []
            seen: set[str] = set()
            for spec in specs:
                if spec.canonical() not in seen:
                    seen.add(spec.canonical())
                    ordered.append(spec)
            # Phase 0: serve from the intelligent cache.
            pending: list[QuerySpec] = []
            with obs.span("pipeline.cache_probe", specs=len(ordered)):
                for spec in ordered:
                    if self.options.enable_intelligent_cache:
                        t_probe = book.now() if book is not None else 0.0
                        cached = self.intelligent_cache.lookup(spec)
                        if book is not None:
                            book.charge(
                                spec.canonical(), "cache_probe", book.now() - t_probe
                            )
                        if cached is not None:
                            self._record_good(spec.canonical(), cached)
                            result.tables[spec.canonical()] = cached
                            result.cache_hits += 1
                            if book is not None:
                                book.finish(spec.canonical(), "cache_hit")
                            continue
                    pending.append(spec)
            if pending:
                # Phase 0.5: single-flight coalescing across concurrent
                # batches. Leaders stay pending and execute; followers
                # wait on an in-flight leader's published result.
                flights, followers, leaders = self._coalesce_partition(pending)
                try:
                    if leaders:
                        self._run_pending(leaders, result, reuse_fields, book)
                finally:
                    # Resolve every owned flight even on unexpected
                    # failure — a leader that never publishes would hang
                    # its followers until their wait timeout.
                    self._resolve_flights(flights, result)
                if followers:
                    self._await_followers(followers, result, reuse_fields, book)
            result.elapsed_s = self._ledger_now() - started
            if book is not None:
                result.ledgers = book.close()
            batch_span.set(
                remote_queries=result.remote_queries,
                cache_hits=result.cache_hits,
                derived_hits=result.derived_hits,
                fused_away=result.fused_away,
            )
            if result.coalesced_hits:
                batch_span.set(
                    coalesced_hits=result.coalesced_hits,
                    coalesce_wait_s=round(result.coalesce_wait_s, 6),
                )
            if result.stale_keys or result.errors:
                batch_span.set(
                    stale=len(result.stale_keys), failed=len(result.errors)
                )
        return result

    # ------------------------------------------------------------------ #
    # Single-flight coalescing (herd traffic, paper 3.2)
    # ------------------------------------------------------------------ #
    def _coalesce_partition(
        self, pending: list[QuerySpec]
    ) -> tuple[
        list[tuple[str, _Flight]],
        list[tuple[QuerySpec, JoinTicket]],
        list[QuerySpec],
    ]:
        """Split pending specs into owned flights, follower joins, leaders."""
        if not self.options.enable_coalescing:
            return [], [], pending
        flights: list[tuple[str, _Flight]] = []
        followers: list[tuple[QuerySpec, JoinTicket]] = []
        leaders: list[QuerySpec] = []
        own_keys: set[str] = set()
        for spec in pending:
            # A spec never joins this batch's own flights: intra-batch
            # derivation is the batch graph's (non-blocking) job.
            flight, ticket = self.coalescer.lead_or_join(
                spec,
                subsume=self.options.coalesce_subsumption,
                exclude=frozenset(own_keys),
            )
            if ticket is not None:
                followers.append((spec, ticket))
            else:
                key = spec.canonical()
                flights.append((key, flight))
                own_keys.add(key)
                leaders.append(spec)
        return flights, followers, leaders

    def _resolve_flights(
        self, flights: list[tuple[str, _Flight]], result: BatchResult
    ) -> None:
        """Publish each owned flight's outcome to any waiting followers.

        Only *fresh* results are shared. A leader that degraded (stale
        serve) or failed propagates a :class:`SourceError` so followers
        retry or degrade independently — a follower never inherits a
        stale flag it didn't earn from its own stale store.
        """
        for key, flight in flights:
            if key in result.tables and key not in result.stale_keys:
                self.coalescer.publish(flight, result.tables[key])
            elif key in result.stale_keys:
                self.coalescer.fail(
                    flight,
                    SourceUnavailableError(
                        f"leader for {key!r} degraded to a stale serve"
                    ),
                )
            else:
                self.coalescer.fail(
                    flight,
                    SourceUnavailableError(
                        result.errors.get(key, "leader execution did not produce a result")
                    ),
                )

    def _await_followers(
        self,
        followers: list[tuple[QuerySpec, JoinTicket]],
        result: BatchResult,
        reuse_fields: frozenset[str],
        book: LedgerBook | None = None,
    ) -> None:
        """Collect coalesced answers; on leader failure, retry/degrade solo."""
        retry_specs: list[QuerySpec] = []
        with obs.span("pipeline.coalesce_wait", followers=len(followers)) as wait_span:
            for spec, ticket in followers:
                key = spec.canonical()
                # The wait's latency belongs to whichever request is
                # leading the flight: record the causal edge so the
                # critical-path analyzer charges the leader's work.
                wait_span.add_link("coalesce.leader", ticket.flight.ctx, key=key)
                t_wait = book.now() if book is not None else 0.0
                outcome = ticket.wait(
                    self.options.coalesce_wait_timeout_s, clock=self.coalescer.clock
                )
                if book is not None:
                    # Charged from the book's own clock (not the registry's
                    # ``waited_s``) so the conservation invariant holds even
                    # when the two run on different clocks.
                    book.charge(key, "coalesce_wait", book.now() - t_wait)
                result.coalesce_wait_s += outcome.waited_s
                obs.histogram("coalesce.wait_s").observe(outcome.waited_s)
                if outcome.ok:
                    t_post = book.now() if book is not None else 0.0
                    table = outcome.table
                    if ticket.post_ops:
                        table = apply_post_ops(table, ticket.post_ops)
                    result.tables[key] = table
                    result.coalesced_hits += 1
                    self._record_good(key, table)
                    if self.options.enable_intelligent_cache:
                        # The leader's table is the (possibly wider) answer
                        # to the leader's spec; remember it locally so the
                        # next request on this node hits without waiting.
                        self.intelligent_cache.put(
                            ticket.flight.spec, outcome.table, cost_s=outcome.waited_s
                        )
                    if book is not None:
                        book.charge(key, "post_ops", book.now() - t_post)
                        book.finish(key, "coalesced")
                else:
                    obs.counter("coalesce.leader_failures").inc()
                    if obs.events_enabled():
                        obs.event(
                            "coalesce.follower_retry",
                            "retrying",
                            "in-flight leader failed "
                            f"({type(outcome.error).__name__}: {outcome.error}); "
                            "retrying this spec independently",
                            spec=key,
                            leader=ticket.leader_key,
                        )
                    retry_specs.append(spec)
            wait_span.set(
                coalesced=result.coalesced_hits, retried=len(retry_specs)
            )
        if retry_specs:
            # The independent retry: execute directly (no re-coalescing —
            # the failed herd must not re-form behind another doomed
            # leader). _run_pending degrades per spec on repeat failure,
            # so each follower earns its own stale flag or error.
            self._run_pending(retry_specs, result, reuse_fields, book)

    # ------------------------------------------------------------------ #
    def _run_pending(
        self,
        pending: list[QuerySpec],
        result: BatchResult,
        reuse_fields: frozenset[str] = frozenset(),
        book: LedgerBook | None = None,
    ) -> None:
        t_analysis = book.now() if book is not None else 0.0
        # Phase 1: batch analysis — partition into remote and local.
        with obs.span("pipeline.batch_graph", pending=len(pending)) as graph_span:
            if self.options.enable_batch_graph and len(pending) > 1:
                graph = build_batch_graph(pending)
                remote_specs = [pending[i] for i in graph.remote]
                local_nodes = [(j, graph.provider_of[j]) for j in graph.local]
            else:
                graph = None
                remote_specs = list(pending)
                local_nodes = []
            graph_span.set(remote=len(remote_specs), local=len(local_nodes))
        # Phase 2: fuse the remote set.
        with obs.span("pipeline.fusion", remote=len(remote_specs)) as fusion_span:
            fused = fuse_batch(remote_specs, enabled=self.options.enable_fusion)
            result.fused_away += len(remote_specs) - len(fused)
            fusion_span.set(fused=len(fused))
        # Phase 3: compile and execute concurrently.
        with obs.span("pipeline.compile", queries=len(fused)):
            to_send = []
            for fq in fused:
                send_spec = (
                    enrich_spec(fq.spec, reuse_fields=reuse_fields)
                    if self.options.enrich_for_reuse
                    else fq.spec
                )
                compiled = compile_spec(
                    send_spec,
                    self.model,
                    self.source,
                    externalize_threshold=self.options.externalize_threshold,
                )
                to_send.append((fq, send_spec, compiled))
        if book is not None:
            # Batch analysis, fusion and compilation all happened while
            # every remote member waited: each gets the full duration.
            analysis_s = book.now() - t_analysis
            for fq in fused:
                for member in fq.members:
                    book.charge(member.canonical(), "compile", analysis_s)
        with obs.span("pipeline.remote_execution", queries=len(to_send)):
            outcomes = self.executor.run_batch(
                [c for _fq, _s, c in to_send],
                concurrent=self.options.concurrent,
                capture_errors=True,
            )
        # Phase 4: populate caches and split fused results.
        with obs.span("pipeline.post_processing", queries=len(outcomes)):
            for (fq, send_spec, _compiled), outcome in zip(to_send, outcomes):
                if outcome.failed:
                    # The whole fused query is gone; degrade each member
                    # independently (stale serve or per-spec error).
                    for member in fq.members:
                        self._degrade(member.canonical(), outcome.error, result, book)
                    continue
                result.remote_queries += 0 if outcome.from_literal_cache else 1
                result.literal_hits += 1 if outcome.from_literal_cache else 0
                if self.options.enable_intelligent_cache:
                    self.intelligent_cache.put(
                        send_spec, outcome.table, cost_s=outcome.elapsed_s
                    )
                sent_key = send_spec.canonical()
                for member in fq.members:
                    key = member.canonical()
                    if book is not None:
                        # Pool checkout is admission pressure (queue);
                        # the rest of the outcome's elapsed is backend
                        # execution — both on the executor's clock, which
                        # is this book's clock.
                        book.charge(key, "queue", outcome.checkout_wait_s)
                        book.charge(
                            key,
                            "execute",
                            max(outcome.elapsed_s - outcome.checkout_wait_s, 0.0),
                        )
                    t_member = book.now() if book is not None else 0.0
                    answer = None
                    from_cache = False
                    if self.options.enable_intelligent_cache:
                        answer = self.intelligent_cache.lookup(member)
                        if answer is not None and key != sent_key:
                            # Derived from the cached (wider) result, not a
                            # re-read of the member's own remote fetch.
                            result.derived_hits += 1
                            from_cache = True
                    if answer is None:
                        # Derive directly from the fetched (possibly enriched)
                        # result: enrichment only widens, so a match must exist.
                        match = match_specs(send_spec, member)
                        if match is not None:
                            answer = apply_post_ops(outcome.table, match.post_ops)
                        else:
                            answer = apply_post_ops(
                                outcome.table, fq.extract_ops[key]
                            )
                    self._record_good(key, answer)
                    result.tables[key] = answer
                    if book is not None:
                        book.charge(key, "post_ops", book.now() - t_member)
                        if key == sent_key or len(fq.members) == 1:
                            book.finish(key, "fresh")
                        else:
                            book.finish(key, "derived" if from_cache else "fused")
        # Phase 5: answer the local (derivable) nodes.
        with obs.span("pipeline.local_answers", nodes=len(local_nodes)):
            for j, provider_idx in local_nodes:
                spec = pending[j]
                key = spec.canonical()
                if key in result.tables or key in result.errors:
                    continue
                t_lookup = book.now() if book is not None else 0.0
                answer = None
                from_cache = False
                if self.options.enable_intelligent_cache:
                    answer = self.intelligent_cache.lookup(spec)
                    if answer is not None:
                        result.derived_hits += 1
                        from_cache = True
                if book is not None:
                    book.charge(key, "cache_probe", book.now() - t_lookup)
                provider = pending[provider_idx]
                provider_key = provider.canonical()
                if answer is None:
                    if provider_key not in result.tables:
                        # The provider's fetch failed; this node inherits
                        # the failure and degrades on its own merits.
                        self._degrade(
                            key,
                            SourceUnavailableError(
                                result.errors.get(
                                    provider_key,
                                    "provider query failed upstream",
                                )
                            ),
                            result,
                            book,
                        )
                        continue
                    t_derive = book.now() if book is not None else 0.0
                    provider_table = result.tables[provider_key]
                    match = match_specs(provider, spec)
                    assert match is not None  # the graph edge proved this
                    answer = apply_post_ops(provider_table, match.post_ops)
                    if book is not None:
                        book.charge(key, "post_ops", book.now() - t_derive)
                    if provider_key in result.stale_keys:
                        # Derived from a stale answer: stale itself.
                        result.stale_keys.add(key)
                if key not in result.stale_keys:
                    self._record_good(key, answer)
                result.tables[key] = answer
                result.batch_local += 1
                if book is not None:
                    if key in result.stale_keys:
                        book.finish(key, "stale")
                    else:
                        book.finish(key, "derived" if from_cache else "batch_local")

    # ------------------------------------------------------------------ #
    def _record_good(self, key: str, table: Table) -> None:
        """Remember a fresh answer as the degradation fallback for key."""
        if self.stale_store is not None:
            self.stale_store.put(key, table)

    def _degrade(
        self,
        key: str,
        error: SourceError,
        result: BatchResult,
        book: LedgerBook | None = None,
    ) -> None:
        """Source is down for ``key``: stale serve if possible, else error.

        Never raises — the degradation contract is that one dead source
        costs its own specs, not the batch.
        """
        t_degrade = book.now() if book is not None else 0.0
        detail = f"{type(error).__name__}: {error}"
        if self.stale_store is not None:
            stale = self.stale_store.get(key)
            if stale is not None:
                table, age_s = stale
                result.tables[key] = table
                result.stale_keys.add(key)
                obs.counter("pipeline.stale_serves").inc()
                if obs.events_enabled():
                    obs.event(
                        "degrade.stale_serve",
                        "stale",
                        f"source failed ({detail}); serving the last good "
                        f"result from {age_s:.1f}s ago flagged stale",
                        spec=key,
                        age_s=round(age_s, 3),
                    )
                if book is not None:
                    book.charge(key, "degrade", book.now() - t_degrade)
                    book.finish(key, "stale")
                return
        result.errors[key] = detail
        obs.counter("pipeline.spec_failures").inc()
        if obs.events_enabled():
            obs.event(
                "degrade.error",
                "failed",
                f"source failed ({detail}) and no stale result exists; "
                "reporting a per-spec error instead of failing the batch",
                spec=key,
            )
        if book is not None:
            book.charge(key, "degrade", book.now() - t_degrade)
            book.finish(key, "error")

    # ------------------------------------------------------------------ #
    def explain_batch(
        self,
        specs: list[QuerySpec],
        *,
        analyze: bool = False,
        assume_cold: bool = False,
        reuse_fields: frozenset[str] = frozenset(),
    ) -> list[dict]:
        """Per-request plan report: what ``run_batch`` would do, and why.

        ``assume_cold=True`` skips the cache probe and coalesce peek and
        reports the plan as if nothing were warm — the slow-query log
        uses this to capture a meaningful EXPLAIN *after* the real serve
        has populated the caches (a post-hoc probe would otherwise just
        say "answered from the intelligent cache").

        The dry-run counterpart of :meth:`run_batch`. Probes the
        intelligent cache, runs the batch-graph and fusion analyses, and
        compiles every query that would go remote; when the data source
        exposes an in-process :class:`~repro.tde.engine.DataEngine`
        (``TdeDataSource`` or a simulated backend) each remote query also
        carries the engine's EXPLAIN of its plan (EXPLAIN ANALYZE with
        ``analyze=True``, which executes the plan once on the backend
        engine). No results are transferred and no cache is populated —
        the only side effect is that cache probes count as uses, exactly
        as a real request's probe would.

        Returns one dict per distinct spec: ``spec`` (canonical form),
        ``decision`` (human-readable routing outcome), and for remote
        queries ``language``/``text``/``post_ops`` plus ``plan`` (an
        :class:`~repro.obs.explain.ExplainResult` or None when the
        backend's plans are not inspectable).
        """
        from .cache.intelligent import match_specs as _match

        ordered: list[QuerySpec] = []
        seen: set[str] = set()
        for spec in specs:
            if spec.canonical() not in seen:
                seen.add(spec.canonical())
                ordered.append(spec)
        reports: dict[str, dict] = {}
        pending: list[QuerySpec] = []
        for spec in ordered:
            entry: dict = {"spec": spec.canonical()}
            if self.options.enable_intelligent_cache and not assume_cold:
                cached = self.intelligent_cache.lookup(spec)
                if cached is not None:
                    entry["decision"] = "answered from the intelligent cache"
                    reports[spec.canonical()] = entry
                    continue
            if self.options.enable_coalescing and not assume_cold:
                ticket = self.coalescer.peek(
                    spec, subsume=self.options.coalesce_subsumption
                )
                if ticket is not None:
                    entry["coalesce"] = (
                        "would join the in-flight leader "
                        f"{ticket.leader_key!r} "
                        + (
                            "(subsumed: wait, then derive locally with post-ops)"
                            if ticket.subsumed
                            else "(identical query: wait for its result)"
                        )
                    )
            reports[spec.canonical()] = entry
            pending.append(spec)
        if self.options.enable_batch_graph and len(pending) > 1:
            graph = build_batch_graph(pending)
            remote_specs = [pending[i] for i in graph.remote]
            for j in graph.local:
                provider = pending[graph.provider_of[j]]
                reports[pending[j].canonical()]["decision"] = (
                    "batch-local: derivable from the result of "
                    f"{provider.canonical()}"
                )
        else:
            remote_specs = list(pending)
        fused = fuse_batch(remote_specs, enabled=self.options.enable_fusion)
        backend = self._backend_engine()
        # A distributed literal cache can say where a key's replicas sit
        # (primary miss -> replica fallback, lagging copies -> repair);
        # surface that placement per zone so EXPLAIN answers "why was
        # this served from a replica?" without a debugger.
        describe_tier = (
            getattr(self.literal_cache, "describe", None)
            if self.options.enable_literal_cache
            else None
        )
        breaker = getattr(self.pool, "breaker", None)
        breaker_note = None
        if breaker is not None and breaker.state != "closed":
            breaker_note = (
                f"circuit breaker is {breaker.state}: this query would be "
                "rejected fast and degraded (stale serve or per-spec error)"
            )
        for fq in fused:
            # Compile exactly what run_batch would send: the (optionally
            # enriched) spec — so the reported text, plan, and cache-tier
            # placement all describe the query that actually runs, and
            # the literal key matches the tier's.
            send_spec = (
                enrich_spec(fq.spec, reuse_fields=reuse_fields)
                if self.options.enrich_for_reuse
                else fq.spec
            )
            compiled = compile_spec(
                send_spec,
                self.model,
                self.source,
                externalize_threshold=self.options.externalize_threshold,
            )
            plan = None
            if backend is not None and not compiled.temp_tables:
                plan = backend.explain(compiled.plan, analyze=analyze)
            lead_key = fq.spec.canonical()
            for member in fq.members:
                key = member.canonical()
                entry = reports[key]
                if key == lead_key or len(fq.members) == 1:
                    entry["decision"] = "sent remote"
                else:
                    entry["decision"] = f"fused into {lead_key}"
                    member_match = _match(fq.spec, member)
                    if member_match is not None:
                        entry["post_ops"] = [
                            type(op).__name__ for op in member_match.post_ops
                        ]
                entry["language"] = compiled.language
                entry["text"] = compiled.text
                entry["plan"] = plan
                if describe_tier is not None:
                    placement = describe_tier(compiled.literal_key)
                    if placement is not None:
                        entry["cache_tier"] = placement["note"]
                if breaker_note is not None:
                    entry["degradation"] = breaker_note
        return [reports[spec.canonical()] for spec in ordered]

    def _backend_engine(self):
        """The in-process DataEngine behind the source, if inspectable."""
        engine = getattr(self.source, "engine", None)
        if engine is None:
            engine = getattr(getattr(self.source, "db", None), "engine", None)
        return engine

    # ------------------------------------------------------------------ #
    def invalidate(self) -> None:
        """Purge caches for this source (connection close/refresh, 3.2).

        Intelligent-cache entries are keyed by the *model* name (the view
        specs are written against); literal entries by the backend name.
        The stale store deliberately survives: "the last result before
        the refresh" is exactly what a degraded serve wants if the source
        dies right after invalidation.

        When the source exposes an in-process DataEngine, its compiled
        physical plans are dropped too — a refreshed extract may have new
        tables/encodings, so cached plans would execute against stale
        storage objects.
        """
        self.intelligent_cache.invalidate(self.model.name)
        self.literal_cache.invalidate(self.source.name)
        backend = self._backend_engine()
        if backend is not None:
            backend.invalidate_plans("refresh")

    def close(self) -> None:
        self.pool.close()
