"""Concurrent execution of compiled queries over pooled connections
(paper 3.5).

"Remote queries are submitted for execution concurrently" — each query
checks out a connection from the pool (preferring one that already holds
its temporary structures), creates missing temp tables, runs the text,
and applies its local post-ops. A serial mode exists for the experiments
that compare the two strategies.

Robustness: transient source failures (timeouts, blips, dead pool
members) are retried under a :class:`~repro.faults.retry.RetryPolicy`
with exponential backoff — each attempt checks out a *fresh* connection,
because the pool discards members that failed mid-flight. Breaker
rejections (:class:`~repro.errors.CircuitOpenError`) are deliberately not
retried. With ``capture_errors=True`` (the pipeline's mode) exhausted
failures come back inside the :class:`ExecutionOutcome` instead of
raising, so one dead source degrades its own specs, never the batch.

Observability: each query runs under an ``executor.query`` span. Because
``contextvars`` do not flow into pool workers by themselves, the batch
entry point wraps the worker body with :func:`repro.obs.bind`, which
captures the submitting thread's current span and re-attaches it inside
each worker, so executor spans nest under the pipeline's
``remote_execution`` phase. An ``executor.inflight`` gauge (high-water =
peak concurrency), an ``executor.queue_depth`` gauge and an
``executor.query_s`` latency histogram feed the metrics registry.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from .. import obs
from ..connectors.pool import ConnectionPool
from ..errors import SourceError
from ..faults.clock import Clock
from ..faults.retry import NO_RETRY, RetryPolicy, call_with_retry
from ..queries.compile import CompiledQuery
from ..queries.postops import apply_post_ops
from ..tde.storage.table import Table


@dataclass
class ExecutionOutcome:
    """Result of one remote query plus accounting.

    Exactly one of ``table`` / ``error`` is set. ``attempts`` counts
    tries including the first (>1 means the retry machinery recovered or
    gave up).
    """

    table: Table | None
    elapsed_s: float
    from_literal_cache: bool = False
    error: SourceError | None = None
    attempts: int = 1
    #: Seconds of ``elapsed_s`` spent waiting to check a connection out
    #: of the pool (summed across attempts). The request ledger charges
    #: this to ``queue``, not ``execute`` — pool contention is admission
    #: pressure, not backend work.
    checkout_wait_s: float = 0.0

    @property
    def failed(self) -> bool:
        return self.error is not None


class ConcurrentQueryExecutor:
    """Runs batches of compiled queries against one data source pool."""

    def __init__(
        self,
        pool: ConnectionPool,
        *,
        max_workers: int = 8,
        literal_cache=None,
        retry: RetryPolicy | None = None,
        clock: Clock | None = None,
    ):
        self.pool = pool
        self.max_workers = max_workers
        self.literal_cache = literal_cache
        self.retry = retry or NO_RETRY
        self.clock = clock
        # All outcome timings read the injected clock so a request
        # ledger (same clock) can subtract them without skew — virtual
        # time included.
        self._now = clock.monotonic if clock is not None else time.monotonic
        self.remote_queries_sent = 0
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def run_one(
        self, compiled: CompiledQuery, *, capture_errors: bool = False
    ) -> ExecutionOutcome:
        """Execute one compiled query (literal cache → pool → post-ops)."""
        inflight = obs.gauge("executor.inflight")
        inflight.inc()
        try:
            with obs.span("executor.query", datasource=compiled.datasource) as sp:
                try:
                    outcome = self._run_one(compiled)
                except SourceError as exc:
                    if not capture_errors:
                        raise
                    outcome = ExecutionOutcome(None, 0.0, error=exc)
                    obs.counter("executor.failures").inc()
                    sp.set(error=type(exc).__name__)
                else:
                    sp.set(
                        rows=outcome.table.n_rows,
                        from_literal_cache=outcome.from_literal_cache,
                    )
        finally:
            inflight.dec()
        obs.histogram("executor.query_s").observe(outcome.elapsed_s)
        return outcome

    def _run_one(self, compiled: CompiledQuery) -> ExecutionOutcome:
        started = self._now()
        if self.literal_cache is not None:
            cached = self.literal_cache.get(compiled.literal_key)
            if cached is not None:
                result = apply_post_ops(cached, compiled.post_ops)
                return ExecutionOutcome(result, self._now() - started, True)

        attempts = [0]
        checkout = [0.0]

        def attempt() -> Table:
            attempts[0] += 1
            prefer = next(iter(compiled.temp_tables), None)
            # The pool's context manager discards the member (feeding the
            # breaker) when this attempt dies with a transient error, so
            # the next attempt starts from a fresh connection.
            t_checkout = self._now()
            with self.pool.connection(prefer_temp_table=prefer) as conn:
                checkout[0] += self._now() - t_checkout
                for name, table in compiled.temp_tables.items():
                    if not conn.has_temp_table(name):
                        conn.create_temp_table(name, table)
                with obs.span("executor.remote_fetch"):
                    return conn.execute(compiled.text)

        raw = call_with_retry(
            attempt,
            policy=self.retry,
            clock=self.clock,
            key=f"{compiled.datasource}:{compiled.literal_key[:12]}",
        )
        with self._stats_lock:
            self.remote_queries_sent += 1
        elapsed = self._now() - started
        if self.literal_cache is not None:
            self.literal_cache.put(
                compiled.literal_key, compiled.datasource, raw, cost_s=elapsed
            )
        result = apply_post_ops(raw, compiled.post_ops)
        return ExecutionOutcome(
            result,
            self._now() - started,
            attempts=attempts[0],
            checkout_wait_s=checkout[0],
        )

    def run_batch(
        self,
        compiled: list[CompiledQuery],
        *,
        concurrent: bool = True,
        capture_errors: bool = False,
    ) -> list[ExecutionOutcome]:
        """Execute a batch, concurrently by default (paper 3.3 phase two)."""
        if not compiled:
            return []
        if not concurrent or len(compiled) == 1:
            return [self.run_one(c, capture_errors=capture_errors) for c in compiled]
        workers = min(self.max_workers, len(compiled))
        obs.gauge("executor.queue_depth").set(len(compiled))

        def work(query: CompiledQuery) -> ExecutionOutcome:
            return self.run_one(query, capture_errors=capture_errors)

        # obs.bind carries the submitting context's span into the pool
        # workers, so their spans join this trace instead of starting new
        # roots (and it is the identity function while tracing is off).
        with ThreadPoolExecutor(max_workers=workers) as tp:
            return list(tp.map(obs.bind(work), compiled))
