"""Single-flight query coalescing for herd traffic (paper 3.2).

"The user-generated traffic is saturated by initial load requests, as
many viewers just read content with the initial state of a dashboard and
make further interactions rarely." The caches only help *after* the
first query completes: N concurrent identical requests all miss and all
execute. This module closes that window.

A :class:`SingleFlightRegistry` tracks queries that are in flight right
now, keyed by spec canonical form. The first thread to ask for a key
becomes the **leader** and executes normally; any thread that asks for
the same key while the leader is running becomes a **follower** and
waits on the leader's published result instead of going remote.
Coalescing is also **subsumption-aware**: a follower whose spec is
derivable from an in-flight leader's spec (proved by
:func:`~repro.core.cache.intelligent.match_specs`, the same proof the
intelligent cache uses) waits on that leader and answers locally with
post-ops — the in-flight generalization of a semantic cache hit.

Failure semantics are deliberately conservative: a leader publishes only
*fresh* results. When the leader fails (or degrades to a stale serve),
followers receive the :class:`~repro.errors.SourceError` and then retry
or degrade **independently** — no follower inherits a stale flag it did
not earn from its own stale store.

Waits run on real ``threading.Event`` primitives (followers genuinely
block while another thread works) but wait *durations* are read off the
injectable :class:`~repro.faults.clock.Clock`, so replayed virtual-time
runs report deterministic timings. Every decision lands in the
``obs.events`` ring as a ``coalesce.*`` event and in the
``coalesce.wait_s`` histogram.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from .. import obs
from ..errors import SourceError, SourceUnavailableError
from ..faults.clock import SYSTEM_CLOCK, Clock
from ..queries.postops import PostOp
from ..queries.spec import QuerySpec
from .cache.intelligent import match_specs


class CoalesceTimeoutError(SourceUnavailableError):
    """A follower's wait on an in-flight leader exceeded the timeout."""


class _Flight:
    """One in-flight execution: the leader's promise to its followers."""

    __slots__ = ("spec", "key", "followers", "_done", "_table", "_error", "ctx")

    def __init__(self, spec: QuerySpec):
        self.spec = spec
        self.key = spec.canonical()
        self.followers = 0
        self._done = threading.Event()
        self._table = None
        self._error: SourceError | None = None
        #: The leader request's TraceContext (None while tracing is off):
        #: followers link their coalesce wait to the trace that actually
        #: ran the query, so the critical-path analyzer can descend into
        #: the leader's backend fetch.
        self.ctx = None

    def _resolve(self, table, error: SourceError | None) -> None:
        self._table = table
        self._error = error
        self._done.set()


@dataclass(frozen=True)
class WaitOutcome:
    """What a follower's wait produced.

    Exactly one of ``table`` / ``error`` is set; ``waited_s`` is read off
    the registry's clock (0.0 under a virtual clock that nobody advances,
    which keeps replays deterministic).
    """

    table: object | None
    error: SourceError | None
    waited_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class JoinTicket:
    """A follower's claim on an in-flight leader.

    ``post_ops`` is empty for an exact (same-canonical) join and carries
    the local derivation plan for a subsumption join.
    """

    flight: _Flight = field(repr=False)
    post_ops: tuple[PostOp, ...] = ()
    leader_key: str = ""
    subsumed: bool = False

    def wait(self, timeout_s: float | None, *, clock: Clock | None = None) -> WaitOutcome:
        clock = clock or SYSTEM_CLOCK
        started = clock.monotonic()
        completed = self.flight._done.wait(timeout_s)
        waited = clock.monotonic() - started
        if not completed:
            return WaitOutcome(
                None,
                CoalesceTimeoutError(
                    f"coalesced wait on leader {self.leader_key!r} timed out "
                    f"after {timeout_s}s"
                ),
                waited,
            )
        return WaitOutcome(self.flight._table, self.flight._error, waited)


@dataclass
class CoalesceStats:
    """Registry-lifetime accounting (reads are approximate under load)."""

    leads: int = 0
    exact_joins: int = 0
    subsumed_joins: int = 0
    published: int = 0
    failed: int = 0

    @property
    def joins(self) -> int:
        return self.exact_joins + self.subsumed_joins


class SingleFlightRegistry:
    """In-flight query index for one data source.

    One registry per source: a :class:`~repro.server.vizserver.VizServer`
    shares a single registry across all its nodes' pipelines so a herd
    of identical initial loads is deduplicated cluster-wide, not just
    per node.
    """

    def __init__(
        self,
        name: str = "",
        *,
        clock: Clock | None = None,
        wait_timeout_s: float = 30.0,
    ):
        self.name = name
        self.clock = clock or SYSTEM_CLOCK
        self.wait_timeout_s = wait_timeout_s
        self._flights: dict[str, _Flight] = {}
        self._lock = threading.Lock()
        self.stats = CoalesceStats()

    # ------------------------------------------------------------------ #
    # Leader / follower resolution
    # ------------------------------------------------------------------ #
    def lead_or_join(
        self,
        spec: QuerySpec,
        *,
        subsume: bool = True,
        exclude: frozenset[str] = frozenset(),
    ) -> tuple[_Flight | None, JoinTicket | None]:
        """Atomically become the leader for ``spec`` or join one in flight.

        Returns ``(flight, None)`` when the caller is now the leader and
        *must* eventually call :meth:`publish` or :meth:`fail` on the
        flight, or ``(None, ticket)`` when an in-flight leader (exact or
        subsuming) already covers the spec. ``exclude`` lists leader keys
        the caller refuses to join — a batch passes its *own* flights so
        intra-batch derivation stays with the (non-blocking) batch graph
        and coalescing only ever waits on other requests.
        """
        key = spec.canonical()
        with self._lock:
            flight = self._flights.get(key)
            # An exact match joins even when excluded: the only way a
            # caller meets its own key is a duplicate spec, and joining
            # one's own flight is safe (leaders publish before waiting)
            # while re-leading the same key would orphan the first flight.
            if flight is not None:
                flight.followers += 1
                self.stats.exact_joins += 1
                ticket = JoinTicket(flight, (), flight.key, False)
            else:
                ticket = None
                if subsume:
                    for candidate in self._flights.values():
                        if candidate.key in exclude:
                            continue
                        match = match_specs(candidate.spec, spec)
                        if match is not None:
                            candidate.followers += 1
                            self.stats.subsumed_joins += 1
                            ticket = JoinTicket(
                                candidate, match.post_ops, candidate.key, True
                            )
                            break
                if ticket is None:
                    flight = _Flight(spec)
                    if obs.enabled():
                        flight.ctx = obs.current_trace_context()
                    self._flights[key] = flight
                    self.stats.leads += 1
        if ticket is not None:
            obs.counter("coalesce.joins").inc()
            if obs.events_enabled():
                obs.event(
                    "coalesce.join",
                    "subsumed" if ticket.subsumed else "exact",
                    (
                        "spec is derivable from the in-flight leader "
                        f"{ticket.leader_key!r}; waiting on its result and "
                        "answering locally with post-ops"
                        if ticket.subsumed
                        else "an identical query is already in flight; "
                        "waiting on the leader's result instead of executing"
                    ),
                    spec=key,
                    leader=ticket.leader_key,
                )
            return None, ticket
        obs.counter("coalesce.leads").inc()
        if obs.events_enabled():
            obs.event(
                "coalesce.lead",
                "leader",
                "no in-flight query covers this spec; executing as leader",
                spec=key,
            )
        return flight, None

    def peek(self, spec: QuerySpec, *, subsume: bool = True) -> JoinTicket | None:
        """Would ``spec`` coalesce right now? (EXPLAIN's view; no joining.)"""
        key = spec.canonical()
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                return JoinTicket(flight, (), flight.key, False)
            if subsume:
                for candidate in self._flights.values():
                    match = match_specs(candidate.spec, spec)
                    if match is not None:
                        return JoinTicket(candidate, match.post_ops, candidate.key, True)
        return None

    # ------------------------------------------------------------------ #
    # Leader completion
    # ------------------------------------------------------------------ #
    def publish(self, flight: _Flight, table) -> int:
        """Leader succeeded: hand ``table`` to every waiting follower.

        Returns the number of followers that were waiting (accounting
        only — late joiners that raced completion still get the result).
        """
        followers = self._finish(flight, table, None)
        self.stats.published += 1
        if obs.events_enabled() and followers:
            obs.event(
                "coalesce.publish",
                "shared",
                f"leader finished; {followers} coalesced follower(s) share "
                "this one execution",
                spec=flight.key,
                followers=followers,
            )
        return followers

    def fail(self, flight: _Flight, error: SourceError) -> int:
        """Leader failed (or degraded): propagate ``error`` to followers.

        Followers then retry or degrade on their own — the registry never
        shares stale or failed results.
        """
        followers = self._finish(flight, None, error)
        self.stats.failed += 1
        if obs.events_enabled():
            obs.event(
                "coalesce.leader_failed",
                "propagated",
                f"leader failed ({type(error).__name__}: {error}); "
                f"{followers} follower(s) will retry or degrade independently",
                spec=flight.key,
                followers=followers,
            )
        return followers

    def _finish(self, flight: _Flight, table, error: SourceError | None) -> int:
        with self._lock:
            # Remove before resolving so a post-completion caller starts a
            # fresh flight instead of joining a finished one.
            current = self._flights.get(flight.key)
            if current is flight:
                del self._flights[flight.key]
            followers = flight.followers
        flight._resolve(table, error)
        return followers

    # ------------------------------------------------------------------ #
    def in_flight(self) -> int:
        with self._lock:
            return len(self._flights)

    def snapshot(self) -> dict:
        """Operator view: live flights plus lifetime stats."""
        with self._lock:
            flights = {key: f.followers for key, f in self._flights.items()}
        return {
            "name": self.name,
            "in_flight": flights,
            "leads": self.stats.leads,
            "exact_joins": self.stats.exact_joins,
            "subsumed_joins": self.stats.subsumed_joins,
            "published": self.stats.published,
            "failed": self.stats.failed,
        }
