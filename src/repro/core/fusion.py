"""Query fusion (paper 3.4).

"One basic optimization we apply across queries before executing a query
batch is combining groups of queries defined over the same relation and
potentially different with respect to their top-level projection lists.
Strictly speaking, we replace a group of queries of the form
[πP1(R), ..., πPn(R)] with a single query πP(R), where R is the common
relation, P1..Pn are respective projection lists and P = ∪ Pi."

In spec terms: queries sharing (datasource, dimensions, filters) — the
common relation R — but requesting different measures fuse into one spec
whose measure list is the union. Each original answer is recovered by a
local projection (plus its own ordering/limit, which are stripped before
fusing so the shared result is complete).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from ..expr.ast import ColumnRef
from ..expr.sexpr import to_sexpr
from ..queries.postops import LocalProject, LocalSort, LocalTopN, PostOp
from ..queries.spec import QuerySpec


@dataclass
class FusedQuery:
    """One fused remote query and the recipes to split it back apart."""

    spec: QuerySpec
    members: list[QuerySpec]
    extract_ops: dict[str, tuple[PostOp, ...]]  # original canonical -> ops


def fuse_batch(specs: list[QuerySpec], *, enabled: bool = True) -> list[FusedQuery]:
    """Group a batch into fused queries (singletons when nothing fuses)."""
    if not enabled:
        return [_singleton(spec) for spec in specs]
    groups: dict[tuple, list[QuerySpec]] = {}
    for spec in specs:
        key = (
            spec.datasource,
            spec.dimensions,
            tuple(sorted(f.canonical() for f in spec.filters)),
        )
        groups.setdefault(key, []).append(spec)
    out: list[FusedQuery] = []
    for members in groups.values():
        if len(members) == 1:
            if len(specs) > 1:
                obs.event(
                    "fusion",
                    "not_fused",
                    "no other query in the batch shares this query's relation "
                    "(datasource, dimensions, filters)",
                    spec=members[0].canonical(),
                )
            out.append(_singleton(members[0]))
        else:
            fused = _fuse(members)
            obs.event(
                "fusion",
                "fused",
                f"{len(members)} queries over the same relation merged; "
                f"projection union has {len(fused.spec.measures)} measures",
                members=[m.canonical() for m in members],
                spec=fused.spec.canonical(),
            )
            out.append(fused)
    return out


def _singleton(spec: QuerySpec) -> FusedQuery:
    return FusedQuery(spec, [spec], {spec.canonical(): ()})


def _fuse(members: list[QuerySpec]) -> FusedQuery:
    first = members[0]
    fused_measures: list[tuple[str, object]] = []
    alias_by_agg: dict = {}
    for spec in members:
        for _alias, agg in spec.measures:
            if agg not in alias_by_agg:
                fused_name = f"__f{len(fused_measures)}"
                alias_by_agg[agg] = fused_name
                fused_measures.append((fused_name, agg))
    fused_spec = QuerySpec(
        first.datasource,
        first.dimensions,
        tuple(fused_measures) if fused_measures else (),
        first.filters,
    )
    extract_ops: dict[str, tuple[PostOp, ...]] = {}
    for spec in members:
        items = [(d, ColumnRef(d)) for d in spec.dimensions]
        items += [(alias, ColumnRef(alias_by_agg[agg])) for alias, agg in spec.measures]
        ops: list[PostOp] = [LocalProject(tuple(items))]
        if spec.order_by and spec.limit is not None:
            ops.append(LocalTopN(spec.limit, spec.order_by))
        elif spec.order_by:
            ops.append(LocalSort(spec.order_by))
        elif spec.limit is not None:
            ops.append(LocalTopN(spec.limit, tuple()))
        extract_ops[spec.canonical()] = tuple(ops)
    return FusedQuery(fused_spec, list(members), extract_ops)
