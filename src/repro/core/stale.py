"""Last-known-good results for graceful degradation.

When a data source is down (retries exhausted, breaker open), the
pipeline can keep a dashboard alive by re-serving the most recent answer
it ever produced for the same spec — flagged stale, the way Hillview
degrades to partial/stale views when workers fail — instead of failing
the whole request.

This is deliberately separate from the intelligent cache: entries here
survive cache invalidation (a refresh purges the caches, but "the last
result before the refresh" is exactly what a degraded serve wants), are
bounded by entry count only (they are references to tables the caches
already hold in the common case), and are never used while the source is
healthy.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..faults.clock import SYSTEM_CLOCK, Clock
from ..tde.storage.table import Table


class StaleResultStore:
    """A bounded LRU of the last good answer per spec canonical key.

    Entry ages are read off an injectable clock so replayed failure
    schedules (virtual time) report identical ages on every run.
    """

    def __init__(self, max_entries: int = 256, *, clock: Clock | None = None):
        self.max_entries = max_entries
        self.clock = clock or SYSTEM_CLOCK
        self._entries: OrderedDict[str, tuple[Table, float]] = OrderedDict()
        self._lock = threading.Lock()
        self.stale_serves = 0

    def put(self, key: str, table: Table) -> None:
        with self._lock:
            self._entries[key] = (table, self.clock.monotonic())
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def get(self, key: str) -> tuple[Table, float] | None:
        """The last good (table, age_seconds) for ``key``, if any."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
            self.stale_serves += 1
            table, stored_at = entry
            return table, self.clock.monotonic() - stored_at

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
