"""Distributed cache layer for the server environment (paper 3.2).

"Tableau Server does not persist the caches but it utilizes a distributed
layer based on REDIS or Cassandra depending on the configuration. This
allows sharing data across nodes in the cluster and keeping data warm
regardless of which node handles particular requests. For efficiency,
recent entries are also stored in memory on the nodes processing
particular queries."

:class:`KeyValueStore` is the in-process Redis stand-in: a thread-safe
byte store whose GET/PUT calls sleep for a modeled network round trip, so
the L1-vs-L2 latency trade-off is physically measurable.
:class:`DistributedQueryCache` gives each node a small in-memory L1 over
the shared store; tables are serialized with the TDE single-file format.
"""

from __future__ import annotations

import io
import threading

from ...faults.clock import SYSTEM_CLOCK, Clock
from ...tde.storage.filepack import pack_database, unpack_database
from ...tde.storage.schema import Database
from ...tde.storage.table import Table
from .eviction import CacheEntry, EvictionPolicy


class KeyValueStore:
    """Redis-like shared store with modeled round-trip latency.

    Round trips sleep on an injectable :class:`~repro.faults.clock.Clock`
    so the distributed-cache tests and E7 can run the same modeled
    latencies in virtual time (microseconds of wall clock, identical
    timings every run).
    """

    def __init__(
        self,
        *,
        latency_s: float = 0.0008,
        per_mb_s: float = 0.004,
        clock: Clock | None = None,
    ):
        self.latency_s = latency_s
        self.per_mb_s = per_mb_s
        self.clock = clock or SYSTEM_CLOCK
        self._data: dict[str, bytes] = {}
        self._lock = threading.Lock()
        self.gets = 0
        self.puts = 0
        self.hit_count = 0
        self.miss_count = 0
        self.deletes = 0

    def _round_trip(self, payload_bytes: int) -> None:
        delay = self.latency_s + (payload_bytes / 1e6) * self.per_mb_s
        if delay > 0:
            self.clock.sleep(delay)

    def get(self, key: str) -> bytes | None:
        with self._lock:
            payload = self._data.get(key)
            self.gets += 1
            if payload is not None:
                self.hit_count += 1
            else:
                self.miss_count += 1
        self._round_trip(len(payload) if payload else 0)
        return payload

    def peek(self, key: str) -> bytes | None:
        """Raw read for introspection: no round trip, no counters skewed."""
        with self._lock:
            return self._data.get(key)

    def put(self, key: str, payload: bytes) -> None:
        self._round_trip(len(payload))
        with self._lock:
            self._data[key] = payload
            self.puts += 1

    def delete(self, key: str) -> None:
        with self._lock:
            if self._data.pop(key, None) is not None:
                self.deletes += 1

    def flush(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def keys(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._data)

    def total_bytes(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._data.values())

    def stats(self) -> dict:
        """One snapshot-consistent view of every counter.

        All counts are read under the same lock acquisition, so
        ``hits + misses == gets`` holds in the snapshot even while other
        threads are mid-GET — reading the public attributes one by one
        cannot promise that.
        """
        with self._lock:
            return {
                "gets": self.gets,
                "puts": self.puts,
                "hits": self.hit_count,
                "misses": self.miss_count,
                "deletes": self.deletes,
                "entries": len(self._data),
                "bytes": sum(len(v) for v in self._data.values()),
            }


def serialize_table(table: Table) -> bytes:
    """Encode a table with the TDE single-file format (no pickle)."""
    db = Database("cache")
    db.add_table("Extract.result", table)
    buf = io.BytesIO()
    pack_database(db, buf)
    return buf.getvalue()


def deserialize_table(payload: bytes) -> Table:
    db = unpack_database(io.BytesIO(payload))  # type: ignore[arg-type]
    return db.table("Extract.result")


class DistributedQueryCache:
    """A node-local L1 over a shared L2 store.

    ``store`` is anything with the :class:`KeyValueStore` byte API — the
    single store E7 models or the replicated
    :class:`~repro.core.cache.replicated.ReplicatedStore` tier.
    """

    def __init__(
        self,
        store: KeyValueStore,
        node_id: str,
        *,
        l1_policy: EvictionPolicy | None = None,
        use_l1: bool = True,
    ):
        self.store = store
        self.node_id = node_id
        self.use_l1 = use_l1
        self.l1_policy = l1_policy or EvictionPolicy(max_entries=128)
        self._l1: dict[str, CacheEntry] = {}
        self._lock = threading.Lock()
        self.l1_hits = 0
        self.l2_hits = 0
        self.misses = 0

    def get(self, key: str) -> Table | None:
        if self.use_l1:
            with self._lock:
                entry = self._l1.get(key)
                if entry is not None:
                    entry.touch()
                    self.l1_hits += 1
                    return entry.value
        payload = self.store.get(key)
        if payload is None:
            self.misses += 1
            return None
        table = deserialize_table(payload)
        self.l2_hits += 1
        if self.use_l1:
            self._remember(key, table)
        return table

    def put(self, key: str, table: Table) -> None:
        self.store.put(key, serialize_table(table))
        if self.use_l1:
            self._remember(key, table)

    def _remember(self, key: str, table: Table) -> None:
        with self._lock:
            self._l1[key] = CacheEntry(key, "", table, table.nbytes)
            self.l1_policy.purge(self._l1)

    def invalidate_prefix(self, prefix: str) -> int:
        """Drop every entry under ``prefix`` from the L1 *and* the shared
        store (fanning out across a replicated tier when backed by one)."""
        with self._lock:
            doomed = [k for k in self._l1 if k.startswith(prefix)]
            for key in doomed:
                del self._l1[key]
        fan_out = getattr(self.store, "invalidate_prefix", None)
        if fan_out is not None:
            return fan_out(prefix)
        removed = 0
        for key in self.store.keys():
            if key.startswith(prefix):
                self.store.delete(key)
                removed += 1
        return removed

    def describe(self, key: str) -> dict | None:
        """Replica placement of ``key``, when the store can tell (EXPLAIN)."""
        describe = getattr(self.store, "describe", None)
        return describe(key) if describe is not None else None


class DistributedLiteralCache:
    """Adapter exposing a :class:`DistributedQueryCache` as the pipeline's
    literal cache.

    Store keys are namespaced ``{datasource}|{literal key}`` so an extract
    refresh (or DDL) of one source can fan its invalidation out across the
    tier without touching other sources' entries — the same
    source-scoped discipline the plan cache uses.
    """

    def __init__(self, cache: DistributedQueryCache, datasource: str):
        self.cache = cache
        self.datasource = datasource

    def _key(self, key: str) -> str:
        return f"{self.datasource}|{key}"

    def get(self, key: str) -> Table | None:
        return self.cache.get(self._key(key))

    def put(
        self, key: str, datasource: str, result: Table, *, cost_s: float = 0.0
    ) -> None:
        self.cache.put(self._key(key), result)

    def invalidate(self, datasource: str | None = None) -> int:
        # The adapter is bound to one namespace at construction; callers
        # pass whatever name *they* know the source by (the pipeline
        # passes the backend name, the server the publish name), so the
        # argument is ignored — an invalidation always purges exactly
        # this adapter's namespace, on every node of the tier.
        del datasource
        return self.cache.invalidate_prefix(f"{self.datasource}|")

    def describe(self, key: str) -> dict | None:
        return self.cache.describe(self._key(key))
