"""The elastic distributed cache tier: replication over a hash ring.

Grows the static 2-node :class:`~repro.core.cache.distributed.KeyValueStore`
sim toward the paper's Redis/Cassandra layer (§3.2) at fleet scale. A
:class:`ReplicatedStore` is a set of named cache nodes (each one a
modeled-latency :class:`KeyValueStore`) placed on a
:class:`~repro.core.cache.ring.HashRing`:

* **R-way replication.** Every PUT is versioned and written to the first
  ``replication`` live nodes of the key's preference list; a write acked
  by fewer than the quorum is flagged ``replica.under_quorum`` (the
  caller may treat it as unacknowledged).
* **Quorum-ish GET with read-repair.** The fast path probes the
  preference list in order and serves the first hit; a hit found on a
  later replica back-fills the earlier ones (``replica.read_repair``).
  ``mode="quorum"`` probes every live replica, serves the newest version
  and converges the rest — the sweep the chaos suite quiesces with.
* **Live topology changes.** :meth:`join` warms a new node by migrating
  exactly the keys the ring now assigns it; :meth:`leave` drains a
  node's keys to their new owners before withdrawing it; :meth:`kill`
  models a crash (data lost, survivors keep serving their replicas).
  Warm-up copies are deduplicated through a private
  :class:`~repro.core.coalesce.SingleFlightRegistry`, so a herd of
  readers racing a migration never copies (or refetches) the same key
  twice — the same no-herd guarantee the serving path already has.
* **TTL + invalidation fan-out.** Entries may carry a TTL (lazily
  expired on read against the injectable clock) and
  :meth:`invalidate_prefix` fans a namespace purge out to every live
  node — the extract-refresh/DDL path, mirroring the plan cache's
  invalidation discipline.

All round trips run on the nodes' modeled-latency clocks and every fault
decision comes from an (optional) seed-keyed
:class:`~repro.faults.plan.FaultPlan` consulted per node call, so chaos
schedules replay byte-identically on a virtual clock. Every decision
lands in the ``obs.events`` ring under ``ring.*`` / ``replica.*`` /
``reshard.*``.
"""

from __future__ import annotations

import struct
import threading
from dataclasses import dataclass

from ... import obs
from ...faults.clock import SYSTEM_CLOCK, Clock
from ..coalesce import SingleFlightRegistry
from .distributed import KeyValueStore
from .ring import HashRing

_ENVELOPE = struct.Struct(">Qd")  # version, expires_at (0.0 = never)


def _pack(version: int, expires_at: float, payload: bytes) -> bytes:
    return _ENVELOPE.pack(version, expires_at) + payload


def _unpack(blob: bytes) -> tuple[int, float, bytes]:
    version, expires_at = _ENVELOPE.unpack_from(blob)
    return version, expires_at, blob[_ENVELOPE.size :]


class _KeyFlight:
    """A key-level stand-in for a QuerySpec so warm-up copies can reuse
    the single-flight registry (always joined with ``subsume=False``)."""

    __slots__ = ("key",)

    def __init__(self, key: str):
        self.key = key

    def canonical(self) -> str:
        return self.key


@dataclass
class CacheNode:
    """One cache-tier process: a keyed byte store plus liveness."""

    node_id: str
    store: KeyValueStore
    alive: bool = True
    repairs_received: int = 0
    migrated_in: int = 0

    def statz(self) -> dict:
        snap = self.store.stats()
        snap.update(
            alive=self.alive,
            repairs_received=self.repairs_received,
            migrated_in=self.migrated_in,
        )
        return snap


@dataclass
class TierStats:
    """Store-lifetime accounting (all mutated under the tier lock)."""

    reads: int = 0
    writes: int = 0
    deletes: int = 0
    fallback_reads: int = 0
    read_repairs: int = 0
    under_quorum_writes: int = 0
    expired_drops: int = 0
    reshards: int = 0
    keys_moved: int = 0
    bytes_moved: int = 0
    keys_dropped: int = 0
    invalidation_fanouts: int = 0
    node_faults: int = 0

    def to_dict(self) -> dict:
        return dict(vars(self))


class ReplicatedStore:
    """An elastic, R-way replicated cache tier over a consistent-hash ring.

    Drop-in compatible with :class:`KeyValueStore` where the serving path
    needs it (``get``/``put``/``delete``/``flush``/``__len__``/
    ``total_bytes`` plus the ``gets``/``puts``/``hit_count`` counters),
    so :class:`~repro.core.cache.distributed.DistributedQueryCache` and
    the servers take either without caring which.
    """

    def __init__(
        self,
        node_ids=("cache0", "cache1", "cache2"),
        *,
        replication: int = 2,
        vnodes: int = 64,
        latency_s: float = 0.0008,
        per_mb_s: float = 0.004,
        clock: Clock | None = None,
        write_quorum: int | None = None,
        ttl_s: float | None = None,
        faults=None,
        name: str = "cache-tier",
    ):
        node_ids = tuple(node_ids)
        if not node_ids:
            raise ValueError("the cache tier needs at least one node")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.name = name
        self.replication = replication
        self.write_quorum = write_quorum or (replication // 2 + 1)
        self.latency_s = latency_s
        self.per_mb_s = per_mb_s
        self.clock = clock or SYSTEM_CLOCK
        self.ttl_s = ttl_s
        #: Optional seed-keyed FaultPlan consulted once per node call
        #: (op ``kv.get`` / ``kv.put``, source = the node id).
        self.faults = faults
        self._ring = HashRing(node_ids, vnodes=vnodes)
        self._nodes: dict[str, CacheNode] = {
            node_id: self._make_node(node_id) for node_id in node_ids
        }
        self._lock = threading.RLock()
        self._version = 0
        self.stats = TierStats()
        #: Warm-up copies coalesce here: concurrent migration and
        #: read-repair of the same key share one copy instead of racing.
        self._warm = SingleFlightRegistry(f"{name}-warm", clock=clock)
        self._warm_timeout_s = 30.0

    def _make_node(self, node_id: str) -> CacheNode:
        return CacheNode(
            node_id,
            KeyValueStore(
                latency_s=self.latency_s, per_mb_s=self.per_mb_s, clock=self.clock
            ),
        )

    # ------------------------------------------------------------------ #
    # Node-level I/O (fault-injectable)
    # ------------------------------------------------------------------ #
    def _faulted(self, op: str, node: CacheNode) -> bool:
        """Consult the fault plan; True = this call fails (node unreachable)."""
        if self.faults is None:
            return False
        decision = self.faults.decide(op, node.node_id)
        if decision.clean:
            return False
        if decision.kind == "latency":
            self.clock.sleep(decision.latency_s)
            return False
        with self._lock:
            self.stats.node_faults += 1
        if obs.events_enabled():
            obs.event(
                "fault.injected",
                decision.kind,
                f"injected {decision.kind} on {op} against cache node "
                f"{node.node_id}; treating the node as unreachable for this call",
                op=op,
                node=node.node_id,
            )
        return True

    def _probe(self, node: CacheNode, key: str) -> tuple[int, float, bytes] | None:
        """One replica GET: None on miss, injected fault, or expiry."""
        if not node.alive or self._faulted("kv.get", node):
            return None
        blob = node.store.get(key)
        if blob is None:
            return None
        version, expires_at, payload = _unpack(blob)
        if expires_at and self.clock.monotonic() >= expires_at:
            node.store.delete(key)
            with self._lock:
                self.stats.expired_drops += 1
            if obs.events_enabled():
                obs.event(
                    "replica.expired",
                    "dropped",
                    "entry outlived its TTL; dropped on read",
                    key=key[:40],
                    node=node.node_id,
                )
            return None
        return version, expires_at, payload

    def _write(self, node: CacheNode, key: str, blob: bytes) -> bool:
        if not node.alive or self._faulted("kv.put", node):
            return False
        node.store.put(key, blob)
        return True

    # ------------------------------------------------------------------ #
    # GET / PUT / DELETE
    # ------------------------------------------------------------------ #
    def get(self, key: str, *, mode: str = "one") -> bytes | None:
        """Read ``key`` from its preference list.

        ``mode="one"`` (the serving fast path) probes replicas in order
        and serves the first hit, back-filling any earlier replica that
        missed. ``mode="quorum"`` probes every live replica, serves the
        newest version and repairs the rest — slower, used by the
        convergence sweep and by callers that need
        read-your-latest-write across a replica failure.
        """
        with self._lock:
            self.stats.reads += 1
            owners = self._owner_nodes(key)
        if mode == "quorum":
            return self._quorum_get(key, owners)
        missed: list[CacheNode] = []
        for idx, node in enumerate(owners):
            found = self._probe(node, key)
            if found is None:
                missed.append(node)
                continue
            version, expires_at, payload = found
            if idx > 0:
                with self._lock:
                    self.stats.fallback_reads += 1
                if obs.events_enabled():
                    obs.event(
                        "replica.fallback",
                        "served",
                        f"primary replica missed; served from replica "
                        f"{idx + 1} of {len(owners)} ({node.node_id})",
                        key=key[:40],
                        node=node.node_id,
                        replica_index=idx,
                    )
            if missed:
                self._repair(key, _pack(version, expires_at, payload), missed)
            return payload
        return None

    def _quorum_get(self, key: str, owners) -> bytes | None:
        hits: list[tuple[int, float, bytes, CacheNode]] = []
        missed: list[CacheNode] = []
        for node in owners:
            found = self._probe(node, key)
            if found is None:
                missed.append(node)
            else:
                hits.append((*found, node))
        if not hits:
            return None
        version, expires_at, payload, _node = max(hits, key=lambda h: h[0])
        stale = [node for v, _e, _p, node in hits if v < version]
        behind = missed + stale
        if behind:
            self._repair(key, _pack(version, expires_at, payload), behind)
        return payload

    def _repair(self, key: str, blob: bytes, targets) -> int:
        """Back-fill ``targets`` with the newest version of ``key``.

        Coalesced per key: concurrent repairs (or a repair racing a
        migration copy) share one flight, so replica convergence never
        multiplies the work under a read herd.
        """
        flight, ticket = self._warm.lead_or_join(
            _KeyFlight(f"warm|{key}"), subsume=False
        )
        if ticket is not None:
            ticket.wait(self._warm_timeout_s, clock=self.clock)
            return 0
        repaired = 0
        try:
            for node in targets:
                if self._write(node, key, blob):
                    repaired += 1
                    with self._lock:
                        node.repairs_received += 1
                        self.stats.read_repairs += 1
                    if obs.events_enabled():
                        obs.event(
                            "replica.read_repair",
                            "repaired",
                            "replica was missing or behind; back-filled the "
                            "newest version",
                            key=key[:40],
                            node=node.node_id,
                        )
        finally:
            self._warm.publish(flight, repaired)
        return repaired

    def put(self, key: str, payload: bytes, *, ttl_s: float | None = None) -> int:
        """Replicate ``key`` to its preference list; returns replicas acked.

        An ack count below ``write_quorum`` is reported (event + counter)
        — the entry is still best-effort readable, but a caller that
        needs kill-tolerance should treat the write as unacknowledged.
        """
        ttl = self.ttl_s if ttl_s is None else ttl_s
        expires_at = self.clock.monotonic() + ttl if ttl else 0.0
        with self._lock:
            self._version += 1
            version = self._version
            self.stats.writes += 1
            owners = self._owner_nodes(key)
        blob = _pack(version, expires_at, payload)
        acked = 0
        for node in owners:
            if self._write(node, key, blob):
                acked += 1
        if acked < self.write_quorum:
            with self._lock:
                self.stats.under_quorum_writes += 1
            if obs.events_enabled():
                obs.event(
                    "replica.under_quorum",
                    "degraded",
                    f"write acked by {acked} of {len(owners)} replicas "
                    f"(quorum {self.write_quorum}); entry is not kill-tolerant",
                    key=key[:40],
                    acked=acked,
                    quorum=self.write_quorum,
                )
        return acked

    def delete(self, key: str) -> None:
        """Drop ``key`` everywhere it could be served from."""
        with self._lock:
            self.stats.deletes += 1
            nodes = [n for n in self._nodes.values() if n.alive]
        for node in nodes:
            node.store.delete(key)

    def flush(self) -> None:
        with self._lock:
            nodes = list(self._nodes.values())
        for node in nodes:
            node.store.flush()

    # ------------------------------------------------------------------ #
    # Topology: join / leave / kill / fail / recover
    # ------------------------------------------------------------------ #
    def join(self, node_id: str, *, warm: bool = True) -> dict:
        """Add a node and (by default) migrate its key ranges onto it.

        Copies land before any surplus replica is dropped, so an entry
        acked at quorum never transits through fewer live copies than it
        had — topology changes preserve kill-tolerance.
        """
        with self._lock:
            if node_id in self._nodes:
                raise ValueError(f"node {node_id!r} already in the tier")
            node = self._make_node(node_id)
            self._nodes[node_id] = node
            self._ring.add_node(node_id)
        obs.event(
            "ring.join",
            "added",
            f"node {node_id} joined the ring"
            + ("; migrating its key ranges" if warm else " cold (no warm-up)"),
            node=node_id,
            nodes=len(self._ring),
        )
        report = {"node": node_id, "keys_moved": 0, "bytes_moved": 0, "keys_dropped": 0}
        if warm:
            report.update(self._migrate_onto(node))
        return report

    def _migrate_onto(self, node: CacheNode) -> dict:
        """Warm a joined node with exactly the keys the ring assigns it."""
        to_copy: list[str] = []
        to_drop: list[tuple[CacheNode, str]] = []
        with self._lock:
            holders = {
                other.node_id: set(other.store.keys())
                for other in self._nodes.values()
                if other is not node and other.alive
            }
        for key in sorted(set().union(*holders.values()) if holders else ()):
            owners = self.owners(key)
            if node.node_id in owners:
                to_copy.append(key)
            for holder_id, held in holders.items():
                if key in held and holder_id not in owners:
                    to_drop.append((self._nodes[holder_id], key))
        obs.event(
            "reshard.plan",
            "planned",
            f"join of {node.node_id}: {len(to_copy)} key(s) to migrate, "
            f"{len(to_drop)} surplus replica(s) to drop",
            node=node.node_id,
            copies=len(to_copy),
            drops=len(to_drop),
        )
        moved = bytes_moved = 0
        for key in to_copy:
            blob = self._newest_blob(key, exclude=node.node_id)
            if blob is None:
                continue
            if self._copy_key(key, blob, node):
                moved += 1
                bytes_moved += len(blob)
        # Copies first, drops second: replica count never dips mid-reshard.
        for holder, key in to_drop:
            holder.store.delete(key)
        with self._lock:
            self.stats.reshards += 1
            self.stats.keys_moved += moved
            self.stats.bytes_moved += bytes_moved
            self.stats.keys_dropped += len(to_drop)
        obs.event(
            "reshard.done",
            "migrated",
            f"join of {node.node_id} complete: {moved} key(s) "
            f"({bytes_moved} payload bytes) migrated, {len(to_drop)} dropped",
            node=node.node_id,
            keys_moved=moved,
            bytes_moved=bytes_moved,
            keys_dropped=len(to_drop),
        )
        return {"keys_moved": moved, "bytes_moved": bytes_moved, "keys_dropped": len(to_drop)}

    def _newest_blob(self, key: str, *, exclude: str | None = None) -> bytes | None:
        """The newest live replica of ``key`` (paying one read round trip)."""
        with self._lock:
            candidates = [
                n
                for n in self._nodes.values()
                if n.alive and n.node_id != exclude
            ]
        best: tuple[int, bytes] | None = None
        best_node: CacheNode | None = None
        for node in candidates:
            blob = node.store.peek(key)
            if blob is None:
                continue
            version = _unpack(blob)[0]
            if best is None or version > best[0]:
                best = (version, blob)
                best_node = node
        if best is None or best_node is None:
            return None
        return best_node.store.get(key) or best[1]

    def _copy_key(self, key: str, blob: bytes, target: CacheNode) -> bool:
        """One coalesced migration copy (shares flights with read-repair)."""
        flight, ticket = self._warm.lead_or_join(
            _KeyFlight(f"warm|{key}"), subsume=False
        )
        if ticket is not None:
            ticket.wait(self._warm_timeout_s, clock=self.clock)
            return False
        try:
            if not self._write(target, key, blob):
                return False
            with self._lock:
                target.migrated_in += 1
            if obs.events_enabled():
                obs.event(
                    "reshard.copy",
                    "copied",
                    "key range moved to its new owner",
                    key=key[:40],
                    node=target.node_id,
                )
            return True
        finally:
            self._warm.publish(flight, True)

    def leave(self, node_id: str) -> dict:
        """Gracefully drain a node: push its newest data to the new owners,
        then withdraw it from the ring."""
        with self._lock:
            node = self._nodes.get(node_id)
            if node is None:
                raise ValueError(f"no node {node_id!r} in the tier")
            if len(self._ring) <= 1:
                raise ValueError("cannot drain the last node of the tier")
            held = sorted(node.store.keys())
            self._ring.remove_node(node_id)
        obs.event(
            "ring.leave",
            "draining",
            f"node {node_id} leaving the ring; draining {len(held)} key(s) "
            "to their new owners",
            node=node_id,
            keys=len(held),
        )
        moved = bytes_moved = 0
        for key in held:
            blob = node.store.get(key)
            if blob is None:
                continue
            version, _expires, _payload = _unpack(blob)
            for owner in self._owner_nodes(key):
                existing = None if not owner.alive else owner.store.peek(key)
                if existing is not None and _unpack(existing)[0] >= version:
                    continue
                if self._write(owner, key, blob):
                    moved += 1
                    bytes_moved += len(blob)
        with self._lock:
            node.alive = False
            node.store.flush()
            del self._nodes[node_id]
            self.stats.reshards += 1
            self.stats.keys_moved += moved
            self.stats.bytes_moved += bytes_moved
        obs.event(
            "reshard.done",
            "drained",
            f"leave of {node_id} complete: {moved} replica(s) "
            f"({bytes_moved} payload bytes) pushed to new owners",
            node=node_id,
            keys_moved=moved,
            bytes_moved=bytes_moved,
        )
        return {"node": node_id, "keys_moved": moved, "bytes_moved": bytes_moved}

    def kill(self, node_id: str) -> None:
        """A crash: the node vanishes with its data; survivors keep serving
        their replicas (read-repair / :meth:`repair_sweep` restore R-way)."""
        with self._lock:
            node = self._nodes.get(node_id)
            if node is None:
                raise ValueError(f"no node {node_id!r} in the tier")
            if len(self._ring) <= 1:
                raise ValueError("cannot kill the last node of the tier")
            self._ring.remove_node(node_id)
            node.alive = False
            node.store.flush()
            del self._nodes[node_id]
        obs.event(
            "ring.kill",
            "crashed",
            f"node {node_id} crashed and left the ring with its data; "
            "surviving replicas keep serving, re-replication is lazy",
            node=node_id,
            nodes=len(self._ring),
        )

    def fail(self, node_id: str) -> None:
        """Mark a node unreachable (outage, not crash): it keeps its data
        and its ring points, but every call to it fails until recovery."""
        with self._lock:
            self._nodes[node_id].alive = False
        obs.event(
            "ring.fail",
            "unreachable",
            f"node {node_id} is unreachable; reads fall back to replicas, "
            "writes may land under quorum",
            node=node_id,
        )

    def recover(self, node_id: str) -> None:
        """The failed node is back — possibly with stale versions, which
        read-repair (or a sweep) converges."""
        with self._lock:
            self._nodes[node_id].alive = True
        obs.event(
            "ring.recover",
            "reachable",
            f"node {node_id} is reachable again; stale replicas converge "
            "via read-repair",
            node=node_id,
        )

    def repair_sweep(self) -> dict:
        """Quorum-read every key: converges all live replicas to the newest
        version and restores R-way replication after a kill/recovery."""
        with self._lock:
            keys = sorted(
                set().union(
                    *(set(n.store.keys()) for n in self._nodes.values() if n.alive)
                )
                if self._nodes
                else ()
            )
            repairs_before = self.stats.read_repairs
        for key in keys:
            self.get(key, mode="quorum")
        with self._lock:
            repaired = self.stats.read_repairs - repairs_before
        obs.event(
            "reshard.done",
            "swept",
            f"repair sweep over {len(keys)} key(s): {repaired} replica(s) "
            "back-filled",
            keys=len(keys),
            repaired=repaired,
        )
        return {"keys": len(keys), "repaired": repaired}

    # ------------------------------------------------------------------ #
    # Invalidation fan-out (extract refresh / DDL)
    # ------------------------------------------------------------------ #
    def invalidate_prefix(self, prefix: str) -> int:
        """Fan a namespace purge out to every live node; returns distinct
        keys removed. The cache-tier arm of the refresh/DDL invalidation
        path the plan cache already walks."""
        doomed: set[str] = set()
        with self._lock:
            nodes = [n for n in self._nodes.values() if n.alive]
            self.stats.invalidation_fanouts += 1
        for node in nodes:
            for key in node.store.keys():
                if key.startswith(prefix):
                    doomed.add(key)
                    node.store.delete(key)
        obs.event(
            "replica.invalidate",
            "fanned_out",
            f"invalidation of prefix {prefix!r} fanned out to "
            f"{len(nodes)} node(s); {len(doomed)} key(s) dropped",
            prefix=prefix[:40],
            nodes=len(nodes),
            keys=len(doomed),
        )
        return len(doomed)

    # ------------------------------------------------------------------ #
    # Placement / introspection
    # ------------------------------------------------------------------ #
    def owners(self, key: str) -> tuple[str, ...]:
        with self._lock:
            return self._ring.owners(key, self.replication)

    def _owner_nodes(self, key: str) -> list[CacheNode]:
        return [
            self._nodes[node_id]
            for node_id in self._ring.owners(key, self.replication)
            if node_id in self._nodes
        ]

    def describe(self, key: str) -> dict | None:
        """EXPLAIN's view of one key: who owns it, who holds it, whether a
        request right now would fall back to a replica or trigger repair.
        Reads raw state (no round trips, no counters skewed)."""
        with self._lock:
            owners = self._ring.owners(key, self.replication)
            holders: list[tuple[str, int]] = []
            for node_id in owners:
                node = self._nodes.get(node_id)
                if node is None or not node.alive:
                    continue
                blob = node.store.peek(key)
                if blob is not None:
                    holders.append((node_id, _unpack(blob)[0]))
        if not holders:
            return None
        newest = max(v for _n, v in holders)
        holder_ids = [n for n, _v in holders]
        served_by = holder_ids[0]
        fallback = bool(owners) and served_by != owners[0]
        needs_repair = len(holders) < len(owners) or any(
            v < newest for _n, v in holders
        )
        note = f"cache-tier key held by {', '.join(holder_ids)}"
        if fallback:
            note += (
                f"; primary {owners[0]} would miss — served from replica "
                f"{served_by}"
            )
        if needs_repair:
            note += "; a read would back-fill the lagging replica(s)"
        return {
            "owners": list(owners),
            "holders": holder_ids,
            "served_by": served_by,
            "fallback": fallback,
            "needs_repair": needs_repair,
            "note": note,
        }

    # ------------------------------------------------------------------ #
    # KeyValueStore-compatible accounting
    # ------------------------------------------------------------------ #
    @property
    def gets(self) -> int:
        with self._lock:
            return sum(n.store.stats()["gets"] for n in self._nodes.values())

    @property
    def puts(self) -> int:
        with self._lock:
            return sum(n.store.stats()["puts"] for n in self._nodes.values())

    @property
    def hit_count(self) -> int:
        with self._lock:
            return sum(n.store.stats()["hits"] for n in self._nodes.values())

    def __len__(self) -> int:
        with self._lock:
            keys: set[str] = set()
            for node in self._nodes.values():
                if node.alive:
                    keys.update(node.store.keys())
            return len(keys)

    def total_bytes(self) -> int:
        with self._lock:
            return sum(
                n.store.total_bytes() for n in self._nodes.values() if n.alive
            )

    def live_nodes(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(n.node_id for n in self._nodes.values() if n.alive))

    def node(self, node_id: str) -> CacheNode:
        with self._lock:
            return self._nodes[node_id]

    def statz(self) -> dict:
        """Per-node counters plus the fleet rollup — the operator view."""
        with self._lock:
            nodes = {
                node_id: node.statz() for node_id, node in sorted(self._nodes.items())
            }
            snap = {
                "name": self.name,
                "replication": self.replication,
                "write_quorum": self.write_quorum,
                "ring": self._ring.snapshot(),
                "nodes": nodes,
                "fleet": {
                    "live_nodes": sum(1 for n in self._nodes.values() if n.alive),
                    "distinct_keys": 0,  # filled below, outside the sum loop
                    "gets": sum(s["gets"] for s in nodes.values()),
                    "hits": sum(s["hits"] for s in nodes.values()),
                    "misses": sum(s["misses"] for s in nodes.values()),
                    "puts": sum(s["puts"] for s in nodes.values()),
                    "bytes": sum(s["bytes"] for s in nodes.values()),
                    **self.stats.to_dict(),
                },
            }
        snap["fleet"]["distinct_keys"] = len(self)
        return snap
