"""The intelligent (semantic) query cache (paper 3.2).

"The intelligent cache maps the internal query structure to a key that is
associated with the query results. When a new query is to be executed, a
cache key is generated and the intelligent cache is searched for a match.
When looking for matches, we attempt to prove that results of the stored
query subsume the requested data. ... The latter [post-processing]
includes roll-up, filtering, calculation projection, and column
restriction."

The subsumption proof (:func:`match_specs`) is deliberately conservative:
it returns a post-processing plan only when the derivation is sound, and
``None`` otherwise. The property tests compare cache-served answers with
direct evaluation over every accepted match.

``choose_best=True`` enables the future-work behaviour the paper sketches
("we plan to choose the entry that requires the least post-processing");
the default takes the first match, as shipped in Tableau 9.0.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ... import obs
from ...errors import CacheError
from ...expr.ast import AggExpr, Call, ColumnRef, Expr, Literal, conjoin
from ...queries.postops import (
    LocalAggregate,
    LocalFilter,
    LocalProject,
    LocalSort,
    LocalTopN,
    PostOp,
    apply_post_ops,
)
from ...queries.spec import CategoricalFilter, QuerySpec, RangeFilter, TopNFilter
from ...tde.storage.table import Table
from .eviction import CacheEntry, EvictionPolicy


@dataclass
class MatchResult:
    """A successful subsumption proof: how to derive request from entry."""

    post_ops: tuple[PostOp, ...]

    @property
    def work(self) -> int:
        """Crude post-processing effort rank (for choose_best)."""
        return len(self.post_ops)


# ---------------------------------------------------------------------- #
# Subsumption proof between two specs
# ---------------------------------------------------------------------- #
def match_specs(provider: QuerySpec, request: QuerySpec) -> MatchResult | None:
    """Prove that ``provider``'s result can answer ``request`` locally.

    Returns the post-op chain (roll-up, filtering, projection, ordering)
    or ``None`` when no sound derivation exists.
    """
    if provider.datasource != request.datasource:
        return None
    if provider.canonical() == request.canonical():
        return MatchResult(())
    # A truncated provider result (LIMIT) cannot answer anything else.
    if provider.limit is not None:
        return None
    # Top-n filters are not relaxable: they must agree exactly.
    if _topn_signature(provider) != _topn_signature(request):
        return None
    if not set(request.dimensions) <= set(provider.dimensions):
        return None
    extra_predicates = _filter_difference(provider, request)
    if extra_predicates is None:
        return None
    if extra_predicates and _topn_signature(provider):
        # A top-n filter's surviving set depends on the other filters:
        # narrowing them would demand re-ranking, which post-processing
        # cannot do soundly from the truncated provider result.
        return None
    for pred_field in _fields_of(extra_predicates):
        if pred_field not in provider.dimensions:
            return None  # can only post-filter on grouped columns
    rollup = tuple(request.dimensions) != tuple(provider.dimensions)
    measure_ops = _derive_measures(provider, request, rollup=rollup)
    if measure_ops is None:
        return None
    post_ops: list[PostOp] = []
    if extra_predicates:
        post_ops.append(LocalFilter(conjoin(extra_predicates)))
    post_ops.extend(measure_ops)
    if request.order_by and request.limit is not None:
        post_ops.append(LocalTopN(request.limit, request.order_by))
    elif request.order_by:
        post_ops.append(LocalSort(request.order_by))
    elif request.limit is not None:
        post_ops.append(LocalTopN(request.limit, tuple()))
    return MatchResult(tuple(post_ops))


def explain_mismatch(provider: QuerySpec, request: QuerySpec) -> str:
    """Why :func:`match_specs` returned None, as a human-readable reason.

    Re-proves the failure along the same check order, so the returned
    reason names the first gate the pair failed. Only called on the slow
    path (decision-event emission); the hot path never pays for it.
    """
    if provider.datasource != request.datasource:
        return "cached entry belongs to a different data source"
    if provider.limit is not None:
        return "cached result is LIMIT-truncated and cannot answer anything else"
    if _topn_signature(provider) != _topn_signature(request):
        return "top-n filter signatures differ (top-n is not relaxable)"
    if not set(request.dimensions) <= set(provider.dimensions):
        missing = sorted(set(request.dimensions) - set(provider.dimensions))
        return f"requested dimensions {missing} are absent from the cached grain"
    extra_predicates = _filter_difference(provider, request)
    if extra_predicates is None:
        return (
            "request rows are not provably a subset of cached rows "
            "(a cached filter is not implied by the request's)"
        )
    if extra_predicates and _topn_signature(provider):
        return "narrowing filters under a top-n filter would require re-ranking"
    for pred_field in _fields_of(extra_predicates):
        if pred_field not in provider.dimensions:
            return (
                f"cannot post-filter on {pred_field!r}: "
                "not grouped in the cached result"
            )
    rollup = tuple(request.dimensions) != tuple(provider.dimensions)
    if _derive_measures(provider, request, rollup=rollup) is None:
        return (
            "a requested measure cannot be derived from the cached one "
            "(not additive across groups, or its components are missing)"
        )
    return "no mismatch found (the pair matches)"  # pragma: no cover


def _topn_signature(spec: QuerySpec) -> frozenset[str]:
    return frozenset(f.canonical() for f in spec.filters if isinstance(f, TopNFilter))


def _fields_of(predicates: list[Expr]) -> set[str]:
    from ...expr.ast import columns_used

    out: set[str] = set()
    for pred in predicates:
        out |= columns_used(pred)
    return out


def _filter_difference(provider: QuerySpec, request: QuerySpec) -> list[Expr] | None:
    """Predicates to apply on top of the provider's result, or None.

    Soundness requires: request rows ⊆ provider rows, i.e. every provider
    filter is implied by some request filter on the same field; request
    filters that are strictly stronger (or on unfiltered fields) become
    local predicates.
    """
    provider_simple = {
        f.field: f for f in provider.filters if not isinstance(f, TopNFilter)
    }
    request_simple = {f.field: f for f in request.filters if not isinstance(f, TopNFilter)}
    if len(provider_simple) != sum(
        1 for f in provider.filters if not isinstance(f, TopNFilter)
    ) or len(request_simple) != sum(
        1 for f in request.filters if not isinstance(f, TopNFilter)
    ):
        return None  # multiple filters on one field: out of scope, be safe
    extra: list[Expr] = []
    for field_name, pf in provider_simple.items():
        rf = request_simple.get(field_name)
        if rf is None or not _implies(rf, pf):
            return None
        if not _implies(pf, rf):
            extra.append(rf.predicate())
    for field_name, rf in request_simple.items():
        if field_name not in provider_simple:
            extra.append(rf.predicate())
    return extra


def _implies(stronger, weaker) -> bool:
    """Whether satisfying ``stronger`` implies satisfying ``weaker``."""
    if type(stronger) is not type(weaker) or stronger.field != weaker.field:
        return False
    if isinstance(stronger, CategoricalFilter):
        if stronger.exclude != weaker.exclude:
            return False
        if stronger.exclude:
            return set(weaker.values) <= set(stronger.values)
        return set(stronger.values) <= set(weaker.values)
    if isinstance(stronger, RangeFilter):
        low_ok = weaker.low is None or (
            stronger.low is not None and stronger.low >= weaker.low
        )
        high_ok = weaker.high is None or (
            stronger.high is not None and stronger.high <= weaker.high
        )
        return low_ok and high_ok
    return False


def _derive_measures(
    provider: QuerySpec, request: QuerySpec, *, rollup: bool
) -> list[PostOp] | None:
    """Build the roll-up / projection ops for the requested measures."""
    by_expr = {agg: alias for alias, agg in provider.measures}

    def find(agg: AggExpr) -> str | None:
        return by_expr.get(agg)

    if not rollup:
        items = [(d, ColumnRef(d)) for d in request.dimensions]
        for alias, agg in request.measures:
            src = find(agg)
            if src is None:
                return None
            items.append((alias, ColumnRef(src)))
        return [LocalProject(tuple(items))]
    rollup_measures: list[tuple[str, AggExpr]] = []
    final_items: list[tuple[str, Expr]] = [(d, ColumnRef(d)) for d in request.dimensions]
    needs_final = False
    for alias, agg in request.measures:
        if agg.func == "count_distinct":
            return None  # not additive across groups
        if agg.func in ("sum", "min", "max"):
            src = find(agg)
            if src is None:
                return None
            rollup_measures.append((alias, AggExpr(agg.func, ColumnRef(src))))
            final_items.append((alias, ColumnRef(alias)))
        elif agg.func == "count":
            src = find(agg)
            if src is None:
                return None
            rollup_measures.append((alias, AggExpr("sum", ColumnRef(src))))
            # SUM over zero provider rows is NULL, but COUNT over zero
            # rows must be 0 — coalesce in the final projection.
            final_items.append(
                (alias, Call("ifnull", (ColumnRef(alias), Literal(0))))
            )
            needs_final = True
        elif agg.func == "avg":
            sum_src = find(AggExpr("sum", agg.arg))
            cnt_src = find(AggExpr("count", agg.arg))
            if sum_src is None or cnt_src is None:
                return None  # avg is not additive without its components
            s_alias = f"__s_{alias}"
            c_alias = f"__c_{alias}"
            rollup_measures.append((s_alias, AggExpr("sum", ColumnRef(sum_src))))
            rollup_measures.append((c_alias, AggExpr("sum", ColumnRef(cnt_src))))
            final_items.append((alias, Call("/", (ColumnRef(s_alias), ColumnRef(c_alias)))))
            needs_final = True
        else:  # pragma: no cover - defensive
            return None
    ops: list[PostOp] = [LocalAggregate(request.dimensions, tuple(rollup_measures))]
    if needs_final or len(final_items) != len(request.dimensions) + len(rollup_measures):
        ops.append(LocalProject(tuple(final_items)))
    return ops


# ---------------------------------------------------------------------- #
# Spec enrichment for reuse
# ---------------------------------------------------------------------- #
def enrich_spec(spec: QuerySpec, *, reuse_fields: frozenset[str] = frozenset()) -> QuerySpec:
    """Adjust a spec before sending "to make the results more useful for
    future reuse" (paper 3.2).

    * filter fields join the dimension list, so later interactions that
      change the selection can be answered by local filtering ("the
      intelligent cache will be able to filter out the necessary rows ...
      as long as the filtering columns are included");
    * ``reuse_fields`` — fields the caller expects future filters on
      (e.g. a dashboard's action fields) — join the dimensions too;
    * AVG measures are accompanied by their SUM/COUNT components so the
      result can be rolled up later;
    * ORDER BY / LIMIT are dropped from the remote query (re-applied
      locally) so the cached result is not truncated.
    """
    dims = list(spec.dimensions)
    # COUNT DISTINCT cannot be rolled up, so widening the grain would make
    # the enriched result useless for the original request; keep the grain.
    widenable = all(agg.func != "count_distinct" for _a, agg in spec.measures)
    if widenable:
        for f in spec.filters:
            if isinstance(f, TopNFilter):
                continue
            if f.field not in dims:
                dims.append(f.field)
        for field_name in sorted(reuse_fields):
            if field_name not in dims:
                dims.append(field_name)
    measures = list(spec.measures)
    present = {agg for _a, agg in measures}
    for _alias, agg in list(spec.measures):
        if agg.func == "avg":
            for extra in (AggExpr("sum", agg.arg), AggExpr("count", agg.arg)):
                if extra not in present:
                    measures.append((f"__reuse{len(measures)}", extra))
                    present.add(extra)
    return QuerySpec(spec.datasource, tuple(dims), tuple(measures), spec.filters)


# ---------------------------------------------------------------------- #
# The cache proper
# ---------------------------------------------------------------------- #
class IntelligentCacheStats:
    def __init__(self) -> None:
        self.exact_hits = 0
        self.subsumption_hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0

    @property
    def hits(self) -> int:
        return self.exact_hits + self.subsumption_hits

    def snapshot(self) -> dict[str, int]:
        return {
            "exact_hits": self.exact_hits,
            "subsumption_hits": self.subsumption_hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
        }


class IntelligentCache:
    """Semantic result cache with subsumption matching.

    ``choose_best`` and ``use_index`` are the two future-work behaviours
    paper 3.2 sketches; both default off to match the shipped Tableau 9.0
    behaviour ("currently we accept the first match", "we are planning to
    maintain an index"). Experiment E17 ablates them.
    """

    def __init__(
        self,
        policy: EvictionPolicy | None = None,
        *,
        choose_best: bool = False,
        use_index: bool = False,
    ):
        from .index import CacheIndex

        self.policy = policy or EvictionPolicy()
        self.choose_best = choose_best
        self.use_index = use_index
        self.index = CacheIndex() if use_index else None
        self.stats = IntelligentCacheStats()
        self._entries: dict[str, CacheEntry] = {}
        self._specs: dict[str, QuerySpec] = {}
        #: key -> TraceContext of the request that paid to produce the
        #: entry (only populated while tracing is on). A later hit links
        #: ``cache.populated_by`` to it, so a prefetch-warmed hit's
        #: provenance — *whose* work it reused — is first-class.
        self._origins: dict[str, "obs.TraceContext"] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    def put(self, spec: QuerySpec, result: Table, *, cost_s: float = 0.0) -> None:
        key = spec.canonical()
        origin = obs.current_trace_context() if obs.enabled() else None
        with self._lock:
            self._entries[key] = CacheEntry(
                key, spec.datasource, result, result.nbytes, cost_s
            )
            self._specs[key] = spec
            if origin is not None:
                self._origins[key] = origin
            else:
                self._origins.pop(key, None)
            if self.index is not None:
                self.index.add(key, spec)
            for evicted in self.policy.purge(self._entries):
                self._specs.pop(evicted, None)
                self._origins.pop(evicted, None)
                if self.index is not None:
                    self.index.remove(evicted)
                self.stats.evictions += 1
            self.stats.puts += 1

    def _candidate_keys(self, spec: QuerySpec) -> list[str]:
        if self.index is not None:
            return self.index.candidates(spec)
        return [
            k for k, e in self._entries.items() if e.datasource == spec.datasource
        ]

    def lookup(self, spec: QuerySpec) -> Table | None:
        """Serve ``spec`` from cache, post-processing as needed."""
        key = spec.canonical()
        with self._lock:
            exact = self._entries.get(key)
            if exact is not None:
                exact.touch()
                self.stats.exact_hits += 1
                self._link_origin(key)
                obs.counter("cache.intelligent.exact_hits").inc()
                obs.event(
                    "cache.subsumption",
                    "accepted",
                    "exact match: the cached query has the same canonical form",
                    spec=key,
                )
                return exact.value
            best: tuple[MatchResult, CacheEntry] | None = None
            candidates = self._candidate_keys(spec)
            for entry_key in candidates:
                entry = self._entries.get(entry_key)
                if entry is None:
                    continue
                match = match_specs(self._specs[entry_key], spec)
                if match is None:
                    continue
                if not self.choose_best:
                    best = (match, entry)
                    break
                if best is None or self._work(match, entry) < self._work(*best):
                    best = (match, entry)
            if best is None:
                self.stats.misses += 1
                obs.counter("cache.intelligent.misses").inc()
                if obs.events_enabled():
                    if not candidates:
                        reason = "no cached entries for this data source"
                    else:
                        sample = explain_mismatch(self._specs[candidates[0]], spec)
                        reason = (
                            f"none of {len(candidates)} candidate(s) subsume the "
                            f"request; e.g. {sample}"
                        )
                    obs.event(
                        "cache.subsumption",
                        "rejected",
                        reason,
                        spec=key,
                        candidates=len(candidates),
                    )
                return None
            match, entry = best
            entry.touch()
            self.stats.subsumption_hits += 1
            self._link_origin(entry.key)
            obs.counter("cache.intelligent.subsumption_hits").inc()
            if obs.events_enabled():
                ops = [type(op).__name__ for op in match.post_ops]
                obs.event(
                    "cache.subsumption",
                    "accepted",
                    "cached result proven to subsume the request; deriving via "
                    + (" -> ".join(ops) if ops else "no post-processing"),
                    spec=key,
                    provider=entry.key,
                    post_ops=ops,
                )
            table = entry.value
        return apply_post_ops(table, match.post_ops)

    def _link_origin(self, key: str) -> None:
        """Link the current span to the trace that populated ``key``."""
        if not obs.enabled():
            return
        origin = self._origins.get(key)
        if origin is None:
            return
        span = obs.current_span()
        if span is not None and span.trace_id and span.trace_id != origin.trace_id:
            span.add_link("cache.populated_by", origin, key=key)

    @staticmethod
    def _work(match: MatchResult, entry: CacheEntry) -> tuple[int, int]:
        """Post-processing effort: rows to chew through, then op count.

        This is the "entry that requires the least post-processing" metric
        of the paper's future-work note — a narrower cached result beats a
        wider one even when both need the same operator chain.
        """
        rows = entry.value.n_rows if match.post_ops else 0
        return (rows, len(match.post_ops))

    def probe(self, spec: QuerySpec) -> bool:
        """Would lookup succeed? (No stats side effects on the answer.)"""
        key = spec.canonical()
        with self._lock:
            if key in self._entries:
                return True
            return any(
                entry.datasource == spec.datasource
                and match_specs(self._specs[k], spec) is not None
                for k, entry in self._entries.items()
            )

    # ------------------------------------------------------------------ #
    def invalidate(self, datasource: str | None = None) -> int:
        """Purge entries (all, or one data source's on refresh/close)."""
        with self._lock:
            if datasource is None:
                n = len(self._entries)
                self._entries.clear()
                self._specs.clear()
                self._origins.clear()
                if self.index is not None:
                    self.index.clear()
                return n
            doomed = [k for k, e in self._entries.items() if e.datasource == datasource]
            for k in doomed:
                del self._entries[k]
                del self._specs[k]
                self._origins.pop(k, None)
                if self.index is not None:
                    self.index.remove(k)
            return len(doomed)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def entries(self) -> list[tuple[QuerySpec, Table]]:
        with self._lock:
            return [(self._specs[k], e.value) for k, e in self._entries.items()]

    def size_bytes(self) -> int:
        with self._lock:
            return sum(e.size_bytes for e in self._entries.values())
