"""Query caches: intelligent (semantic), literal, distributed, persisted."""

from .eviction import CacheEntry, EvictionPolicy
from .intelligent import IntelligentCache, MatchResult, enrich_spec, match_specs
from .literal import LiteralCache
from .distributed import (
    DistributedLiteralCache,
    DistributedQueryCache,
    KeyValueStore,
)
from .persistence import load_intelligent_cache, save_intelligent_cache
from .replicated import CacheNode, ReplicatedStore
from .ring import HashRing, stable_hash

__all__ = [
    "CacheEntry",
    "EvictionPolicy",
    "IntelligentCache",
    "MatchResult",
    "enrich_spec",
    "match_specs",
    "LiteralCache",
    "KeyValueStore",
    "DistributedQueryCache",
    "DistributedLiteralCache",
    "HashRing",
    "stable_hash",
    "CacheNode",
    "ReplicatedStore",
    "save_intelligent_cache",
    "load_intelligent_cache",
]
