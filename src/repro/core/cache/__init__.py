"""Query caches: intelligent (semantic), literal, distributed, persisted."""

from .eviction import CacheEntry, EvictionPolicy
from .intelligent import IntelligentCache, MatchResult, enrich_spec, match_specs
from .literal import LiteralCache
from .distributed import DistributedQueryCache, KeyValueStore
from .persistence import load_intelligent_cache, save_intelligent_cache

__all__ = [
    "CacheEntry",
    "EvictionPolicy",
    "IntelligentCache",
    "MatchResult",
    "enrich_spec",
    "match_specs",
    "LiteralCache",
    "KeyValueStore",
    "DistributedQueryCache",
    "save_intelligent_cache",
    "load_intelligent_cache",
]
