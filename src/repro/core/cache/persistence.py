"""Cache persistence for the desktop scenario (paper 3.2).

"In Tableau Desktop query caches get persisted to enable fast response
times across different sessions with the application."

The intelligent cache is saved as a single ZIP: a JSON manifest of query
specs (no pickling — filter values carry explicit type tags) plus one
packed table per entry.
"""

from __future__ import annotations

import datetime as _dt
import io
import json
import zipfile
from pathlib import Path
from typing import Any

from ...errors import CacheError
from ...expr.sexpr import parse_sexpr, to_sexpr
from ...queries.spec import CategoricalFilter, QuerySpec, RangeFilter, TopNFilter
from .distributed import deserialize_table, serialize_table
from .intelligent import IntelligentCache

FORMAT_VERSION = 1


# ---------------------------------------------------------------------- #
# Spec <-> JSON
# ---------------------------------------------------------------------- #
def _value_to_json(v: Any) -> Any:
    if isinstance(v, _dt.datetime):
        return {"$dt": v.isoformat()}
    if isinstance(v, _dt.date):
        return {"$d": v.isoformat()}
    return v


def _value_from_json(v: Any) -> Any:
    if isinstance(v, dict):
        if "$dt" in v:
            return _dt.datetime.fromisoformat(v["$dt"])
        if "$d" in v:
            return _dt.date.fromisoformat(v["$d"])
    return v


def spec_to_json(spec: QuerySpec) -> dict:
    filters = []
    for f in spec.filters:
        if isinstance(f, CategoricalFilter):
            filters.append(
                {
                    "kind": "cat",
                    "field": f.field,
                    "values": [_value_to_json(v) for v in f.values],
                    "exclude": f.exclude,
                }
            )
        elif isinstance(f, RangeFilter):
            filters.append(
                {
                    "kind": "range",
                    "field": f.field,
                    "low": _value_to_json(f.low),
                    "high": _value_to_json(f.high),
                }
            )
        elif isinstance(f, TopNFilter):
            filters.append(
                {
                    "kind": "topn",
                    "field": f.field,
                    "by": to_sexpr(f.by),
                    "n": f.n,
                    "ascending": f.ascending,
                }
            )
        else:  # pragma: no cover - defensive
            raise CacheError(f"cannot persist filter {f!r}")
    return {
        "datasource": spec.datasource,
        "dimensions": list(spec.dimensions),
        "measures": [[n, to_sexpr(a)] for n, a in spec.measures],
        "filters": filters,
        "order_by": [[k, asc] for k, asc in spec.order_by],
        "limit": spec.limit,
    }


def spec_from_json(doc: dict) -> QuerySpec:
    filters = []
    for f in doc["filters"]:
        if f["kind"] == "cat":
            filters.append(
                CategoricalFilter(
                    f["field"], [_value_from_json(v) for v in f["values"]], f["exclude"]
                )
            )
        elif f["kind"] == "range":
            filters.append(
                RangeFilter(
                    f["field"], _value_from_json(f["low"]), _value_from_json(f["high"])
                )
            )
        elif f["kind"] == "topn":
            filters.append(
                TopNFilter(
                    f["field"],
                    parse_sexpr(f["by"], allow_agg=True),
                    f["n"],
                    f["ascending"],
                )
            )
        else:
            raise CacheError(f"unknown persisted filter kind {f['kind']!r}")
    return QuerySpec(
        doc["datasource"],
        doc["dimensions"],
        [(n, parse_sexpr(a, allow_agg=True)) for n, a in doc["measures"]],
        filters,
        [(k, asc) for k, asc in doc["order_by"]],
        doc["limit"],
    )


# ---------------------------------------------------------------------- #
# Cache <-> file
# ---------------------------------------------------------------------- #
def save_intelligent_cache(cache: IntelligentCache, path: str | Path) -> int:
    """Persist all entries; returns the number written."""
    entries = cache.entries()
    with zipfile.ZipFile(Path(path), "w", compression=zipfile.ZIP_DEFLATED) as zf:
        manifest = {"version": FORMAT_VERSION, "entries": []}
        for i, (spec, table) in enumerate(entries):
            manifest["entries"].append({"spec": spec_to_json(spec), "payload": f"{i}.tde"})
            zf.writestr(f"{i}.tde", serialize_table(table))
        zf.writestr("manifest.json", json.dumps(manifest))
    return len(entries)


def load_intelligent_cache(path: str | Path, cache: IntelligentCache | None = None) -> IntelligentCache:
    """Load persisted entries into a (new or given) cache."""
    cache = cache or IntelligentCache()
    path = Path(path)
    if not path.exists():
        raise CacheError(f"no persisted cache at {path}")
    with zipfile.ZipFile(path, "r") as zf:
        try:
            manifest = json.loads(zf.read("manifest.json"))
        except KeyError:
            raise CacheError(f"{path} is not a persisted cache") from None
        if manifest.get("version") != FORMAT_VERSION:
            raise CacheError(f"unsupported cache version {manifest.get('version')}")
        for entry in manifest["entries"]:
            spec = spec_from_json(entry["spec"])
            table = deserialize_table(zf.read(entry["payload"]))
            cache.put(spec, table)
    return cache
