"""Consistent-hash ring with virtual nodes for the cache tier (paper 3.2).

The paper's server tier shares cache state through "a distributed layer
based on REDIS or Cassandra"; both place keys with consistent hashing so
nodes can join and leave without re-keying the world. :class:`HashRing`
is that placement function, kept deliberately free of I/O and liveness
concerns (those live in :class:`~repro.core.cache.replicated.ReplicatedStore`)
so its properties are testable in isolation:

* **Determinism.** Points are 64-bit truncations of MD5 digests —
  independent of ``PYTHONHASHSEED``, identical on every platform — so
  seeded placement tests and two-run replays are byte-identical.
* **Balance.** Each physical node projects ``vnodes`` virtual points
  onto the ring; with O(100) points per node the max/mean ownership skew
  over a large key population stays within a small constant factor.
* **Minimal movement.** Adding a node moves only the key ranges that
  now hash to the new node's points (~``1/(n+1)`` of the keyspace);
  removing one reassigns only the ranges it owned. A key's replica set
  never changes between two *surviving* nodes on a topology change —
  the property suite asserts exactly this.

:meth:`owners` returns the **preference list**: the first ``r`` distinct
physical nodes clockwise from the key's point. Replication, quorums and
read-repair interpret that list; the ring only computes it.
"""

from __future__ import annotations

import bisect
import hashlib
from collections import Counter
from typing import Iterable


def stable_hash(value: str) -> int:
    """A 64-bit placement hash independent of PYTHONHASHSEED."""
    return int.from_bytes(hashlib.md5(value.encode()).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring: node ids -> virtual points -> key ownership."""

    def __init__(self, nodes: Iterable[str] = (), *, vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        #: Sorted (point, node_id) pairs; ties break on node_id, so the
        #: walk order is total and deterministic.
        self._points: list[tuple[int, str]] = []
        self._nodes: set[str] = set()
        for node_id in nodes:
            self.add_node(node_id)

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #
    def add_node(self, node_id: str) -> int:
        """Project ``node_id``'s virtual points; returns how many."""
        if node_id in self._nodes:
            raise ValueError(f"node {node_id!r} is already on the ring")
        self._nodes.add(node_id)
        for v in range(self.vnodes):
            bisect.insort(self._points, (stable_hash(f"{node_id}#{v}"), node_id))
        return self.vnodes

    def remove_node(self, node_id: str) -> int:
        """Withdraw ``node_id``'s points; returns how many were removed."""
        if node_id not in self._nodes:
            raise ValueError(f"node {node_id!r} is not on the ring")
        self._nodes.discard(node_id)
        before = len(self._points)
        self._points = [p for p in self._points if p[1] != node_id]
        return before - len(self._points)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(sorted(self._nodes))

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #
    def owners(self, key: str, r: int = 1) -> tuple[str, ...]:
        """The preference list: first ``r`` distinct nodes clockwise.

        Fewer than ``r`` nodes on the ring yields all of them; an empty
        ring yields ``()``. The list order is significant — index 0 is
        the primary, later entries the replicas a quorum-ish GET walks.
        """
        if not self._points:
            return ()
        want = min(r, len(self._nodes))
        idx = bisect.bisect_right(self._points, (stable_hash(key), "\uffff"))
        out: list[str] = []
        seen: set[str] = set()
        n = len(self._points)
        for i in range(n):
            _point, node_id = self._points[(idx + i) % n]
            if node_id not in seen:
                seen.add(node_id)
                out.append(node_id)
                if len(out) >= want:
                    break
        return tuple(out)

    def primary(self, key: str) -> str | None:
        owners = self.owners(key, 1)
        return owners[0] if owners else None

    # ------------------------------------------------------------------ #
    # Introspection (tests, statz)
    # ------------------------------------------------------------------ #
    def ownership(self, keys: Iterable[str], r: int = 1) -> Counter:
        """How many of ``keys`` each node owns (any replica slot)."""
        counts: Counter = Counter({node: 0 for node in self._nodes})
        for key in keys:
            for node in self.owners(key, r):
                counts[node] += 1
        return counts

    def skew(self, keys: Iterable[str]) -> float:
        """Max/mean primary-ownership ratio over ``keys`` (1.0 = perfect)."""
        counts = self.ownership(keys, 1)
        if not counts:
            return 0.0
        mean = sum(counts.values()) / len(counts)
        if mean == 0:
            return 0.0
        return max(counts.values()) / mean

    def snapshot(self) -> dict:
        return {
            "nodes": list(self.nodes),
            "vnodes": self.vnodes,
            "points": len(self._points),
        }
