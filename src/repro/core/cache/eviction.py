"""Cache entries and the eviction policy shared by both cache levels.

"Cache entries in both the literal and intelligent cache are purged based
upon a combination of entry age, usage, and the expense of re-evaluating
the query. Entries are also purged when a connection to a data source is
closed or refreshed." (paper 3.2)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from ... import obs


@dataclass
class CacheEntry:
    """One cached result with retention metadata."""

    key: str
    datasource: str
    value: Any  # a Table (or payload bytes for the distributed layer)
    size_bytes: int
    cost_s: float = 0.0  # expense of re-evaluating the query
    created_at: float = field(default_factory=time.monotonic)
    last_used: float = field(default_factory=time.monotonic)
    uses: int = 0

    def touch(self) -> None:
        self.last_used = time.monotonic()
        self.uses += 1

    def retention_score(self, now: float | None = None) -> float:
        """Higher = keep longer. Combines age, usage, and re-eval cost."""
        now = time.monotonic() if now is None else now
        age = max(now - self.last_used, 0.0)
        return (self.cost_s + 1e-3) * (1.0 + self.uses) / (1.0 + age)


@dataclass
class EvictionPolicy:
    """Capacity limits and the purge procedure."""

    max_entries: int = 512
    max_bytes: int = 256 * 1024 * 1024
    max_age_s: float = float("inf")

    def purge(self, entries: dict[str, CacheEntry]) -> list[str]:
        """Remove entries until within capacity; return evicted keys.

        Every victim is reported as a ``cache.eviction`` decision event
        carrying the three retention inputs the paper names — entry age,
        usage, and re-evaluation expense — plus the combined score, so a
        recording shows *why* that entry lost.
        """
        now = time.monotonic()
        expired = [e for e in entries.values() if now - e.created_at > self.max_age_s]
        evicted: list[str] = []
        for entry in expired:
            del entries[entry.key]
            evicted.append(entry.key)
            if obs.events_enabled():
                obs.event(
                    "cache.eviction",
                    "evicted",
                    f"expired: created {now - entry.created_at:.1f}s ago, "
                    f"max age is {self.max_age_s:.1f}s",
                    key=entry.key,
                    age_s=now - entry.last_used,
                    uses=entry.uses,
                    cost_s=entry.cost_s,
                    score=entry.retention_score(now),
                )
        total = sum(e.size_bytes for e in entries.values())
        if len(entries) <= self.max_entries and total <= self.max_bytes:
            return evicted
        ranked = sorted(entries.values(), key=lambda e: e.retention_score(now))
        for entry in ranked:
            if len(entries) <= self.max_entries and total <= self.max_bytes:
                break
            del entries[entry.key]
            total -= entry.size_bytes
            evicted.append(entry.key)
            if obs.events_enabled():
                over = (
                    "entry count over limit"
                    if len(entries) >= self.max_entries
                    else "size over limit"
                )
                obs.event(
                    "cache.eviction",
                    "evicted",
                    f"lowest retention score {entry.retention_score(now):.4g} "
                    f"under capacity pressure ({over}): age "
                    f"{now - entry.last_used:.1f}s, {entry.uses} uses, "
                    f"re-evaluation cost {entry.cost_s:.3f}s",
                    key=entry.key,
                    age_s=now - entry.last_used,
                    uses=entry.uses,
                    cost_s=entry.cost_s,
                    score=entry.retention_score(now),
                )
        return evicted
