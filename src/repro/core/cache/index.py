"""Cache index: fast candidate pruning for intelligent-cache lookups.

Paper 3.2 (future work): "even though the matching logic is designed to
be fast, we are planning to maintain an index over the cache to minimize
the lookup time" — citing the filter-tree approach of Goldstein &
Larson's view matching [29].

The index exploits the *necessary* conditions of a subsumption match:

* the request's dimensions must be a subset of the entry's — inverted
  postings per dimension give the candidate intersection;
* every simple filter field of the entry must also be filtered by the
  request — a cheap per-entry subset check;
* top-n signatures must agree and the entry must be untruncated.

Only the survivors go through the full (expensive) proof in
``match_specs``. The index never changes results, only lookup cost —
experiment E17 measures the effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...queries.spec import QuerySpec, TopNFilter


@dataclass
class _EntryFacts:
    """Pre-extracted match-relevant facts about one cached entry."""

    datasource: str
    dimensions: frozenset[str]
    filter_fields: frozenset[str]
    topn_signature: frozenset[str]
    truncated: bool


def _facts(spec: QuerySpec) -> _EntryFacts:
    return _EntryFacts(
        datasource=spec.datasource,
        dimensions=frozenset(spec.dimensions),
        filter_fields=frozenset(
            f.field for f in spec.filters if not isinstance(f, TopNFilter)
        ),
        topn_signature=frozenset(
            f.canonical() for f in spec.filters if isinstance(f, TopNFilter)
        ),
        truncated=spec.limit is not None,
    )


class CacheIndex:
    """Inverted index over cached specs for candidate pruning."""

    def __init__(self) -> None:
        self._facts: dict[str, _EntryFacts] = {}
        # datasource -> dimension name -> entry keys containing it
        self._dim_postings: dict[str, dict[str, set[str]]] = {}
        self._by_datasource: dict[str, set[str]] = {}
        self.lookups = 0
        self.candidates_examined = 0

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def add(self, key: str, spec: QuerySpec) -> None:
        facts = _facts(spec)
        self._facts[key] = facts
        self._by_datasource.setdefault(facts.datasource, set()).add(key)
        postings = self._dim_postings.setdefault(facts.datasource, {})
        for dim in facts.dimensions:
            postings.setdefault(dim, set()).add(key)

    def remove(self, key: str) -> None:
        facts = self._facts.pop(key, None)
        if facts is None:
            return
        self._by_datasource.get(facts.datasource, set()).discard(key)
        postings = self._dim_postings.get(facts.datasource, {})
        for dim in facts.dimensions:
            postings.get(dim, set()).discard(key)

    def clear(self, datasource: str | None = None) -> None:
        if datasource is None:
            self._facts.clear()
            self._dim_postings.clear()
            self._by_datasource.clear()
            return
        for key in list(self._by_datasource.get(datasource, ())):
            self.remove(key)

    def __len__(self) -> int:
        return len(self._facts)

    # ------------------------------------------------------------------ #
    # Candidate retrieval
    # ------------------------------------------------------------------ #
    def candidates(self, spec: QuerySpec) -> list[str]:
        """Entry keys that *could* subsume ``spec`` (necessary conditions).

        Returned in no particular order; the caller still runs the full
        proof on each. Entries pruned here are guaranteed non-matches.
        """
        self.lookups += 1
        request = _facts(spec)
        pool = self._by_datasource.get(request.datasource)
        if not pool:
            return []
        postings = self._dim_postings.get(request.datasource, {})
        candidate_set: set[str] | None = None
        for dim in request.dimensions:
            keys = postings.get(dim)
            if not keys:
                return []
            candidate_set = set(keys) if candidate_set is None else candidate_set & keys
            if not candidate_set:
                return []
        if candidate_set is None:  # dimensionless request: anything may fit
            candidate_set = set(pool)
        survivors = []
        for key in candidate_set:
            facts = self._facts[key]
            self.candidates_examined += 1
            if facts.truncated:
                continue
            if facts.topn_signature != request.topn_signature:
                continue
            if not facts.filter_fields <= request.filter_fields:
                continue
            survivors.append(key)
        return survivors
