"""The literal query cache (paper 3.2).

"The literal query cache contains low-level queries that are not directly
related to visualization generation; it is keyed on the query text. It is
used to match internal queries that end up having the same textual
representation but where a match could not be proven upfront without
performing complete query compilation."

Keys come from :attr:`CompiledQuery.literal_key`, which folds in the
contents of any referenced temporary tables so that textually identical
queries over different temp state never collide.
"""

from __future__ import annotations

import threading

from ... import obs
from ...tde.storage.table import Table
from .eviction import CacheEntry, EvictionPolicy


class LiteralCacheStats:
    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0


class LiteralCache:
    """Text-keyed result cache."""

    def __init__(self, policy: EvictionPolicy | None = None):
        self.policy = policy or EvictionPolicy()
        self.stats = LiteralCacheStats()
        self._entries: dict[str, CacheEntry] = {}
        self._lock = threading.RLock()

    def get(self, key: str) -> Table | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                obs.counter("cache.literal.misses").inc()
                obs.event(
                    "cache.literal",
                    "miss",
                    "no cached result for this query text",
                    key=key[:40],
                )
                return None
            entry.touch()
            self.stats.hits += 1
            obs.counter("cache.literal.hits").inc()
            obs.event(
                "cache.literal",
                "hit",
                "query text matched a cached result",
                key=key[:40],
                rows=entry.value.n_rows,
            )
            return entry.value

    def put(self, key: str, datasource: str, result: Table, *, cost_s: float = 0.0) -> None:
        with self._lock:
            self._entries[key] = CacheEntry(key, datasource, result, result.nbytes, cost_s)
            self.stats.puts += 1
            self.stats.evictions += len(self.policy.purge(self._entries))

    def invalidate(self, datasource: str | None = None) -> int:
        with self._lock:
            if datasource is None:
                n = len(self._entries)
                self._entries.clear()
                return n
            doomed = [k for k, e in self._entries.items() if e.datasource == datasource]
            for k in doomed:
                del self._entries[k]
            return len(doomed)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
