"""Speculative prefetching of likely next interactions (paper §7).

"both data exploration and dashboard generation could become more
responsive if requested data has been accurately predicted and prefetched.
Materialization of secondary structures and prediction approaches such as
DICE [46], are good examples in this field."

The predictor is deliberately simple (DICE-like locality over the
interaction space): after a user selects marks in a zone, the most likely
next interactions are selections of the *other* prominent values in that
same zone. The prefetcher compiles the target zones' hypothetical specs
for those candidate selections and warms the pipeline's intelligent cache
— in a background thread, so the interactive path never waits on it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from .. import obs
from ..queries.spec import CategoricalFilter, QuerySpec

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from ..dashboard.render import DashboardSession


@dataclass
class PrefetchStats:
    interactions_observed: int = 0
    predictions: int = 0
    specs_prefetched: int = 0
    batches: int = 0


class InteractionPrefetcher:
    """Warms caches with the predicted next interactions of a session."""

    def __init__(
        self,
        *,
        max_candidates: int = 3,
        background: bool = True,
    ):
        self.max_candidates = max_candidates
        self.background = background
        self.stats = PrefetchStats()
        self._threads: list[threading.Thread] = []
        # Guards stats and the thread list: background warms finish
        # concurrently, and unsynchronized `+=` loses updates.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def observe(self, session: "DashboardSession", zone_name: str, selected) -> int:
        """Called after a selection; returns the number of predicted specs.

        Prefetching goes through the same pipeline (and therefore the same
        intelligent cache) that will serve the real interaction, so an
        accurate prediction turns the next click into a pure cache hit.
        """
        specs = self.predict(session, zone_name, tuple(selected))
        with self._lock:
            self.stats.interactions_observed += 1
            self.stats.predictions += len(specs)
        if not specs:
            obs.event(
                "prefetch",
                "skipped",
                f"no candidate next interactions predicted for zone {zone_name!r}",
                zone=zone_name,
            )
            return 0
        obs.event(
            "prefetch",
            "predicted",
            f"selection in zone {zone_name!r}: warming {len(specs)} hypothetical "
            f"spec(s) for the likeliest next clicks"
            + (" (background)" if self.background else ""),
            zone=zone_name,
            specs=len(specs),
        )
        # Capture the triggering request's trace identity before the
        # hand-off: the warm runs as its *own* root (the trigger request
        # usually finishes first) with a causal link back, rather than
        # attaching to a span that may already be closed.
        trigger = obs.current_trace_context() if obs.enabled() else None
        if self.background:
            thread = threading.Thread(
                target=self._warm, args=(session, specs, trigger), daemon=True
            )
            with self._lock:
                self._threads.append(thread)
            thread.start()
        else:
            self._warm(session, specs, trigger)
        return len(specs)

    def wait(self, timeout: float | None = None) -> None:
        """Block until outstanding background prefetches complete."""
        with self._lock:
            pending = list(self._threads)
        for thread in pending:
            thread.join(timeout)
        with self._lock:
            self._threads = [t for t in self._threads if t.is_alive()]

    # ------------------------------------------------------------------ #
    def predict(
        self, session: "DashboardSession", zone_name: str, selected: tuple[Any, ...]
    ) -> list[QuerySpec]:
        """Hypothetical target-zone specs for the likeliest next clicks."""
        dashboard = session.dashboard
        zone = dashboard.zones.get(zone_name)
        actions = dashboard.actions_from(zone_name)
        table = session.zone_tables.get(zone_name)
        if zone is None or not actions or table is None:
            return []
        field_name = actions[0].field
        if field_name not in table.column_names:
            return []
        domain = [
            v
            for v in table.column(field_name).python_values()
            if v is not None and v not in selected
        ]
        candidates = domain[: self.max_candidates]  # zones render ranked
        specs: list[QuerySpec] = []
        for value in candidates:
            hypothetical = dict(session.selections)
            hypothetical[zone_name] = (value,)
            for action in actions:
                for target_name in action.targets:
                    target = dashboard.zones[target_name]
                    if not target.has_query:
                        continue
                    extra = []
                    for onto in dashboard.actions_onto(target_name):
                        chosen = hypothetical.get(onto.source)
                        if chosen:
                            extra.append(CategoricalFilter(onto.field, chosen))
                    specs.append(target.spec(dashboard.datasource, tuple(extra)))
        # Dedupe while keeping prediction order.
        seen: set[str] = set()
        unique: list[QuerySpec] = []
        for s in specs:
            if s.canonical() not in seen:
                seen.add(s.canonical())
                unique.append(s)
        return unique

    def _warm(
        self,
        session: "DashboardSession",
        specs: list[QuerySpec],
        trigger=None,
    ) -> None:
        reuse = frozenset(
            action.field for action in session.dashboard.actions
        )
        # A fresh root in the worker thread (no contextvar leaks in from
        # here), linked to the interaction that predicted these specs.
        with obs.span("prefetch.warm", specs=len(specs)) as warm_span:
            if trigger is not None and trigger.trace_id != warm_span.trace_id:
                # Synchronous warms run inside the trigger's own trace;
                # the cross-trace edge only exists for background warms.
                warm_span.add_link("prefetch.triggered_by", trigger)
            result = session.pipeline.run_batch(specs, reuse_fields=reuse)
        with self._lock:
            self.stats.specs_prefetched += len(result.tables)
            self.stats.batches += 1
