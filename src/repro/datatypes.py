"""Logical type system shared by the TDE, the SQL front end and the caches.

The engine supports a deliberately small set of logical types — the ones the
paper's workloads exercise (section 2: filtering, calculations, aggregation
over relational data):

* ``BOOL``    — three-valued logic with NULL handled via validity masks
* ``INT``     — 64-bit signed integers
* ``FLOAT``   — IEEE double
* ``STR``     — unicode strings, optionally collated (see ``repro.collation``)
* ``DATE``    — days since 1970-01-01, stored as int64
* ``DATETIME``— microseconds since epoch, stored as int64

NULL is represented *outside* the value arrays by per-column validity masks;
the value slot under a NULL is an arbitrary fill value and must never be
read. Helpers in this module define promotion/coercion rules used by the
expression binder and the SQL generator.
"""

from __future__ import annotations

import datetime as _dt
import enum
from typing import Any

import numpy as np

from .errors import TypeMismatchError

_EPOCH_DATE = _dt.date(1970, 1, 1)
_EPOCH_DATETIME = _dt.datetime(1970, 1, 1)


class LogicalType(enum.Enum):
    """Logical column/expression types understood by the engine."""

    BOOL = "bool"
    INT = "int"
    FLOAT = "float"
    STR = "str"
    DATE = "date"
    DATETIME = "datetime"

    # ------------------------------------------------------------------ #
    # Classification helpers
    # ------------------------------------------------------------------ #
    @property
    def is_numeric(self) -> bool:
        return self in (LogicalType.INT, LogicalType.FLOAT)

    @property
    def is_temporal(self) -> bool:
        return self in (LogicalType.DATE, LogicalType.DATETIME)

    @property
    def is_orderable(self) -> bool:
        return True  # every supported type has a total order

    @property
    def is_fixed_width(self) -> bool:
        """Fixed-width types use *array* dictionaries; STR uses *heap* ones."""
        return self is not LogicalType.STR

    def numpy_dtype(self) -> np.dtype:
        """Physical numpy dtype used for plain storage of this type."""
        return _NUMPY_DTYPES[self]

    def fill_value(self) -> Any:
        """Value stored under NULL slots (never observable)."""
        return "" if self is LogicalType.STR else _FILL_VALUES[self]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LogicalType.{self.name}"


_NUMPY_DTYPES = {
    LogicalType.BOOL: np.dtype(np.bool_),
    LogicalType.INT: np.dtype(np.int64),
    LogicalType.FLOAT: np.dtype(np.float64),
    LogicalType.STR: np.dtype(object),
    LogicalType.DATE: np.dtype(np.int64),
    LogicalType.DATETIME: np.dtype(np.int64),
}

_FILL_VALUES = {
    LogicalType.BOOL: False,
    LogicalType.INT: 0,
    LogicalType.FLOAT: 0.0,
    LogicalType.DATE: 0,
    LogicalType.DATETIME: 0,
}

#: Types whose plain representation is an int64 array.
_INT64_BACKED = (LogicalType.INT, LogicalType.DATE, LogicalType.DATETIME)


# ---------------------------------------------------------------------- #
# Promotion / coercion
# ---------------------------------------------------------------------- #
def promote(a: LogicalType, b: LogicalType) -> LogicalType:
    """Return the common type for a binary arithmetic/comparison operation.

    Promotion follows the usual SQL rules restricted to our type set:
    INT + FLOAT -> FLOAT; identical types promote to themselves; DATE and
    DATETIME promote to DATETIME. Anything else is a type error.
    """
    if a == b:
        return a
    pair = {a, b}
    if pair == {LogicalType.INT, LogicalType.FLOAT}:
        return LogicalType.FLOAT
    if pair == {LogicalType.DATE, LogicalType.DATETIME}:
        return LogicalType.DATETIME
    raise TypeMismatchError(f"no common type for {a.name} and {b.name}")


def can_cast(src: LogicalType, dst: LogicalType) -> bool:
    """Whether an explicit CAST from ``src`` to ``dst`` is supported."""
    if src == dst:
        return True
    allowed = {
        LogicalType.INT: {LogicalType.FLOAT, LogicalType.BOOL, LogicalType.STR},
        LogicalType.FLOAT: {LogicalType.INT, LogicalType.STR},
        LogicalType.BOOL: {LogicalType.INT, LogicalType.STR},
        LogicalType.STR: {LogicalType.INT, LogicalType.FLOAT, LogicalType.BOOL},
        LogicalType.DATE: {LogicalType.DATETIME, LogicalType.STR, LogicalType.INT},
        LogicalType.DATETIME: {LogicalType.DATE, LogicalType.STR, LogicalType.INT},
    }
    return dst in allowed[src]


# ---------------------------------------------------------------------- #
# Python <-> engine value conversion
# ---------------------------------------------------------------------- #
def infer_type(value: Any) -> LogicalType:
    """Infer the logical type of a single Python value (for literals)."""
    if isinstance(value, bool):
        return LogicalType.BOOL
    if isinstance(value, (int, np.integer)):
        return LogicalType.INT
    if isinstance(value, (float, np.floating)):
        return LogicalType.FLOAT
    if isinstance(value, str):
        return LogicalType.STR
    if isinstance(value, _dt.datetime):
        return LogicalType.DATETIME
    if isinstance(value, _dt.date):
        return LogicalType.DATE
    raise TypeMismatchError(f"unsupported literal {value!r} of {type(value).__name__}")


def to_storage(value: Any, ltype: LogicalType) -> Any:
    """Convert one Python value to its physical (storage) representation."""
    if value is None:
        return ltype.fill_value()
    if ltype is LogicalType.DATE:
        if isinstance(value, _dt.datetime):
            value = value.date()
        if isinstance(value, _dt.date):
            return (value - _EPOCH_DATE).days
        return int(value)
    if ltype is LogicalType.DATETIME:
        if isinstance(value, _dt.datetime):
            return round((value - _EPOCH_DATETIME).total_seconds() * 1_000_000)
        if isinstance(value, _dt.date):
            return round(
                (_dt.datetime.combine(value, _dt.time()) - _EPOCH_DATETIME).total_seconds()
                * 1_000_000
            )
        return int(value)
    if ltype is LogicalType.BOOL:
        return bool(value)
    if ltype is LogicalType.INT:
        return int(value)
    if ltype is LogicalType.FLOAT:
        return float(value)
    if ltype is LogicalType.STR:
        return str(value)
    raise TypeMismatchError(f"cannot store {value!r} as {ltype.name}")


def from_storage(raw: Any, ltype: LogicalType) -> Any:
    """Convert one physical value back to a friendly Python value."""
    if ltype is LogicalType.DATE:
        return _EPOCH_DATE + _dt.timedelta(days=int(raw))
    if ltype is LogicalType.DATETIME:
        return _EPOCH_DATETIME + _dt.timedelta(microseconds=int(raw))
    if ltype is LogicalType.BOOL:
        return bool(raw)
    if ltype is LogicalType.INT:
        return int(raw)
    if ltype is LogicalType.FLOAT:
        return float(raw)
    return raw


def storage_array(values: list[Any], ltype: LogicalType) -> tuple[np.ndarray, np.ndarray | None]:
    """Build a (values, null_mask) pair from a list of Python values.

    ``null_mask`` is ``None`` when no value is NULL; otherwise a boolean
    array with ``True`` marking NULL slots.
    """
    mask = np.fromiter((v is None for v in values), dtype=np.bool_, count=len(values))
    storage = [to_storage(v, ltype) for v in values]
    if ltype is LogicalType.STR:
        arr = np.empty(len(storage), dtype=object)
        arr[:] = storage
    else:
        arr = np.asarray(storage, dtype=ltype.numpy_dtype())
    return arr, (mask if mask.any() else None)
