"""Expression AST nodes.

All nodes are frozen dataclasses with structural equality and hashing; the
intelligent cache and the common-subexpression-elimination rewrite rely on
both. Types are *inferred*, not stored: :func:`infer_type` walks a tree
against an input schema, which keeps nodes reusable across schemas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from ..datatypes import LogicalType, can_cast, infer_type as infer_literal_type, promote
from ..errors import BindError, TypeMismatchError


class Expr:
    """Base class for scalar expressions."""

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def children(self) -> tuple["Expr", ...]:
        return ()


@dataclass(frozen=True)
class ColumnRef(Expr):
    """Reference to an input column by name."""

    name: str

    def __repr__(self) -> str:
        return f"col({self.name})"


@dataclass(frozen=True)
class Literal(Expr):
    """A constant. ``value is None`` encodes the typed NULL literal."""

    value: Any
    ltype: LogicalType | None = None

    def __post_init__(self) -> None:
        if isinstance(self.value, list):
            object.__setattr__(self, "value", tuple(self.value))
        if (
            self.value is not None
            and self.ltype is None
            and not isinstance(self.value, tuple)
        ):
            object.__setattr__(self, "ltype", infer_literal_type(self.value))

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


@dataclass(frozen=True)
class Call(Expr):
    """A function or operator application.

    Operators are spelled as function names: ``+ - * / % = <> < <= > >=
    and or not in ...`` — see ``repro.expr.functions`` for the registry.
    """

    func: str
    args: tuple[Expr, ...]

    def __init__(self, func: str, args: tuple[Expr, ...] | list[Expr]):
        object.__setattr__(self, "func", func)
        object.__setattr__(self, "args", tuple(args))

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def __repr__(self) -> str:
        return f"{self.func}({', '.join(map(repr, self.args))})"


@dataclass(frozen=True)
class Cast(Expr):
    """Explicit cast to a target logical type."""

    arg: Expr
    to: LogicalType

    def children(self) -> tuple[Expr, ...]:
        return (self.arg,)

    def __repr__(self) -> str:
        return f"cast({self.arg!r} as {self.to.name})"


@dataclass(frozen=True)
class CaseWhen(Expr):
    """``CASE WHEN c1 THEN v1 ... ELSE e END``."""

    branches: tuple[tuple[Expr, Expr], ...]
    otherwise: Expr

    def __init__(self, branches, otherwise: Expr):
        object.__setattr__(self, "branches", tuple((c, v) for c, v in branches))
        object.__setattr__(self, "otherwise", otherwise)

    def children(self) -> tuple[Expr, ...]:
        out: list[Expr] = []
        for cond, val in self.branches:
            out.append(cond)
            out.append(val)
        out.append(self.otherwise)
        return tuple(out)


@dataclass(frozen=True)
class AggExpr:
    """An aggregate application: ``func`` over ``arg`` (None for COUNT(*)).

    Supported: sum, min, max, avg, count, count_distinct. Aggregates skip
    NULL inputs; COUNT(*) counts rows.
    """

    func: str
    arg: Expr | None = None

    SUPPORTED = ("sum", "min", "max", "avg", "count", "count_distinct")

    def __post_init__(self) -> None:
        if self.func not in self.SUPPORTED:
            raise BindError(f"unknown aggregate {self.func!r}")
        if self.func != "count" and self.arg is None:
            raise BindError(f"aggregate {self.func} requires an argument")

    def walk(self) -> Iterator[Expr]:
        if self.arg is not None:
            yield from self.arg.walk()

    def result_type(self, schema: Mapping[str, LogicalType]) -> LogicalType:
        if self.func in ("count", "count_distinct"):
            return LogicalType.INT
        arg_type = infer_type(self.arg, schema)
        if self.func == "avg":
            if not arg_type.is_numeric:
                raise TypeMismatchError(f"avg over {arg_type.name}")
            return LogicalType.FLOAT
        if self.func == "sum":
            if not arg_type.is_numeric:
                raise TypeMismatchError(f"sum over {arg_type.name}")
            return arg_type
        return arg_type  # min/max preserve type

    def __repr__(self) -> str:
        return f"{self.func}({'*' if self.arg is None else self.arg!r})"


# ---------------------------------------------------------------------- #
# Analysis helpers
# ---------------------------------------------------------------------- #
def infer_type(expr: Expr, schema: Mapping[str, LogicalType]) -> LogicalType:
    """Infer the logical type of ``expr`` against ``schema``.

    Raises :class:`BindError` for unresolved columns and
    :class:`TypeMismatchError` for ill-typed applications.
    """
    from .functions import FUNCTIONS  # local import to avoid a cycle

    if isinstance(expr, ColumnRef):
        if expr.name not in schema:
            raise BindError(f"unknown column {expr.name!r}; have {sorted(schema)}")
        return schema[expr.name]
    if isinstance(expr, Literal):
        if expr.ltype is None:
            raise BindError("untyped NULL literal; wrap in Cast")
        return expr.ltype
    if isinstance(expr, Cast):
        src = infer_type(expr.arg, schema)
        if not can_cast(src, expr.to):
            raise TypeMismatchError(f"cannot cast {src.name} to {expr.to.name}")
        return expr.to
    if isinstance(expr, CaseWhen):
        result: LogicalType | None = None
        for cond, value in expr.branches:
            if infer_type(cond, schema) is not LogicalType.BOOL:
                raise TypeMismatchError("CASE condition must be BOOL")
            vt = infer_type(value, schema)
            result = vt if result is None else promote(result, vt)
        return promote(result, infer_type(expr.otherwise, schema))
    if isinstance(expr, Call):
        fdef = FUNCTIONS.get(expr.func)
        if fdef is None:
            raise BindError(f"unknown function {expr.func!r}")
        if expr.func == "in":
            # The second argument is a set literal with no scalar type.
            infer_type(expr.args[0], schema)
            return LogicalType.BOOL
        arg_types = [infer_type(a, schema) for a in expr.args]
        return fdef.type_fn(arg_types)
    raise BindError(f"cannot type {expr!r}")


def columns_used(expr: Expr | AggExpr | None) -> set[str]:
    """The set of input column names referenced anywhere in the tree."""
    if expr is None:
        return set()
    return {node.name for node in expr.walk() if isinstance(node, ColumnRef)}


def substitute(expr: Expr, mapping: Mapping[str, Expr]) -> Expr:
    """Replace column references by expressions (used by push-downs)."""
    if isinstance(expr, ColumnRef):
        return mapping.get(expr.name, expr)
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, Cast):
        return Cast(substitute(expr.arg, mapping), expr.to)
    if isinstance(expr, CaseWhen):
        return CaseWhen(
            tuple((substitute(c, mapping), substitute(v, mapping)) for c, v in expr.branches),
            substitute(expr.otherwise, mapping),
        )
    if isinstance(expr, Call):
        return Call(expr.func, tuple(substitute(a, mapping) for a in expr.args))
    raise BindError(f"cannot substitute into {expr!r}")


def rename_columns(expr: Expr, mapping: Mapping[str, str]) -> Expr:
    """Rename column references (helper over :func:`substitute`)."""
    return substitute(expr, {old: ColumnRef(new) for old, new in mapping.items()})


def conjuncts(predicate: Expr | None) -> list[Expr]:
    """Split a predicate into top-level AND conjuncts."""
    if predicate is None:
        return []
    if isinstance(predicate, Call) and predicate.func == "and":
        out: list[Expr] = []
        for arg in predicate.args:
            out.extend(conjuncts(arg))
        return out
    return [predicate]


def conjoin(predicates: list[Expr]) -> Expr | None:
    """Combine predicates with AND; None for the empty list."""
    if not predicates:
        return None
    result = predicates[0]
    for p in predicates[1:]:
        result = Call("and", (result, p))
    return result
