"""Vectorized expression evaluation over storage tables.

``evaluate`` returns ``(values, null_mask)`` in storage representation
(dates as day counts, datetimes as microseconds). It is used by the TDE's
Select/Project operators, by the simulated SQL servers, and by the
intelligent cache's local post-processing stage.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..datatypes import LogicalType, from_storage, to_storage
from ..errors import BindError, ExecutionError
from .ast import Call, CaseWhen, Cast, ColumnRef, Expr, Literal, infer_type
from .functions import FUNCTIONS

if TYPE_CHECKING:  # pragma: no cover
    from ..tde.storage.table import Table

#: Functions whose temporal argument must be normalized to *days*.
_DAY_FUNCS = {"year", "month", "day", "weekday"}

_MICROS_PER_DAY = 86_400_000_000


def evaluate(expr: Expr, table: "Table") -> tuple[np.ndarray, np.ndarray | None]:
    """Evaluate ``expr`` over every row of ``table``."""
    schema = table.schema()
    return _eval(expr, table, schema)


def evaluate_predicate(expr: Expr, table: "Table") -> np.ndarray:
    """Evaluate a BOOL predicate; NULL results are treated as False."""
    values, mask = evaluate(expr, table)
    keep = values.astype(np.bool_)
    if mask is not None:
        keep = keep & ~mask
    return keep


def _eval(expr: Expr, table: "Table", schema) -> tuple[np.ndarray, np.ndarray | None]:
    n = table.n_rows
    if isinstance(expr, ColumnRef):
        if not table.has_column(expr.name):
            raise BindError(f"unknown column {expr.name!r}; have {table.column_names}")
        col = table.column(expr.name)
        return col.storage_values(), col.null_mask
    if isinstance(expr, Literal):
        if isinstance(expr.value, tuple):
            holder = np.empty(1, dtype=object)
            holder[0] = tuple(to_storage(v, _element_type(expr)) for v in expr.value)
            return holder, None
        if expr.value is None:
            ltype = expr.ltype or LogicalType.INT
            return (
                np.full(n, ltype.fill_value(), dtype=ltype.numpy_dtype()),
                np.ones(n, dtype=np.bool_),
            )
        storage = to_storage(expr.value, expr.ltype)
        if expr.ltype is LogicalType.STR:
            arr = np.empty(n, dtype=object)
            arr[:] = storage
            return arr, None
        return np.full(n, storage, dtype=expr.ltype.numpy_dtype()), None
    if isinstance(expr, Cast):
        return _eval_cast(expr, table, schema)
    if isinstance(expr, CaseWhen):
        return _eval_case(expr, table, schema, n)
    if isinstance(expr, Call):
        return _eval_call(expr, table, schema, n)
    raise ExecutionError(f"cannot evaluate {expr!r}")


def _element_type(lit: Literal) -> LogicalType:
    from ..datatypes import infer_type as infer_literal

    for v in lit.value:
        if v is not None:
            return infer_literal(v)
    return LogicalType.INT


def _eval_call(expr: Call, table, schema, n: int):
    fdef = FUNCTIONS.get(expr.func)
    if fdef is None:
        raise BindError(f"unknown function {expr.func!r}")
    if not (fdef.min_args <= len(expr.args) <= fdef.max_args):
        raise BindError(f"{expr.func} takes {fdef.min_args}..{fdef.max_args} args")
    args = [_eval(a, table, schema) for a in expr.args]
    if expr.func in _DAY_FUNCS:
        arg_type = infer_type(expr.args[0], schema)
        if arg_type is LogicalType.DATETIME:
            values, mask = args[0]
            args[0] = (values // _MICROS_PER_DAY, mask)
    if fdef.mask_aware:
        return fdef.kernel(args, n)
    mask: np.ndarray | None = None
    for _, m in args:
        if m is not None:
            mask = m.copy() if mask is None else (mask | m)
    values = fdef.kernel([v for v, _ in args])
    return values, mask


def _eval_case(expr: CaseWhen, table, schema, n: int):
    result_type = infer_type(expr, schema)
    out = np.full(n, result_type.fill_value(), dtype=result_type.numpy_dtype())
    out_mask = np.zeros(n, dtype=np.bool_)
    decided = np.zeros(n, dtype=np.bool_)
    for cond, value in expr.branches:
        cv, cm = _eval(cond, table, schema)
        taken = cv.astype(np.bool_)
        if cm is not None:
            taken = taken & ~cm
        taken = taken & ~decided
        if taken.any():
            vv, vm = _eval(value, table, schema)
            out[taken] = vv[taken]
            if vm is not None:
                out_mask[taken] = vm[taken]
        decided |= taken
    rest = ~decided
    if rest.any():
        ev, em = _eval(expr.otherwise, table, schema)
        out[rest] = ev[rest]
        if em is not None:
            out_mask[rest] = em[rest]
    return out, (out_mask if out_mask.any() else None)


def _eval_cast(expr: Cast, table, schema):
    src_type = infer_type(expr.arg, schema)
    values, mask = _eval(expr.arg, table, schema)
    dst = expr.to
    if src_type == dst:
        return values, mask
    if dst is LogicalType.STR:
        out = np.empty(len(values), dtype=object)
        for i, v in enumerate(values):
            out[i] = str(from_storage(v, src_type))
        return out, mask
    if src_type is LogicalType.STR:
        return _cast_from_str(values, mask, dst)
    if src_type is LogicalType.DATE and dst is LogicalType.DATETIME:
        return values * _MICROS_PER_DAY, mask
    if src_type is LogicalType.DATETIME and dst is LogicalType.DATE:
        return values // _MICROS_PER_DAY, mask
    if dst is LogicalType.BOOL:
        return values != 0, mask
    if dst is LogicalType.INT:
        return values.astype(np.int64), mask
    if dst is LogicalType.FLOAT:
        return values.astype(np.float64), mask
    raise ExecutionError(f"unsupported cast {src_type.name} -> {dst.name}")


def _cast_from_str(values: np.ndarray, mask: np.ndarray | None, dst: LogicalType):
    n = len(values)
    out_mask = mask.copy() if mask is not None else np.zeros(n, dtype=np.bool_)
    out = np.full(n, dst.fill_value(), dtype=dst.numpy_dtype())
    for i, v in enumerate(values):
        if out_mask[i]:
            continue
        try:
            if dst is LogicalType.INT:
                out[i] = int(v)
            elif dst is LogicalType.FLOAT:
                out[i] = float(v)
            elif dst is LogicalType.BOOL:
                out[i] = v.strip().lower() in ("true", "1", "yes", "t")
            else:
                raise ValueError(dst)
        except (ValueError, TypeError):
            out_mask[i] = True  # unparseable strings become NULL
    return out, (out_mask if out_mask.any() else None)
