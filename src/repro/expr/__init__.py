"""Shared scalar/aggregate expression model.

Expressions are immutable, hashable trees used across the whole stack: the
TQL front end builds them, the TDE evaluates them vectorized, the query
compiler rewrites them, the SQL generator prints them in backend dialects,
and the intelligent cache compares and canonicalizes them for subsumption
proofs (paper 3.2).
"""

from .ast import (
    AggExpr,
    Call,
    CaseWhen,
    Cast,
    ColumnRef,
    Expr,
    Literal,
    columns_used,
    infer_type,
    substitute,
)
from .functions import FUNCTIONS, FunctionDef, function_cost
from .eval import evaluate, evaluate_predicate
from .sexpr import parse_sexpr, to_sexpr

__all__ = [
    "Expr",
    "ColumnRef",
    "Literal",
    "Call",
    "Cast",
    "CaseWhen",
    "AggExpr",
    "infer_type",
    "columns_used",
    "substitute",
    "FUNCTIONS",
    "FunctionDef",
    "function_cost",
    "evaluate",
    "evaluate_predicate",
    "parse_sexpr",
    "to_sexpr",
]
