"""S-expression text form for expressions.

TQL (the TDE's logical-tree language, paper 4.1.2) embeds scalar
expressions in this form, and the cache layer uses :func:`to_sexpr` as a
canonical, deterministic rendering when building cache keys. The grammar:

    expr    := atom | "(" symbol expr* ")"
    atom    := number | string | "true" | "false" | "null" | identifier
    string  := '"' (escaped chars) '"'

Identifiers in operand position are column references. Special heads:
``col`` (explicit column ref), ``list`` (tuple literal for IN), ``date`` /
``datetime`` (temporal literals), ``float`` (non-finite float literals,
whose repr would otherwise read back as identifiers), ``cast``,
``case``/``when``/``else``, and the aggregate names when aggregates are
allowed.
"""

from __future__ import annotations

import datetime as _dt
import math as _math
import re
from typing import Any

from ..datatypes import LogicalType
from ..errors import TqlParseError
from .ast import AggExpr, Call, CaseWhen, Cast, ColumnRef, Expr, Literal

_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.]*$")
_TOKEN_RE = re.compile(
    r"""\s*(?:
        (?P<lparen>\() |
        (?P<rparen>\)) |
        (?P<string>"(?:[^"\\]|\\.)*") |
        (?P<number>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?) |
        (?P<symbol>[^\s()"]+)
    )""",
    re.VERBOSE,
)

_AGG_NAMES = set(AggExpr.SUPPORTED)
_TYPE_NAMES = {t.value: t for t in LogicalType}


# ---------------------------------------------------------------------- #
# Printing
# ---------------------------------------------------------------------- #
def to_sexpr(node: Expr | AggExpr) -> str:
    """Render an expression tree to canonical s-expression text."""
    if isinstance(node, AggExpr):
        if node.arg is None:
            return f"({node.func})"
        return f"({node.func} {to_sexpr(node.arg)})"
    if isinstance(node, ColumnRef):
        if _IDENT_RE.match(node.name) and node.name not in ("true", "false", "null"):
            return node.name
        return f'(col "{_escape(node.name)}")'
    if isinstance(node, Literal):
        return _literal_text(node)
    if isinstance(node, Cast):
        return f"(cast {to_sexpr(node.arg)} {node.to.value})"
    if isinstance(node, CaseWhen):
        parts = ["(case"]
        for cond, value in node.branches:
            parts.append(f"(when {to_sexpr(cond)} {to_sexpr(value)})")
        parts.append(f"(else {to_sexpr(node.otherwise)})")
        return " ".join(parts) + ")"
    if isinstance(node, Call):
        inner = " ".join(to_sexpr(a) for a in node.args)
        return f"({node.func} {inner})" if inner else f"({node.func})"
    raise TqlParseError(f"cannot print {node!r}")


def _literal_text(lit: Literal) -> str:
    v = lit.value
    if v is None:
        return "null"
    if isinstance(v, tuple):
        return "(list " + " ".join(_scalar_text(x) for x in v) + ")" if v else "(list)"
    return _scalar_text(v, lit.ltype)


def _scalar_text(v: Any, ltype: LogicalType | None = None) -> str:
    if isinstance(v, bool):
        return "true" if v else "false"
    if isinstance(v, _dt.datetime):
        return f'(datetime "{v.isoformat()}")'
    if isinstance(v, _dt.date):
        return f'(date "{v.isoformat()}")'
    if isinstance(v, (int,)):
        return str(v)
    if isinstance(v, float):
        # Non-finite floats have no numeric token form: repr() gives
        # "inf"/"nan", which would read back as column references. Use an
        # explicit (float "...") form instead.
        if not _math.isfinite(v):
            return f'(float "{v!r}")'
        return repr(v)
    if isinstance(v, str):
        return f'"{_escape(v)}"'
    raise TqlParseError(f"cannot print literal {v!r}")


def _escape(s: str) -> str:
    return s.replace("\\", "\\\\").replace('"', '\\"')


def _unescape(s: str) -> str:
    # Exact inverse of _escape: only backslash and quote are ever escaped.
    # (A unicode_escape round trip would re-encode non-ASCII text through
    # latin-1 and corrupt e.g. '\\\x80'.)
    return _UNESCAPE_RE.sub(r"\1", s) if "\\" in s else s


_UNESCAPE_RE = re.compile(r"\\(.)", re.DOTALL)


# ---------------------------------------------------------------------- #
# Tokenizing / reading
# ---------------------------------------------------------------------- #
def tokenize(text: str) -> list[tuple[str, str, int]]:
    """Tokenize s-expression text into (kind, value, position) triples."""
    tokens = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m:
            if text[pos:].strip() == "":
                break
            raise TqlParseError(f"bad character {text[pos]!r}", pos)
        pos = m.end()
        kind = m.lastgroup
        tokens.append((kind, m.group(kind), m.start(kind)))
    return tokens


def read_forms(text: str) -> list:
    """Parse text into nested Python lists/atoms (the raw reader)."""
    tokens = tokenize(text)
    forms, index = _read_many(tokens, 0)
    if index != len(tokens):
        raise TqlParseError("trailing tokens after expression", tokens[index][2])
    return forms


def _read_many(tokens, index):
    forms = []
    while index < len(tokens) and tokens[index][0] != "rparen":
        form, index = _read_one(tokens, index)
        forms.append(form)
    return forms, index


def _read_one(tokens, index):
    if index >= len(tokens):
        raise TqlParseError("unexpected end of input")
    kind, value, pos = tokens[index]
    if kind == "lparen":
        inner, index = _read_many(tokens, index + 1)
        if index >= len(tokens) or tokens[index][0] != "rparen":
            raise TqlParseError("missing )", pos)
        return inner, index + 1
    if kind == "rparen":
        raise TqlParseError("unexpected )", pos)
    if kind == "string":
        return _String(_unescape(value[1:-1])), index + 1
    if kind == "number":
        return (float(value) if any(c in value for c in ".eE") else int(value)), index + 1
    return _Symbol(value), index + 1


class _Symbol(str):
    """A bare identifier token."""


class _String(str):
    """A quoted string token (distinct from identifiers)."""


# ---------------------------------------------------------------------- #
# Building expression trees from raw forms
# ---------------------------------------------------------------------- #
def parse_sexpr(text: str, *, allow_agg: bool = False) -> Expr | AggExpr:
    """Parse a single expression from text."""
    forms = read_forms(text)
    if len(forms) != 1:
        raise TqlParseError(f"expected one expression, found {len(forms)}")
    return build_expr(forms[0], allow_agg=allow_agg)


def build_expr(form, *, allow_agg: bool = False) -> Expr | AggExpr:
    """Convert a raw reader form to an expression tree."""
    if isinstance(form, _String):
        return Literal(str(form))
    if isinstance(form, _Symbol):
        name = str(form)
        if name == "true":
            return Literal(True)
        if name == "false":
            return Literal(False)
        if name == "null":
            return Literal(None, LogicalType.INT)
        return ColumnRef(name)
    if isinstance(form, (int, float)):
        return Literal(form)
    if not isinstance(form, list) or not form:
        raise TqlParseError(f"cannot build expression from {form!r}")
    head = form[0]
    if not isinstance(head, _Symbol):
        raise TqlParseError(f"expression head must be a symbol, got {head!r}")
    op = str(head)
    rest = form[1:]
    if op in _AGG_NAMES:
        if not allow_agg:
            raise TqlParseError(f"aggregate {op} not allowed here")
        if op == "count" and not rest:
            return AggExpr("count", None)
        if len(rest) != 1:
            raise TqlParseError(f"aggregate {op} takes one argument")
        return AggExpr(op, build_expr(rest[0]))
    if op == "col":
        if len(rest) != 1 or not isinstance(rest[0], _String):
            raise TqlParseError("(col ...) takes one quoted name")
        return ColumnRef(str(rest[0]))
    if op == "list":
        return Literal(tuple(_literal_value(x) for x in rest))
    if op == "date":
        return Literal(_dt.date.fromisoformat(str(rest[0])))
    if op == "datetime":
        return Literal(_dt.datetime.fromisoformat(str(rest[0])))
    if op == "float":
        if len(rest) != 1 or not isinstance(rest[0], _String):
            raise TqlParseError('(float "...") takes one quoted value')
        return Literal(float(str(rest[0])))
    if op == "cast":
        if len(rest) != 2 or str(rest[1]) not in _TYPE_NAMES:
            raise TqlParseError("(cast expr type) with a known type name")
        return Cast(build_expr(rest[0]), _TYPE_NAMES[str(rest[1])])
    if op == "case":
        branches = []
        otherwise: Expr = Literal(None, LogicalType.INT)
        for clause in rest:
            if not isinstance(clause, list) or not clause:
                raise TqlParseError("case clauses must be (when ...) or (else ...)")
            ckind = str(clause[0])
            if ckind == "when":
                branches.append((build_expr(clause[1]), build_expr(clause[2])))
            elif ckind == "else":
                otherwise = build_expr(clause[1])
            else:
                raise TqlParseError(f"unknown case clause {ckind}")
        return CaseWhen(tuple(branches), otherwise)
    return Call(op, tuple(build_expr(a) for a in rest))


def _literal_value(form) -> Any:
    if isinstance(form, _String):
        return str(form)
    if isinstance(form, (int, float)):
        return form
    if isinstance(form, _Symbol):
        name = str(form)
        if name == "true":
            return True
        if name == "false":
            return False
        if name == "null":
            return None
    if isinstance(form, list) and form and str(form[0]) == "date":
        return _dt.date.fromisoformat(str(form[1]))
    if isinstance(form, list) and form and str(form[0]) == "datetime":
        return _dt.datetime.fromisoformat(str(form[1]))
    if isinstance(form, list) and form and str(form[0]) == "float":
        return float(str(form[1]))
    raise TqlParseError(f"bad literal in list: {form!r}")
