"""Scalar function registry: typing rules, vectorized kernels, cost profile.

The cost profile mirrors the paper's observation (4.2.2) that "certain
operations, such as string manipulations, are much more expensive than
others, even though the engine employs vectorization" — the TDE's parallel
plan generator consults these constants when deciding the degree of
parallelism, and the virtual-time simulator charges them per row.

Kernels come in two flavours:

* *null-propagating* (the default): the wrapper in ``repro.expr.eval``
  computes the OR of input masks; the kernel sees raw value arrays.
* *mask-aware*: the kernel receives ``(values, mask)`` pairs and returns
  ``(values, mask)`` — needed for three-valued AND/OR, IS NULL, IFNULL,
  IN, and division (which yields NULL on a zero divisor, matching the
  product's forgiving semantics for ad-hoc calculations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..datatypes import LogicalType
from ..errors import TypeMismatchError

Mask = "np.ndarray | None"


@dataclass(frozen=True)
class FunctionDef:
    """One registered scalar function."""

    name: str
    min_args: int
    max_args: int
    type_fn: Callable[[list[LogicalType]], LogicalType]
    kernel: Callable
    cost: float = 1.0
    mask_aware: bool = False


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise TypeMismatchError(msg)


# ---------------------------------------------------------------------- #
# Type rules
# ---------------------------------------------------------------------- #
def _t_numeric_binary(ts: list[LogicalType]) -> LogicalType:
    from ..datatypes import promote

    _require(all(t.is_numeric for t in ts), f"numeric op over {[t.name for t in ts]}")
    return promote(ts[0], ts[1])


def _t_float_binary(ts: list[LogicalType]) -> LogicalType:
    _require(all(t.is_numeric for t in ts), f"numeric op over {[t.name for t in ts]}")
    return LogicalType.FLOAT


def _t_comparison(ts: list[LogicalType]) -> LogicalType:
    from ..datatypes import promote

    if ts[0] != ts[1]:
        promote(ts[0], ts[1])  # raises if incomparable
    return LogicalType.BOOL


def _t_bool_args(ts: list[LogicalType]) -> LogicalType:
    _require(all(t is LogicalType.BOOL for t in ts), "logical op over non-BOOL")
    return LogicalType.BOOL


def _t_numeric_unary(ts: list[LogicalType]) -> LogicalType:
    _require(ts[0].is_numeric, f"numeric function over {ts[0].name}")
    return ts[0]


def _t_float_unary(ts: list[LogicalType]) -> LogicalType:
    _require(ts[0].is_numeric, f"numeric function over {ts[0].name}")
    return LogicalType.FLOAT


def _t_str_unary(ts: list[LogicalType]) -> LogicalType:
    _require(ts[0] is LogicalType.STR, f"string function over {ts[0].name}")
    return LogicalType.STR


def _t_str_pred(ts: list[LogicalType]) -> LogicalType:
    _require(all(t is LogicalType.STR for t in ts), "string predicate over non-STR")
    return LogicalType.BOOL


def _t_temporal_part(ts: list[LogicalType]) -> LogicalType:
    _require(ts[0].is_temporal, f"date part of {ts[0].name}")
    return LogicalType.INT


# ---------------------------------------------------------------------- #
# Kernel helpers
# ---------------------------------------------------------------------- #
def _str_map(fn: Callable[[str], object], values: np.ndarray, dtype=object) -> np.ndarray:
    out = np.empty(len(values), dtype=dtype)
    for i, v in enumerate(values):
        out[i] = fn(v)
    return out


def _days_from_temporal(values: np.ndarray, ltype_hint: str) -> np.ndarray:
    # DATETIME stores microseconds; DATE stores days. The kernel cannot see
    # the logical type, so temporal kernels receive pre-normalized days via
    # the evaluator (see eval.py, which passes datetimes through // 86400e6).
    return values


def _ymd(days: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    d64 = days.astype("datetime64[D]")
    months = d64.astype("datetime64[M]")
    years = d64.astype("datetime64[Y]")
    year = years.astype(np.int64) + 1970
    month = months.astype(np.int64) % 12 + 1
    day = (d64 - months).astype(np.int64) + 1
    return year, month, day


# ---------------------------------------------------------------------- #
# Mask-aware kernels
# ---------------------------------------------------------------------- #
def _k_and(args, n):
    (av, am), (bv, bm) = args
    av = av.astype(np.bool_)
    bv = bv.astype(np.bool_)
    out = av & bv
    if am is None and bm is None:
        return out, None
    am_ = am if am is not None else np.zeros(n, dtype=np.bool_)
    bm_ = bm if bm is not None else np.zeros(n, dtype=np.bool_)
    # Kleene: NULL AND FALSE = FALSE; NULL AND TRUE = NULL.
    known_false = (~am_ & ~av) | (~bm_ & ~bv)
    mask = (am_ | bm_) & ~known_false
    return out & ~mask, (mask if mask.any() else None)


def _k_or(args, n):
    (av, am), (bv, bm) = args
    av = av.astype(np.bool_)
    bv = bv.astype(np.bool_)
    out = av | bv
    if am is None and bm is None:
        return out, None
    am_ = am if am is not None else np.zeros(n, dtype=np.bool_)
    bm_ = bm if bm is not None else np.zeros(n, dtype=np.bool_)
    known_true = (~am_ & av) | (~bm_ & bv)
    mask = (am_ | bm_) & ~known_true
    return out | (~am_ & av) | (~bm_ & bv), (mask if mask.any() else None)


def _k_isnull(args, n):
    (_, mask) = args[0]
    out = mask.copy() if mask is not None else np.zeros(n, dtype=np.bool_)
    return out, None


def _k_ifnull(args, n):
    (av, am), (bv, bm) = args
    if am is None:
        return av, None
    out = np.where(am, bv, av)
    if av.dtype == object:
        out = out.astype(object)
    mask = (am & bm) if bm is not None else None
    return out, (mask if mask is not None and mask.any() else None)


def _k_in(args, n):
    (xv, xm), (setv, _) = args
    # The second argument is a tuple literal broadcast as a 0-arg object.
    values = setv[0] if len(setv) else ()
    if xv.dtype == object:
        members = set(values)
        out = np.fromiter((v in members for v in xv), dtype=np.bool_, count=n)
    else:
        out = np.isin(xv, np.asarray(list(values))) if len(values) else np.zeros(n, np.bool_)
    return out, (xm.copy() if xm is not None else None)


def _k_div(args, n):
    (av, am), (bv, bm) = args
    a = av.astype(np.float64)
    b = bv.astype(np.float64)
    zero = b == 0
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(zero, 0.0, a / np.where(zero, 1.0, b))
    mask = zero.copy()
    if am is not None:
        mask |= am
    if bm is not None:
        mask |= bm
    return out, (mask if mask.any() else None)


def _k_mod(args, n):
    (av, am), (bv, bm) = args
    zero = bv == 0
    safe = np.where(zero, 1, bv)
    out = np.mod(av, safe)
    mask = zero.copy()
    if am is not None:
        mask |= am
    if bm is not None:
        mask |= bm
    return out, (mask if mask.any() else None)


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #
FUNCTIONS: dict[str, FunctionDef] = {}


def _register(
    name: str,
    min_args: int,
    max_args: int,
    type_fn,
    kernel,
    *,
    cost: float = 1.0,
    mask_aware: bool = False,
) -> None:
    FUNCTIONS[name] = FunctionDef(name, min_args, max_args, type_fn, kernel, cost, mask_aware)


_register("+", 2, 2, _t_numeric_binary, lambda a: a[0] + a[1])
_register("-", 2, 2, _t_numeric_binary, lambda a: a[0] - a[1])
_register("*", 2, 2, _t_numeric_binary, lambda a: a[0] * a[1])
_register("/", 2, 2, _t_float_binary, _k_div, mask_aware=True)
_register("%", 2, 2, _t_numeric_binary, _k_mod, mask_aware=True)
_register("neg", 1, 1, _t_numeric_unary, lambda a: -a[0])

_register("=", 2, 2, _t_comparison, lambda a: np.asarray(a[0] == a[1], dtype=np.bool_))
_register("<>", 2, 2, _t_comparison, lambda a: np.asarray(a[0] != a[1], dtype=np.bool_))
_register("<", 2, 2, _t_comparison, lambda a: np.asarray(a[0] < a[1], dtype=np.bool_))
_register("<=", 2, 2, _t_comparison, lambda a: np.asarray(a[0] <= a[1], dtype=np.bool_))
_register(">", 2, 2, _t_comparison, lambda a: np.asarray(a[0] > a[1], dtype=np.bool_))
_register(">=", 2, 2, _t_comparison, lambda a: np.asarray(a[0] >= a[1], dtype=np.bool_))

_register("and", 2, 2, _t_bool_args, _k_and, mask_aware=True)
_register("or", 2, 2, _t_bool_args, _k_or, mask_aware=True)
_register("not", 1, 1, _t_bool_args, lambda a: ~a[0].astype(np.bool_))

def _t_ifnull(ts: list[LogicalType]) -> LogicalType:
    _require(ts[0] == ts[1], f"ifnull arguments differ: {[t.name for t in ts]}")
    return ts[0]


_register("isnull", 1, 1, lambda ts: LogicalType.BOOL, _k_isnull, mask_aware=True)
_register("ifnull", 2, 2, _t_ifnull, _k_ifnull, mask_aware=True)
_register("in", 2, 2, lambda ts: LogicalType.BOOL, _k_in, cost=1.5, mask_aware=True)

_register("abs", 1, 1, _t_numeric_unary, lambda a: np.abs(a[0]))
_register("floor", 1, 1, _t_numeric_unary, lambda a: np.floor(a[0]).astype(a[0].dtype), cost=1.5)
_register("ceil", 1, 1, _t_numeric_unary, lambda a: np.ceil(a[0]).astype(a[0].dtype), cost=1.5)
_register("round", 1, 2, _t_float_unary, lambda a: np.round(a[0].astype(np.float64), int(a[1][0]) if len(a) > 1 else 0), cost=1.5)
_register("sqrt", 1, 1, _t_float_unary, lambda a: np.sqrt(np.abs(a[0].astype(np.float64))), cost=4.0)
_register("ln", 1, 1, _t_float_unary, lambda a: np.log(np.maximum(a[0].astype(np.float64), 1e-300)), cost=4.0)
_register("exp", 1, 1, _t_float_unary, lambda a: np.exp(a[0].astype(np.float64)), cost=4.0)
_register("pow", 2, 2, _t_float_binary, lambda a: np.power(a[0].astype(np.float64), a[1].astype(np.float64)), cost=4.0)

_register("upper", 1, 1, _t_str_unary, lambda a: _str_map(str.upper, a[0]), cost=8.0)
_register("lower", 1, 1, _t_str_unary, lambda a: _str_map(str.lower, a[0]), cost=8.0)
_register("trim", 1, 1, _t_str_unary, lambda a: _str_map(str.strip, a[0]), cost=8.0)
_register(
    "len",
    1,
    1,
    lambda ts: (_require(ts[0] is LogicalType.STR, "len of non-STR"), LogicalType.INT)[1],
    lambda a: _str_map(len, a[0], dtype=np.int64),
    cost=6.0,
)
_register(
    "substr",
    3,
    3,
    lambda ts: _t_str_unary(ts[:1]),
    lambda a: _substr_kernel(a),
    cost=8.0,
)
_register(
    "concat",
    2,
    8,
    lambda ts: (_require(all(t is LogicalType.STR for t in ts), "concat of non-STR"), LogicalType.STR)[1],
    lambda a: _concat_kernel(a),
    cost=10.0,
)
_register("contains", 2, 2, _t_str_pred, lambda a: np.fromiter((y in x for x, y in zip(a[0], a[1])), np.bool_, len(a[0])), cost=8.0)
_register("startswith", 2, 2, _t_str_pred, lambda a: np.fromiter((x.startswith(y) for x, y in zip(a[0], a[1])), np.bool_, len(a[0])), cost=8.0)
_register("endswith", 2, 2, _t_str_pred, lambda a: np.fromiter((x.endswith(y) for x, y in zip(a[0], a[1])), np.bool_, len(a[0])), cost=8.0)

_register("year", 1, 1, _t_temporal_part, lambda a: _ymd(a[0])[0], cost=2.0)
_register("month", 1, 1, _t_temporal_part, lambda a: _ymd(a[0])[1], cost=2.0)
_register("day", 1, 1, _t_temporal_part, lambda a: _ymd(a[0])[2], cost=2.0)
_register("weekday", 1, 1, _t_temporal_part, lambda a: (a[0] + 3) % 7, cost=2.0)
_register(
    "hour",
    1,
    1,
    lambda ts: (_require(ts[0] is LogicalType.DATETIME, "hour of non-DATETIME"), LogicalType.INT)[1],
    lambda a: (a[0] // 3_600_000_000) % 24,
    cost=2.0,
)


def _substr_kernel(a):
    values, starts, lengths = a[0], a[1], a[2]
    out = np.empty(len(values), dtype=object)
    for i, v in enumerate(values):
        s = int(starts[i]) - 1  # 1-based, SQL style
        out[i] = v[s : s + int(lengths[i])]
    return out


def _concat_kernel(a):
    out = np.empty(len(a[0]), dtype=object)
    for i in range(len(a[0])):
        out[i] = "".join(str(part[i]) for part in a)
    return out


def function_cost(name: str) -> float:
    """Per-row cost weight of a function (1.0 = one arithmetic op)."""
    fdef = FUNCTIONS.get(name)
    return fdef.cost if fdef is not None else 1.0
