"""Volcano-style vectorized execution engine (paper 4.1.3, 4.2).

Physical operators pull batches (small Tables) from their children.
Operators are *streaming* (Filter, Project, Limit, the probe side of
HashJoin) or *stop-and-go* (Sort, TopN, HashAggregate, the build side of
HashJoin). Parallelism uses the Exchange / SharedTable / FractionTable
trio from paper 4.2.1 (``exchange.py``).
"""

from .physical import (
    ExecContext,
    PhysNode,
    PScan,
    PIndexedRleScan,
    PFilter,
    PProject,
    PHashJoin,
    PHashAggregate,
    PStreamAggregate,
    PSort,
    PTopN,
    PLimit,
    PSingleRow,
    execute_to_table,
)
from .exchange import PExchange, PMergeSorted, SharedBuild, FractionTable

__all__ = [
    "ExecContext",
    "PhysNode",
    "PScan",
    "PIndexedRleScan",
    "PFilter",
    "PProject",
    "PHashJoin",
    "PHashAggregate",
    "PStreamAggregate",
    "PSort",
    "PTopN",
    "PLimit",
    "PSingleRow",
    "PExchange",
    "PMergeSorted",
    "SharedBuild",
    "FractionTable",
    "execute_to_table",
]
