"""Vectorized kernels shared by aggregation and join operators.

The central primitive is *factorization*: mapping rows to dense group ids
over one or more key columns, NULL keys getting their own group. Both the
hash aggregate and the hash join are built on it, so collation-aware string
grouping (via dictionary codes ordered by collation) comes for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ...datatypes import LogicalType
from ...errors import ExecutionError
from ...expr.ast import Call, CaseWhen, Expr, columns_used
from ...expr.eval import evaluate_predicate
from ..storage.column import Column
from ..storage.table import Table
from ..storage.vectors import PlainVector, RleVector


# ---------------------------------------------------------------------- #
# Fill values
# ---------------------------------------------------------------------- #
def fill_array(ltype: LogicalType, n: int) -> np.ndarray:
    """Unobservable fill slots for NULL rows.

    Every operator that pads NULL rows (left-join misses, empty-input
    aggregates, min/max over all-NULL groups) must produce *this* fill so
    fused and unfused plans stay byte-identical. STR builds an
    object-dtype array of ``""`` by hand — ``np.full`` would intern a
    fixed-width str dtype and diverge from the object columns the rest of
    the engine carries.
    """
    if ltype is LogicalType.STR:
        arr = np.empty(n, dtype=object)
        arr[:] = ""
        return arr
    return np.full(n, ltype.fill_value(), dtype=ltype.numpy_dtype())


# ---------------------------------------------------------------------- #
# Factorization
# ---------------------------------------------------------------------- #
def _column_codes(values: np.ndarray, mask: np.ndarray | None) -> tuple[np.ndarray, int]:
    """Dense codes for one key column; NULL becomes the highest code."""
    if values.dtype == object:
        uniq, codes = np.unique(values.astype("U"), return_inverse=True)
        codes = codes.astype(np.int64)
        card = len(uniq)
    else:
        uniq, codes = np.unique(values, return_inverse=True)
        codes = codes.astype(np.int64)
        card = len(uniq)
    if mask is not None and mask.any():
        codes = codes.copy()
        codes[mask] = card
        card += 1
    return codes, card


def factorize_table(table: Table, keys: list[str]) -> tuple[np.ndarray, int, np.ndarray]:
    """Assign each row a dense group id over ``keys``.

    Returns ``(gids, n_groups, representatives)`` where ``representatives``
    holds, per group, the index of its first occurrence in row order —
    used to gather the output key values.
    """
    pairs = []
    for key in keys:
        col = table.column(key)
        if col.is_dictionary_encoded:
            # Dictionary codes already identify values up to collation.
            raw = col.physical.materialize().astype(np.int64)
            card = len(col.dictionary)
            if col.null_mask is not None and col.null_mask.any():
                raw = raw.copy()
                raw[col.null_mask] = card
                card += 1
            pairs.append((raw, card))
        else:
            pairs.append(_column_codes(col.storage_values(), col.null_mask))
    return combine_codes(pairs, table.n_rows)


def combine_codes(pairs: list[tuple[np.ndarray, int]], n_rows: int):
    """Collapse multiple per-column code arrays into dense group ids."""
    if not pairs:
        gids = np.zeros(n_rows, dtype=np.int64)
        reps = np.zeros(1, dtype=np.int64) if n_rows else np.zeros(0, dtype=np.int64)
        return gids, (1 if n_rows else 0), reps
    combined = pairs[0][0].astype(np.int64)
    for codes, card in pairs[1:]:
        combined = combined * card + codes
    uniq, reps, gids = np.unique(combined, return_index=True, return_inverse=True)
    return gids.astype(np.int64), len(uniq), reps.astype(np.int64)


def key_arrays(table: Table, keys: list[str]) -> list[tuple[np.ndarray, np.ndarray | None]]:
    """Raw (values, mask) pairs for join-key comparison across tables."""
    out = []
    for key in keys:
        col = table.column(key)
        out.append((col.storage_values(), col.null_mask))
    return out


# ---------------------------------------------------------------------- #
# Aggregation
# ---------------------------------------------------------------------- #
@dataclass
class AggSpec:
    """A planned aggregate: function + pre-evaluated argument column name.

    The physical planner projects aggregate arguments into columns before
    aggregation, so kernels only see column names.
    """

    name: str
    func: str  # sum|min|max|avg|count|count_distinct|count_star
    arg: str | None
    result_type: LogicalType


def aggregate_groups(
    table: Table, gids: np.ndarray, n_groups: int, specs: list[AggSpec]
) -> dict[str, Column]:
    """Compute aggregate output columns for factorized input rows."""
    out: dict[str, Column] = {}
    for spec in specs:
        out[spec.name] = _aggregate_one(table, gids, n_groups, spec)
    return out


def _aggregate_one(table: Table, gids: np.ndarray, k: int, spec: AggSpec) -> Column:
    if spec.func == "count_star":
        counts = np.bincount(gids, minlength=k).astype(np.int64)
        return Column(LogicalType.INT, PlainVector(counts))
    col = table.column(spec.arg)
    values = col.storage_values()
    mask = col.null_mask
    valid = np.ones(len(values), dtype=np.bool_) if mask is None else ~mask
    vg = gids[valid]
    vv = values[valid]
    nonnull = np.bincount(vg, minlength=k).astype(np.int64)
    if spec.func == "count":
        return Column(LogicalType.INT, PlainVector(nonnull))
    if spec.func == "count_distinct":
        if vv.dtype == object:
            pair_codes, _ = _column_codes(vv, None)
        else:
            _, pair_codes = np.unique(vv, return_inverse=True)
        combined = vg * (int(pair_codes.max()) + 1 if len(pair_codes) else 1) + pair_codes
        uniq_pairs = np.unique(combined)
        distinct_gids = uniq_pairs // (int(pair_codes.max()) + 1 if len(pair_codes) else 1)
        counts = np.bincount(distinct_gids.astype(np.int64), minlength=k).astype(np.int64)
        return Column(LogicalType.INT, PlainVector(counts))
    null_groups = nonnull == 0
    group_mask = null_groups if null_groups.any() else None
    if spec.func == "sum":
        if spec.result_type is LogicalType.INT:
            sums = np.zeros(k, dtype=np.int64)
            np.add.at(sums, vg, vv.astype(np.int64))
        else:
            sums = np.bincount(vg, weights=vv.astype(np.float64), minlength=k)
        return Column(spec.result_type, PlainVector(sums.astype(spec.result_type.numpy_dtype())), null_mask=group_mask)
    if spec.func == "avg":
        sums = np.bincount(vg, weights=vv.astype(np.float64), minlength=k)
        with np.errstate(invalid="ignore", divide="ignore"):
            avgs = np.where(nonnull > 0, sums / np.maximum(nonnull, 1), 0.0)
        return Column(LogicalType.FLOAT, PlainVector(avgs), null_mask=group_mask)
    if spec.func in ("min", "max"):
        return _minmax(vg, vv, k, spec, group_mask, col)
    raise ExecutionError(f"unknown aggregate {spec.func}")


def _minmax(vg, vv, k, spec: AggSpec, group_mask, col: Column) -> Column:
    if vv.dtype == object:
        fill: Any = None
        out = np.empty(k, dtype=object)
        out[:] = fill
        if spec.func == "min":
            for g, v in zip(vg, vv):
                cur = out[g]
                if cur is None or v < cur:
                    out[g] = v
        else:
            for g, v in zip(vg, vv):
                cur = out[g]
                if cur is None or v > cur:
                    out[g] = v
        str_fill = fill_array(spec.result_type, 1)[0]
        for i in range(k):
            if out[i] is None:
                out[i] = str_fill
        return Column(spec.result_type, PlainVector(out), null_mask=group_mask, collation=col.collation)
    if vv.dtype == np.bool_:
        vv = vv.astype(np.int64)
    if spec.func == "min":
        init = np.iinfo(np.int64).max if vv.dtype.kind == "i" else np.inf
        out = np.full(k, init, dtype=vv.dtype)
        np.minimum.at(out, vg, vv)
    else:
        init = np.iinfo(np.int64).min if vv.dtype.kind == "i" else -np.inf
        out = np.full(k, init, dtype=vv.dtype)
        np.maximum.at(out, vg, vv)
    if group_mask is not None:
        out[group_mask] = 0
    if spec.result_type is LogicalType.BOOL:
        out = out.astype(np.bool_)
    return Column(spec.result_type, PlainVector(out.astype(spec.result_type.numpy_dtype(), copy=False)), null_mask=group_mask)


# ---------------------------------------------------------------------- #
# Fused filter masks (code-space execution, paper 4.1)
# ---------------------------------------------------------------------- #
#: Functions that can turn a NULL input row into a True predicate. Row
#: masks computed in code space unconditionally AND out NULL rows, so a
#: conjunct using one of these may disagree with row-space evaluation —
#: such conjuncts must stay in row space.
_NULL_ACCEPTING = frozenset({"isnull", "ifnull"})


def code_space_safe(expr: Expr) -> bool:
    """Whether a conjunct may be evaluated per dictionary entry / per run.

    Safe means: for a NULL input row the row-space result can only be
    False (which is exactly what the code-space path produces by masking
    NULL rows out). Anything that can observe NULL-ness and still return
    True — ``isnull``, ``ifnull``, CASE — disqualifies the conjunct.
    """
    for node in expr.walk():
        if isinstance(node, CaseWhen):
            return False
        if isinstance(node, Call) and node.func in _NULL_ACCEPTING:
            return False
    return True


def conjunct_mask_code_space(
    batch: Table, conj: Expr, cache_key: int, cache: dict | None
) -> np.ndarray | None:
    """Code-space row mask for one conjunct, or None when inapplicable.

    Applies when the conjunct references exactly one column and that
    column is dictionary-encoded in ``batch``: the predicate runs once
    per dictionary entry (cached per (conjunct, dictionary) identity so
    repeat batches over the same extract pay nothing) and each row is a
    single integer gather ``verdict[code]``. RLE-coded columns gather per
    *run* and expand — the per-run path of paper 4.3's consumers.
    """
    cols = columns_used(conj)
    if len(cols) != 1 or not code_space_safe(conj):
        return None
    name = next(iter(cols))
    if not batch.has_column(name):
        return None
    col = batch.column(name)
    if col.dictionary is None:
        return None
    key = (cache_key, id(col.dictionary))
    verdict = cache.get(key) if cache is not None else None
    if verdict is None:
        verdict = col.dictionary.predicate_codes(conj, name, col.ltype, col.collation)
        if cache is not None:
            cache[key] = verdict
    vec = col.physical
    if isinstance(vec, RleVector):
        mask = vec.expand_runs(verdict[vec.values])
    else:
        mask = verdict[vec.materialize()]
    if col.null_mask is not None:
        mask = mask & ~col.null_mask
    return mask


def predicate_mask(
    batch: Table,
    conjs: list[Expr],
    *,
    cache: dict | None = None,
    code_space: bool = True,
) -> np.ndarray:
    """One-pass combined filter mask for a batch.

    The fused pipeline applies this single mask instead of materializing
    an intermediate table per Filter operator; conjuncts that qualify run
    in code space, the rest fall back to row-space evaluation.
    """
    mask: np.ndarray | None = None
    for i, conj in enumerate(conjs):
        m = None
        if code_space:
            m = conjunct_mask_code_space(batch, conj, i, cache)
        if m is None:
            m = evaluate_predicate(conj, batch)
        mask = m if mask is None else mask & m
    if mask is None:
        mask = np.ones(batch.n_rows, dtype=np.bool_)
    return mask


# ---------------------------------------------------------------------- #
# Join probe
# ---------------------------------------------------------------------- #
@dataclass
class BuildIndex:
    """Hash-table analogue: sorted build rows grouped by key.

    ``uniq_keys`` holds one merged key row per distinct build key (as a
    list of per-column sorted unique arrays is not enough for multi-column
    keys, we re-factorize probe batches against the *combined* build key
    codes via per-column searchsorted translation).
    """

    per_column_uniques: list[np.ndarray]
    combined_codes: np.ndarray  # sorted distinct combined codes
    starts: np.ndarray  # group start offsets into `order`
    counts: np.ndarray
    order: np.ndarray  # build row indices sorted by combined code
    cards: list[int]


def build_index(build: Table, keys: list[str]) -> BuildIndex:
    """Index the build side of a hash join on its key columns."""
    per_col_uniq: list[np.ndarray] = []
    per_col_codes: list[np.ndarray] = []
    cards: list[int] = []
    valid = np.ones(build.n_rows, dtype=np.bool_)
    for key in keys:
        col = build.column(key)
        if col.null_mask is not None:
            valid &= ~col.null_mask  # NULL keys never join
    for key in keys:
        col = build.column(key)
        values = col.storage_values()
        if values.dtype == object:
            sort_vals = values.astype("U")
        else:
            sort_vals = values
        uniq, codes = np.unique(sort_vals[valid], return_inverse=True)
        per_col_uniq.append(uniq)
        full_codes = np.zeros(build.n_rows, dtype=np.int64)
        full_codes[valid] = codes
        per_col_codes.append(full_codes)
        cards.append(max(len(uniq), 1))
    combined = np.zeros(build.n_rows, dtype=np.int64)
    for codes, card in zip(per_col_codes, cards):
        combined = combined * card + codes
    combined = combined[valid]
    row_ids = np.flatnonzero(valid)
    order_local = np.argsort(combined, kind="stable")
    sorted_codes = combined[order_local]
    uniq_codes, starts, counts = _group_boundaries(sorted_codes)
    return BuildIndex(per_col_uniq, uniq_codes, starts, counts, row_ids[order_local], cards)


def _group_boundaries(sorted_codes: np.ndarray):
    if len(sorted_codes) == 0:
        z = np.zeros(0, dtype=np.int64)
        return z, z, z
    change = np.empty(len(sorted_codes), dtype=np.bool_)
    change[0] = True
    np.not_equal(sorted_codes[1:], sorted_codes[:-1], out=change[1:])
    starts = np.flatnonzero(change)
    uniq = sorted_codes[starts]
    counts = np.diff(np.concatenate((starts, [len(sorted_codes)])))
    return uniq, starts.astype(np.int64), counts.astype(np.int64)


def probe_index(
    index: BuildIndex, probe: Table, keys: list[str]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Probe a batch against the build index.

    Returns ``(probe_rows, build_rows, matched_mask)``: matched row pairs
    (with multiplicity) plus a per-probe-row flag used by left joins.
    """
    n = probe.n_rows
    ok = np.ones(n, dtype=np.bool_)
    combined = np.zeros(n, dtype=np.int64)
    for key, uniq, card in zip(keys, index.per_column_uniques, index.cards):
        col = probe.column(key)
        values = col.storage_values()
        if values.dtype == object:
            values = values.astype("U")
        if col.null_mask is not None:
            ok &= ~col.null_mask
        pos = np.searchsorted(uniq, values)
        pos_clipped = np.clip(pos, 0, max(len(uniq) - 1, 0))
        if len(uniq):
            hit = uniq[pos_clipped] == values
        else:
            hit = np.zeros(n, dtype=np.bool_)
        ok &= hit
        combined = combined * card + np.where(hit, pos_clipped, 0)
    slot = np.searchsorted(index.combined_codes, combined)
    slot_clipped = np.clip(slot, 0, max(len(index.combined_codes) - 1, 0))
    if len(index.combined_codes):
        ok &= index.combined_codes[slot_clipped] == combined
    else:
        ok &= False
    matched_rows = np.flatnonzero(ok)
    if len(matched_rows) == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, ok
    grp = slot_clipped[matched_rows]
    counts = index.counts[grp]
    starts = index.starts[grp]
    total = int(counts.sum())
    probe_rows = np.repeat(matched_rows, counts)
    excl = np.concatenate(([0], np.cumsum(counts)[:-1]))
    offsets = np.arange(total, dtype=np.int64) - np.repeat(excl, counts)
    build_rows = index.order[np.repeat(starts, counts) + offsets]
    return probe_rows, build_rows, ok
