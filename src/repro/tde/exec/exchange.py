"""Parallel execution operators: Exchange, SharedTable, FractionTable.

Paper 4.2.1: "the TDE has an implementation of the Exchange operator that
is able to take N inputs and produce M outputs ... In Tableau 9.0, we
limited the usage of the Exchange operator to only support N inputs and
one output", plus "SharedTable is used to share access to a table across
multiple threads and handles synchronization. FractionTable enables the
TDE to read the table in parallel, since each fraction can be read by a
separate thread."

``PExchange`` runs its N input fragments on real threads and merges their
batches (arbitrary interleave; ``ordered=True`` preserves input order by
draining children sequentially — the order-preserving capability the paper
mentions but does not yet exploit).
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ...errors import ExecutionError
from ...expr.ast import Expr
from ..storage.table import Table
from .physical import ExecContext, PhysNode, PScan, execute_to_table


@dataclass
class PExchange(PhysNode):
    """N-input, one-output exchange merging parallel fragment streams."""

    inputs: list[PhysNode]
    ordered: bool = False

    def children(self) -> tuple[PhysNode, ...]:
        return tuple(self.inputs)

    @property
    def degree(self) -> int:
        return len(self.inputs)

    def _execute(self, ctx: ExecContext) -> Iterator[Table]:
        if not self.inputs:
            raise ExecutionError("exchange with zero inputs")
        if not ctx.parallel or self.ordered or len(self.inputs) == 1:
            for child in self.inputs:
                yield from child.execute(ctx)
            return
        out: queue.Queue = queue.Queue(maxsize=4 * len(self.inputs))
        done = object()

        def worker(node: PhysNode) -> None:
            try:
                for batch in node.execute(ctx):
                    out.put(("batch", batch))
            except BaseException as exc:  # propagate to the consumer
                out.put(("error", exc))
            finally:
                out.put(("done", done))

        threads = [
            threading.Thread(target=worker, args=(node,), daemon=True) for node in self.inputs
        ]
        for t in threads:
            t.start()
        finished = 0
        error: BaseException | None = None
        while finished < len(threads):
            kind, payload = out.get()
            if kind == "batch":
                if error is None:
                    yield payload
            elif kind == "error":
                error = error or payload
                finished = finished  # keep draining until all workers exit
            else:
                finished += 1
        for t in threads:
            t.join()
        if error is not None:
            raise error


@dataclass
class PMergeSorted(PhysNode):
    """Order-preserving exchange: k-way merge of sorted fragment streams.

    Paper 4.2.2 (future work): "In the coming releases, we will explore
    how repartitioning and order-preservation can benefit the performance
    of Tableau's workloads." This operator realizes the order-preserving
    half: each fragment sorts locally in parallel; the merge is O(n·log k)
    instead of the serial O(n·log n) sort a plain Exchange would force.
    """

    inputs: list[PhysNode]
    keys: list[tuple[str, bool]]

    def children(self) -> tuple[PhysNode, ...]:
        return tuple(self.inputs)

    @property
    def degree(self) -> int:
        return len(self.inputs)

    def _execute(self, ctx: ExecContext) -> Iterator[Table]:
        import heapq

        from .physical import execute_to_table

        if not self.inputs:
            raise ExecutionError("merge with zero inputs")
        if not ctx.parallel or len(self.inputs) == 1:
            tables = [execute_to_table(child, ctx) for child in self.inputs]
        else:
            tables: list[Table | None] = [None] * len(self.inputs)
            errors: list[BaseException] = []

            def worker(i: int, node: PhysNode) -> None:
                try:
                    tables[i] = execute_to_table(node, ctx)
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i, node), daemon=True)
                for i, node in enumerate(self.inputs)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            if errors:
                raise errors[0]
        tables = [t for t in tables if t is not None]
        non_empty = [t for t in tables if t.n_rows]
        if not non_empty:
            yield tables[0]
            return
        def stream(source_idx: int, table: Table):
            for row, key in enumerate(_row_keys(table, self.keys)):
                yield key, (source_idx, row)

        streams = [stream(i, table) for i, table in enumerate(non_empty)]
        # Emit in merged global order, batched per source run for locality.
        merged_rows: list[tuple[int, int]] = [
            pair for _key, pair in heapq.merge(*streams, key=lambda item: item[0])
        ]
        pieces = []
        start = 0
        while start < len(merged_rows):
            stop = start
            source = merged_rows[start][0]
            while stop < len(merged_rows) and merged_rows[stop][0] == source:
                stop += 1
            idx = np.asarray([r for _i, r in merged_rows[start:stop]], dtype=np.int64)
            pieces.append(non_empty[source].take(idx))
            start = stop
        yield Table.concat(pieces)


def _row_keys(table: Table, keys: list[tuple[str, bool]]):
    """Composite, direction-aware sort keys per row (NULLs first)."""
    columns = []
    for name, asc in keys:
        col = table.column(name)
        values = col.python_values()
        columns.append((values, asc))
    n = table.n_rows
    out = []
    for row in range(n):
        parts = []
        for values, asc in columns:
            v = values[row]
            if v is None:
                parts.append((0, 0))
            else:
                parts.append((1, v if asc else _ReversedKey(v)))
        out.append(tuple(parts))
    return out


class _ReversedKey:
    """Inverts comparisons for descending merge keys."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other: "_ReversedKey") -> bool:
        return other.value < self.value

    def __eq__(self, other) -> bool:
        return isinstance(other, _ReversedKey) and other.value == self.value


class SharedBuild(PhysNode):
    """SharedTable: materialize a child once, share across threads.

    Used for the build side of joins under parallel probes ("a single hash
    table is built from the shared table and then shared for every
    left-hand block to probe", paper 4.2.2) and for common subexpressions.
    """

    def __init__(self, child: PhysNode):
        self.child = child
        self._lock = threading.Lock()
        self._table: Table | None = None

    def children(self) -> tuple[PhysNode, ...]:
        return (self.child,)

    def get(self, ctx: ExecContext) -> Table:
        with self._lock:
            if self._table is None:
                recorder = ctx.recorder
                if recorder is not None:
                    started = recorder.clock()
                    self._table = execute_to_table(self.child, ctx)
                    recorder.record_node(
                        self,
                        type(self).__name__,
                        self._table.n_rows,
                        recorder.clock() - started,
                    )
                else:
                    self._table = execute_to_table(self.child, ctx)
            return self._table

    def _execute(self, ctx: ExecContext) -> Iterator[Table]:
        yield self.get(ctx)


class FractionTable:
    """Partitioning helpers that split a stored table into scan fractions.

    The only data partitioning in Tableau 9.0 "happens in TableScan"
    (paper 4.2.2); these helpers produce the per-fraction ``PScan`` nodes.
    """

    @staticmethod
    def split_even(
        table: Table,
        n_fractions: int,
        *,
        columns: list[str] | None = None,
        predicate: Expr | None = None,
    ) -> list[PScan]:
        """Random (row-range) partitioning into roughly equal fractions."""
        n_fractions = max(1, min(n_fractions, max(table.n_rows, 1)))
        bounds = np.linspace(0, table.n_rows, n_fractions + 1).astype(np.int64)
        return [
            PScan(table, columns, predicate, int(bounds[i]), int(bounds[i + 1]))
            for i in range(n_fractions)
        ]

    @staticmethod
    def split_by_key(
        table: Table,
        key: str,
        n_fractions: int,
        *,
        columns: list[str] | None = None,
        predicate: Expr | None = None,
    ) -> list[PScan] | None:
        """Range partitioning on a sort-prefix column (paper 4.2.3).

        Splits only at key-change boundaries, guaranteeing every distinct
        key value lands in exactly one fraction (Lemma 2). Returns ``None``
        when the key has too few distinct boundary points to produce more
        than one fraction — the skew/low-cardinality caveat of 4.2.3.
        """
        col = table.column(key)
        values = col.storage_values()
        if len(values) == 0:
            return None
        if values.dtype == object:
            values = values.astype("U")
        change = np.flatnonzero(values[1:] != values[:-1]) + 1
        if col.null_mask is not None:
            change = np.union1d(change, np.flatnonzero(np.diff(col.null_mask.astype(np.int8))) + 1)
        if len(change) < 1:
            return None
        targets = np.linspace(0, table.n_rows, n_fractions + 1)[1:-1]
        cut_positions = sorted({int(change[np.abs(change - t).argmin()]) for t in targets})
        bounds = [0] + cut_positions + [table.n_rows]
        bounds = sorted(set(bounds))
        if len(bounds) < 3:
            return None
        return [
            PScan(table, columns, predicate, bounds[i], bounds[i + 1])
            for i in range(len(bounds) - 1)
        ]
